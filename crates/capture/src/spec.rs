//! Typed `--source` specifications.
//!
//! The CLI used to split `--source` values on `:` by hand in every
//! subcommand; [`SourceSpec`] replaces that with one typed enum
//! implementing [`FromStr`] and [`Display`](std::fmt::Display), so `analyze`, `capture`,
//! and any future front-end parse and print specs identically and parse
//! failures say what was wrong *and* what a valid spec looks like.
//!
//! Accepted forms:
//!
//! * `pcap:PATH` — a pcap file on disk.
//! * `sim:SCENARIO[,seed=N][,secs=N]` — a simulated live tap
//!   (defaults: `seed=7`, `secs=60`). The scenario *name* is validated
//!   by the consumer that owns the scenario catalogue (`zoom-sim` is a
//!   deliberate non-dependency of this crate), so unknown names parse
//!   here and fail there with the catalogue in the message.
//!
//! `Display` renders the canonical fully-explicit form (`sim:` specs
//! always print `seed=` and `secs=`), and `parse(display(x)) == x`
//! round-trips — source labels in metrics are therefore canonical too.

use std::fmt;
use std::str::FromStr;

/// Default simulation seed when a `sim:` spec omits `seed=`.
pub const DEFAULT_SIM_SEED: u64 = 7;
/// Default simulated duration (seconds) when a `sim:` spec omits `secs=`.
pub const DEFAULT_SIM_SECS: u64 = 60;

/// One parsed `--source` value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceSpec {
    /// `pcap:PATH` — records come from a pcap file.
    Pcap {
        /// Path of the pcap file.
        path: String,
    },
    /// `sim:SCENARIO[,seed=N][,secs=N]` — records come from a simulated
    /// live tap replaying the named scenario.
    Sim {
        /// Scenario name; validated by the consumer owning the catalogue.
        scenario: String,
        /// Simulation RNG seed.
        seed: u64,
        /// Simulated duration in seconds.
        secs: u64,
    },
}

/// Why a `--source` value failed to parse. Every variant's `Display`
/// names the offending token and shows the accepted grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// The value has no `kind:` prefix at all.
    MissingKind(String),
    /// The `kind:` prefix is not one of the supported backends.
    UnknownKind(String),
    /// A `pcap:` spec with an empty path.
    EmptyPath,
    /// A `sim:` spec with no scenario name before the first comma.
    MissingScenario,
    /// A `sim:` option without a `key=value` shape.
    BadOption(String),
    /// A `sim:` option whose value is not an unsigned integer.
    BadOptionValue {
        /// The option key (`seed` or `secs`).
        key: String,
        /// The rejected value text.
        value: String,
    },
    /// A `sim:` option key that is neither `seed` nor `secs`.
    UnknownOption(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const GRAMMAR: &str = "expected pcap:PATH or sim:SCENARIO[,seed=N][,secs=N]";
        match self {
            SpecError::MissingKind(s) => {
                write!(f, "source {s:?} has no kind prefix ({GRAMMAR})")
            }
            SpecError::UnknownKind(k) => {
                write!(f, "unknown source kind {k:?} ({GRAMMAR})")
            }
            SpecError::EmptyPath => write!(f, "pcap: source needs a file path ({GRAMMAR})"),
            SpecError::MissingScenario => {
                write!(f, "sim: source needs a scenario name ({GRAMMAR})")
            }
            SpecError::BadOption(o) => {
                write!(f, "bad sim option {o:?} (expected key=value, keys: seed, secs)")
            }
            SpecError::BadOptionValue { key, value } => {
                write!(f, "sim option {key}={value:?} is not an unsigned integer")
            }
            SpecError::UnknownOption(k) => {
                write!(f, "unknown sim option {k:?} (accepted: seed, secs)")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl FromStr for SourceSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<SourceSpec, SpecError> {
        let (kind, rest) = s
            .split_once(':')
            .ok_or_else(|| SpecError::MissingKind(s.to_string()))?;
        match kind {
            "pcap" => {
                if rest.is_empty() {
                    return Err(SpecError::EmptyPath);
                }
                Ok(SourceSpec::Pcap {
                    path: rest.to_string(),
                })
            }
            "sim" => {
                let mut parts = rest.split(',');
                let scenario = parts.next().unwrap_or("").trim();
                if scenario.is_empty() {
                    return Err(SpecError::MissingScenario);
                }
                let (mut seed, mut secs) = (DEFAULT_SIM_SEED, DEFAULT_SIM_SECS);
                for part in parts {
                    let (key, value) = part
                        .split_once('=')
                        .ok_or_else(|| SpecError::BadOption(part.to_string()))?;
                    let slot = match key.trim() {
                        "seed" => &mut seed,
                        "secs" => &mut secs,
                        other => return Err(SpecError::UnknownOption(other.to_string())),
                    };
                    *slot = value.trim().parse().map_err(|_| SpecError::BadOptionValue {
                        key: key.trim().to_string(),
                        value: value.to_string(),
                    })?;
                }
                Ok(SourceSpec::Sim {
                    scenario: scenario.to_string(),
                    seed,
                    secs,
                })
            }
            other => Err(SpecError::UnknownKind(other.to_string())),
        }
    }
}

impl fmt::Display for SourceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceSpec::Pcap { path } => write!(f, "pcap:{path}"),
            SourceSpec::Sim {
                scenario,
                seed,
                secs,
            } => write!(f, "sim:{scenario},seed={seed},secs={secs}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pcap_and_sim_forms() {
        assert_eq!(
            "pcap:a/b.pcap".parse::<SourceSpec>().unwrap(),
            SourceSpec::Pcap {
                path: "a/b.pcap".into()
            }
        );
        assert_eq!(
            "sim:p2p".parse::<SourceSpec>().unwrap(),
            SourceSpec::Sim {
                scenario: "p2p".into(),
                seed: DEFAULT_SIM_SEED,
                secs: DEFAULT_SIM_SECS,
            }
        );
        assert_eq!(
            "sim:multi,seed=3,secs=20".parse::<SourceSpec>().unwrap(),
            SourceSpec::Sim {
                scenario: "multi".into(),
                seed: 3,
                secs: 20,
            }
        );
        // A pcap path may itself contain colons past the first.
        assert_eq!(
            "pcap:odd:name.pcap".parse::<SourceSpec>().unwrap(),
            SourceSpec::Pcap {
                path: "odd:name.pcap".into()
            }
        );
    }

    #[test]
    fn errors_name_the_problem_and_the_grammar() {
        let e = "nocolon".parse::<SourceSpec>().unwrap_err();
        assert_eq!(e, SpecError::MissingKind("nocolon".into()));
        assert!(e.to_string().contains("pcap:PATH"));

        let e = "ftp:x".parse::<SourceSpec>().unwrap_err();
        assert_eq!(e, SpecError::UnknownKind("ftp".into()));
        assert!(e.to_string().contains("\"ftp\""));

        assert_eq!("pcap:".parse::<SourceSpec>().unwrap_err(), SpecError::EmptyPath);
        assert_eq!(
            "sim:".parse::<SourceSpec>().unwrap_err(),
            SpecError::MissingScenario
        );
        assert_eq!(
            "sim:p2p,bogus".parse::<SourceSpec>().unwrap_err(),
            SpecError::BadOption("bogus".into())
        );
        assert_eq!(
            "sim:p2p,seed=x".parse::<SourceSpec>().unwrap_err(),
            SpecError::BadOptionValue {
                key: "seed".into(),
                value: "x".into()
            }
        );
        let e = "sim:p2p,speed=1".parse::<SourceSpec>().unwrap_err();
        assert_eq!(e, SpecError::UnknownOption("speed".into()));
        assert!(e.to_string().contains("seed, secs"));
    }

    #[test]
    fn display_is_canonical_and_roundtrips() {
        for s in ["pcap:t.pcap", "sim:p2p,seed=7,secs=60", "sim:churn,seed=1,secs=9"] {
            let spec: SourceSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s);
            assert_eq!(spec.to_string().parse::<SourceSpec>().unwrap(), spec);
        }
        // Omitted options print explicitly in the canonical form.
        let spec: SourceSpec = "sim:p2p".parse().unwrap();
        assert_eq!(spec.to_string(), "sim:p2p,seed=7,secs=60");
    }
}
