//! Hardware resource accounting model for the Tofino capture program
//! (Table 5 of the paper).
//!
//! The paper reports per-component usage of the switch's pipeline stages,
//! TCAM, SRAM, instruction words, and hash units. We model each functional
//! component with a cost function over its configuration (number of
//! prefixes, register sizes, anonymization coverage) calibrated so the
//! default configuration reproduces the paper's numbers; scaling the
//! configuration scales the estimates in the physically sensible
//! direction (more prefixes → more TCAM, bigger registers → more SRAM).
//!
//! The Tofino totals used for percentages are the publicly known
//! per-pipeline budgets: 12 stages, 24 TCAM blocks/stage × 12, 80 SRAM
//! blocks/stage × 12, ~97 instruction words per stage, 2 hash units per
//! stage.

/// Resource usage of one functional component, in percent of the chip's
/// per-pipeline budget (as Table 5 reports), plus the number of stages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentUsage {
    /// Component name as Table 5 labels it.
    pub name: &'static str,
    /// Pipeline stages the component occupies.
    pub stages: u32,
    /// TCAM blocks consumed, in percent of the per-pipeline budget.
    pub tcam_pct: f64,
    /// SRAM blocks consumed, in percent of the per-pipeline budget.
    pub sram_pct: f64,
    /// Instruction words consumed, in percent of the budget.
    pub instructions_pct: f64,
    /// Hash units consumed, in percent of the budget.
    pub hash_units_pct: f64,
}

/// Configuration knobs that drive the model.
#[derive(Debug, Clone, Copy)]
pub struct ResourceConfig {
    /// Number of Zoom server prefixes in the match table (117 published).
    pub zoom_prefixes: usize,
    /// Number of campus prefixes.
    pub campus_prefixes: usize,
    /// P2P register capacity (entries across sources + destinations).
    pub p2p_register_entries: usize,
    /// Whether the anonymization component is deployed.
    pub anonymization: bool,
}

impl Default for ResourceConfig {
    fn default() -> Self {
        ResourceConfig {
            zoom_prefixes: 117,
            campus_prefixes: 64,
            p2p_register_entries: 65_536,
            anonymization: true,
        }
    }
}

// Tofino per-pipeline budgets (public figures).
const TCAM_BLOCKS: f64 = 24.0 * 12.0;
const SRAM_BLOCKS: f64 = 80.0 * 12.0;
const INSTR_WORDS: f64 = 97.0 * 12.0;
const HASH_UNITS: f64 = 2.0 * 12.0;

/// TCAM blocks needed for `prefixes` 32-bit LPM entries (44-bit-wide
/// blocks of 512 entries each, at least one).
fn tcam_blocks_for(prefixes: usize) -> f64 {
    (prefixes as f64 / 512.0).ceil().max(1.0)
}

/// SRAM blocks for `entries` register slots of `bits` bits (16 KB blocks).
fn sram_blocks_for(entries: usize, bits: usize) -> f64 {
    ((entries * bits) as f64 / (16.0 * 1024.0 * 8.0))
        .ceil()
        .max(1.0)
}

/// Model the Zoom-IP-match component: a stateless LPM on source plus one
/// on destination, two stages.
pub fn ip_match_usage(cfg: &ResourceConfig) -> ComponentUsage {
    let tcam = 2.0 * tcam_blocks_for(cfg.zoom_prefixes + cfg.campus_prefixes);
    ComponentUsage {
        name: "Zoom IP Match",
        stages: 2,
        tcam_pct: 100.0 * tcam / TCAM_BLOCKS,
        sram_pct: 100.0 * 1.0 / SRAM_BLOCKS, // verdict metadata only
        instructions_pct: 100.0 * 15.0 / INSTR_WORDS,
        hash_units_pct: 0.0,
    }
}

/// Model the P2P-detection component: STUN parse, two register hash
/// tables (sources and destinations) with 64-bit entries, timeout checks.
/// Seven stages in the paper's implementation.
pub fn p2p_detection_usage(cfg: &ResourceConfig) -> ComponentUsage {
    // Two tables; each entry stores the client IP (32 b), port (16 b),
    // a timestamp (32 b), and hash-table metadata ≈ 96 bits, plus a few
    // action/overhead blocks.
    let sram = 2.0 * sram_blocks_for(cfg.p2p_register_entries, 96) + 5.0;
    let hash = 4.0; // two hash tables × (index + verify) hash computations
    ComponentUsage {
        name: "P2P Detection",
        stages: 7,
        tcam_pct: 100.0 * 1.5 / TCAM_BLOCKS,
        sram_pct: 100.0 * sram / SRAM_BLOCKS,
        instructions_pct: 100.0 * 40.0 / INSTR_WORDS,
        hash_units_pct: 100.0 * hash / HASH_UNITS,
    }
}

/// Model the anonymization component (ONTAS): per-octet substitution
/// tables and hash-based address rewriting across 11 stages.
pub fn anonymization_usage(_cfg: &ResourceConfig) -> ComponentUsage {
    ComponentUsage {
        name: "Anonymization",
        stages: 11,
        tcam_pct: 100.0 * 2.0 / TCAM_BLOCKS,
        sram_pct: 100.0 * 10.5 / SRAM_BLOCKS,
        instructions_pct: 100.0 * 60.0 / INSTR_WORDS,
        hash_units_pct: 100.0 * 2.0 / HASH_UNITS,
    }
}

/// The full Table 5: usage per component under `cfg`.
pub fn table5(cfg: &ResourceConfig) -> Vec<ComponentUsage> {
    let mut rows = vec![ip_match_usage(cfg), p2p_detection_usage(cfg)];
    if cfg.anonymization {
        rows.push(anonymization_usage(cfg));
    }
    rows
}

/// The paper's headline claim: every resource type stays under 15 % except
/// hash units for P2P detection (16.7 %).
pub fn is_lightweight(rows: &[ComponentUsage]) -> bool {
    rows.iter().all(|r| {
        r.tcam_pct < 15.0
            && r.sram_pct < 15.0
            && r.instructions_pct < 15.0
            && r.hash_units_pct <= 20.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_shape() {
        let rows = table5(&ResourceConfig::default());
        assert_eq!(rows.len(), 3);
        let ip = &rows[0];
        let p2p = &rows[1];
        let anon = &rows[2];
        // Stage counts straight from Table 5.
        assert_eq!(ip.stages, 2);
        assert_eq!(p2p.stages, 7);
        assert_eq!(anon.stages, 11);
        // Shape: P2P dominates SRAM and hash units; anonymization
        // dominates instructions; IP match is mostly TCAM.
        assert!(p2p.sram_pct > ip.sram_pct);
        assert!(p2p.sram_pct > anon.sram_pct);
        assert!(p2p.hash_units_pct > anon.hash_units_pct);
        assert!(anon.instructions_pct > ip.instructions_pct);
        assert!(ip.tcam_pct < 2.0);
    }

    #[test]
    fn p2p_sram_close_to_paper_value() {
        // Paper: 10.9 % SRAM for P2P detection.
        let p2p = p2p_detection_usage(&ResourceConfig::default());
        assert!((p2p.sram_pct - 10.9).abs() < 2.0, "got {}", p2p.sram_pct);
        // Paper: 16.7 % hash units.
        assert!((p2p.hash_units_pct - 16.7).abs() < 1.0);
    }

    #[test]
    fn lightweight_claim_holds_for_default() {
        assert!(is_lightweight(&table5(&ResourceConfig::default())));
    }

    #[test]
    fn more_prefixes_cost_more_tcam() {
        let small = ip_match_usage(&ResourceConfig {
            zoom_prefixes: 100,
            ..Default::default()
        });
        let big = ip_match_usage(&ResourceConfig {
            zoom_prefixes: 5_000,
            ..Default::default()
        });
        assert!(big.tcam_pct > small.tcam_pct);
    }

    #[test]
    fn bigger_registers_cost_more_sram() {
        let small = p2p_detection_usage(&ResourceConfig {
            p2p_register_entries: 1024,
            ..Default::default()
        });
        let big = p2p_detection_usage(&ResourceConfig {
            p2p_register_entries: 1 << 20,
            ..Default::default()
        });
        assert!(big.sram_pct > small.sram_pct);
    }

    #[test]
    fn anonymization_optional() {
        let rows = table5(&ResourceConfig {
            anonymization: false,
            ..Default::default()
        });
        assert_eq!(rows.len(), 2);
    }
}
