//! Stateful P2P detection from STUN exchanges (§4.1 of the paper).
//!
//! Zoom clients that are about to open a P2P connection first exchange
//! STUN binding requests with a Zoom zone controller on UDP port 3478 —
//! *from the same ephemeral port the P2P media flow will later use*. The
//! detector therefore:
//!
//! 1. on every STUN packet between a campus client and a Zoom server,
//!    records the campus-side `(ip, port)` endpoint with a timestamp;
//! 2. on every subsequent non-server UDP packet, looks the campus-side
//!    endpoint up; a hit within the configured timeout marks the flow as a
//!    Zoom P2P media flow.
//!
//! Port reuse can cause false positives; the paper notes these are
//! filtered downstream by checking the Zoom packet format, which our
//! pipeline does too. On Tofino this state lives in register hash tables
//! (the "P2P Sources" / "P2P Destinations" boxes of Fig. 13); here it is a
//! `HashMap` with lazy expiry plus an explicit sweep for bounded memory.

use std::collections::HashMap;
use zoom_wire::flow::Endpoint;

/// Statistics counters exposed for Fig. 13-style per-stage reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrackerStats {
    /// STUN exchanges recorded (register writes).
    pub registered: u64,
    /// Lookups that confirmed a P2P flow.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries dropped because they outlived the timeout.
    pub expired: u64,
}

/// The stateful P2P detector.
#[derive(Debug)]
pub struct StunTracker {
    /// Campus endpoint → last STUN activity (nanoseconds).
    entries: HashMap<Endpoint, u64>,
    timeout_nanos: u64,
    stats: TrackerStats,
    /// Sweep cadence: every `sweep_every` registrations, purge expired
    /// entries so memory stays proportional to active clients.
    sweep_every: u64,
    since_sweep: u64,
}

impl StunTracker {
    /// Create a tracker with the given entry timeout.
    ///
    /// The paper leaves the timeout configurable; longer timeouts risk
    /// false positives through ephemeral-port reuse, shorter ones risk
    /// missing P2P flows that start slowly ("within tens of seconds").
    /// 120 s is a sensible default.
    pub fn new(timeout_nanos: u64) -> Self {
        StunTracker {
            entries: HashMap::new(),
            timeout_nanos,
            stats: TrackerStats::default(),
            sweep_every: 1024,
            since_sweep: 0,
        }
    }

    /// Default 120-second timeout.
    pub fn with_default_timeout() -> Self {
        Self::new(120 * 1_000_000_000)
    }

    /// Record a STUN exchange: `client` is the campus-side endpoint of a
    /// packet to/from a Zoom server on port 3478.
    pub fn register(&mut self, client: Endpoint, now_nanos: u64) {
        self.entries.insert(client, now_nanos);
        self.stats.registered += 1;
        self.since_sweep += 1;
        if self.since_sweep >= self.sweep_every {
            self.sweep(now_nanos);
            self.since_sweep = 0;
        }
    }

    /// Check whether `client` recently completed a STUN exchange — i.e.
    /// whether a UDP flow from this endpoint to a non-Zoom address should
    /// be treated as Zoom P2P media. Refreshes the entry on hit so
    /// long-running P2P calls stay matched.
    pub fn check(&mut self, client: Endpoint, now_nanos: u64) -> bool {
        match self.entries.get_mut(&client) {
            Some(last) if now_nanos.saturating_sub(*last) <= self.timeout_nanos => {
                *last = now_nanos;
                self.stats.hits += 1;
                true
            }
            Some(_) => {
                self.entries.remove(&client);
                self.stats.expired += 1;
                self.stats.misses += 1;
                false
            }
            None => {
                self.stats.misses += 1;
                false
            }
        }
    }

    /// Drop all entries older than the timeout.
    pub fn sweep(&mut self, now_nanos: u64) {
        let timeout = self.timeout_nanos;
        let before = self.entries.len();
        self.entries
            .retain(|_, last| now_nanos.saturating_sub(*last) <= timeout);
        self.stats.expired += (before - self.entries.len()) as u64;
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TrackerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{IpAddr, Ipv4Addr};

    const SEC: u64 = 1_000_000_000;

    fn ep(last: u8, port: u16) -> Endpoint {
        Endpoint::new(IpAddr::V4(Ipv4Addr::new(10, 8, 0, last)), port)
    }

    #[test]
    fn hit_within_timeout() {
        let mut t = StunTracker::new(10 * SEC);
        t.register(ep(1, 50_000), 0);
        assert!(t.check(ep(1, 50_000), 5 * SEC));
        assert_eq!(t.stats().hits, 1);
    }

    #[test]
    fn miss_after_timeout() {
        let mut t = StunTracker::new(10 * SEC);
        t.register(ep(1, 50_000), 0);
        assert!(!t.check(ep(1, 50_000), 11 * SEC));
        assert_eq!(t.stats().expired, 1);
        assert!(t.is_empty());
    }

    #[test]
    fn different_port_is_a_miss() {
        let mut t = StunTracker::new(10 * SEC);
        t.register(ep(1, 50_000), 0);
        assert!(!t.check(ep(1, 50_001), SEC));
        assert!(!t.check(ep(2, 50_000), SEC));
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn hit_refreshes_entry() {
        let mut t = StunTracker::new(10 * SEC);
        t.register(ep(1, 50_000), 0);
        // A long P2P call: keep checking every 8 s; each hit refreshes.
        for i in 1..10 {
            assert!(t.check(ep(1, 50_000), i * 8 * SEC));
        }
    }

    #[test]
    fn sweep_purges_expired() {
        let mut t = StunTracker::new(SEC);
        for i in 0..100u16 {
            t.register(ep(1, 40_000 + i), 0);
        }
        assert_eq!(t.len(), 100);
        t.sweep(5 * SEC);
        assert!(t.is_empty());
        assert_eq!(t.stats().expired, 100);
    }

    #[test]
    fn automatic_sweep_bounds_memory() {
        let mut t = StunTracker::new(SEC);
        t.sweep_every = 10;
        // Register 100 endpoints spaced 1 s apart: by the time the sweep
        // runs, old entries have expired.
        for i in 0..100u64 {
            t.register(ep((i % 250) as u8, 40_000 + i as u16), i * SEC);
        }
        assert!(t.len() < 100);
    }

    #[test]
    fn reregistration_updates_timestamp() {
        let mut t = StunTracker::new(10 * SEC);
        t.register(ep(1, 50_000), 0);
        t.register(ep(1, 50_000), 20 * SEC);
        assert!(t.check(ep(1, 50_000), 25 * SEC));
    }
}
