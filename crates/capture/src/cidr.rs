//! IPv4 CIDR prefixes and longest-prefix-match sets.
//!
//! The data-plane pipeline matches every packet against the campus subnets
//! and against Zoom's published server networks (117 prefixes from /16 to
//! /27 at the time of the paper). A Tofino does this in TCAM; in software
//! we use a per-prefix-length hash probe, which preserves longest-prefix
//! semantics and stays O(32) per lookup regardless of table size.

use std::collections::HashMap;
use std::fmt;
use std::net::{IpAddr, Ipv4Addr};
use std::str::FromStr;

/// An IPv4 CIDR prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cidr {
    address: Ipv4Addr,
    prefix_len: u8,
}

/// Error parsing a CIDR string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCidrError(pub String);

impl fmt::Display for ParseCidrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CIDR: {}", self.0)
    }
}

impl std::error::Error for ParseCidrError {}

impl Cidr {
    /// Construct, masking the address down to the prefix. Panics if
    /// `prefix_len > 32` (a programming error, not input).
    pub fn new(address: Ipv4Addr, prefix_len: u8) -> Cidr {
        assert!(prefix_len <= 32, "prefix length out of range");
        let masked = u32::from(address) & Self::mask_bits(prefix_len);
        Cidr {
            address: Ipv4Addr::from(masked),
            prefix_len,
        }
    }

    fn mask_bits(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(prefix_len))
        }
    }

    /// Network address (already masked).
    pub fn address(&self) -> Ipv4Addr {
        self.address
    }

    /// Prefix length.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// Number of addresses covered.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.prefix_len)
    }

    /// Membership test.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        u32::from(ip) & Self::mask_bits(self.prefix_len) == u32::from(self.address)
    }

    /// The `i`-th address within the prefix (wraps if out of range, which
    /// callers avoid by bounding on [`Cidr::size`]).
    pub fn nth(&self, i: u64) -> Ipv4Addr {
        Ipv4Addr::from(u32::from(self.address).wrapping_add(i as u32))
    }
}

impl fmt::Display for Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.address, self.prefix_len)
    }
}

impl FromStr for Cidr {
    type Err = ParseCidrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or_else(|| ParseCidrError(s.into()))?;
        let address: Ipv4Addr = addr.parse().map_err(|_| ParseCidrError(s.into()))?;
        let prefix_len: u8 = len.parse().map_err(|_| ParseCidrError(s.into()))?;
        if prefix_len > 32 {
            return Err(ParseCidrError(s.into()));
        }
        Ok(Cidr::new(address, prefix_len))
    }
}

/// A longest-prefix-match set mapping prefixes to values.
#[derive(Debug, Clone)]
pub struct PrefixMap<V> {
    /// One hash table per prefix length, probed longest-first.
    tables: Vec<HashMap<u32, V>>,
    /// Present prefix lengths, sorted descending.
    lens: Vec<u8>,
    len: usize,
}

impl<V> Default for PrefixMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixMap<V> {
    /// Empty set.
    pub fn new() -> Self {
        PrefixMap {
            tables: (0..=32).map(|_| HashMap::new()).collect(),
            lens: Vec::new(),
            len: 0,
        }
    }

    /// Insert a prefix → value mapping; replaces an existing entry for the
    /// identical prefix.
    pub fn insert(&mut self, cidr: Cidr, value: V) {
        let table = &mut self.tables[usize::from(cidr.prefix_len())];
        if table.insert(u32::from(cidr.address()), value).is_none() {
            self.len += 1;
            if !self.lens.contains(&cidr.prefix_len()) {
                self.lens.push(cidr.prefix_len());
                self.lens.sort_unstable_by(|a, b| b.cmp(a));
            }
        }
    }

    /// Longest-prefix match.
    pub fn longest_match(&self, ip: Ipv4Addr) -> Option<(Cidr, &V)> {
        let raw = u32::from(ip);
        for &len in &self.lens {
            let masked = raw & Cidr::mask_bits(len);
            if let Some(v) = self.tables[usize::from(len)].get(&masked) {
                return Some((Cidr::new(Ipv4Addr::from(masked), len), v));
            }
        }
        None
    }

    /// Membership test (any prefix).
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        self.longest_match(ip).is_some()
    }

    /// Membership test accepting either address family; IPv6 never matches
    /// (the paper's campus capture is IPv4).
    pub fn contains_addr(&self, ip: IpAddr) -> bool {
        match ip {
            IpAddr::V4(v4) => self.contains(v4),
            IpAddr::V6(_) => false,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over all `(cidr, value)` pairs in descending prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (Cidr, &V)> + '_ {
        self.lens.iter().flat_map(move |&len| {
            self.tables[usize::from(len)]
                .iter()
                .map(move |(&addr, v)| (Cidr::new(Ipv4Addr::from(addr), len), v))
        })
    }
}

/// A value-less prefix set.
pub type PrefixSet = PrefixMap<()>;

/// Build a [`PrefixSet`] from CIDR strings; panics on invalid literals
/// (intended for static configuration).
pub fn prefix_set(cidrs: &[&str]) -> PrefixSet {
    let mut set = PrefixSet::new();
    for s in cidrs {
        set.insert(s.parse().expect("static CIDR literal"), ());
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let c: Cidr = "10.8.0.0/16".parse().unwrap();
        assert_eq!(c.to_string(), "10.8.0.0/16");
        assert_eq!(c.prefix_len(), 16);
        assert_eq!(c.size(), 65_536);
    }

    #[test]
    fn address_is_masked() {
        let c: Cidr = "10.8.7.6/16".parse().unwrap();
        assert_eq!(c.address(), Ipv4Addr::new(10, 8, 0, 0));
    }

    #[test]
    fn parse_errors() {
        assert!("10.8.0.0".parse::<Cidr>().is_err());
        assert!("10.8.0.0/33".parse::<Cidr>().is_err());
        assert!("zoom/8".parse::<Cidr>().is_err());
    }

    #[test]
    fn contains() {
        let c: Cidr = "192.168.1.0/24".parse().unwrap();
        assert!(c.contains(Ipv4Addr::new(192, 168, 1, 200)));
        assert!(!c.contains(Ipv4Addr::new(192, 168, 2, 1)));
    }

    #[test]
    fn zero_prefix_matches_everything() {
        let c: Cidr = "0.0.0.0/0".parse().unwrap();
        assert!(c.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert_eq!(c.size(), 1 << 32);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut m = PrefixMap::new();
        m.insert("10.0.0.0/8".parse().unwrap(), "broad");
        m.insert("10.8.0.0/16".parse().unwrap(), "narrow");
        let (c, v) = m.longest_match(Ipv4Addr::new(10, 8, 1, 1)).unwrap();
        assert_eq!(*v, "narrow");
        assert_eq!(c.prefix_len(), 16);
        let (_, v) = m.longest_match(Ipv4Addr::new(10, 9, 1, 1)).unwrap();
        assert_eq!(*v, "broad");
        assert!(m.longest_match(Ipv4Addr::new(11, 0, 0, 1)).is_none());
    }

    #[test]
    fn prefix_set_builder() {
        let s = prefix_set(&["3.7.35.0/25", "52.202.62.192/26"]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(Ipv4Addr::new(3, 7, 35, 100)));
        assert!(!s.contains(Ipv4Addr::new(3, 7, 36, 1)));
    }

    #[test]
    fn nth_enumerates() {
        let c: Cidr = "10.0.0.0/30".parse().unwrap();
        assert_eq!(c.nth(3), Ipv4Addr::new(10, 0, 0, 3));
    }

    #[test]
    fn ipv6_never_matches() {
        let s = prefix_set(&["0.0.0.0/0"]);
        assert!(!s.contains_addr("2001:db8::1".parse().unwrap()));
        assert!(s.contains_addr("1.2.3.4".parse().unwrap()));
    }

    #[test]
    fn insert_same_prefix_replaces() {
        let mut m = PrefixMap::new();
        m.insert("10.0.0.0/8".parse().unwrap(), 1);
        m.insert("10.0.0.0/8".parse().unwrap(), 2);
        assert_eq!(m.len(), 1);
        assert_eq!(*m.longest_match(Ipv4Addr::new(10, 1, 1, 1)).unwrap().1, 2);
    }

    #[test]
    fn iter_yields_all() {
        let mut m = PrefixMap::new();
        m.insert("10.0.0.0/8".parse().unwrap(), ());
        m.insert("172.16.0.0/12".parse().unwrap(), ());
        assert_eq!(m.iter().count(), 2);
    }
}
