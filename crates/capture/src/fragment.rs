//! [`FragmentSource`] — a [`PacketSource`] fed by a worker's wire-framed
//! fragment stream (`zoom_wire::frame`), the merge-node half of the
//! distributed shard tier.
//!
//! On the merge node every connected worker (a TCP connection in
//! `merge --listen` mode, a spooled file in `merge FILES...` mode)
//! becomes one `FragmentSource` lane in the ordinary
//! [`CaptureMux`](crate::mux::CaptureMux) fan-in. The records a worker
//! shipped are therefore merged by the exact deterministic `(ts, lane)`
//! rule the in-process multi-source path uses, which is what makes the
//! distributed analysis byte-identical to a single-process run
//! (`tests/distributed_differential.rs`; operator docs in
//! `docs/DISTRIBUTED.md`).
//!
//! Besides records, the stream carries the worker's own capture-side
//! accounting (cumulative `Totals` in Accounting/Bye frames). The source
//! mirrors the latest totals into a shared [`WorkerAccount`] so the
//! merge process can fold `zoom_worker_*` metrics into its conservation
//! invariant while the capture thread owns the source exclusively.

use crate::source::{PacketSource, SourceError};
use std::io::Read;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use zoom_analysis::obs::trace::{self, TraceCollector};
use zoom_wire::frame::{FrameEvent, FrameReader, Totals};
use zoom_wire::handoff::RecordBatch;
use zoom_wire::pcap::LinkType;

/// Shared view of one worker's self-reported accounting, updated by the
/// capture thread as Accounting/Bye frames arrive and read by the merge
/// process for `zoom_worker_*` metrics.
#[derive(Debug, Default)]
pub struct WorkerAccount {
    /// Records the worker reported capturing (cumulative).
    pub packets: AtomicU64,
    /// Captured bytes the worker reported (cumulative).
    pub bytes: AtomicU64,
    /// Batches the worker's fan-in handled (cumulative).
    pub batches: AtomicU64,
    /// Records the worker dropped at its own full capture rings.
    pub ring_full_drops: AtomicU64,
    /// Records the worker's sources dropped (torn pcap tails).
    pub truncated: AtomicU64,
    /// Records actually decoded out of this worker's Records frames.
    pub records_received: AtomicU64,
    /// Whether the stream ended with a proper Bye frame.
    pub complete: AtomicBool,
}

impl WorkerAccount {
    fn apply(&self, t: Totals) {
        self.packets.store(t.packets, Ordering::Release);
        self.bytes.store(t.bytes, Ordering::Release);
        self.batches.store(t.batches, Ordering::Release);
        self.ring_full_drops.store(t.ring_full_drops, Ordering::Release);
        self.truncated.store(t.truncated, Ordering::Release);
    }

    /// Plain-data copy of the worker's latest reported totals.
    pub fn totals(&self) -> Totals {
        Totals {
            packets: self.packets.load(Ordering::Acquire),
            bytes: self.bytes.load(Ordering::Acquire),
            batches: self.batches.load(Ordering::Acquire),
            ring_full_drops: self.ring_full_drops.load(Ordering::Acquire),
            truncated: self.truncated.load(Ordering::Acquire),
        }
    }
}

/// A [`PacketSource`] decoding one worker's fragment stream.
///
/// `next_batch` appends the records of the next Records frame to the
/// caller's batch; Accounting frames update the shared
/// [`WorkerAccount`] in passing. The source reports exhaustion at the
/// Bye frame; EOF *before* Bye surfaces as a [`SourceError::Format`] so
/// a half-shipped worker can never silently pass for complete.
pub struct FragmentSource<R: Read + Send> {
    label: String,
    reader: FrameReader<R>,
    account: Arc<WorkerAccount>,
    /// Records to silently discard before delivering any — used by
    /// checkpoint restore to skip work a previous incarnation already
    /// consumed, without the workers resending history.
    skip: u64,
    /// Merge-side trace collector (None on untraced runs). Trace frames
    /// in the stream ship the worker's span events for the trace ID
    /// annotating the next Records frame; the collector re-ingests them
    /// verbatim so merge-side spans stitch onto the worker's tree.
    trace: Option<Arc<TraceCollector>>,
    /// Trace ID from the last Trace frame, consumed by the next Records
    /// frame (0 = none pending).
    pending_trace: u64,
}

impl<R: Read + Send> FragmentSource<R> {
    /// Wraps an already-validated frame stream. The source's label is
    /// `worker:<hello label>` so merge-side per-source metrics are
    /// attributable to the worker that shipped them.
    pub fn new(reader: FrameReader<R>) -> FragmentSource<R> {
        FragmentSource {
            label: format!("worker:{}", reader.label()),
            reader,
            account: Arc::new(WorkerAccount::default()),
            skip: 0,
            trace: None,
            pending_trace: 0,
        }
    }

    /// Validates the stream header on `input` and wraps the stream.
    pub fn open(input: R) -> Result<FragmentSource<R>, SourceError> {
        let reader = FrameReader::new(input)
            .map_err(|e| SourceError::Format(format!("fragment stream header: {e}")))?;
        Ok(FragmentSource::new(reader))
    }

    /// The worker's self-reported accounting, shared with the merge
    /// process (clone the `Arc` before handing the source to the mux).
    pub fn account(&self) -> Arc<WorkerAccount> {
        Arc::clone(&self.account)
    }

    /// The worker label from the Hello frame (without the `worker:`
    /// prefix the source label carries).
    pub fn worker_label(&self) -> &str {
        self.reader.label()
    }

    /// Discard the first `n` records instead of delivering them —
    /// checkpoint restore replays a journal deterministically while a
    /// previous incarnation's consumed prefix stays consumed.
    pub fn skip_records(mut self, n: u64) -> FragmentSource<R> {
        self.skip = n;
        self
    }

    /// Attach the merge node's trace collector: Trace frames in the
    /// worker stream are re-ingested (stitching the worker's span tree
    /// into the merge-side trace by ID) and the annotated batches carry
    /// the worker's trace ID onward through the merge pipeline.
    pub fn with_trace(mut self, collector: Arc<TraceCollector>) -> FragmentSource<R> {
        self.trace = Some(collector);
        self
    }
}

impl<R: Read + Send> PacketSource for FragmentSource<R> {
    fn label(&self) -> &str {
        &self.label
    }

    fn link_type(&self) -> LinkType {
        self.reader.link_type()
    }

    fn next_batch(&mut self, batch: &mut RecordBatch) -> Result<bool, SourceError> {
        loop {
            let event = self
                .reader
                .next(batch)
                .map_err(|e| SourceError::Format(format!("fragment stream: {e}")))?;
            match event {
                Some(FrameEvent::Records { count }) => {
                    self.account
                        .records_received
                        .fetch_add(count as u64, Ordering::AcqRel);
                    if self.skip > 0 {
                        // Drop the skipped prefix. Frames are decoded
                        // append-only, so a partial skip re-pushes the
                        // surviving tail of this frame.
                        let skipped = (self.skip.min(count as u64)) as usize;
                        self.skip -= skipped as u64;
                        let start = batch.len() - count as usize;
                        let kept: Vec<(u64, u32, Vec<u8>)> = (0..batch.len())
                            .filter(|i| *i < start || *i >= start + skipped)
                            .map(|i| {
                                let r = batch.get(i).expect("index in bounds");
                                (r.ts_nanos, r.orig_len, r.data.to_vec())
                            })
                            .collect();
                        batch.clear();
                        for (ts, orig, data) in &kept {
                            batch.push(*ts, *orig, data);
                        }
                        if batch.is_empty() {
                            continue;
                        }
                    }
                    if self.pending_trace != 0 {
                        batch.trace_id = self.pending_trace;
                        if let Some(tc) = &self.trace {
                            tc.record(
                                self.pending_trace,
                                trace::spans::MERGE_DECODE,
                                &self.label,
                                count as u64,
                                0,
                            );
                        }
                        self.pending_trace = 0;
                    }
                    return Ok(true);
                }
                Some(FrameEvent::Trace { trace_id }) => {
                    // Worker-side span events for the next Records frame.
                    // Without a merge-side collector they are skipped —
                    // a traced worker stream decodes fine untraced.
                    if let Some(tc) = &self.trace {
                        tc.ingest_foreign(trace_id, self.reader.trace_ndjson());
                        self.pending_trace = trace_id;
                    }
                }
                Some(FrameEvent::Accounting(t)) => self.account.apply(t),
                Some(FrameEvent::Bye(t)) => {
                    self.account.apply(t);
                    self.account.complete.store(true, Ordering::Release);
                    return Ok(false);
                }
                None => {
                    return Err(SourceError::Format(format!(
                        "{}: stream ended before Bye (worker cut off)",
                        self.label
                    )))
                }
            }
        }
    }

    fn truncated_records(&self) -> u64 {
        self.account.truncated.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zoom_wire::frame::FrameWriter;

    fn stream(records: &[(u64, &[u8])], per_frame: usize) -> Vec<u8> {
        let mut w = FrameWriter::new(Vec::new(), "t0", LinkType::Ethernet).unwrap();
        let mut batch = RecordBatch::new();
        let mut bytes = 0u64;
        for chunk in records.chunks(per_frame) {
            batch.clear();
            for (ts, data) in chunk {
                batch.push(*ts, data.len() as u32, data);
                bytes += data.len() as u64;
            }
            w.write_batch(&batch).unwrap();
        }
        w.finish(Totals {
            packets: records.len() as u64,
            bytes,
            batches: records.len().div_ceil(per_frame) as u64,
            ring_full_drops: 0,
            truncated: 0,
        })
        .unwrap()
    }

    fn drain(src: &mut FragmentSource<&[u8]>) -> Vec<u64> {
        let mut out = Vec::new();
        let mut batch = RecordBatch::new();
        loop {
            batch.clear();
            let live = src.next_batch(&mut batch).unwrap();
            out.extend(batch.iter().map(|r| r.ts_nanos));
            if !live {
                break;
            }
        }
        out
    }

    #[test]
    fn delivers_records_and_final_accounting() {
        let data = stream(&[(1, &[0xAA; 60][..]), (2, &[0xBB; 61]), (3, &[0xCC; 62])], 2);
        let mut src = FragmentSource::open(&data[..]).unwrap();
        assert_eq!(src.label(), "worker:t0");
        assert_eq!(src.worker_label(), "t0");
        let account = src.account();
        assert_eq!(drain(&mut src), vec![1, 2, 3]);
        assert!(account.complete.load(Ordering::Acquire));
        let t = account.totals();
        assert_eq!((t.packets, t.bytes, t.batches), (3, 183, 2));
        assert_eq!(account.records_received.load(Ordering::Acquire), 3);
    }

    #[test]
    fn cut_stream_surfaces_an_error() {
        let data = stream(&[(1, &[0xAA; 60][..]), (2, &[0xBB; 60])], 1);
        // Drop the Bye frame (and a bit more) off the tail.
        let cut = &data[..data.len() - 45];
        let mut src = FragmentSource::open(cut).unwrap();
        let mut batch = RecordBatch::new();
        let err = loop {
            batch.clear();
            match src.next_batch(&mut batch) {
                Ok(true) => continue,
                Ok(false) => panic!("cut stream passed for complete"),
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("Bye") || err.to_string().contains("truncated"));
        assert!(!src.account().complete.load(Ordering::Acquire));
    }

    #[test]
    fn trace_frames_stitch_into_the_merge_collector() {
        // Worker side: record a span, ship it ahead of the records it
        // annotates.
        let worker = TraceCollector::new();
        worker.enable(1, "worker:t0");
        let id = worker.sample().unwrap();
        worker.record(id, trace::spans::SOURCE_READ, "pcap:a.pcap", 1, 0);
        let mut w = FrameWriter::new(Vec::new(), "t0", LinkType::Ethernet).unwrap();
        w.write_trace(id, worker.drain_trace_ndjson(id).as_bytes())
            .unwrap();
        let mut batch = RecordBatch::new();
        batch.push(1, 60, &[0xAA; 60]);
        w.write_batch(&batch).unwrap();
        let data = w
            .finish(Totals {
                packets: 1,
                bytes: 60,
                batches: 1,
                ..Totals::default()
            })
            .unwrap();

        // Merge side with a collector: foreign spans land, the batch
        // carries the worker's ID, and merge_decode joins the tree.
        let merge = Arc::new(TraceCollector::new());
        merge.enable(1, "merge");
        let mut src = FragmentSource::open(&data[..])
            .unwrap()
            .with_trace(Arc::clone(&merge));
        let mut out = RecordBatch::new();
        assert!(src.next_batch(&mut out).unwrap());
        assert_eq!(out.trace_id, id, "batch must carry the worker's trace ID");
        let stitched = merge.drain_ndjson();
        assert!(stitched.contains("\"node\":\"worker:t0\""));
        assert!(stitched.contains("\"span\":\"merge_decode\""));
        assert!(stitched
            .lines()
            .all(|l| l.contains(&format!("{id:016x}"))));

        // An untraced merge decodes the same stream unchanged.
        let mut plain = FragmentSource::open(&data[..]).unwrap();
        let mut out2 = RecordBatch::new();
        assert!(plain.next_batch(&mut out2).unwrap());
        assert_eq!(out2.trace_id, 0);
        assert_eq!(out2.len(), out.len());
    }

    #[test]
    fn skip_records_discards_exactly_the_prefix() {
        let records: Vec<(u64, Vec<u8>)> = (0..10u64).map(|i| (i, vec![i as u8; 60])).collect();
        let borrowed: Vec<(u64, &[u8])> = records.iter().map(|(t, d)| (*t, &d[..])).collect();
        for per_frame in [1usize, 3, 10] {
            for skip in [0u64, 1, 4, 9, 10] {
                let data = stream(&borrowed, per_frame);
                let mut src = FragmentSource::open(&data[..]).unwrap().skip_records(skip);
                let got = drain(&mut src);
                let want: Vec<u64> = (skip..10).collect();
                assert_eq!(got, want, "per_frame={per_frame} skip={skip}");
            }
        }
    }
}
