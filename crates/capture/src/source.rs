//! Packet sources: where records enter the capture front-end.
//!
//! A [`PacketSource`] produces timestamp-ordered record batches; the
//! fan-in layer ([`crate::mux`]) runs one capture thread per source and
//! hands the batches to the analysis engine through bounded SPSC rings
//! ([`crate::ring`]). Three adapters cover the deployment shapes from the
//! paper's monitor (§6.1):
//!
//! * [`PcapFileSource`] — an on-disk trace, optionally in *follow* mode
//!   (poll a file another process is still writing, the `analyze
//!   --follow` behavior, now per source instead of hard-coded to one
//!   file).
//! * [`LiveRingSource`] — an AF_PACKET-style ring backend: a producer
//!   thread (in production the kernel; offline, a traffic generator)
//!   pushes batches into a bounded ring via a [`LiveHandle`]. This is the
//!   simulated stand-in for a live socket capture with the same API and
//!   drop semantics.
//! * [`ReplaySource`] — pre-loaded in-memory records, for tests and
//!   benches.
//!
//! Batches are filled into caller-provided [`RecordBatch`]es so the
//! steady state allocates nothing (see [`RecordBatch::clear`]).
//!
//! ```
//! use zoom_capture::source::{PacketSource, ReplaySource};
//! use zoom_wire::handoff::RecordBatch;
//! use zoom_wire::pcap::{LinkType, Record};
//!
//! let records = vec![Record::full(1_000, vec![0u8; 60])];
//! let mut src = ReplaySource::new("replay:demo", LinkType::Ethernet, records);
//!
//! let mut batch = RecordBatch::new();
//! let mut total = 0;
//! loop {
//!     batch.clear();
//!     let live = src.next_batch(&mut batch)?;
//!     total += batch.len(); // drain the batch *before* checking `live`:
//!     if !live {
//!         break; // a source may deliver its final records and Ok(false) together
//!     }
//! }
//! assert_eq!(total, 1);
//! # Ok::<(), zoom_capture::source::SourceError>(())
//! ```

use crate::ring::{self, Consumer, Producer};
use std::fmt;
use std::io;
use std::time::Duration;
use zoom_wire::handoff::RecordBatch;
use zoom_wire::pcap::{LinkType, Reader, Record, RecordBuf};

/// Records per batch a well-behaved source aims for. Batches may be
/// smaller (a follow-mode poll that found less data) but should not be
/// much larger, so ring occupancy stays predictable.
pub const BATCH_RECORDS: usize = 128;

/// Soft cap on captured bytes per batch, bounding arena growth for
/// jumbo-heavy traffic.
pub const BATCH_BYTES: usize = 256 * 1024;

/// An error raised by a packet source.
#[derive(Debug)]
pub enum SourceError {
    /// The underlying I/O failed (file vanished, read error, …).
    Io(io::Error),
    /// The input was structurally invalid (bad pcap magic, bad spec, …).
    Format(String),
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Io(e) => write!(f, "{e}"),
            SourceError::Format(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for SourceError {}

impl From<io::Error> for SourceError {
    fn from(e: io::Error) -> SourceError {
        SourceError::Io(e)
    }
}

/// A producer of timestamp-ordered packet record batches.
///
/// The contract, designed so one capture loop drives every source kind:
///
/// * [`next_batch`](PacketSource::next_batch) appends records to the
///   caller's (cleared) batch and returns `Ok(true)` while the source is
///   live, `Ok(false)` once it is exhausted. **The final records and
///   `Ok(false)` may arrive together** — always drain the batch before
///   acting on the flag.
/// * An *empty* batch with `Ok(true)` means "no data right now, poll
///   again" — this is how follow-mode and live sources express
///   quiescence without blocking the contract. Sources may sleep briefly
///   internally to pace the poll; they run on a dedicated capture thread.
/// * Records within one source must be in non-decreasing `ts_nanos`
///   order; the fan-in merge relies on it ([`crate::mux`]).
///
/// See the [module documentation](self) for a compiling end-to-end
/// example.
pub trait PacketSource: Send {
    /// Display label for per-source metrics (e.g. `pcap:trace.pcap`).
    fn label(&self) -> &str;

    /// Link type of every record this source yields.
    fn link_type(&self) -> LinkType;

    /// Fills `batch` with the next run of records. See the trait
    /// documentation for the exact contract.
    fn next_batch(&mut self, batch: &mut RecordBatch) -> Result<bool, SourceError>;

    /// Records dropped by the source itself before hand-off (e.g. a torn
    /// pcap tail). Polled once after the source is exhausted.
    fn truncated_records(&self) -> u64 {
        0
    }
}

// ------------------------------------------------------------- pcap file --

/// Follow-mode pacing for [`PcapFileSource`]: how often to re-poll a
/// quiet file and how long a quiet spell ends the source.
#[derive(Debug, Clone, Copy)]
pub struct FollowConfig {
    /// Sleep between polls of a file that had no new complete record.
    pub poll: Duration,
    /// End the source after this much continuous quiet.
    pub idle_exit: Duration,
}

impl Default for FollowConfig {
    fn default() -> FollowConfig {
        FollowConfig {
            poll: Duration::from_millis(200),
            idle_exit: Duration::from_secs(5),
        }
    }
}

/// A pcap file on disk as a [`PacketSource`] — the adapter that turns the
/// original single-file ingest path into one source among many.
///
/// In follow mode the source keeps polling the file for appended records
/// (a live capture being written by another process) and only reports
/// exhaustion after [`FollowConfig::idle_exit`] of quiet, reproducing the
/// pre-existing `analyze --follow` loop per source.
pub struct PcapFileSource {
    label: String,
    reader: Reader<io::BufReader<std::fs::File>>,
    buf: RecordBuf,
    follow: Option<FollowConfig>,
    quiet: Duration,
}

impl PcapFileSource {
    /// Opens `path` and validates its pcap global header.
    pub fn open(path: &str) -> Result<PcapFileSource, SourceError> {
        let file = std::fs::File::open(path)
            .map_err(|e| SourceError::Format(format!("{path}: {e}")))?;
        let reader = Reader::new(io::BufReader::new(file))
            .map_err(|e| SourceError::Format(format!("{path}: {e}")))?;
        Ok(PcapFileSource {
            label: format!("pcap:{path}"),
            reader,
            buf: RecordBuf::new(),
            follow: None,
            quiet: Duration::ZERO,
        })
    }

    /// Enables follow mode with the given pacing.
    pub fn follow(mut self, config: FollowConfig) -> PcapFileSource {
        self.follow = Some(config);
        self
    }
}

impl PacketSource for PcapFileSource {
    fn label(&self) -> &str {
        &self.label
    }

    fn link_type(&self) -> LinkType {
        self.reader.link_type()
    }

    fn next_batch(&mut self, batch: &mut RecordBatch) -> Result<bool, SourceError> {
        while batch.len() < BATCH_RECORDS && batch.arena_bytes() < BATCH_BYTES {
            if self.reader.read_into(&mut self.buf)? {
                self.quiet = Duration::ZERO;
                batch.push(self.buf.ts_nanos(), self.buf.orig_len(), self.buf.data());
                continue;
            }
            // End of file. A reader at a clean record boundary can be
            // retried once the producer appends more data; a torn tail is
            // counted in `truncated_records` (retrying it is racy either
            // way — `idle_exit` bounds how long we wait).
            let Some(follow) = self.follow else {
                return Ok(false);
            };
            if !batch.is_empty() {
                // Hand over what we have before pacing the next poll.
                return Ok(true);
            }
            if self.quiet >= follow.idle_exit {
                return Ok(false);
            }
            std::thread::sleep(follow.poll);
            self.quiet += follow.poll;
            return Ok(true);
        }
        Ok(true)
    }

    fn truncated_records(&self) -> u64 {
        self.reader.truncated_records()
    }
}

// ---------------------------------------------------------------- replay --

/// Pre-loaded in-memory records as a [`PacketSource`], for tests,
/// benches, and the differential suites.
pub struct ReplaySource {
    label: String,
    link: LinkType,
    records: Vec<Record>,
    cursor: usize,
}

impl ReplaySource {
    /// A source that serves `records` (which must be in non-decreasing
    /// `ts_nanos` order) in [`BATCH_RECORDS`]-sized batches.
    pub fn new(label: &str, link: LinkType, records: Vec<Record>) -> ReplaySource {
        debug_assert!(records.windows(2).all(|w| w[0].ts_nanos <= w[1].ts_nanos));
        ReplaySource {
            label: label.to_string(),
            link,
            records,
            cursor: 0,
        }
    }
}

impl PacketSource for ReplaySource {
    fn label(&self) -> &str {
        &self.label
    }

    fn link_type(&self) -> LinkType {
        self.link
    }

    fn next_batch(&mut self, batch: &mut RecordBatch) -> Result<bool, SourceError> {
        while self.cursor < self.records.len()
            && batch.len() < BATCH_RECORDS
            && batch.arena_bytes() < BATCH_BYTES
        {
            let r = &self.records[self.cursor];
            batch.push(r.ts_nanos, r.orig_len, &r.data);
            self.cursor += 1;
        }
        Ok(self.cursor < self.records.len())
    }
}

// ------------------------------------------------------------- live ring --

/// Creates an AF_PACKET-style simulated live capture: a bounded ring of
/// record batches with a [`LiveHandle`] for the producing side (in
/// production the kernel's ring; offline, a generator thread) and a
/// [`LiveRingSource`] for the capture side. `capacity` is the ring depth
/// in batches.
///
/// Batches are recycled from consumer back to producer through a second
/// ring, so a producer that calls [`LiveHandle::take_batch`] allocates
/// only until the ring is primed — zero allocation at steady state, the
/// same discipline as the kernel mapping its ring pages once.
pub fn live_ring(
    label: &str,
    link: LinkType,
    capacity: usize,
) -> (LiveHandle, LiveRingSource) {
    let (data_tx, data_rx) = ring::spsc::<RecordBatch>(capacity);
    let (recycle_tx, recycle_rx) = ring::spsc::<RecordBatch>(capacity + 2);
    (
        LiveHandle {
            data_tx,
            recycle_rx,
            dropped_batches: 0,
        },
        LiveRingSource {
            label: label.to_string(),
            link,
            data_rx,
            recycle_tx,
            poll: Duration::from_millis(1),
        },
    )
}

/// The producing end of a [`live_ring`]: what the packet-delivering side
/// (kernel stand-in) holds.
pub struct LiveHandle {
    data_tx: Producer<RecordBatch>,
    recycle_rx: Consumer<RecordBatch>,
    dropped_batches: u64,
}

impl LiveHandle {
    /// A batch to fill: recycled from the consumer when available, fresh
    /// otherwise. Recycled batches arrive cleared with their capacity
    /// intact.
    pub fn take_batch(&mut self) -> RecordBatch {
        self.recycle_rx.try_pop().unwrap_or_default()
    }

    /// Offers a batch without blocking — live-capture semantics: a full
    /// ring means the consumer fell behind and the batch is dropped on
    /// the floor (returned for recycling, counted in
    /// [`dropped_batches`](LiveHandle::dropped_batches)), exactly like a
    /// NIC ring overrun.
    pub fn try_push_batch(&mut self, batch: RecordBatch) -> Result<(), RecordBatch> {
        self.data_tx.try_push(batch).map_err(|mut b| {
            self.dropped_batches += 1;
            b.clear();
            b
        })
    }

    /// Offers a batch, waiting for ring space — lossless-feeder semantics
    /// for deterministic replay through the live API. Returns the batch
    /// back when the consuming source is gone.
    pub fn push_batch_blocking(&mut self, batch: RecordBatch) -> Result<(), RecordBatch> {
        let mut pending = batch;
        loop {
            match self.data_tx.try_push(pending) {
                Ok(()) => return Ok(()),
                Err(back) => {
                    if self.data_tx.is_closed() {
                        return Err(back);
                    }
                    pending = back;
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }

    /// Whether the consuming [`LiveRingSource`] has been dropped.
    pub fn is_closed(&self) -> bool {
        self.data_tx.is_closed()
    }

    /// Batches dropped at a full ring by
    /// [`try_push_batch`](LiveHandle::try_push_batch).
    pub fn dropped_batches(&self) -> u64 {
        self.dropped_batches
    }
}

/// The consuming end of a [`live_ring`], as a [`PacketSource`]. Exhausted
/// once the [`LiveHandle`] is dropped and the ring is drained.
pub struct LiveRingSource {
    label: String,
    link: LinkType,
    data_rx: Consumer<RecordBatch>,
    recycle_tx: Producer<RecordBatch>,
    poll: Duration,
}

impl PacketSource for LiveRingSource {
    fn label(&self) -> &str {
        &self.label
    }

    fn link_type(&self) -> LinkType {
        self.link
    }

    fn next_batch(&mut self, batch: &mut RecordBatch) -> Result<bool, SourceError> {
        match self.data_rx.try_pop() {
            Some(mut filled) => {
                // Take the filled batch and send the caller's empty one
                // back to the producer for reuse.
                std::mem::swap(batch, &mut filled);
                filled.clear();
                let _ = self.recycle_tx.try_push(filled);
                Ok(true)
            }
            None if self.data_rx.is_closed() => Ok(false),
            None => {
                std::thread::sleep(self.poll);
                Ok(true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: u64, len: usize) -> Record {
        Record::full(ts, vec![0xAB; len])
    }

    fn drain(src: &mut dyn PacketSource) -> Vec<u64> {
        let mut out = Vec::new();
        let mut batch = RecordBatch::new();
        loop {
            batch.clear();
            let live = src.next_batch(&mut batch).unwrap();
            out.extend(batch.iter().map(|r| r.ts_nanos));
            if !live {
                return out;
            }
        }
    }

    #[test]
    fn replay_batches_and_exhausts() {
        let records: Vec<Record> = (0..300).map(|i| rec(i, 64)).collect();
        let mut src = ReplaySource::new("replay:t", LinkType::Ethernet, records);
        let ts = drain(&mut src);
        assert_eq!(ts.len(), 300);
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn replay_respects_byte_cap() {
        let records: Vec<Record> = (0..8).map(|i| rec(i, BATCH_BYTES / 2)).collect();
        let mut src = ReplaySource::new("replay:big", LinkType::Ethernet, records);
        let mut batch = RecordBatch::new();
        src.next_batch(&mut batch).unwrap();
        // The byte cap is a soft limit checked before each push.
        assert!(batch.len() <= 2, "batch held {} jumbo records", batch.len());
    }

    #[test]
    fn pcap_source_reads_file_and_counts_truncation() {
        let dir = std::env::temp_dir().join(format!("zc-src-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pcap");
        let mut w = zoom_wire::pcap::Writer::new(Vec::new(), LinkType::Ethernet).unwrap();
        for i in 0..10 {
            w.write_record(&rec(i * 1_000, 60)).unwrap();
        }
        let mut img = w.finish().unwrap();
        // Torn tail: half a record header.
        img.extend_from_slice(&[0u8; 7]);
        std::fs::write(&path, &img).unwrap();

        let mut src = PcapFileSource::open(path.to_str().unwrap()).unwrap();
        assert_eq!(src.link_type(), LinkType::Ethernet);
        assert!(src.label().starts_with("pcap:"));
        let ts = drain(&mut src);
        assert_eq!(ts.len(), 10);
        assert_eq!(src.truncated_records(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn follow_mode_sees_appended_records_then_idles_out() {
        let dir = std::env::temp_dir().join(format!("zc-follow-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grow.pcap");
        let mut w = zoom_wire::pcap::Writer::new(Vec::new(), LinkType::Ethernet).unwrap();
        w.write_record(&rec(1_000, 60)).unwrap();
        let img = w.finish().unwrap();
        std::fs::write(&path, &img).unwrap();

        let mut src = PcapFileSource::open(path.to_str().unwrap())
            .unwrap()
            .follow(FollowConfig {
                poll: Duration::from_millis(5),
                idle_exit: Duration::from_millis(200),
            });

        // Writer thread appends one more record after a delay.
        let path2 = path.clone();
        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            let mut w = zoom_wire::pcap::Writer::new(Vec::new(), LinkType::Ethernet).unwrap();
            w.write_record(&rec(2_000, 60)).unwrap();
            let img2 = w.finish().unwrap();
            // Append just the record (skip the 24-byte global header).
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path2).unwrap();
            f.write_all(&img2[24..]).unwrap();
        });

        let ts = drain(&mut src);
        writer.join().unwrap();
        assert_eq!(ts, vec![1_000, 2_000]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn live_ring_transfers_and_closes() {
        let (mut handle, mut src) = live_ring("live:test", LinkType::Ethernet, 4);
        let feeder = std::thread::spawn(move || {
            for i in 0..50u64 {
                let mut b = handle.take_batch();
                b.push(i * 100, 60, &[0u8; 60]);
                handle.push_batch_blocking(b).unwrap();
            }
            assert_eq!(handle.dropped_batches(), 0);
        });
        let ts = drain(&mut src);
        feeder.join().unwrap();
        assert_eq!(ts.len(), 50);
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn live_ring_drops_when_full() {
        let (mut handle, src) = live_ring("live:lossy", LinkType::Ethernet, 1);
        let mut b = handle.take_batch();
        b.push(1, 60, &[0u8; 60]);
        handle.try_push_batch(b).unwrap();
        let mut b = handle.take_batch();
        b.push(2, 60, &[0u8; 60]);
        let back = handle.try_push_batch(b).unwrap_err();
        assert!(back.is_empty(), "dropped batch comes back cleared");
        assert_eq!(handle.dropped_batches(), 1);
        drop(src);
        assert!(handle.is_closed());
    }
}
