//! N-sources → one-engine fan-in with bounded lock-free hand-off.
//!
//! [`CaptureMux`] runs one capture thread per [`PacketSource`]. Each
//! thread pulls record batches off its source and offers them to the
//! analysis side through a bounded SPSC ring ([`crate::ring`]), so
//! **capture never blocks on analysis**: when the ring is full the
//! thread either drops the batch with exact accounting
//! ([`Overflow::Drop`], live semantics — the drop lands in
//! `ring_full_drops` and stays inside the conservation invariant) or
//! holds it and retries ([`Overflow::Block`], lossless replay semantics
//! for trace files, where the "capture" can wait because the data
//! already sits on disk).
//!
//! The consuming side merges the per-source streams into one
//! deterministic, timestamp-ordered record sequence: the next record is
//! always the minimum `(ts_nanos, lane_index)` across lanes, which is
//! what makes an N-source run byte-identical to the equivalent
//! single-source run (pinned by `tests/multi_source_differential.rs`).
//! Exhausted batches are recycled back to their capture thread through a
//! second ring, so the steady state allocates nothing on either side.
//!
//! Per-source accounting (`packets`, `bytes`, `batches`,
//! `ring_full_drops`) is threaded into a
//! [`zoom_analysis::obs::PipelineMetrics`] registry when one is supplied
//! to [`CaptureMux::start`], extending the pipeline's conservation
//! invariant upstream over capture (see
//! [`MetricsSnapshot::conservation_holds`](zoom_analysis::obs::MetricsSnapshot::conservation_holds)).
//!
//! ```
//! use zoom_capture::mux::{CaptureMux, MuxConfig};
//! use zoom_capture::source::ReplaySource;
//! use zoom_wire::pcap::{LinkType, Record};
//!
//! let even: Vec<Record> = (0..4).map(|i| Record::full(2 * i, vec![0; 60])).collect();
//! let odd: Vec<Record> = (0..4).map(|i| Record::full(2 * i + 1, vec![0; 60])).collect();
//! let mut mux = CaptureMux::start(
//!     vec![
//!         Box::new(ReplaySource::new("replay:even", LinkType::Ethernet, even)),
//!         Box::new(ReplaySource::new("replay:odd", LinkType::Ethernet, odd)),
//!     ],
//!     MuxConfig::default(),
//!     None,
//! );
//! let mut ts = Vec::new();
//! while let Some(r) = mux.next_record()? {
//!     ts.push(r.ts_nanos);
//! }
//! assert_eq!(ts, vec![0, 1, 2, 3, 4, 5, 6, 7]); // merged in time order
//! mux.finish()?;
//! # Ok::<(), zoom_capture::source::SourceError>(())
//! ```

use crate::ring::{self, Consumer, Producer};
use crate::source::{PacketSource, SourceError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use zoom_analysis::obs::trace::{spans, TraceCollector};
use zoom_analysis::obs::{PipelineMetrics, SourceMetrics};
use zoom_wire::handoff::RecordBatch;
use zoom_wire::pcap::LinkType;

/// What a capture thread does when its hand-off ring is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overflow {
    /// Hold the batch and retry until the consumer frees a slot —
    /// lossless, for replaying trace files where the producer can wait.
    Block,
    /// Drop the batch and count every record in `ring_full_drops` —
    /// live-capture semantics: the tap keeps up, the monitor owns the
    /// loss and accounts for it.
    Drop,
}

/// Fan-in tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct MuxConfig {
    /// Hand-off ring depth per source, in batches (not records). With
    /// `BATCH_RECORDS`-sized batches the default of 8 buffers ~1k
    /// records per source; see `docs/CAPTURE.md` for the sizing math.
    pub ring_capacity: usize,
    /// Full-ring policy; [`Overflow::Block`] by default (file replay).
    pub overflow: Overflow,
}

impl Default for MuxConfig {
    fn default() -> MuxConfig {
        MuxConfig {
            ring_capacity: 8,
            overflow: Overflow::Block,
        }
    }
}

/// Capture-thread-side counters for one lane, read by the consumer for
/// stats and by tests for exact drop accounting.
#[derive(Debug, Default)]
struct LaneCounters {
    packets: AtomicU64,
    bytes: AtomicU64,
    batches: AtomicU64,
    ring_full_drops: AtomicU64,
    truncated: AtomicU64,
}

/// State shared between one capture thread and the consumer.
struct LaneShared {
    counters: LaneCounters,
    obs: Option<Arc<SourceMetrics>>,
    /// Pipeline trace collector; capture threads sample batches here and
    /// stamp the winners' `trace_id` so downstream stages can attribute
    /// their spans. Disabled collectors cost one relaxed load per batch.
    trace: Option<Arc<TraceCollector>>,
    error: Mutex<Option<String>>,
}

/// Plain-data copy of one lane's capture-side counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneStats {
    /// The source's display label.
    pub label: String,
    /// Records the capture thread pulled off the source.
    pub packets: u64,
    /// Captured bytes across those records.
    pub bytes: u64,
    /// Batches handed to (or dropped at) the ring.
    pub batches: u64,
    /// Records dropped at a full ring ([`Overflow::Drop`] only).
    pub ring_full_drops: u64,
    /// Records the source itself dropped (e.g. a torn pcap tail).
    pub truncated: u64,
}

/// One record borrowed from the merged stream, tagged with its lane.
#[derive(Debug, Clone, Copy)]
pub struct MuxRecord<'a> {
    /// Capture timestamp in nanoseconds.
    pub ts_nanos: u64,
    /// Original on-the-wire length.
    pub orig_len: u32,
    /// The producing source's link type.
    pub link: LinkType,
    /// Index of the producing source (order given to
    /// [`CaptureMux::start`]).
    pub source: usize,
    /// Captured bytes, borrowed from the lane's current batch.
    pub data: &'a [u8],
}

struct Lane {
    label: String,
    link: LinkType,
    rx: Consumer<RecordBatch>,
    recycle_tx: Producer<RecordBatch>,
    shared: Arc<LaneShared>,
    thread: Option<std::thread::JoinHandle<()>>,
    /// Batch currently being consumed, with the cursor of the next
    /// record to emit.
    current: Option<(RecordBatch, usize)>,
    done: bool,
}

impl Lane {
    /// Peeks the timestamp of this lane's next record, `Ok(None)` if the
    /// lane has nothing buffered right now.
    fn peek_ts(&self) -> Option<u64> {
        let (batch, cursor) = self.current.as_ref()?;
        batch.get(*cursor).map(|r| r.ts_nanos)
    }

    /// Tries to make `current` hold an unconsumed record. Returns false
    /// while the lane is live but momentarily empty.
    fn refill(&mut self) -> Result<bool, SourceError> {
        loop {
            if let Some((batch, cursor)) = &self.current {
                if *cursor < batch.len() {
                    return Ok(true);
                }
                // Exhausted: hand the batch back for reuse.
                let (mut batch, _) = self.current.take().expect("checked above");
                batch.clear();
                let _ = self.recycle_tx.try_push(batch);
            }
            match self.rx.try_pop() {
                Some(batch) if !batch.is_empty() => {
                    if let Some(obs) = &self.shared.obs {
                        obs.ring_occupancy.set(self.rx.len() as u64);
                        if let Some(last) = batch.get(batch.len() - 1) {
                            // How far this lane's delivered stream has
                            // advanced; per-source lag is derived from
                            // the spread of these at render time.
                            obs.delivered_ts_nanos.set(last.ts_nanos);
                        }
                    }
                    if batch.trace_id != 0 {
                        if let Some(tc) = &self.shared.trace {
                            tc.record(
                                batch.trace_id,
                                spans::RING_DEQUEUE,
                                &self.label,
                                batch.len() as u64,
                                0,
                            );
                        }
                    }
                    self.current = Some((batch, 0));
                    return Ok(true);
                }
                Some(_) => continue, // empty batch: recycle via the loop
                None if self.rx.is_closed() => {
                    self.done = true;
                    if let Some(msg) = self.shared.error.lock().unwrap().take() {
                        return Err(SourceError::Format(msg));
                    }
                    return Ok(false);
                }
                None => return Ok(false),
            }
        }
    }
}

/// The fan-in: one capture thread per source, a deterministic
/// `(ts, lane)` merge on the consuming side. See the
/// [module documentation](self) for semantics and a usage example.
pub struct CaptureMux {
    lanes: Vec<Lane>,
    /// Records handed to the consumer so far (post-merge).
    delivered: u64,
    /// Captured bytes across delivered records.
    delivered_bytes: u64,
}

impl CaptureMux {
    /// Spawns one capture thread per source and returns the consuming
    /// end. When `metrics` is given, every source is registered on it
    /// (appearing in snapshots and the extended conservation invariant).
    pub fn start(
        sources: Vec<Box<dyn PacketSource>>,
        config: MuxConfig,
        metrics: Option<&PipelineMetrics>,
    ) -> CaptureMux {
        let capacity = config.ring_capacity.max(1);
        let lanes = sources
            .into_iter()
            .map(|source| {
                let label = source.label().to_string();
                let link = source.link_type();
                let (tx, rx) = ring::spsc::<RecordBatch>(capacity);
                let (recycle_tx, recycle_rx) = ring::spsc::<RecordBatch>(capacity + 2);
                let shared = Arc::new(LaneShared {
                    counters: LaneCounters::default(),
                    obs: metrics.map(|m| m.register_source(&label)),
                    trace: metrics.map(|m| Arc::clone(&m.trace)),
                    error: Mutex::new(None),
                });
                let thread_shared = Arc::clone(&shared);
                let thread = std::thread::spawn(move || {
                    capture_thread(source, tx, recycle_rx, thread_shared, config.overflow)
                });
                Lane {
                    label,
                    link,
                    rx,
                    recycle_tx,
                    shared,
                    thread: Some(thread),
                    current: None,
                    done: false,
                }
            })
            .collect();
        CaptureMux {
            lanes,
            delivered: 0,
            delivered_bytes: 0,
        }
    }

    /// The next record in merged timestamp order, blocking while a live
    /// lane is momentarily empty (analysis may wait for capture; never
    /// the reverse). `Ok(None)` once every source is exhausted.
    pub fn next_record(&mut self) -> Result<Option<MuxRecord<'_>>, SourceError> {
        let best = loop {
            let mut best: Option<(u64, usize)> = None;
            let mut waiting = false;
            for i in 0..self.lanes.len() {
                let lane = &mut self.lanes[i];
                if lane.done {
                    continue;
                }
                if !lane.refill()? {
                    if !lane.done {
                        waiting = true;
                    }
                    continue;
                }
                let ts = lane.peek_ts().expect("refill returned true");
                if best.map(|(bts, _)| ts < bts).unwrap_or(true) {
                    best = Some((ts, i));
                }
            }
            if waiting {
                // Some live lane has nothing buffered yet: emitting from
                // another lane now could break global timestamp order
                // (the quiet lane may still produce an older record), so
                // strict (ts, lane) determinism means waiting for it.
                std::thread::sleep(Duration::from_micros(50));
                continue;
            }
            match best {
                Some((_, i)) => break i,
                None => return Ok(None),
            }
        };
        let lane = &mut self.lanes[best];
        let (batch, cursor) = lane.current.as_mut().expect("refill succeeded");
        let idx = *cursor;
        *cursor += 1;
        let r = batch.get(idx).expect("cursor in bounds");
        self.delivered += 1;
        self.delivered_bytes += r.data.len() as u64;
        Ok(Some(MuxRecord {
            ts_nanos: r.ts_nanos,
            orig_len: r.orig_len,
            link: lane.link,
            source: best,
            data: r.data,
        }))
    }

    /// Fill `out` with the next run of merged records, up to `max`, and
    /// return their (shared) link type. Record order is exactly
    /// [`CaptureMux::next_record`]'s strict `(ts, lane)` merge order — a
    /// batched drain is record-for-record identical to a per-record
    /// drain (pinned by tests) — but each merge scan is amortized over a
    /// whole *run* of records from the winning lane, so the
    /// single-source case copies entire capture batches per scan.
    ///
    /// A batch is cut early when the next record's lane has a different
    /// link type (one [`LinkType`] per batch, matching
    /// `PacketSink::push_batch`), or when a live lane is momentarily
    /// empty — strict ordering forbids emitting past it, and handing
    /// the partial batch to the caller beats sleeping on buffered work.
    /// Blocks (like `next_record`) only when nothing is buffered at all;
    /// `Ok(None)` once every source is exhausted.
    pub fn next_batch(
        &mut self,
        out: &mut RecordBatch,
        max: usize,
    ) -> Result<Option<LinkType>, SourceError> {
        out.clear();
        let mut link: Option<LinkType> = None;
        while out.len() < max {
            // One merge scan: the minimum (ts, lane) across lanes, plus
            // the runner-up that bounds how far the winner may run.
            let mut best: Option<(u64, usize)> = None;
            let mut second: Option<(u64, usize)> = None;
            let mut waiting = false;
            for i in 0..self.lanes.len() {
                let lane = &mut self.lanes[i];
                if lane.done {
                    continue;
                }
                if !lane.refill()? {
                    if !lane.done {
                        waiting = true;
                    }
                    continue;
                }
                let ts = lane.peek_ts().expect("refill returned true");
                match best {
                    Some((bts, _)) if ts >= bts => {
                        if second.map(|(sts, _)| ts < sts).unwrap_or(true) {
                            second = Some((ts, i));
                        }
                    }
                    _ => {
                        second = best;
                        best = Some((ts, i));
                    }
                }
            }
            if waiting {
                if link.is_some() {
                    // Never sleep on buffered work: hand the partial
                    // batch over and let the next call do the waiting.
                    break;
                }
                std::thread::sleep(Duration::from_micros(50));
                continue;
            }
            let Some((_, i)) = best else { break }; // every lane exhausted
            let lane = &mut self.lanes[i];
            match link {
                Some(l) if lane.link != l => break, // one link type per batch
                _ => link = Some(lane.link),
            }
            // Copy the winner's run: every buffered record that still
            // beats the runner-up under (ts, lane) order.
            let (batch, cursor) = lane.current.as_mut().expect("refill succeeded");
            // A sampled capture batch hands its trace tag to the merged
            // batch (first tag wins) so downstream stages keep
            // attributing spans after the fan-in copy.
            if out.trace_id == 0 && batch.trace_id != 0 {
                out.trace_id = batch.trace_id;
            }
            while *cursor < batch.len() && out.len() < max {
                let r = batch.get(*cursor).expect("cursor in bounds");
                let wins = match second {
                    None => true,
                    Some((sts, sj)) => r.ts_nanos < sts || (r.ts_nanos == sts && i < sj),
                };
                if !wins {
                    break;
                }
                out.push(r.ts_nanos, r.orig_len, r.data);
                self.delivered += 1;
                self.delivered_bytes += r.data.len() as u64;
                *cursor += 1;
            }
        }
        Ok(if out.is_empty() { None } else { link })
    }

    /// Number of sources feeding this mux.
    pub fn sources(&self) -> usize {
        self.lanes.len()
    }

    /// Records handed to the consumer so far, across all lanes.
    pub fn records_delivered(&self) -> u64 {
        self.delivered
    }

    /// Captured bytes across delivered records.
    pub fn bytes_delivered(&self) -> u64 {
        self.delivered_bytes
    }

    /// Σ records the sources themselves dropped (torn pcap tails).
    pub fn truncated_records(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.shared.counters.truncated.load(Ordering::Acquire))
            .sum()
    }

    /// Σ records dropped at full hand-off rings.
    pub fn ring_full_drops(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.shared.counters.ring_full_drops.load(Ordering::Acquire))
            .sum()
    }

    /// Capture-side counters for lane `i`.
    pub fn lane_stats(&self, i: usize) -> LaneStats {
        let lane = &self.lanes[i];
        let c = &lane.shared.counters;
        LaneStats {
            label: lane.label.clone(),
            packets: c.packets.load(Ordering::Acquire),
            bytes: c.bytes.load(Ordering::Acquire),
            batches: c.batches.load(Ordering::Acquire),
            ring_full_drops: c.ring_full_drops.load(Ordering::Acquire),
            truncated: c.truncated.load(Ordering::Acquire),
        }
    }

    /// Shuts the fan-in down: closes every ring (capture threads exit at
    /// the next push or poll) and joins them. Returns the first capture
    /// error, if any. Dropping the mux without calling this also stops
    /// the threads, just without surfacing their errors.
    pub fn finish(mut self) -> Result<(), SourceError> {
        let mut threads = Vec::new();
        let mut shared = Vec::new();
        for mut lane in self.lanes.drain(..) {
            if let Some(t) = lane.thread.take() {
                threads.push(t);
            }
            shared.push(Arc::clone(&lane.shared));
            drop(lane); // closes both rings
        }
        for t in threads {
            let _ = t.join();
        }
        for s in shared {
            if let Some(msg) = s.error.lock().unwrap().take() {
                return Err(SourceError::Format(msg));
            }
        }
        Ok(())
    }
}

/// The per-source capture loop: fill a (recycled) batch, account it,
/// offer it to the ring under the overflow policy, repeat until the
/// source is exhausted or the consumer is gone.
fn capture_thread(
    mut source: Box<dyn PacketSource>,
    mut tx: Producer<RecordBatch>,
    mut recycle_rx: Consumer<RecordBatch>,
    shared: Arc<LaneShared>,
    overflow: Overflow,
) {
    let mut spare: Option<RecordBatch> = None;
    loop {
        let mut batch = spare
            .take()
            .or_else(|| recycle_rx.try_pop())
            .unwrap_or_default();
        batch.clear();
        let read_start = Instant::now();
        let live = match source.next_batch(&mut batch) {
            Ok(live) => live,
            Err(e) => {
                *shared.error.lock().unwrap() = Some(format!("{}: {e}", source.label()));
                break;
            }
        };
        if !batch.is_empty() {
            let n = batch.len() as u64;
            let nbytes = batch.arena_bytes() as u64;
            let c = &shared.counters;
            c.packets.fetch_add(n, Ordering::AcqRel);
            c.bytes.fetch_add(nbytes, Ordering::AcqRel);
            c.batches.fetch_add(1, Ordering::AcqRel);
            if let Some(obs) = &shared.obs {
                obs.packets.add(n);
                obs.bytes.add(nbytes);
                obs.batches.inc();
            }
            if let Some(tc) = &shared.trace {
                if batch.trace_id != 0 {
                    // Pre-tagged by the source itself (a fragment lane
                    // stitching a worker's trace through): keep the
                    // foreign ID and attribute this read to it.
                    tc.record(
                        batch.trace_id,
                        spans::SOURCE_READ,
                        source.label(),
                        n,
                        read_start.elapsed().as_nanos() as u64,
                    );
                } else if let Some(id) = tc.sample() {
                    batch.trace_id = id;
                    tc.record(
                        id,
                        spans::SOURCE_READ,
                        source.label(),
                        n,
                        read_start.elapsed().as_nanos() as u64,
                    );
                }
            }
            let traced = batch.trace_id;
            let enqueue_start = Instant::now();
            match offer(&mut tx, batch, overflow) {
                Offered::Delivered => {
                    if let Some(obs) = &shared.obs {
                        // Occupancy right after our own push: exact from
                        // this side, racy-but-monotone for the peak.
                        let occ = tx.len() as u64;
                        obs.ring_occupancy.set(occ);
                        obs.ring_occupancy_hwm.set_max(occ);
                    }
                    if traced != 0 {
                        if let Some(tc) = &shared.trace {
                            // Under Overflow::Block this includes the
                            // time spent waiting for a slot — which is
                            // exactly the backpressure we want visible.
                            tc.record(
                                traced,
                                spans::RING_ENQUEUE,
                                source.label(),
                                n,
                                enqueue_start.elapsed().as_nanos() as u64,
                            );
                        }
                    }
                }
                Offered::Dropped(mut b) => {
                    c.ring_full_drops.fetch_add(n, Ordering::AcqRel);
                    if let Some(obs) = &shared.obs {
                        obs.ring_full_drops.add(n);
                    }
                    b.clear();
                    spare = Some(b);
                }
                Offered::ConsumerGone => break,
            }
        } else if tx.is_closed() {
            break;
        }
        if !live {
            break;
        }
    }
    shared
        .counters
        .truncated
        .store(source.truncated_records(), Ordering::Release);
    // Dropping `tx` marks the lane closed once drained.
}

enum Offered {
    Delivered,
    Dropped(RecordBatch),
    ConsumerGone,
}

fn offer(tx: &mut Producer<RecordBatch>, batch: RecordBatch, overflow: Overflow) -> Offered {
    match overflow {
        Overflow::Drop => match tx.try_push(batch) {
            Ok(()) => Offered::Delivered,
            Err(b) if tx.is_closed() => {
                drop(b);
                Offered::ConsumerGone
            }
            Err(b) => Offered::Dropped(b),
        },
        Overflow::Block => {
            let mut pending = batch;
            loop {
                match tx.try_push(pending) {
                    Ok(()) => return Offered::Delivered,
                    Err(b) => {
                        if tx.is_closed() {
                            return Offered::ConsumerGone;
                        }
                        pending = b;
                        std::thread::sleep(Duration::from_micros(100));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ReplaySource;
    use zoom_wire::pcap::Record;

    fn records(ts: impl IntoIterator<Item = u64>) -> Vec<Record> {
        ts.into_iter()
            .map(|t| Record::full(t, vec![0xCD; 60]))
            .collect()
    }

    fn mux_of(parts: Vec<Vec<u64>>, config: MuxConfig) -> CaptureMux {
        let sources: Vec<Box<dyn PacketSource>> = parts
            .into_iter()
            .enumerate()
            .map(|(i, ts)| {
                Box::new(ReplaySource::new(
                    &format!("replay:{i}"),
                    LinkType::Ethernet,
                    records(ts),
                )) as Box<dyn PacketSource>
            })
            .collect();
        CaptureMux::start(sources, config, None)
    }

    fn drain_ts(mux: &mut CaptureMux) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(r) = mux.next_record().unwrap() {
            out.push(r.ts_nanos);
        }
        out
    }

    #[test]
    fn merge_is_globally_time_ordered() {
        let mut mux = mux_of(
            vec![vec![0, 3, 6, 9], vec![1, 4, 7], vec![2, 5, 8]],
            MuxConfig::default(),
        );
        assert_eq!(mux.sources(), 3);
        assert_eq!(drain_ts(&mut mux), (0..10).collect::<Vec<_>>());
        assert_eq!(mux.records_delivered(), 10);
        assert_eq!(mux.ring_full_drops(), 0);
        mux.finish().unwrap();
    }

    #[test]
    fn timestamp_ties_break_by_lane_index() {
        let mut mux = mux_of(vec![vec![5, 5], vec![5, 5]], MuxConfig::default());
        let mut lanes = Vec::new();
        while let Some(r) = mux.next_record().unwrap() {
            lanes.push(r.source);
        }
        // All four records tie on ts; lane 0 drains first.
        assert_eq!(lanes, vec![0, 0, 1, 1]);
        mux.finish().unwrap();
    }

    #[test]
    fn block_policy_never_drops_even_with_tiny_rings() {
        let n = 2_000u64;
        let mut mux = mux_of(
            vec![(0..n).step_by(2).collect(), (1..n).step_by(2).collect()],
            MuxConfig {
                ring_capacity: 1,
                overflow: Overflow::Block,
            },
        );
        let ts = drain_ts(&mut mux);
        assert_eq!(ts.len(), n as usize);
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(mux.ring_full_drops(), 0);
        let s0 = mux.lane_stats(0);
        assert_eq!(s0.packets, n / 2);
        assert_eq!(s0.bytes, (n / 2) * 60);
        mux.finish().unwrap();
    }

    #[test]
    fn drop_policy_accounts_every_lost_record() {
        // A slow consumer over a capacity-1 ring with eager batches:
        // some batches must drop; captured == delivered + dropped must
        // hold exactly.
        let n = 5_000u64;
        let mut mux = mux_of(
            vec![(0..n).collect()],
            MuxConfig {
                ring_capacity: 1,
                overflow: Overflow::Drop,
            },
        );
        let mut delivered = 0u64;
        while let Some(_r) = mux.next_record().unwrap() {
            delivered += 1;
            if delivered.is_multiple_of(128) {
                std::thread::sleep(Duration::from_micros(300));
            }
        }
        let stats = mux.lane_stats(0);
        assert_eq!(stats.packets, n, "all records were captured");
        assert_eq!(
            stats.packets,
            delivered + stats.ring_full_drops,
            "captured == delivered + dropped"
        );
        mux.finish().unwrap();
    }

    fn drain_batched(mux: &mut CaptureMux, max: usize) -> (Vec<u64>, Vec<usize>) {
        let mut ts = Vec::new();
        let mut sizes = Vec::new();
        let mut batch = RecordBatch::new();
        while let Some(link) = mux.next_batch(&mut batch, max).unwrap() {
            assert_eq!(link, LinkType::Ethernet);
            sizes.push(batch.len());
            ts.extend(batch.iter().map(|r| r.ts_nanos));
        }
        (ts, sizes)
    }

    #[test]
    fn batched_drain_matches_per_record_order() {
        let parts = vec![vec![0, 3, 6, 9, 12, 13], vec![1, 4, 7, 10], vec![2, 5, 8, 11]];
        for max in [1usize, 3, 7, 4096] {
            let mut mux = mux_of(parts.clone(), MuxConfig::default());
            let (ts, sizes) = drain_batched(&mut mux, max);
            assert_eq!(ts, (0..14).collect::<Vec<_>>(), "max={max}");
            assert!(sizes.iter().all(|&s| s >= 1 && s <= max), "max={max}");
            assert_eq!(mux.records_delivered(), 14);
            assert_eq!(mux.bytes_delivered(), 14 * 60);
            mux.finish().unwrap();
        }
    }

    #[test]
    fn batched_ties_break_by_lane_index() {
        // Interleaved ties: the run extension must stop at a tie owned
        // by an earlier lane, exactly like per-record (ts, lane) order.
        let mut mux = mux_of(vec![vec![5, 5, 9], vec![5, 5, 9]], MuxConfig::default());
        let mut order = Vec::new();
        let mut batch = RecordBatch::new();
        while mux.next_batch(&mut batch, 4096).unwrap().is_some() {
            order.extend(batch.iter().map(|r| r.ts_nanos));
        }
        assert_eq!(order, vec![5, 5, 5, 5, 9, 9]);
        mux.finish().unwrap();
    }

    #[test]
    fn single_source_batches_copy_whole_capture_batches() {
        let n = 1_000u64;
        let mut mux = mux_of(vec![(0..n).collect()], MuxConfig::default());
        let (ts, sizes) = drain_batched(&mut mux, 4096);
        assert_eq!(ts.len(), n as usize);
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
        // With one lane there is no runner-up: each scan should drain
        // everything buffered, not one record at a time.
        assert!(
            sizes.iter().any(|&s| s > 1),
            "runs never exceeded one record: {sizes:?}"
        );
        mux.finish().unwrap();
    }

    #[test]
    fn obs_registration_threads_counters_into_conservation() {
        let metrics = PipelineMetrics::new(0);
        let sources: Vec<Box<dyn PacketSource>> = vec![
            Box::new(ReplaySource::new(
                "replay:a",
                LinkType::Ethernet,
                records(vec![0, 2]),
            )),
            Box::new(ReplaySource::new(
                "replay:b",
                LinkType::Ethernet,
                records(vec![1, 3]),
            )),
        ];
        let mut mux = CaptureMux::start(sources, MuxConfig::default(), Some(&metrics));
        while let Some(r) = mux.next_record().unwrap() {
            // Stand-in for the sink: count what it would ingest.
            metrics.record_in(r.data.len());
            metrics.packets_not_zoom.inc();
        }
        mux.finish().unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.sources.len(), 2);
        assert_eq!(snap.sources[0].label, "replay:a");
        assert_eq!(snap.source_packets_total(), 4);
        assert_eq!(snap.ring_full_drops_total(), 0);
        assert!(snap.conservation_holds());
    }

    #[test]
    fn sampled_batches_carry_trace_tags_through_the_fan_in() {
        let metrics = PipelineMetrics::new(0);
        metrics.trace.enable(1, "cap-test");
        let sources: Vec<Box<dyn PacketSource>> = vec![Box::new(ReplaySource::new(
            "replay:t",
            LinkType::Ethernet,
            records(0..64),
        ))];
        let mut mux = CaptureMux::start(sources, MuxConfig::default(), Some(&metrics));
        let mut batch = RecordBatch::new();
        let mut tagged = 0u64;
        while mux.next_batch(&mut batch, 4096).unwrap().is_some() {
            if batch.trace_id != 0 {
                tagged += 1;
            }
        }
        mux.finish().unwrap();
        assert!(tagged > 0, "sample_every=1 must tag merged batches");
        let ndjson = metrics.trace.drain_ndjson();
        for span in ["source_read", "ring_enqueue", "ring_dequeue"] {
            assert!(
                ndjson.contains(&format!("\"span\":\"{span}\"")),
                "missing {span} in:\n{ndjson}"
            );
        }
        let snap = metrics.snapshot();
        assert!(snap.sources[0].ring_occupancy_hwm >= 1);
        assert_eq!(snap.sources[0].delivered_ts_nanos, 63);
    }

    #[test]
    fn untraced_runs_never_tag_batches() {
        let metrics = PipelineMetrics::new(0);
        let sources: Vec<Box<dyn PacketSource>> = vec![Box::new(ReplaySource::new(
            "replay:q",
            LinkType::Ethernet,
            records(0..16),
        ))];
        let mut mux = CaptureMux::start(sources, MuxConfig::default(), Some(&metrics));
        let mut batch = RecordBatch::new();
        while mux.next_batch(&mut batch, 4096).unwrap().is_some() {
            assert_eq!(batch.trace_id, 0);
        }
        mux.finish().unwrap();
        assert_eq!(metrics.trace.event_counts(), (0, 0));
    }

    #[test]
    fn source_error_surfaces_on_consumer_side() {
        struct Failing;
        impl PacketSource for Failing {
            fn label(&self) -> &str {
                "fail:always"
            }
            fn link_type(&self) -> LinkType {
                LinkType::Ethernet
            }
            fn next_batch(&mut self, _batch: &mut RecordBatch) -> Result<bool, SourceError> {
                Err(SourceError::Format("synthetic failure".into()))
            }
        }
        let mut mux = CaptureMux::start(
            vec![Box::new(Failing)],
            MuxConfig::default(),
            None,
        );
        let err = loop {
            match mux.next_record() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("error was swallowed"),
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("synthetic failure"));
    }
}
