//! # zoom-capture — software model of the paper's P4 Zoom capture pipeline
//!
//! The paper (§6.1, Fig. 13) deploys a P4 program on an Intel Tofino switch
//! that filters a multi-Gbps campus feed down to just Zoom packets before
//! they reach `tcpdump`:
//!
//! 1. match packets against the campus IP networks,
//! 2. match against Zoom's published server networks (stateless),
//! 3. track STUN exchanges with Zoom servers in register hash tables and
//!    use them to recognize subsequent **P2P** media flows
//!    deterministically (§4.1),
//! 4. anonymize client addresses with a one-way function before the
//!    packets are written out.
//!
//! This crate reimplements that pipeline in software with identical
//! semantics ([`pipeline::CapturePipeline`]) and adds a hardware resource
//! accounting model ([`resources`]) that reproduces the structure of the
//! paper's Table 5.
//!
//! ## Capture front-end
//!
//! Beyond the filter pipeline, the crate provides the live multi-source
//! ingest front-end that feeds the analysis engine (`docs/CAPTURE.md`):
//!
//! * [`source`] — the [`PacketSource`](source::PacketSource) abstraction
//!   with pcap-file, in-memory replay, and simulated AF_PACKET-style
//!   live-ring adapters,
//! * [`ring`] — the bounded lock-free SPSC ring used for every
//!   capture→analysis hand-off,
//! * [`mux`] — the N-sources→one-engine fan-in
//!   ([`CaptureMux`](mux::CaptureMux)): one capture thread per source,
//!   a deterministic timestamp merge on the consuming side, and exact
//!   `ring_full_drops` accounting threaded into
//!   [`zoom_analysis::obs`],
//! * [`spec`] — the typed [`SourceSpec`](spec::SourceSpec) grammar the
//!   CLI parses `--source` values with,
//! * [`fragment`] — the merge-node [`FragmentSource`](fragment::FragmentSource)
//!   decoding a remote worker's wire-framed fragment stream into the
//!   same fan-in (`docs/DISTRIBUTED.md`).

#![warn(missing_docs)]

pub mod anonymize;
pub mod cidr;
pub mod fragment;
pub mod mux;
pub mod pipeline;
pub mod resources;
pub mod ring;
pub mod source;
pub mod spec;
pub mod stun_tracker;
pub mod zoom_nets;
