//! # zoom-capture — software model of the paper's P4 Zoom capture pipeline
//!
//! The paper (§6.1, Fig. 13) deploys a P4 program on an Intel Tofino switch
//! that filters a multi-Gbps campus feed down to just Zoom packets before
//! they reach `tcpdump`:
//!
//! 1. match packets against the campus IP networks,
//! 2. match against Zoom's published server networks (stateless),
//! 3. track STUN exchanges with Zoom servers in register hash tables and
//!    use them to recognize subsequent **P2P** media flows
//!    deterministically (§4.1),
//! 4. anonymize client addresses with a one-way function before the
//!    packets are written out.
//!
//! This crate reimplements that pipeline in software with identical
//! semantics ([`pipeline::CapturePipeline`]) and adds a hardware resource
//! accounting model ([`resources`]) that reproduces the structure of the
//! paper's Table 5.

pub mod anonymize;
pub mod cidr;
pub mod pipeline;
pub mod resources;
pub mod stun_tracker;
pub mod zoom_nets;
