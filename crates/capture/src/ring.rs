//! Bounded lock-free SPSC ring for capture→analysis hand-off.
//!
//! Each capture thread owns the [`Producer`] end of one ring; the fan-in
//! consumer (see [`crate::mux`]) owns the [`Consumer`] end. Both ends are
//! wait-free: a push or pop is one load-acquire of the opposite index, one
//! slot move, and one store-release of the own index — no locks, no CAS
//! loops, no allocation. The bound is what guarantees the tentpole
//! property of the capture front-end: **capture never blocks on
//! analysis**. When the analysis side falls behind, the ring fills and
//! the producer's [`try_push`](Producer::try_push) fails fast, letting the
//! capture thread either drop (live semantics, counted in
//! `ring_full_drops`) or retry (lossless replay semantics) — its choice,
//! never an invisible stall inside the ring.
//!
//! The implementation is the textbook Lamport queue with monotonically
//! increasing head/tail positions (wrapping arithmetic, slot = position
//! mod capacity) and the two indices on separate cache lines to avoid
//! false sharing.
//!
//! ```
//! use zoom_capture::ring::spsc;
//!
//! let (mut tx, mut rx) = spsc::<u64>(2);
//! assert!(tx.try_push(1).is_ok());
//! assert!(tx.try_push(2).is_ok());
//! assert_eq!(tx.try_push(3), Err(3)); // full: bounded at capacity 2
//!
//! assert_eq!(rx.try_pop(), Some(1));
//! assert!(tx.try_push(3).is_ok()); // space freed by the pop
//! assert_eq!(rx.try_pop(), Some(2));
//! assert_eq!(rx.try_pop(), Some(3));
//! assert_eq!(rx.try_pop(), None); // empty, producer still live
//! assert!(!rx.is_closed());
//!
//! drop(tx);
//! assert!(rx.is_closed()); // empty *and* producer gone
//! ```

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads the wrapped value to its own cache line so the producer-owned and
/// consumer-owned indices never false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Shared<T> {
    /// `capacity` storage slots; slot `i` holds the item at ring position
    /// `p` iff `p % capacity == i` and `head <= p < tail`.
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next position to pop (consumer-owned, monotonic, wrapping).
    head: CachePadded<AtomicUsize>,
    /// Next position to push (producer-owned, monotonic, wrapping).
    tail: CachePadded<AtomicUsize>,
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
}

// SAFETY: the ring transfers `T`s between exactly two threads; every slot
// is accessed by at most one side at a time (ownership is handed over by
// the release/acquire pair on `tail`/`head`).
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both handles are gone: exclusive access. Drop any items still
        // in flight.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        let cap = self.slots.len();
        let mut pos = head;
        while pos != tail {
            unsafe { (*self.slots[pos % cap].get()).assume_init_drop() };
            pos = pos.wrapping_add(1);
        }
    }
}

/// Creates a bounded SPSC ring with room for `capacity` in-flight items
/// and returns its two single-owner endpoints.
///
/// # Panics
/// Panics if `capacity` is 0 (a zero-capacity ring could never transfer
/// anything).
pub fn spsc<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "spsc ring capacity must be at least 1");
    let shared = Arc::new(Shared {
        slots: (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        producer_alive: AtomicBool::new(true),
        consumer_alive: AtomicBool::new(true),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
        },
        Consumer { shared },
    )
}

/// The push end of an [`spsc`] ring. Owned by exactly one thread.
pub struct Producer<T: Send> {
    shared: Arc<Shared<T>>,
}

impl<T: Send> Producer<T> {
    /// Attempts to enqueue `value` without blocking.
    ///
    /// Returns `Err(value)` when the ring is full (or the consumer is
    /// gone), handing the item back so the caller decides the overflow
    /// policy: drop it and bump a drop counter (live capture), or hold it
    /// and retry (lossless replay).
    pub fn try_push(&mut self, value: T) -> Result<(), T> {
        let shared = &*self.shared;
        let cap = shared.slots.len();
        let tail = shared.tail.0.load(Ordering::Relaxed);
        let head = shared.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == cap || !shared.consumer_alive.load(Ordering::Acquire) {
            return Err(value);
        }
        // SAFETY: `head <= tail < head + cap`, so slot `tail % cap` is
        // vacant and — by the SPSC contract — untouched by the consumer
        // until the release-store below publishes it.
        unsafe { (*shared.slots[tail % cap].get()).write(value) };
        shared.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Whether the consumer endpoint has been dropped. Pushing to a
    /// closed ring always fails; capture threads use this to shut down.
    pub fn is_closed(&self) -> bool {
        !self.shared.consumer_alive.load(Ordering::Acquire)
    }

    /// Items currently in flight (racy by nature; exact only when the
    /// other endpoint is quiescent).
    pub fn len(&self) -> usize {
        let head = self.shared.head.0.load(Ordering::Acquire);
        let tail = self.shared.tail.0.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// Whether the ring currently holds no items (racy; see
    /// [`len`](Producer::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed slot count the ring was created with.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }
}

impl<T: Send> Drop for Producer<T> {
    fn drop(&mut self) {
        self.shared.producer_alive.store(false, Ordering::Release);
    }
}

/// The pop end of an [`spsc`] ring. Owned by exactly one thread.
pub struct Consumer<T: Send> {
    shared: Arc<Shared<T>>,
}

impl<T: Send> Consumer<T> {
    /// Attempts to dequeue the oldest item without blocking. Returns
    /// `None` when the ring is momentarily empty — check
    /// [`is_closed`](Consumer::is_closed) to distinguish "no data yet"
    /// from "producer finished".
    pub fn try_pop(&mut self) -> Option<T> {
        let shared = &*self.shared;
        let cap = shared.slots.len();
        let head = shared.head.0.load(Ordering::Relaxed);
        let tail = shared.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `head < tail`, so slot `head % cap` was published by
        // the producer's release-store and is now exclusively ours.
        let value = unsafe { (*shared.slots[head % cap].get()).assume_init_read() };
        shared.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Whether the ring is drained for good: the producer endpoint was
    /// dropped *and* every published item has been popped.
    pub fn is_closed(&self) -> bool {
        // Order matters: read the liveness flag before the emptiness
        // check, so a producer that pushes and then exits can't slip the
        // push past a stale "alive" read.
        let alive = self.shared.producer_alive.load(Ordering::Acquire);
        !alive && self.is_empty()
    }

    /// Items currently in flight (racy by nature; exact only when the
    /// other endpoint is quiescent).
    pub fn len(&self) -> usize {
        let head = self.shared.head.0.load(Ordering::Relaxed);
        let tail = self.shared.tail.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// Whether the ring currently holds no items (racy; see
    /// [`len`](Consumer::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed slot count the ring was created with.
    pub fn capacity(&self) -> usize {
        self.shared.slots.len()
    }
}

impl<T: Send> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.shared.consumer_alive.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_within_capacity() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        for v in 0..4 {
            tx.try_push(v).unwrap();
        }
        assert_eq!(tx.try_push(99), Err(99));
        for v in 0..4 {
            assert_eq!(rx.try_pop(), Some(v));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn capacity_one_alternates() {
        let (mut tx, mut rx) = spsc::<String>(1);
        for i in 0..10 {
            tx.try_push(format!("item{i}")).unwrap();
            assert!(tx.try_push(String::new()).is_err());
            assert_eq!(rx.try_pop().as_deref(), Some(format!("item{i}").as_str()));
        }
    }

    #[test]
    fn close_detection_both_sides() {
        let (tx, rx) = spsc::<u8>(2);
        assert!(!rx.is_closed());
        drop(tx);
        assert!(rx.is_closed());

        let (mut tx, rx) = spsc::<u8>(2);
        assert!(!tx.is_closed());
        drop(rx);
        assert!(tx.is_closed());
        assert_eq!(tx.try_push(1), Err(1));
    }

    #[test]
    fn pending_items_drain_before_close() {
        let (mut tx, mut rx) = spsc::<u8>(4);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        drop(tx);
        // Producer gone but items remain: not closed yet.
        assert!(!rx.is_closed());
        assert_eq!(rx.try_pop(), Some(1));
        assert_eq!(rx.try_pop(), Some(2));
        assert!(rx.is_closed());
    }

    #[test]
    fn drop_releases_in_flight_items() {
        // Leak-checked indirectly: Arc<Vec> items dropped with the ring.
        let payload = Arc::new(vec![0u8; 64]);
        let (mut tx, rx) = spsc::<Arc<Vec<u8>>>(4);
        tx.try_push(Arc::clone(&payload)).unwrap();
        tx.try_push(Arc::clone(&payload)).unwrap();
        assert_eq!(Arc::strong_count(&payload), 3);
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn cross_thread_transfer_preserves_order() {
        let (mut tx, mut rx) = spsc::<u64>(8);
        let n = 10_000u64;
        let producer = std::thread::spawn(move || {
            for v in 0..n {
                let mut item = v;
                loop {
                    match tx.try_push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expected = 0u64;
        loop {
            match rx.try_pop() {
                Some(v) => {
                    assert_eq!(v, expected);
                    expected += 1;
                    if expected == n {
                        break;
                    }
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
    }
}
