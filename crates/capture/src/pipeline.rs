//! The Zoom packet-filter pipeline (Fig. 13 of the paper) in software.
//!
//! Mirrors the Tofino P4 program stage by stage:
//!
//! 1. **Campus match** — determine the campus-side endpoint; packets from
//!    excluded subnets (research-computing bulk traffic) are dropped.
//! 2. **Zoom IP match** — stateless check of either address against the
//!    published Zoom server list; matching TCP (control, port 443) and UDP
//!    (media, port 8801; STUN, port 3478) passes.
//! 3. **STUN registration** — STUN packets between a campus client and a
//!    Zoom server write the campus `(ip, port)` endpoint into the P2P
//!    registers.
//! 4. **P2P lookup** — non-server UDP packets whose campus endpoint is
//!    registered pass as P2P media; everything else is dropped.
//! 5. **Anonymization** — campus addresses in passing packets are
//!    rewritten with a one-way function before being written out.
//!
//! The pipeline parses only what a data plane would: link, IP, transport
//! ports, and the STUN magic — never the Zoom media payload.

use crate::anonymize::Anonymizer;
use crate::cidr::PrefixSet;
use crate::stun_tracker::{StunTracker, TrackerStats};
use crate::zoom_nets::ZoomIpList;
use std::net::IpAddr;
use zoom_wire::family::{FamilyId, FamilySelect};
use zoom_wire::flow::Endpoint;
use zoom_wire::ipv4::Protocol;
use zoom_wire::pcap::{LinkType, Record};
use zoom_wire::{ethernet, ipv4, stun, udp};

/// Configuration of the capture pipeline.
#[derive(Debug)]
pub struct PipelineConfig {
    /// Campus-internal networks (the monitor sits at the border).
    pub campus_nets: PrefixSet,
    /// Campus subnets excluded from capture (bulk research traffic).
    pub excluded_nets: PrefixSet,
    /// Zoom's published server networks.
    pub zoom_list: ZoomIpList,
    /// Timeout for P2P detection register entries.
    pub stun_timeout_nanos: u64,
    /// When set, campus addresses in passing packets are anonymized.
    pub anonymizer: Option<Anonymizer>,
    /// Protocol families the filter captures for. With
    /// [`FamilyId::Webrtc`] allowed, STUN exchanges between a campus
    /// client and a non-Zoom peer register the campus endpoint in a
    /// second set of P2P registers, and subsequent media on that
    /// endpoint passes as [`Verdict::RtcP2p`].
    pub family: FamilySelect,
}

impl PipelineConfig {
    /// A config with the sample Zoom list, a /16 campus, no exclusions,
    /// and the default 120 s STUN timeout.
    pub fn sample(campus: &str) -> PipelineConfig {
        PipelineConfig {
            campus_nets: crate::cidr::prefix_set(&[campus]),
            excluded_nets: PrefixSet::new(),
            zoom_list: crate::zoom_nets::sample_list(),
            stun_timeout_nanos: 120 * 1_000_000_000,
            anonymizer: None,
            family: FamilySelect::Only(FamilyId::Zoom),
        }
    }
}

/// Classification of one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Zoom server-based traffic (UDP media, TCP control, or any other
    /// packet to/from a published Zoom address).
    ZoomServer,
    /// STUN exchange with a Zoom server (also registers the endpoint).
    ZoomStun,
    /// Zoom P2P media recognized via the STUN registers.
    ZoomP2p,
    /// Non-Zoom STUN exchange involving a campus client (registers the
    /// endpoint in the WebRTC registers). Only produced when the
    /// configured [`PipelineConfig::family`] allows WebRTC.
    RtcStun,
    /// WebRTC media recognized via the WebRTC STUN registers.
    RtcP2p,
    /// Dropped: neither a Zoom server nor a registered P2P endpoint.
    NotZoom,
    /// Dropped: campus-side endpoint in an excluded subnet.
    Excluded,
    /// Dropped: could not parse the headers the data plane needs.
    Unparseable,
}

impl Verdict {
    /// Does this packet reach the capture output?
    pub fn passes(self) -> bool {
        matches!(
            self,
            Verdict::ZoomServer
                | Verdict::ZoomStun
                | Verdict::ZoomP2p
                | Verdict::RtcStun
                | Verdict::RtcP2p
        )
    }

    /// Stable lower-snake label for logs and metrics.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::ZoomServer => "zoom_server",
            Verdict::ZoomStun => "zoom_stun",
            Verdict::ZoomP2p => "zoom_p2p",
            Verdict::RtcStun => "rtc_stun",
            Verdict::RtcP2p => "rtc_p2p",
            Verdict::NotZoom => "not_zoom",
            Verdict::Excluded => "excluded",
            Verdict::Unparseable => "unparseable",
        }
    }
}

/// Per-stage counters for Fig. 13 / Fig. 17-style reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounters {
    /// Packets offered to the filter.
    pub total: u64,
    /// Dropped: campus endpoint in an excluded subnet.
    pub excluded: u64,
    /// Passed: either address matched the Zoom server list.
    pub zoom_ip_matched: u64,
    /// Passed: STUN exchange with a Zoom server (registers the endpoint).
    pub stun_registered: u64,
    /// Passed: P2P media recognized via the STUN registers.
    pub p2p_matched: u64,
    /// Passed: non-Zoom STUN exchange (registers a WebRTC endpoint).
    pub rtc_stun_registered: u64,
    /// Passed: WebRTC media recognized via the WebRTC STUN registers.
    pub rtc_p2p_matched: u64,
    /// Dropped: neither a Zoom server nor a registered P2P endpoint.
    pub dropped: u64,
    /// Dropped: headers the data plane needs did not parse.
    pub unparseable: u64,
    /// Packets that reached the capture output.
    pub passed: u64,
    /// Bytes across passing packets.
    pub passed_bytes: u64,
    /// Bytes across all offered packets.
    pub total_bytes: u64,
}

/// The capture pipeline.
#[derive(Debug)]
pub struct CapturePipeline {
    config: PipelineConfig,
    tracker: StunTracker,
    rtc_tracker: StunTracker,
    counters: StageCounters,
}

/// Light-weight header facts the data plane extracts per packet.
#[derive(Debug, Clone, Copy)]
struct HeaderFacts {
    src: IpAddr,
    dst: IpAddr,
    src_port: u16,
    dst_port: u16,
    protocol: Protocol,
    is_stun: bool,
}

impl CapturePipeline {
    /// Build from a configuration.
    pub fn new(config: PipelineConfig) -> Self {
        let tracker = StunTracker::new(config.stun_timeout_nanos);
        let rtc_tracker = StunTracker::new(config.stun_timeout_nanos);
        CapturePipeline {
            config,
            tracker,
            rtc_tracker,
            counters: StageCounters::default(),
        }
    }

    /// Counter snapshot.
    pub fn counters(&self) -> StageCounters {
        self.counters
    }

    /// STUN register statistics.
    pub fn tracker_stats(&self) -> TrackerStats {
        self.tracker.stats()
    }

    /// WebRTC STUN register statistics.
    pub fn rtc_tracker_stats(&self) -> TrackerStats {
        self.rtc_tracker.stats()
    }

    /// Configuration access (e.g. for resource accounting).
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Classify one packet and update state. This is the pure filter
    /// decision; use [`CapturePipeline::process_record`] to also produce
    /// the anonymized output record.
    pub fn classify(&mut self, ts_nanos: u64, data: &[u8], link: LinkType) -> Verdict {
        self.counters.total += 1;
        self.counters.total_bytes += data.len() as u64;
        let facts = match self.extract(data, link) {
            Some(f) => f,
            None => {
                self.counters.unparseable += 1;
                return Verdict::Unparseable;
            }
        };
        let verdict = self.decide(ts_nanos, facts);
        match verdict {
            Verdict::Excluded => self.counters.excluded += 1,
            Verdict::ZoomServer => self.counters.zoom_ip_matched += 1,
            Verdict::ZoomStun => self.counters.stun_registered += 1,
            Verdict::ZoomP2p => self.counters.p2p_matched += 1,
            Verdict::RtcStun => self.counters.rtc_stun_registered += 1,
            Verdict::RtcP2p => self.counters.rtc_p2p_matched += 1,
            Verdict::NotZoom => self.counters.dropped += 1,
            Verdict::Unparseable => {}
        }
        if verdict.passes() {
            self.counters.passed += 1;
            self.counters.passed_bytes += data.len() as u64;
        }
        verdict
    }

    /// Classify and, when the packet passes, emit the (optionally
    /// anonymized) output record.
    pub fn process_record(&mut self, record: &Record, link: LinkType) -> (Verdict, Option<Record>) {
        let verdict = self.classify(record.ts_nanos, &record.data, link);
        if !verdict.passes() {
            return (verdict, None);
        }
        let out = match self.config.anonymizer {
            Some(anon) => Record {
                ts_nanos: record.ts_nanos,
                orig_len: record.orig_len,
                data: self.anonymize_packet(&record.data, link, anon),
            },
            None => record.clone(),
        };
        (verdict, Some(out))
    }

    fn extract(&self, data: &[u8], link: LinkType) -> Option<HeaderFacts> {
        let ip_bytes = match link {
            LinkType::Ethernet => {
                let eth = ethernet::Packet::new_checked(data).ok()?;
                if eth.ethertype() != ethernet::EtherType::Ipv4 {
                    return None;
                }
                &data[ethernet::HEADER_LEN..]
            }
            LinkType::RawIp => data,
            LinkType::Other(_) => return None,
        };
        let ip = ipv4::Packet::new_checked(ip_bytes).ok()?;
        let protocol = ip.protocol();
        let (src_port, dst_port, is_stun) = match protocol {
            Protocol::Udp => {
                let u = udp::Packet::new_checked(ip.payload()).ok()?;
                let is_stun = stun::looks_like_stun(u.payload());
                (u.src_port(), u.dst_port(), is_stun)
            }
            Protocol::Tcp => {
                let t = zoom_wire::tcp::Packet::new_checked(ip.payload()).ok()?;
                (t.src_port(), t.dst_port(), false)
            }
            _ => return None,
        };
        Some(HeaderFacts {
            src: IpAddr::V4(ip.src_addr()),
            dst: IpAddr::V4(ip.dst_addr()),
            src_port,
            dst_port,
            protocol,
            is_stun,
        })
    }

    fn decide(&mut self, ts_nanos: u64, f: HeaderFacts) -> Verdict {
        // Stage 1: campus-side endpoint and exclusions.
        let src_campus = self.config.campus_nets.contains_addr(f.src);
        let dst_campus = self.config.campus_nets.contains_addr(f.dst);
        if (src_campus && self.config.excluded_nets.contains_addr(f.src))
            || (dst_campus && self.config.excluded_nets.contains_addr(f.dst))
        {
            return Verdict::Excluded;
        }

        // Stage 2: stateless Zoom server match.
        let src_zoom = self.config.zoom_list.contains_addr(f.src);
        let dst_zoom = self.config.zoom_list.contains_addr(f.dst);
        if src_zoom || dst_zoom {
            // Stage 3: STUN registration for campus clients talking to a
            // Zoom server on the STUN port.
            if f.protocol == Protocol::Udp
                && f.is_stun
                && ((dst_zoom && f.dst_port == stun::STUN_PORT)
                    || (src_zoom && f.src_port == stun::STUN_PORT))
            {
                let client = if dst_zoom {
                    Endpoint::new(f.src, f.src_port)
                } else {
                    Endpoint::new(f.dst, f.dst_port)
                };
                if self.config.campus_nets.contains_addr(client.ip) {
                    self.tracker.register(client, ts_nanos);
                }
                return Verdict::ZoomStun;
            }
            return Verdict::ZoomServer;
        }

        // Stage 4: P2P lookup for non-server UDP.
        if f.protocol == Protocol::Udp {
            if src_campus
                && self
                    .tracker
                    .check(Endpoint::new(f.src, f.src_port), ts_nanos)
            {
                return Verdict::ZoomP2p;
            }
            if dst_campus
                && self
                    .tracker
                    .check(Endpoint::new(f.dst, f.dst_port), ts_nanos)
            {
                return Verdict::ZoomP2p;
            }
        }

        // Stage 4b (WebRTC family): register and match non-Zoom STUN
        // sessions by their campus endpoint, mirroring stages 3-4.
        if self.config.family.allows(FamilyId::Webrtc) && f.protocol == Protocol::Udp {
            if f.is_stun {
                if src_campus {
                    self.rtc_tracker.register(Endpoint::new(f.src, f.src_port), ts_nanos);
                    return Verdict::RtcStun;
                }
                if dst_campus {
                    self.rtc_tracker.register(Endpoint::new(f.dst, f.dst_port), ts_nanos);
                    return Verdict::RtcStun;
                }
            }
            if src_campus
                && self
                    .rtc_tracker
                    .check(Endpoint::new(f.src, f.src_port), ts_nanos)
            {
                return Verdict::RtcP2p;
            }
            if dst_campus
                && self
                    .rtc_tracker
                    .check(Endpoint::new(f.dst, f.dst_port), ts_nanos)
            {
                return Verdict::RtcP2p;
            }
        }
        Verdict::NotZoom
    }

    /// Rewrite campus addresses with the anonymizer and fix checksums.
    fn anonymize_packet(&self, data: &[u8], link: LinkType, anon: Anonymizer) -> Vec<u8> {
        let mut out = data.to_vec();
        let ip_off = match link {
            LinkType::Ethernet => ethernet::HEADER_LEN,
            _ => 0,
        };
        if out.len() < ip_off + ipv4::HEADER_LEN {
            return out;
        }
        let mut ip = ipv4::Packet::new_unchecked(&mut out[ip_off..]);
        if ip.check_len().is_err() {
            return out;
        }
        let src = ip.src_addr();
        let dst = ip.dst_addr();
        if self.config.campus_nets.contains(src) {
            if let IpAddr::V4(a) = anon.anonymize(IpAddr::V4(src)) {
                ip.set_src_addr(a);
            }
        }
        if self.config.campus_nets.contains(dst) {
            if let IpAddr::V4(a) = anon.anonymize(IpAddr::V4(dst)) {
                ip.set_dst_addr(a);
            }
        }
        ip.fill_checksum();
        // Transport checksums would no longer verify; zero the UDP one
        // (allowed by RFC 768) as the hardware anonymizer does.
        if ip.protocol() == Protocol::Udp {
            let hl = ip.header_len();
            if let Ok(mut u) = udp::Packet::new_checked(&mut out[ip_off + hl..]) {
                u.clear_checksum();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anonymize::Mode;
    use std::net::Ipv4Addr;
    use zoom_wire::compose;

    const SEC: u64 = 1_000_000_000;

    fn pipeline() -> CapturePipeline {
        CapturePipeline::new(PipelineConfig::sample("10.8.0.0/16"))
    }

    fn stun_payload() -> Vec<u8> {
        let msg = stun::Repr {
            message_type: stun::MessageType::BindingRequest,
            transaction_id: [3; 12],
            xor_mapped_address: None,
        };
        let mut p = vec![0u8; msg.buffer_len()];
        msg.emit(&mut p);
        p
    }

    #[test]
    fn server_udp_passes() {
        let mut p = pipeline();
        let pkt = compose::udp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 0, 2),
            Ipv4Addr::new(170, 114, 1, 1),
            51_000,
            8801,
            b"zoomish",
        );
        assert_eq!(p.classify(0, &pkt, LinkType::Ethernet), Verdict::ZoomServer);
    }

    #[test]
    fn control_tcp_passes() {
        let mut p = pipeline();
        let pkt = compose::tcp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 0, 2),
            Ipv4Addr::new(170, 114, 1, 1),
            51_000,
            443,
            1,
            0,
            zoom_wire::tcp::Flags {
                syn: true,
                ..Default::default()
            },
            b"",
        );
        assert_eq!(p.classify(0, &pkt, LinkType::Ethernet), Verdict::ZoomServer);
    }

    #[test]
    fn non_zoom_dropped() {
        let mut p = pipeline();
        let pkt = compose::udp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 0, 2),
            Ipv4Addr::new(8, 8, 8, 8),
            51_000,
            53,
            b"dns",
        );
        assert_eq!(p.classify(0, &pkt, LinkType::Ethernet), Verdict::NotZoom);
    }

    #[test]
    fn p2p_detected_after_stun() {
        let mut p = pipeline();
        let client = Ipv4Addr::new(10, 8, 0, 2);
        let peer = Ipv4Addr::new(98, 20, 1, 7); // off-campus, non-Zoom

        // Before the STUN exchange, P2P-looking traffic is dropped.
        let media = compose::udp_ipv4_ethernet(client, peer, 61_000, 62_000, b"media");
        assert_eq!(p.classify(0, &media, LinkType::Ethernet), Verdict::NotZoom);

        // STUN to a Zoom zone controller registers 10.8.0.2:61000.
        let stun_pkt = compose::udp_ipv4_ethernet(
            client,
            Ipv4Addr::new(170, 114, 2, 2),
            61_000,
            stun::STUN_PORT,
            &stun_payload(),
        );
        assert_eq!(
            p.classify(SEC, &stun_pkt, LinkType::Ethernet),
            Verdict::ZoomStun
        );

        // Now the same endpoint talking to the peer passes as P2P —
        // in both directions.
        assert_eq!(
            p.classify(2 * SEC, &media, LinkType::Ethernet),
            Verdict::ZoomP2p
        );
        let reverse = compose::udp_ipv4_ethernet(peer, client, 62_000, 61_000, b"media");
        assert_eq!(
            p.classify(3 * SEC, &reverse, LinkType::Ethernet),
            Verdict::ZoomP2p
        );
    }

    #[test]
    fn p2p_times_out() {
        let mut cfg = PipelineConfig::sample("10.8.0.0/16");
        cfg.stun_timeout_nanos = 10 * SEC;
        let mut p = CapturePipeline::new(cfg);
        let client = Ipv4Addr::new(10, 8, 0, 2);
        let stun_pkt = compose::udp_ipv4_ethernet(
            client,
            Ipv4Addr::new(170, 114, 2, 2),
            61_000,
            stun::STUN_PORT,
            &stun_payload(),
        );
        p.classify(0, &stun_pkt, LinkType::Ethernet);
        let media =
            compose::udp_ipv4_ethernet(client, Ipv4Addr::new(98, 20, 1, 7), 61_000, 62_000, b"m");
        assert_eq!(
            p.classify(60 * SEC, &media, LinkType::Ethernet),
            Verdict::NotZoom
        );
    }

    #[test]
    fn excluded_subnet_dropped_even_to_zoom() {
        let mut cfg = PipelineConfig::sample("10.8.0.0/16");
        cfg.excluded_nets = crate::cidr::prefix_set(&["10.8.200.0/24"]);
        let mut p = CapturePipeline::new(cfg);
        let pkt = compose::udp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 200, 5),
            Ipv4Addr::new(170, 114, 1, 1),
            51_000,
            8801,
            b"bulk",
        );
        assert_eq!(p.classify(0, &pkt, LinkType::Ethernet), Verdict::Excluded);
    }

    #[test]
    fn anonymization_rewrites_campus_only() {
        let mut cfg = PipelineConfig::sample("10.8.0.0/16");
        cfg.anonymizer = Some(Anonymizer::new(5, Mode::PrefixPreserving));
        let mut p = CapturePipeline::new(cfg);
        let pkt = compose::udp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 0, 2),
            Ipv4Addr::new(170, 114, 1, 1),
            51_000,
            8801,
            b"zoomish",
        );
        let record = Record::full(0, pkt);
        let (verdict, out) = p.process_record(&record, LinkType::Ethernet);
        assert!(verdict.passes());
        let out = out.unwrap();
        let ip = ipv4::Packet::new_checked(&out.data[ethernet::HEADER_LEN..]).unwrap();
        assert_ne!(ip.src_addr(), Ipv4Addr::new(10, 8, 0, 2)); // anonymized
        assert_eq!(ip.dst_addr(), Ipv4Addr::new(170, 114, 1, 1)); // server kept
        assert!(ip.verify_checksum());
    }

    #[test]
    fn counters_accumulate() {
        let mut p = pipeline();
        let zoom_pkt = compose::udp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 0, 2),
            Ipv4Addr::new(170, 114, 1, 1),
            51_000,
            8801,
            b"z",
        );
        let other = compose::udp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 0, 2),
            Ipv4Addr::new(8, 8, 8, 8),
            51_000,
            53,
            b"d",
        );
        p.classify(0, &zoom_pkt, LinkType::Ethernet);
        p.classify(0, &other, LinkType::Ethernet);
        p.classify(0, &other, LinkType::Ethernet);
        let c = p.counters();
        assert_eq!(c.total, 3);
        assert_eq!(c.passed, 1);
        assert_eq!(c.dropped, 2);
        assert!(c.passed_bytes < c.total_bytes);
    }

    #[test]
    fn rtc_stage_inactive_for_zoom_only_family() {
        let mut p = pipeline(); // sample(): family = Only(Zoom)
        let client = Ipv4Addr::new(10, 8, 0, 9);
        let peer = Ipv4Addr::new(93, 40, 6, 6); // off-campus, non-Zoom
        let stun_pkt =
            compose::udp_ipv4_ethernet(client, peer, 52_000, 3478, &stun_payload());
        assert_eq!(
            p.classify(0, &stun_pkt, LinkType::Ethernet),
            Verdict::NotZoom
        );
        let media = compose::udp_ipv4_ethernet(client, peer, 52_000, 52_001, b"srtp");
        assert_eq!(p.classify(SEC, &media, LinkType::Ethernet), Verdict::NotZoom);
        assert_eq!(p.counters().rtc_stun_registered, 0);
        assert_eq!(p.counters().rtc_p2p_matched, 0);
    }

    #[test]
    fn rtc_session_registered_and_matched_when_webrtc_allowed() {
        let mut cfg = PipelineConfig::sample("10.8.0.0/16");
        cfg.family = zoom_wire::family::FamilySelect::Auto;
        let mut p = CapturePipeline::new(cfg);
        let client = Ipv4Addr::new(10, 8, 0, 9);
        let peer = Ipv4Addr::new(93, 40, 6, 6); // off-campus, non-Zoom

        // Media before the STUN binding is still dropped.
        let media = compose::udp_ipv4_ethernet(client, peer, 52_000, 52_001, b"srtp");
        assert_eq!(p.classify(0, &media, LinkType::Ethernet), Verdict::NotZoom);

        // A non-Zoom STUN binding registers the campus endpoint...
        let stun_pkt =
            compose::udp_ipv4_ethernet(client, peer, 52_000, 3478, &stun_payload());
        assert_eq!(
            p.classify(SEC, &stun_pkt, LinkType::Ethernet),
            Verdict::RtcStun
        );

        // ...after which media passes in both directions.
        assert_eq!(
            p.classify(2 * SEC, &media, LinkType::Ethernet),
            Verdict::RtcP2p
        );
        let reverse = compose::udp_ipv4_ethernet(peer, client, 52_001, 52_000, b"srtp");
        assert_eq!(
            p.classify(3 * SEC, &reverse, LinkType::Ethernet),
            Verdict::RtcP2p
        );

        // Zoom STUN still takes precedence over the WebRTC registers.
        let zoom_stun = compose::udp_ipv4_ethernet(
            client,
            Ipv4Addr::new(170, 114, 2, 2),
            52_000,
            stun::STUN_PORT,
            &stun_payload(),
        );
        assert_eq!(
            p.classify(4 * SEC, &zoom_stun, LinkType::Ethernet),
            Verdict::ZoomStun
        );

        let c = p.counters();
        assert_eq!(c.rtc_stun_registered, 1);
        assert_eq!(c.rtc_p2p_matched, 2);
        assert_eq!(c.passed, 4);
    }

    #[test]
    fn garbage_is_unparseable() {
        let mut p = pipeline();
        assert_eq!(
            p.classify(0, &[0u8; 10], LinkType::Ethernet),
            Verdict::Unparseable
        );
    }
}
