//! One-way, prefix-preserving address anonymization.
//!
//! The paper's capture program anonymizes campus packets in the data plane
//! using ONTAS before researchers ever see them (§6.1, §9). We model the
//! same property in software: a keyed one-way mapping of IPv4 addresses
//! that (optionally) preserves prefix structure, so that "two clients in
//! the same /24" remains visible while real identities do not.
//!
//! The hash is a small keyed construction built on FNV-1a with key mixing
//! and output whitening. It is deliberately dependency-free and
//! deterministic for a given key; it is *not* cryptographically strong and
//! must not be used outside research traces — exactly the caveat that
//! applies to hardware-friendly anonymization schemes.

use std::net::{IpAddr, Ipv4Addr};

/// A keyed one-way anonymizer.
#[derive(Debug, Clone, Copy)]
pub struct Anonymizer {
    key: u64,
    mode: Mode,
}

/// How much structure to preserve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Map the whole 32-bit address pseudorandomly.
    Full,
    /// Preserve prefix structure: each octet is substituted conditioned on
    /// all higher-order octets (Crypto-PAn-like at octet granularity), so
    /// addresses sharing a /8, /16, or /24 keep sharing it.
    PrefixPreserving,
}

fn keyed_hash(key: u64, data: u64) -> u64 {
    // FNV-1a over the 16 bytes of (key, data), then a xorshift-multiply
    // finalizer (splitmix64 tail) for diffusion.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.to_le_bytes().into_iter().chain(data.to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

impl Anonymizer {
    /// Create with an explicit key (the "anonymization secret" an operator
    /// would rotate per capture campaign).
    pub fn new(key: u64, mode: Mode) -> Self {
        Anonymizer { key, mode }
    }

    /// Anonymize an IPv4 address.
    pub fn anonymize_v4(&self, ip: Ipv4Addr) -> Ipv4Addr {
        match self.mode {
            Mode::Full => {
                let mapped = keyed_hash(self.key, u64::from(u32::from(ip))) as u32;
                Ipv4Addr::from(mapped)
            }
            Mode::PrefixPreserving => {
                let octets = ip.octets();
                let mut out = [0u8; 4];
                let mut prefix: u64 = 0;
                for (i, &o) in octets.iter().enumerate() {
                    // Substitute this octet keyed by position and the
                    // *original* higher-order octets, so equal prefixes map
                    // to equal prefixes.
                    let h =
                        keyed_hash(self.key ^ ((i as u64) << 56), prefix | (u64::from(o) << 40));
                    out[i] = (h & 0xFF) as u8;
                    prefix = (prefix << 8) | u64::from(o);
                }
                Ipv4Addr::from(out)
            }
        }
    }

    /// Anonymize either family; IPv6 uses the full mode over both halves.
    pub fn anonymize(&self, ip: IpAddr) -> IpAddr {
        match ip {
            IpAddr::V4(v4) => IpAddr::V4(self.anonymize_v4(v4)),
            IpAddr::V6(v6) => {
                let seg = u128::from_be_bytes(v6.octets());
                let hi = keyed_hash(self.key, (seg >> 64) as u64);
                let lo = keyed_hash(self.key ^ 1, seg as u64);
                IpAddr::V6(std::net::Ipv6Addr::from(
                    (u128::from(hi) << 64 | u128::from(lo)).to_be_bytes(),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_key() {
        let a = Anonymizer::new(42, Mode::Full);
        let ip = Ipv4Addr::new(10, 8, 1, 2);
        assert_eq!(a.anonymize_v4(ip), a.anonymize_v4(ip));
        let b = Anonymizer::new(43, Mode::Full);
        assert_ne!(a.anonymize_v4(ip), b.anonymize_v4(ip));
    }

    #[test]
    fn full_mode_hides_structure() {
        let a = Anonymizer::new(7, Mode::Full);
        let x = a.anonymize_v4(Ipv4Addr::new(10, 8, 1, 2));
        let y = a.anonymize_v4(Ipv4Addr::new(10, 8, 1, 3));
        // Adjacent addresses should not map to adjacent outputs.
        assert_ne!(
            u32::from(x).wrapping_sub(u32::from(y)),
            u32::from(Ipv4Addr::new(10, 8, 1, 2))
                .wrapping_sub(u32::from(Ipv4Addr::new(10, 8, 1, 3)))
        );
    }

    #[test]
    fn prefix_preserving_keeps_shared_prefixes() {
        let a = Anonymizer::new(7, Mode::PrefixPreserving);
        let x = a.anonymize_v4(Ipv4Addr::new(10, 8, 1, 2));
        let y = a.anonymize_v4(Ipv4Addr::new(10, 8, 1, 200));
        let z = a.anonymize_v4(Ipv4Addr::new(10, 8, 2, 2));
        // Same /24 stays same /24.
        assert_eq!(x.octets()[..3], y.octets()[..3]);
        assert_ne!(x.octets()[3], y.octets()[3]);
        // Same /16 stays same /16, differing at the third octet.
        assert_eq!(x.octets()[..2], z.octets()[..2]);
        assert_ne!(x.octets()[2], z.octets()[2]);
    }

    #[test]
    fn prefix_preserving_is_one_way_looking() {
        // Not a cryptographic proof — just check the output differs from
        // the input for a sample of addresses (no accidental identity).
        let a = Anonymizer::new(7, Mode::PrefixPreserving);
        let mut identical = 0;
        for i in 0..=255u8 {
            let ip = Ipv4Addr::new(10, 8, 0, i);
            if a.anonymize_v4(ip) == ip {
                identical += 1;
            }
        }
        assert!(identical <= 2);
    }

    #[test]
    fn ipv6_anonymization_is_deterministic() {
        let a = Anonymizer::new(9, Mode::Full);
        let ip: IpAddr = "2001:db8::1234".parse().unwrap();
        assert_eq!(a.anonymize(ip), a.anonymize(ip));
        assert_ne!(a.anonymize(ip), ip);
    }
}
