//! Property-based tests for the capture substrate.

use proptest::prelude::*;
use std::net::Ipv4Addr;
use zoom_capture::anonymize::{Anonymizer, Mode};
use zoom_capture::cidr::{Cidr, PrefixMap};
use zoom_capture::pipeline::{CapturePipeline, PipelineConfig};
use zoom_capture::stun_tracker::StunTracker;
use zoom_wire::flow::Endpoint;
use zoom_wire::pcap::LinkType;

proptest! {
    /// CIDR membership is consistent with explicit masking.
    #[test]
    fn cidr_contains_matches_mask(addr: u32, prefix_len in 0u8..=32, probe: u32) {
        let c = Cidr::new(Ipv4Addr::from(addr), prefix_len);
        let mask: u64 = if prefix_len == 0 { 0 } else { (!0u32 << (32 - u32::from(prefix_len))) as u64 };
        let expect = (u64::from(probe) & mask) == (u64::from(addr) & mask);
        prop_assert_eq!(c.contains(Ipv4Addr::from(probe)), expect);
        // The network address itself is always contained.
        prop_assert!(c.contains(c.address()));
        // Size is 2^(32-len).
        prop_assert_eq!(c.size(), 1u64 << (32 - prefix_len));
    }

    /// Longest-prefix match always returns the most specific matching
    /// prefix in the map.
    #[test]
    fn lpm_most_specific_wins(addr: u32, lens in proptest::collection::btree_set(0u8..=32, 1..6)) {
        let mut m = PrefixMap::new();
        for &len in &lens {
            m.insert(Cidr::new(Ipv4Addr::from(addr), len), len);
        }
        let (got, &len) = m.longest_match(Ipv4Addr::from(addr)).unwrap();
        let max = *lens.iter().max().unwrap();
        prop_assert_eq!(len, max);
        prop_assert_eq!(got.prefix_len(), max);
    }

    /// Anonymization is deterministic, key-sensitive, and the
    /// prefix-preserving mode maps equal prefixes to equal prefixes.
    #[test]
    fn anonymizer_prefix_preservation(key: u64, a: u32, b: u32) {
        let anon = Anonymizer::new(key, Mode::PrefixPreserving);
        let ia = Ipv4Addr::from(a);
        let ib = Ipv4Addr::from(b);
        let oa = anon.anonymize_v4(ia);
        let ob = anon.anonymize_v4(ib);
        prop_assert_eq!(oa, anon.anonymize_v4(ia)); // deterministic
        let shared_in = ia.octets().iter().zip(ib.octets()).take_while(|(x, y)| **x == *y).count();
        let shared_out = oa.octets().iter().zip(ob.octets()).take_while(|(x, y)| **x == *y).count();
        // Output prefixes shared at least as far as input prefixes.
        prop_assert!(shared_out >= shared_in, "in {shared_in} out {shared_out}");
    }

    /// The STUN tracker's hit/miss behaviour is exactly the timeout
    /// predicate.
    #[test]
    fn stun_tracker_timeout_predicate(
        timeout in 1u64..1_000_000_000,
        register_at in 0u64..1_000_000_000,
        check_delta in 0u64..2_000_000_000,
    ) {
        let mut t = StunTracker::new(timeout);
        let ep = Endpoint::new("10.0.0.1".parse().unwrap(), 5_000);
        t.register(ep, register_at);
        let hit = t.check(ep, register_at + check_delta);
        prop_assert_eq!(hit, check_delta <= timeout);
    }

    /// The capture pipeline never panics on arbitrary bytes and counts
    /// every packet exactly once.
    #[test]
    fn pipeline_total_accounting(packets in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..200), 1..60))
    {
        let mut p = CapturePipeline::new(PipelineConfig::sample("10.8.0.0/16"));
        for (i, data) in packets.iter().enumerate() {
            p.classify(i as u64, data, LinkType::Ethernet);
        }
        let c = p.counters();
        prop_assert_eq!(c.total, packets.len() as u64);
        prop_assert_eq!(
            c.total,
            c.excluded + c.zoom_ip_matched + c.stun_registered + c.p2p_matched
                + c.dropped + c.unparseable
        );
        prop_assert_eq!(c.passed, c.zoom_ip_matched + c.stun_registered + c.p2p_matched);
    }
}

proptest! {
    /// The SPSC ring behaves exactly like a bounded FIFO queue: an
    /// arbitrary interleaving of pushes and pops — over arbitrary
    /// capacities including 1 — matches a `VecDeque` model op for op,
    /// with overflow rejections accounted exactly
    /// (`pushed == popped + dropped + in_flight`).
    #[test]
    fn spsc_ring_matches_bounded_fifo_model(
        capacity in 1usize..=8,
        ops in proptest::collection::vec(any::<bool>(), 1..400),
    ) {
        let (mut tx, mut rx) = zoom_capture::ring::spsc::<u32>(capacity);
        let mut model = std::collections::VecDeque::new();
        let (mut pushed, mut dropped, mut popped) = (0u32, 0u64, 0u64);
        for op in ops {
            if op {
                let v = pushed;
                pushed += 1;
                match tx.try_push(v) {
                    Ok(()) => {
                        prop_assert!(model.len() < capacity, "accepted past capacity");
                        model.push_back(v);
                    }
                    Err(back) => {
                        prop_assert_eq!(back, v, "rejected value must come back");
                        prop_assert_eq!(model.len(), capacity, "rejected below capacity");
                        dropped += 1;
                    }
                }
            } else {
                let got = rx.try_pop();
                prop_assert_eq!(got, model.pop_front());
                if got.is_some() {
                    popped += 1;
                }
            }
            prop_assert_eq!(tx.len(), model.len());
            prop_assert_eq!(rx.len(), model.len());
        }
        prop_assert_eq!(u64::from(pushed), popped + dropped + model.len() as u64);
        while let Some(v) = rx.try_pop() {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
        prop_assert!(rx.is_empty());
    }

    /// Cross-thread delivery preserves order for arbitrary capacities: a
    /// producer thread spinning on a full ring delivers every item
    /// exactly once, in order — nothing lost, duplicated, or reordered
    /// at any capacity/backlog combination.
    #[test]
    fn spsc_ring_cross_thread_fifo(capacity in 1usize..=8, n in 1usize..600) {
        let (mut tx, mut rx) = zoom_capture::ring::spsc::<usize>(capacity);
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                let mut v = i;
                loop {
                    match tx.try_push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut got = Vec::with_capacity(n);
        while got.len() < n {
            match rx.try_pop() {
                Some(v) => got.push(v),
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        prop_assert_eq!(got, (0..n).collect::<Vec<_>>());
        prop_assert!(rx.try_pop().is_none());
    }
}
