//! Ethernet II frame view and emitter.

use crate::{be16, set_be16, Error, Result};
use std::fmt;

/// Length of the Ethernet II header: two MAC addresses plus the EtherType.
pub const HEADER_LEN: usize = 14;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address(pub [u8; 6]);

impl Address {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: Address = Address([0xFF; 6]);

    /// True if the least-significant bit of the first octet is set
    /// (multicast, which includes broadcast).
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for `ff:ff:ff:ff:ff:ff`.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            a[0], a[1], a[2], a[3], a[4], a[5]
        )
    }
}

/// EtherType values this crate understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// IPv6 (0x86DD).
    Ipv6,
    /// ARP (0x0806).
    Arp,
    /// Anything else, carried verbatim.
    Unknown(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x86DD => EtherType::Ipv6,
            0x0806 => EtherType::Arp,
            other => EtherType::Unknown(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(v: EtherType) -> u16 {
        match v {
            EtherType::Ipv4 => 0x0800,
            EtherType::Ipv6 => 0x86DD,
            EtherType::Arp => 0x0806,
            EtherType::Unknown(other) => other,
        }
    }
}

/// Zero-copy view of an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap a buffer without validating its length.
    pub fn new_unchecked(buffer: T) -> Self {
        Packet { buffer }
    }

    /// Wrap a buffer, rejecting anything shorter than the fixed header.
    pub fn new_checked(buffer: T) -> Result<Self> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        Ok(Packet { buffer })
    }

    /// Recover the inner buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Destination MAC address.
    pub fn dst_addr(&self) -> Address {
        let d = self.buffer.as_ref();
        let mut a = [0u8; 6];
        a.copy_from_slice(&d[0..6]);
        Address(a)
    }

    /// Source MAC address.
    pub fn src_addr(&self) -> Address {
        let d = self.buffer.as_ref();
        let mut a = [0u8; 6];
        a.copy_from_slice(&d[6..12]);
        Address(a)
    }

    /// EtherType field.
    pub fn ethertype(&self) -> EtherType {
        EtherType::from(be16(self.buffer.as_ref(), 12))
    }

    /// Payload following the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Set the destination MAC address.
    pub fn set_dst_addr(&mut self, addr: Address) {
        self.buffer.as_mut()[0..6].copy_from_slice(&addr.0);
    }

    /// Set the source MAC address.
    pub fn set_src_addr(&mut self, addr: Address) {
        self.buffer.as_mut()[6..12].copy_from_slice(&addr.0);
    }

    /// Set the EtherType field.
    pub fn set_ethertype(&mut self, ethertype: EtherType) {
        set_be16(self.buffer.as_mut(), 12, ethertype.into());
    }

    /// Mutable payload following the header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

/// High-level representation of an Ethernet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Destination MAC address.
    pub dst_addr: Address,
    /// Source MAC address.
    pub src_addr: Address,
    /// Payload EtherType.
    pub ethertype: EtherType,
}

impl Repr {
    /// Parse a validated packet view into a representation.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Repr {
        Repr {
            dst_addr: packet.dst_addr(),
            src_addr: packet.src_addr(),
            ethertype: packet.ethertype(),
        }
    }

    /// Length this representation occupies on the wire.
    pub fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Emit into the header portion of `packet`.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.set_dst_addr(self.dst_addr);
        packet.set_src_addr(self.src_addr);
        packet.set_ethertype(self.ethertype);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static FRAME: [u8; 18] = [
        0x02, 0x00, 0x00, 0x00, 0x00, 0x01, // dst
        0x02, 0x00, 0x00, 0x00, 0x00, 0x02, // src
        0x08, 0x00, // IPv4
        0xDE, 0xAD, 0xBE, 0xEF, // payload
    ];

    #[test]
    fn parse_fields() {
        let p = Packet::new_checked(&FRAME[..]).unwrap();
        assert_eq!(p.dst_addr(), Address([0x02, 0, 0, 0, 0, 1]));
        assert_eq!(p.src_addr(), Address([0x02, 0, 0, 0, 0, 2]));
        assert_eq!(p.ethertype(), EtherType::Ipv4);
        assert_eq!(p.payload(), &[0xDE, 0xAD, 0xBE, 0xEF]);
    }

    #[test]
    fn too_short_is_truncated() {
        assert_eq!(
            Packet::new_checked(&FRAME[..13]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn emit_roundtrip() {
        let repr = Repr {
            dst_addr: Address::BROADCAST,
            src_addr: Address([1, 2, 3, 4, 5, 6]),
            ethertype: EtherType::Ipv6,
        };
        let mut buf = [0u8; HEADER_LEN];
        let mut p = Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut p);
        let parsed = Repr::parse(&Packet::new_checked(&buf[..]).unwrap());
        assert_eq!(parsed, repr);
    }

    #[test]
    fn multicast_and_broadcast_flags() {
        assert!(Address::BROADCAST.is_broadcast());
        assert!(Address::BROADCAST.is_multicast());
        assert!(Address([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
        assert!(!Address([0x02, 0, 0, 0, 0, 1]).is_multicast());
    }

    #[test]
    fn ethertype_unknown_roundtrip() {
        let t = EtherType::from(0x1234);
        assert_eq!(t, EtherType::Unknown(0x1234));
        assert_eq!(u16::from(t), 0x1234);
    }

    #[test]
    fn display_mac() {
        assert_eq!(
            Address([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]).to_string(),
            "de:ad:be:ef:00:01"
        );
    }
}
