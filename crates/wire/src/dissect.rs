//! Full-stack packet dissector: link → network → transport → Zoom.
//!
//! This is the library equivalent of the paper's Wireshark plugin
//! (Appendix C): it walks an Ethernet or raw-IP capture record down to the
//! Zoom encapsulations and exposes every field the analysis layer needs,
//! borrowing from the input buffer (no copies).
//!
//! Heuristics mirror the plugin: UDP traffic to/from port 8801 is treated
//! as Zoom server traffic; traffic to/from port 3478 is checked for STUN;
//! any other UDP payload can optionally be probed for P2P Zoom framing
//! or for native WebRTC framing (DTLS records and SRTP/SRTCP headers).
//!
//! Application-layer classification is delegated to the
//! [`ProtocolFamily`] implementations in
//! [`crate::family`]; the [`Probe`] struct selects which families (and
//! which of their optional heuristics) run. The historic
//! [`P2pProbe`]-taking call shape still compiles everywhere: every entry
//! point accepts `impl Into<Probe>`.

use crate::ethernet::{self, EtherType};
use crate::family::{self, ProtocolFamily, WebrtcFamily, ZoomFamily};
use crate::flow::FiveTuple;
use crate::ipv4::{self, Protocol};
use crate::ipv6;
use crate::pcap::LinkType;
use crate::stun;
use crate::tcp;
use crate::udp;
use crate::zoom::{self, Framing, ZoomPacket};
use crate::{Error, Result};
use std::fmt::Write as _;
use std::net::IpAddr;

/// Transport-layer summary of a dissected packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// UDP datagram.
    Udp {
        /// Payload length in bytes.
        payload_len: usize,
    },
    /// TCP segment.
    Tcp {
        /// Sequence number.
        seq: u32,
        /// Acknowledgment number.
        ack: u32,
        /// Control flags.
        flags: tcp::Flags,
        /// Receive window.
        window: u16,
        /// Payload length in bytes.
        payload_len: usize,
    },
}

/// Application-layer interpretation of a UDP payload.
#[derive(Debug, Clone, PartialEq)]
pub enum App {
    /// A parsed STUN message.
    Stun(stun::Repr),
    /// A parsed Zoom packet with the framing that succeeded.
    Zoom(Framing, ZoomPacket),
    /// A parsed native-WebRTC PDU (DTLS record, SRTP, or SRTCP).
    Webrtc(crate::webrtc::Pdu),
    /// The payload did not match anything we decode.
    Opaque,
}

/// A fully dissected packet, borrowing payload bytes from the input.
#[derive(Debug, Clone, PartialEq)]
pub struct Dissection<'a> {
    /// Capture timestamp, nanoseconds.
    pub ts_nanos: u64,
    /// Link header, when the trace has one.
    pub link: Option<ethernet::Repr>,
    /// The IP 5-tuple.
    pub five_tuple: FiveTuple,
    /// Bytes in the IP packet (header + payload) — the basis for
    /// flow-level bit rates.
    pub ip_total_len: usize,
    /// Transport summary.
    pub transport: Transport,
    /// Application interpretation (UDP only; TCP payloads stay opaque).
    pub app: App,
    /// The raw transport payload — the input to entropy analysis.
    pub payload: &'a [u8],
}

impl Dissection<'_> {
    /// Convenience: the parsed Zoom packet, if any.
    pub fn zoom(&self) -> Option<&ZoomPacket> {
        match &self.app {
            App::Zoom(_, z) => Some(z),
            _ => None,
        }
    }

    /// Convenience: true when the app layer parsed as STUN.
    pub fn is_stun(&self) -> bool {
        matches!(self.app, App::Stun(_))
    }
}

/// Controls whether non-8801 UDP payloads are probed for Zoom P2P framing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum P2pProbe {
    /// Never probe: only port-8801 traffic parses as Zoom. This is what a
    /// port-based filter would see.
    #[default]
    Off,
    /// Probe every UDP payload with [`zoom::parse_auto`]. Used once a flow
    /// has been flagged as P2P by the STUN tracker, or when scanning.
    Auto,
}

/// Controls whether non-STUN, non-Zoom UDP payloads are probed for native
/// WebRTC framing (DTLS records, SRTP/SRTCP headers).
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WebrtcProbe {
    /// Never probe: WebRTC traffic stays [`App::Opaque`] at the wire
    /// layer. The analysis layer's session gating (STUN-tracked flows)
    /// issues targeted second-chance probes instead.
    #[default]
    Off,
    /// Probe every remaining UDP payload with [`crate::webrtc::classify`].
    Auto,
}

/// Which protocol families (and which of their optional heuristics) the
/// dissector runs on UDP payloads.
///
/// The default — Zoom on, P2P and WebRTC probing off — is exactly the
/// pre-family dissector, and [`From<P2pProbe>`] maps the historic call
/// shape onto it, so `dissect(ts, data, link, P2pProbe::Auto)` keeps
/// meaning what it always did. Use
/// [`FamilySelect::probe`](crate::family::FamilySelect::probe) to derive
/// a `Probe` from a user-facing `--family` selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    /// Run the Zoom family (port-8801 parsing; port-8801 failures are
    /// claimed as [`App::Opaque`] rather than passed to later families).
    pub zoom: bool,
    /// Zoom P2P probing of non-8801 payloads (requires `zoom`).
    pub p2p: P2pProbe,
    /// Native WebRTC probing of payloads no earlier family claimed.
    pub webrtc: WebrtcProbe,
}

impl Default for Probe {
    fn default() -> Self {
        Probe {
            zoom: true,
            p2p: P2pProbe::Off,
            webrtc: WebrtcProbe::Off,
        }
    }
}

impl From<P2pProbe> for Probe {
    fn from(p2p: P2pProbe) -> Self {
        Probe {
            p2p,
            ..Probe::default()
        }
    }
}

/// Everything [`peek`] learns about a record's headers, as plain values
/// and byte offsets into the original record — no borrows, `Copy`, so it
/// can be shipped across threads alongside the record it describes.
///
/// [`dissect_from`] resumes a full dissection from a `PeekInfo` without
/// re-scanning the Ethernet/IP/UDP/TCP headers: the sharded pipeline
/// peeks once on the router thread and finishes the (application-layer)
/// dissection on the shard, instead of parsing the whole stack twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeekInfo {
    /// Link header, when the trace has one.
    pub link: Option<ethernet::Repr>,
    /// The IP 5-tuple.
    pub five_tuple: FiveTuple,
    /// Bytes in the IP packet (header + payload).
    pub ip_total_len: usize,
    /// Transport header fields plus the payload's byte range.
    pub transport: PeekTransport,
}

/// Transport part of a [`PeekInfo`]: pre-parsed header fields and the
/// byte range of the transport payload within the original record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeekTransport {
    /// UDP datagram; payload spans `payload_off .. payload_off + payload_len`.
    Udp {
        /// Payload start, bytes from the beginning of the record.
        payload_off: usize,
        /// Payload length in bytes.
        payload_len: usize,
    },
    /// TCP segment; payload spans `payload_off .. payload_off + payload_len`.
    Tcp {
        /// Sequence number.
        seq: u32,
        /// Acknowledgment number.
        ack: u32,
        /// Control flags.
        flags: tcp::Flags,
        /// Receive window.
        window: u16,
        /// Payload start, bytes from the beginning of the record.
        payload_off: usize,
        /// Payload length in bytes.
        payload_len: usize,
    },
}

/// A header-only view of a record: the parsed header summary plus, for
/// UDP, the borrowed payload slice.
///
/// [`peek`] applies exactly the link/IP/transport validation of
/// [`dissect`] — it returns `Err` for precisely the records `dissect`
/// rejects (guaranteed by construction: `dissect` *is* `peek` followed by
/// [`dissect_from`]) — but never touches application payloads, making it
/// an order of magnitude cheaper. The sharded analysis pipeline uses it
/// to route records by flow, shipping [`Peek::info`] to the shard so the
/// header walk happens exactly once per record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Peek<'a> {
    /// Header fields and payload offsets; [`dissect_from`] resumes here.
    pub info: PeekInfo,
    /// UDP payload bytes; `None` when the packet is TCP.
    pub udp_payload: Option<&'a [u8]>,
}

impl Peek<'_> {
    /// The IP 5-tuple.
    pub fn five_tuple(&self) -> &FiveTuple {
        &self.info.five_tuple
    }
}

/// Parse the link/IP/transport headers once, recording payload byte
/// offsets so the dissection can be resumed later by [`dissect_from`].
/// Accepts and rejects exactly the records [`dissect`] does.
pub fn peek(data: &[u8], link_type: LinkType) -> Result<Peek<'_>> {
    let (link, ip_off) = match link_type {
        LinkType::Ethernet => {
            let eth = ethernet::Packet::new_checked(data)?;
            let repr = ethernet::Repr::parse(&eth);
            match repr.ethertype {
                EtherType::Ipv4 | EtherType::Ipv6 => {}
                _ => return Err(Error::Unsupported),
            }
            (Some(repr), ethernet::HEADER_LEN)
        }
        LinkType::RawIp => (None, 0),
        LinkType::Other(_) => return Err(Error::Unsupported),
    };
    let ip_bytes = &data[ip_off..];
    if ip_bytes.is_empty() {
        return Err(Error::Truncated);
    }
    let (src_ip, dst_ip, protocol, transport_off, ip_total_len) = match ip_bytes[0] >> 4 {
        4 => {
            let ip = ipv4::Packet::new_checked(ip_bytes)?;
            (
                IpAddr::V4(ip.src_addr()),
                IpAddr::V4(ip.dst_addr()),
                ip.protocol(),
                ip_off + ip.header_len(),
                ip.total_len() as usize,
            )
        }
        6 => {
            let ip = ipv6::Packet::new_checked(ip_bytes)?;
            (
                IpAddr::V6(ip.src_addr()),
                IpAddr::V6(ip.dst_addr()),
                ip.next_header(),
                ip_off + ipv6::HEADER_LEN,
                ipv6::HEADER_LEN + ip.payload_len() as usize,
            )
        }
        _ => return Err(Error::Malformed),
    };
    let transport_bytes = &data[transport_off..ip_off + ip_total_len];
    match protocol {
        Protocol::Udp => {
            let u = udp::Packet::new_checked(transport_bytes)?;
            let five_tuple = FiveTuple {
                src_ip,
                dst_ip,
                src_port: u.src_port(),
                dst_port: u.dst_port(),
                protocol: Protocol::Udp,
            };
            let payload = &transport_bytes[udp::HEADER_LEN..u.len() as usize];
            Ok(Peek {
                info: PeekInfo {
                    link,
                    five_tuple,
                    ip_total_len,
                    transport: PeekTransport::Udp {
                        payload_off: transport_off + udp::HEADER_LEN,
                        payload_len: payload.len(),
                    },
                },
                udp_payload: Some(payload),
            })
        }
        Protocol::Tcp => {
            let t = tcp::Packet::new_checked(transport_bytes)?;
            let hl = t.header_len();
            let payload_len = transport_bytes.len() - hl;
            Ok(Peek {
                info: PeekInfo {
                    link,
                    five_tuple: FiveTuple {
                        src_ip,
                        dst_ip,
                        src_port: t.src_port(),
                        dst_port: t.dst_port(),
                        protocol: Protocol::Tcp,
                    },
                    ip_total_len,
                    transport: PeekTransport::Tcp {
                        seq: t.seq_number(),
                        ack: t.ack_number(),
                        flags: t.flags(),
                        window: t.window(),
                        payload_off: transport_off + hl,
                        payload_len,
                    },
                },
                udp_payload: None,
            })
        }
        _ => Err(Error::Unsupported),
    }
}

/// Resume a full dissection from a [`PeekInfo`] over the *same* record
/// bytes the peek ran on. Infallible: every validation already happened
/// in [`peek`], only the application layer (STUN/Zoom classification)
/// remains.
///
/// # Panics
/// Panics if `data` is not the buffer (or an identical copy of the
/// buffer) that produced `info` — the recorded offsets would be out of
/// bounds.
pub fn dissect_from<'a>(
    info: &PeekInfo,
    ts_nanos: u64,
    data: &'a [u8],
    probe: impl Into<Probe>,
) -> Dissection<'a> {
    let probe = probe.into();
    let app = match info.transport {
        PeekTransport::Udp {
            payload_off,
            payload_len,
        } => classify_udp(
            &info.five_tuple,
            &data[payload_off..payload_off + payload_len],
            probe,
        ),
        PeekTransport::Tcp { .. } => App::Opaque,
    };
    assemble(info, ts_nanos, data, app)
}

/// Dissect one capture record: [`peek`] + [`dissect_from`] in one call.
///
/// Returns `Err` only for packets that cannot be interpreted at the IP
/// layer or below; an unparseable application payload simply yields
/// [`App::Opaque`].
pub fn dissect<'a>(
    ts_nanos: u64,
    data: &'a [u8],
    link_type: LinkType,
    probe: impl Into<Probe>,
) -> Result<Dissection<'a>> {
    let p = peek(data, link_type)?;
    Ok(dissect_from(&p.info, ts_nanos, data, probe))
}

/// Why a record was rejected by [`peek`]/[`dissect`], at per-stage
/// granularity for drop accounting.
///
/// [`Error`] alone cannot distinguish "not IP" from "not UDP/TCP" (both
/// surface as [`Error::Unsupported`]); [`drop_stage`] re-examines just the
/// link header to split them. This runs only on the (rare) drop path, so
/// the re-check costs nothing on the packet fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropStage {
    /// The capture's link type is one the dissector does not decode.
    UnsupportedLink,
    /// An Ethernet frame whose ethertype is neither IPv4 nor IPv6.
    NonIp,
    /// An IP packet carrying a protocol other than UDP or TCP.
    NonTransport,
    /// A header claimed more bytes than the record holds.
    Truncated,
    /// A structurally invalid header (bad version nibble, length field,
    /// or checksum).
    Malformed,
}

impl DropStage {
    /// Stable lower-case label, used as the metric name suffix.
    pub fn label(self) -> &'static str {
        match self {
            DropStage::UnsupportedLink => "unsupported_link",
            DropStage::NonIp => "non_ip",
            DropStage::NonTransport => "non_transport",
            DropStage::Truncated => "truncated",
            DropStage::Malformed => "malformed",
        }
    }
}

/// Classify a [`peek`]/[`dissect`] rejection into its [`DropStage`].
///
/// `data` and `link_type` must be the inputs that produced `err`; the
/// function inspects at most the two ethertype bytes to disambiguate the
/// [`Error::Unsupported`] cases, so it is O(1).
pub fn drop_stage(data: &[u8], link_type: LinkType, err: Error) -> DropStage {
    match err {
        Error::Truncated => DropStage::Truncated,
        Error::Malformed | Error::Checksum => DropStage::Malformed,
        Error::Unsupported => match link_type {
            LinkType::Other(_) => DropStage::UnsupportedLink,
            LinkType::Ethernet => {
                // peek returned Unsupported either at the ethertype check
                // or at the IP-protocol check; the frame is long enough to
                // hold an Ethernet header in both cases.
                match ethernet::Packet::new_checked(data) {
                    Ok(eth) => match eth.ethertype() {
                        EtherType::Ipv4 | EtherType::Ipv6 => DropStage::NonTransport,
                        _ => DropStage::NonIp,
                    },
                    Err(_) => DropStage::Truncated,
                }
            }
            // Raw IP has no link header to reject, so Unsupported can only
            // have come from the IP protocol field.
            LinkType::RawIp => DropStage::NonTransport,
        },
    }
}

/// Coarse packet class assigned by [`peek_batch`] from header fields and
/// the first payload bytes only — cheap enough to compute during the
/// header walk, precise enough to sort application-layer dispatch into
/// branch-predictable per-class loops.
///
/// The class *predicts* which `classify_udp`-internal branch the record
/// will take; [`dissect_batch`] still runs the full classification per
/// record, so a mispredicted class costs only a branch miss, never a
/// wrong result.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketClass {
    /// Port 3478 traffic or a payload passing the STUN magic-cookie check.
    Stun,
    /// Port 8801 (Zoom SFU) traffic whose first payload byte announces a
    /// media encapsulation ([`zoom::SFU_TYPE_MEDIA`]).
    ZmeMedia,
    /// Port 8801 traffic that is not a media frame: SFU control traffic.
    ZmeControl,
    /// A payload carrying the DTLS record signature (WebRTC session
    /// setup).
    Dtls,
    /// A version-2 RTP/RTCP-shaped payload outside every Zoom signal —
    /// native WebRTC media (SRTP/SRTCP) sorts here.
    Rtp,
    /// Valid UDP or TCP that matches no family's signals (P2P Zoom
    /// hides here until the STUN tracker flags the flow).
    NotZoom,
    /// [`peek`] rejected the record; the stored [`Error`] feeds
    /// [`drop_stage`] accounting.
    Undissectable,
}

impl PacketClass {
    /// Stable lower-case label for metrics and logs.
    pub fn label(self) -> &'static str {
        match self {
            PacketClass::Stun => "stun",
            PacketClass::ZmeMedia => "zme_media",
            PacketClass::ZmeControl => "zme_control",
            PacketClass::Dtls => "dtls",
            PacketClass::Rtp => "rtp",
            PacketClass::NotZoom => "not_zoom",
            PacketClass::Undissectable => "undissectable",
        }
    }
}

/// Number of classes that carry application-layer work (everything but
/// [`PacketClass::Undissectable`], which has nothing left to parse). The
/// slot order is the family×class dispatch order of [`dissect_batch`]:
/// shared STUN, then the Zoom family's classes, then WebRTC's, then the
/// residue.
const APP_CLASSES: usize = 6;

fn app_class_slot(class: PacketClass) -> Option<usize> {
    match class {
        PacketClass::Stun => Some(0),
        PacketClass::ZmeMedia => Some(1),
        PacketClass::ZmeControl => Some(2),
        PacketClass::Dtls => Some(3),
        PacketClass::Rtp => Some(4),
        PacketClass::NotZoom => Some(5),
        PacketClass::Undissectable => None,
    }
}

/// Caller-owned, reusable scratch space for [`peek_batch`] /
/// [`dissect_batch`]: per-record peek outcomes, [`PacketClass`] tags,
/// per-class index lists (the sorted dispatch order), and the
/// application-layer results. [`PeekArena::clear`] retains every
/// allocation, so a steady-state batch loop reuses one arena with zero
/// allocations once the high-water capacity is reached.
#[derive(Debug, Default)]
pub struct PeekArena {
    peeks: Vec<core::result::Result<PeekInfo, Error>>,
    classes: Vec<PacketClass>,
    apps: Vec<App>,
    /// Record indices per app-bearing class, in record order within each
    /// class. TCP records classify as `NotZoom` but are *not* indexed —
    /// their app layer is always [`App::Opaque`], so there is no work to
    /// sort.
    by_class: [Vec<u32>; APP_CLASSES],
}

impl PeekArena {
    /// Creates an empty arena; capacity grows on first use and is then
    /// retained across [`clear`](PeekArena::clear).
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the arena while keeping all capacity.
    pub fn clear(&mut self) {
        self.peeks.clear();
        self.classes.clear();
        self.apps.clear();
        for list in &mut self.by_class {
            list.clear();
        }
    }

    /// Number of records described by the last [`peek_batch`] run.
    pub fn len(&self) -> usize {
        self.peeks.len()
    }

    /// Whether the arena currently describes no records.
    pub fn is_empty(&self) -> bool {
        self.peeks.is_empty()
    }

    /// The peek outcome for record `index`: header info, or the error
    /// [`peek`] returned. Panics past the end of the last batch.
    pub fn peek(&self, index: usize) -> core::result::Result<&PeekInfo, Error> {
        self.peeks[index].as_ref().map_err(|e| *e)
    }

    /// The class tag assigned to record `index`.
    pub fn class(&self, index: usize) -> PacketClass {
        self.classes[index]
    }

    /// How many records of the last batch were tagged `class`.
    pub fn class_count(&self, class: PacketClass) -> usize {
        match app_class_slot(class) {
            Some(slot) => self.by_class[slot].len(),
            None => self.peeks.iter().filter(|p| p.is_err()).count(),
        }
    }

    /// Reassemble the full [`Dissection`] of record `index`, moving the
    /// application-layer result out of the arena (the slot is left
    /// [`App::Opaque`]). Requires a prior [`dissect_batch`] over the same
    /// `batch`; returns `None` for records [`peek`] rejected.
    ///
    /// Taking (rather than cloning) keeps the hot path allocation-free:
    /// a parsed [`ZoomPacket`] owns its RTCP list, and the consumer wants
    /// the value anyway.
    pub fn take_dissection<'a>(
        &mut self,
        batch: &'a crate::handoff::RecordBatch,
        index: usize,
    ) -> Option<Dissection<'a>> {
        let info = *self.peeks[index].as_ref().ok()?;
        let record = batch.get(index)?;
        let app = std::mem::replace(&mut self.apps[index], App::Opaque);
        Some(assemble(&info, record.ts_nanos, record.data, app))
    }
}

/// Hint the CPU to pull record `index`'s header bytes into cache while
/// the current record is still being parsed. No-op past the end of the
/// batch and on architectures without a stable prefetch intrinsic.
#[inline]
pub fn prefetch_record(batch: &crate::handoff::RecordBatch, index: usize) {
    if let Some(r) = batch.get(index) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: prefetch is a pure performance hint; any address is
        // allowed, and this one is a live slice pointer anyway.
        unsafe {
            core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                r.data.as_ptr() as *const i8,
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = r;
    }
}

/// Batch counterpart of [`peek`]: one pass over `batch` in record order,
/// filling `arena` with each record's [`PeekInfo`] (or rejection error)
/// and a [`PacketClass`] tag, and building the per-class index lists that
/// [`dissect_batch`] dispatches from. Prefetches the next record's header
/// bytes ahead of each parse.
///
/// Accepts and rejects exactly what per-record [`peek`] does, record by
/// record (pinned by tests).
pub fn peek_batch(batch: &crate::handoff::RecordBatch, link_type: LinkType, arena: &mut PeekArena) {
    arena.clear();
    let n = batch.len();
    arena.peeks.reserve(n);
    arena.classes.reserve(n);
    for index in 0..n {
        prefetch_record(batch, index + 1);
        // Index came from the 0..n loop: get() cannot fail.
        let record = batch.get(index).expect("index in bounds");
        let (outcome, class) = match peek(record.data, link_type) {
            Ok(p) => {
                let class = match p.udp_payload {
                    Some(payload) => {
                        let ft = &p.info.five_tuple;
                        // Shared STUN signal first, then each family's
                        // peek prediction in dispatch order.
                        if ft.involves_port(stun::STUN_PORT) || stun::looks_like_stun(payload) {
                            PacketClass::Stun
                        } else {
                            ZoomFamily
                                .peek_class(ft, payload)
                                .or_else(|| WebrtcFamily.peek_class(ft, payload))
                                .unwrap_or(PacketClass::NotZoom)
                        }
                    }
                    // TCP: valid headers, no UDP app layer to classify.
                    None => PacketClass::NotZoom,
                };
                if matches!(p.info.transport, PeekTransport::Udp { .. }) {
                    if let Some(slot) = app_class_slot(class) {
                        arena.by_class[slot].push(index as u32);
                    }
                }
                (Ok(p.info), class)
            }
            Err(e) => (Err(e), PacketClass::Undissectable),
        };
        arena.peeks.push(outcome);
        arena.classes.push(class);
    }
}

/// Batch counterpart of [`dissect`]: [`peek_batch`] plus application-layer
/// classification dispatched **class by class** — all STUN records, then
/// all ZME media, then ZME control, then not-zoom — so each inner loop
/// takes the same branches for every record. Results land in the arena in
/// record order; [`PeekArena::take_dissection`] reassembles any record's
/// full [`Dissection`].
///
/// Only the (stateless) parsing is reordered; callers consume records in
/// original order, so output is byte-identical to a per-record
/// [`dissect`] loop (pinned by tests and the differential suites).
pub fn dissect_batch(
    batch: &crate::handoff::RecordBatch,
    link_type: LinkType,
    probe: impl Into<Probe>,
    arena: &mut PeekArena,
) {
    let probe = probe.into();
    peek_batch(batch, link_type, arena);
    arena.apps.resize(batch.len(), App::Opaque);
    for slot in 0..APP_CLASSES {
        for i in 0..arena.by_class[slot].len() {
            let index = arena.by_class[slot][i] as usize;
            if let Some(&next) = arena.by_class[slot].get(i + 1) {
                prefetch_record(batch, next as usize);
            }
            // Indexed records always have Ok peeks with UDP transport
            // (peek_batch only lists those).
            let info = arena.peeks[index].as_ref().expect("indexed record peeked ok");
            let PeekTransport::Udp {
                payload_off,
                payload_len,
            } = info.transport
            else {
                unreachable!("indexed record is UDP");
            };
            let data = batch.get(index).expect("index in bounds").data;
            let payload = &data[payload_off..payload_off + payload_len];
            arena.apps[index] = classify_udp(&info.five_tuple, payload, probe);
        }
    }
}

/// Build a [`Dissection`] from pre-computed parts (shared by
/// [`dissect_from`] and [`PeekArena::take_dissection`]).
fn assemble<'a>(info: &PeekInfo, ts_nanos: u64, data: &'a [u8], app: App) -> Dissection<'a> {
    match info.transport {
        PeekTransport::Udp {
            payload_off,
            payload_len,
        } => Dissection {
            ts_nanos,
            link: info.link,
            five_tuple: info.five_tuple,
            ip_total_len: info.ip_total_len,
            transport: Transport::Udp { payload_len },
            app,
            payload: &data[payload_off..payload_off + payload_len],
        },
        PeekTransport::Tcp {
            seq,
            ack,
            flags,
            window,
            payload_off,
            payload_len,
        } => Dissection {
            ts_nanos,
            link: info.link,
            five_tuple: info.five_tuple,
            ip_total_len: info.ip_total_len,
            transport: Transport::Tcp {
                seq,
                ack,
                flags,
                window,
                payload_len,
            },
            app,
            payload: &data[payload_off..payload_off + payload_len],
        },
    }
}

fn classify_udp(five_tuple: &FiveTuple, payload: &[u8], probe: Probe) -> App {
    // STUN first: port 3478 traffic, or anything that passes the magic
    // cookie check. Both families signal sessions via STUN and none of
    // their framings can be confused with it (the leading bits differ),
    // so the check is shared and runs before any family.
    if let Some(app) = family::classify_stun(five_tuple, payload) {
        return app;
    }
    // Families in fixed dispatch order; the first `Some` claims the
    // packet (including a Zoom claim of malformed port-8801 traffic).
    if probe.zoom {
        if let Some(app) = ZoomFamily.classify(five_tuple, payload, probe) {
            return app;
        }
    }
    if probe.webrtc == WebrtcProbe::Auto {
        if let Some(app) = WebrtcFamily.classify(five_tuple, payload, probe) {
            return app;
        }
    }
    App::Opaque
}

/// Render a Wireshark-style field tree for a dissection — the textual
/// counterpart of the plugin screenshot in Fig. 18 of the paper.
pub fn render_tree(d: &Dissection<'_>) -> String {
    // Sized for the deepest tree (SFU + media + RTP + RTCP lines, ~12
    // lines of ≤ 80 chars); one up-front allocation instead of repeated
    // doubling while the lines accumulate.
    let mut out = String::with_capacity(1024);
    let _ = writeln!(
        out,
        "Frame: {} bytes on wire, ts={} ns",
        d.ip_total_len, d.ts_nanos
    );
    if let Some(link) = &d.link {
        let _ = writeln!(
            out,
            "Ethernet II, Src: {}, Dst: {}",
            link.src_addr, link.dst_addr
        );
    }
    let _ = writeln!(
        out,
        "Internet Protocol, Src: {}, Dst: {}",
        d.five_tuple.src_ip, d.five_tuple.dst_ip
    );
    match &d.transport {
        Transport::Udp { payload_len } => {
            let _ = writeln!(
                out,
                "User Datagram Protocol, Src Port: {}, Dst Port: {}, Payload: {} bytes",
                d.five_tuple.src_port, d.five_tuple.dst_port, payload_len
            );
        }
        Transport::Tcp {
            seq,
            ack,
            flags,
            payload_len,
            ..
        } => {
            let _ = writeln!(
                out,
                "Transmission Control Protocol, Src Port: {}, Dst Port: {}, Seq: {}, Ack: {}, \
                 Flags: [{}{}{}{}], Payload: {} bytes",
                d.five_tuple.src_port,
                d.five_tuple.dst_port,
                seq,
                ack,
                if flags.syn { "S" } else { "" },
                if flags.ack { "A" } else { "" },
                if flags.psh { "P" } else { "" },
                if flags.fin { "F" } else { "" },
                payload_len
            );
        }
    }
    match &d.app {
        App::Stun(s) => {
            let _ = writeln!(out, "Session Traversal Utilities for NAT");
            let _ = writeln!(out, "    Message Type: {:?}", s.message_type);
            if let Some(addr) = s.xor_mapped_address {
                let _ = writeln!(out, "    XOR-MAPPED-ADDRESS: {addr}");
            }
        }
        App::Zoom(framing, z) => {
            if let Some(sfu) = &z.sfu {
                let _ = writeln!(out, "Zoom SFU Encapsulation");
                let _ = writeln!(out, "    Type: {}", sfu.encap_type);
                let _ = writeln!(out, "    Sequence: {}", sfu.sequence);
                let _ = writeln!(
                    out,
                    "    Direction: {} ({})",
                    sfu.direction,
                    if sfu.direction == zoom::DIR_FROM_SFU {
                        "from SFU"
                    } else {
                        "to SFU"
                    }
                );
            }
            let _ = writeln!(
                out,
                "Zoom Media Encapsulation ({})",
                match framing {
                    Framing::Server => "server-based",
                    Framing::P2p => "P2P",
                }
            );
            let _ = writeln!(
                out,
                "    Type: {} ({})",
                z.media.media_type.to_byte(),
                z.media.media_type.label()
            );
            let _ = writeln!(out, "    Sequence: {}", z.media.sequence);
            let _ = writeln!(out, "    Timestamp: {}", z.media.timestamp);
            if let Some(fs) = z.media.frame_sequence {
                let _ = writeln!(out, "    Frame Sequence: {fs}");
            }
            if let Some(pf) = z.media.packets_in_frame {
                let _ = writeln!(out, "    Packets in Frame: {pf}");
            }
            if let Some(rtp) = &z.rtp {
                let _ = writeln!(out, "Real-Time Transport Protocol");
                let _ = writeln!(out, "    Payload Type: {}", rtp.payload_type);
                let _ = writeln!(out, "    Sequence Number: {}", rtp.sequence_number);
                let _ = writeln!(out, "    Timestamp: {}", rtp.timestamp);
                let _ = writeln!(out, "    SSRC: 0x{:08x}", rtp.ssrc);
                let _ = writeln!(out, "    Marker: {}", rtp.marker);
                let _ = writeln!(
                    out,
                    "    Media Payload: {} bytes (encrypted)",
                    z.media_payload_len
                );
            }
            for item in &z.rtcp {
                let _ = writeln!(out, "Real-Time Control Protocol: {item:?}");
            }
        }
        App::Webrtc(pdu) => match pdu {
            crate::webrtc::Pdu::Dtls(r) => {
                let _ = writeln!(out, "Datagram Transport Layer Security");
                let _ = writeln!(out, "    Content Type: {}", r.content_type);
                let _ = writeln!(out, "    Epoch: {}", r.epoch);
                let _ = writeln!(out, "    Sequence Number: {}", r.sequence);
                let _ = writeln!(out, "    Length: {}", r.length);
            }
            crate::webrtc::Pdu::Srtp(s) => {
                let _ = writeln!(out, "Secure Real-Time Transport Protocol");
                let _ = writeln!(out, "    Payload Type: {}", s.rtp.payload_type);
                let _ = writeln!(out, "    Sequence Number: {}", s.rtp.sequence_number);
                let _ = writeln!(out, "    Timestamp: {}", s.rtp.timestamp);
                let _ = writeln!(out, "    SSRC: 0x{:08x}", s.rtp.ssrc);
                let _ = writeln!(out, "    Marker: {}", s.rtp.marker);
                let _ = writeln!(
                    out,
                    "    Media Payload: {} bytes (encrypted)",
                    s.payload_len
                );
            }
            crate::webrtc::Pdu::Srtcp(r) => {
                let _ = writeln!(out, "Secure Real-Time Control Protocol");
                let _ = writeln!(out, "    Packet Type: {}", r.packet_type);
                let _ = writeln!(out, "    SSRC: 0x{:08x}", r.ssrc);
            }
        },
        App::Opaque => {
            let _ = writeln!(out, "Data: {} bytes", d.payload.len());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose;
    use crate::zoom::ZOOM_SFU_PORT;
    use std::net::Ipv4Addr;

    fn server_video_packet() -> Vec<u8> {
        let zoom_payload = zoom::Builder {
            sfu: Some(zoom::SfuEncapRepr {
                encap_type: zoom::SFU_TYPE_MEDIA,
                sequence: 9,
                direction: zoom::DIR_FROM_SFU,
            }),
            media: zoom::MediaEncapRepr {
                media_type: zoom::MediaType::Video,
                sequence: 100,
                timestamp: 9000,
                frame_sequence: Some(5),
                packets_in_frame: Some(2),
            },
            rtp: Some(crate::rtp::Repr {
                marker: false,
                payload_type: 98,
                sequence_number: 700,
                timestamp: 90_000,
                ssrc: 0x99,
                csrc_count: 0,
                has_extension: false,
            }),
            payload: vec![0x5A; 64],
        }
        .build();
        compose::udp_ipv4_ethernet(
            Ipv4Addr::new(52, 202, 62, 1),
            Ipv4Addr::new(10, 8, 0, 3),
            ZOOM_SFU_PORT,
            50_111,
            &zoom_payload,
        )
    }

    #[test]
    fn dissects_server_video() {
        let data = server_video_packet();
        let d = dissect(42, &data, LinkType::Ethernet, P2pProbe::Off).unwrap();
        assert_eq!(d.five_tuple.src_port, ZOOM_SFU_PORT);
        let z = d.zoom().expect("zoom parsed");
        assert_eq!(z.media.media_type, zoom::MediaType::Video);
        assert_eq!(z.rtp.as_ref().unwrap().ssrc, 0x99);
        let tree = render_tree(&d);
        assert!(tree.contains("Zoom SFU Encapsulation"));
        assert!(tree.contains("RTP: Video") || tree.contains("Payload Type: 98"));
    }

    #[test]
    fn opaque_for_unknown_udp() {
        let data = compose::udp_ipv4_ethernet(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1234,
            5678,
            b"not zoom at all",
        );
        let d = dissect(0, &data, LinkType::Ethernet, P2pProbe::Off).unwrap();
        assert_eq!(d.app, App::Opaque);
    }

    #[test]
    fn stun_classified_on_3478() {
        let msg = stun::Repr {
            message_type: stun::MessageType::BindingRequest,
            transaction_id: [1; 12],
            xor_mapped_address: None,
        };
        let mut payload = vec![0u8; msg.buffer_len()];
        msg.emit(&mut payload);
        let data = compose::udp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 0, 3),
            Ipv4Addr::new(52, 202, 62, 2),
            50_111,
            stun::STUN_PORT,
            &payload,
        );
        let d = dissect(0, &data, LinkType::Ethernet, P2pProbe::Off).unwrap();
        assert!(d.is_stun());
    }

    #[test]
    fn p2p_probe_finds_zoom() {
        let zoom_payload = zoom::Builder {
            sfu: None,
            media: zoom::MediaEncapRepr {
                media_type: zoom::MediaType::Audio,
                sequence: 4,
                timestamp: 5,
                frame_sequence: None,
                packets_in_frame: None,
            },
            rtp: Some(crate::rtp::Repr {
                marker: false,
                payload_type: 112,
                sequence_number: 20,
                timestamp: 320,
                ssrc: 0x11,
                csrc_count: 0,
                has_extension: false,
            }),
            payload: vec![0xEE; 80],
        }
        .build();
        let data = compose::udp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 0, 3),
            Ipv4Addr::new(10, 9, 1, 4),
            50_111,
            61_234,
            &zoom_payload,
        );
        let off = dissect(0, &data, LinkType::Ethernet, P2pProbe::Off).unwrap();
        assert_eq!(off.app, App::Opaque);
        let on = dissect(0, &data, LinkType::Ethernet, P2pProbe::Auto).unwrap();
        match on.app {
            App::Zoom(Framing::P2p, ref z) => {
                assert_eq!(z.media.media_type, zoom::MediaType::Audio)
            }
            ref other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn webrtc_probe_finds_dtls_and_srtp() {
        let dtls = {
            let repr = crate::webrtc::DtlsRepr {
                content_type: crate::webrtc::DTLS_HANDSHAKE,
                version_minor: 0xfd,
                epoch: 0,
                sequence: 1,
                length: 16,
            };
            let mut buf = vec![0u8; repr.buffer_len()];
            repr.emit(&mut buf);
            buf
        };
        let data = compose::udp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 0, 3),
            Ipv4Addr::new(203, 0, 113, 7),
            50_111,
            61_234,
            &dtls,
        );
        // Default probe: WebRTC framing stays opaque (byte-identity with
        // the pre-family dissector).
        let off = dissect(0, &data, LinkType::Ethernet, Probe::default()).unwrap();
        assert_eq!(off.app, App::Opaque);
        // The historic P2pProbe call shape still compiles and behaves
        // identically.
        let legacy = dissect(0, &data, LinkType::Ethernet, P2pProbe::Auto).unwrap();
        assert_eq!(legacy.app, App::Opaque);
        // WebRTC probing on: the DTLS record parses and renders.
        let probe = Probe {
            webrtc: WebrtcProbe::Auto,
            ..Probe::default()
        };
        let on = dissect(0, &data, LinkType::Ethernet, probe).unwrap();
        match &on.app {
            App::Webrtc(crate::webrtc::Pdu::Dtls(r)) => assert_eq!(r.length, 16),
            other => panic!("unexpected {other:?}"),
        }
        let tree = render_tree(&on);
        assert!(tree.contains("Datagram Transport Layer Security"));

        // SRTP: cleartext RTP header over ephemeral ports.
        let rtp = crate::rtp::Repr {
            marker: true,
            payload_type: 96,
            sequence_number: 9,
            timestamp: 3_000,
            ssrc: 0x42,
            csrc_count: 0,
            has_extension: false,
        };
        let mut payload = vec![0u8; rtp.header_len() + 50];
        rtp.emit(&mut crate::rtp::Packet::new_unchecked(&mut payload[..]));
        let data = compose::udp_ipv4_ethernet(
            Ipv4Addr::new(203, 0, 113, 7),
            Ipv4Addr::new(10, 8, 0, 3),
            61_234,
            50_111,
            &payload,
        );
        let on = dissect(0, &data, LinkType::Ethernet, probe).unwrap();
        match &on.app {
            App::Webrtc(crate::webrtc::Pdu::Srtp(s)) => {
                assert_eq!(s.rtp.payload_type, 96);
                assert_eq!(s.payload_len, 50 - crate::webrtc::SRTP_AUTH_TAG_LEN);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(render_tree(&on).contains("Secure Real-Time Transport Protocol"));
    }

    #[test]
    fn tcp_dissects_with_seq_ack() {
        let data = compose::tcp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 0, 3),
            Ipv4Addr::new(170, 114, 0, 5),
            50_000,
            443,
            1000,
            2000,
            tcp::Flags {
                ack: true,
                ..Default::default()
            },
            b"x",
        );
        let d = dissect(0, &data, LinkType::Ethernet, P2pProbe::Off).unwrap();
        match d.transport {
            Transport::Tcp { seq, ack, .. } => {
                assert_eq!(seq, 1000);
                assert_eq!(ack, 2000);
            }
            _ => panic!("expected tcp"),
        }
    }

    #[test]
    fn peek_offsets_resume_identical_dissection() {
        // dissect == peek + dissect_from holds by construction; pin the
        // recorded offsets against the borrowed slices so a regression in
        // the offset arithmetic cannot hide behind that identity.
        let data = server_video_packet();
        let p = peek(&data, LinkType::Ethernet).unwrap();
        assert_eq!(p.info.five_tuple.src_port, ZOOM_SFU_PORT);
        let PeekTransport::Udp {
            payload_off,
            payload_len,
        } = p.info.transport
        else {
            panic!("expected udp transport");
        };
        assert_eq!(
            &data[payload_off..payload_off + payload_len],
            p.udp_payload.unwrap()
        );
        let d = dissect_from(&p.info, 42, &data, P2pProbe::Off);
        assert_eq!(d, dissect(42, &data, LinkType::Ethernet, P2pProbe::Off).unwrap());
        assert!(d.zoom().is_some());

        // TCP: header fields carried through PeekInfo verbatim.
        let tcp_data = compose::tcp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 0, 3),
            Ipv4Addr::new(170, 114, 0, 5),
            50_000,
            443,
            7_000,
            8_000,
            tcp::Flags {
                ack: true,
                psh: true,
                ..Default::default()
            },
            b"abc",
        );
        let p = peek(&tcp_data, LinkType::Ethernet).unwrap();
        assert!(p.udp_payload.is_none());
        let d = dissect_from(&p.info, 7, &tcp_data, P2pProbe::Off);
        assert_eq!(
            d,
            dissect(7, &tcp_data, LinkType::Ethernet, P2pProbe::Off).unwrap()
        );
        match d.transport {
            Transport::Tcp {
                seq,
                ack,
                payload_len,
                ..
            } => {
                assert_eq!((seq, ack, payload_len), (7_000, 8_000, 3));
            }
            _ => panic!("expected tcp"),
        }
    }

    #[test]
    fn peek_rejects_exactly_what_dissect_rejects() {
        let mut arp = server_video_packet();
        arp[12] = 0x08;
        arp[13] = 0x06;
        for data in [&b"x"[..], &[][..], &arp[..], &[0u8; 64][..]] {
            for link in [LinkType::Ethernet, LinkType::RawIp, LinkType::Other(9)] {
                assert_eq!(
                    peek(data, link).err(),
                    dissect(0, data, link, P2pProbe::Off).err(),
                    "link {link:?}, {} bytes",
                    data.len()
                );
            }
        }
    }

    #[test]
    fn render_tree_known_packet_output() {
        // A fully deterministic packet → exact rendered tree. compose
        // derives MACs 02:00:<ip octets> from the addresses.
        let data = compose::udp_ipv4_ethernet(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1234,
            5678,
            b"not zoom at all",
        );
        let d = dissect(7, &data, LinkType::Ethernet, P2pProbe::Off).unwrap();
        let tree = render_tree(&d);
        assert_eq!(
            tree,
            "Frame: 43 bytes on wire, ts=7 ns\n\
             Ethernet II, Src: 02:00:01:01:01:01, Dst: 02:00:02:02:02:02\n\
             Internet Protocol, Src: 1.1.1.1, Dst: 2.2.2.2\n\
             User Datagram Protocol, Src Port: 1234, Dst Port: 5678, Payload: 15 bytes\n\
             Data: 15 bytes\n"
        );
        // The pre-reserved capacity covered the whole render: no growth.
        assert_eq!(tree.capacity(), 1024);
    }

    #[test]
    fn non_ip_ethertype_unsupported() {
        let mut data = server_video_packet();
        data[12] = 0x08;
        data[13] = 0x06; // ARP
        assert_eq!(
            dissect(0, &data, LinkType::Ethernet, P2pProbe::Off).unwrap_err(),
            Error::Unsupported
        );
    }

    #[test]
    fn drop_stage_classifies_every_rejection() {
        // Unknown link type.
        let err = peek(&[0u8; 64], LinkType::Other(42)).unwrap_err();
        assert_eq!(
            drop_stage(&[0u8; 64], LinkType::Other(42), err),
            DropStage::UnsupportedLink
        );

        // ARP ethertype: not IP.
        let mut arp = server_video_packet();
        arp[12] = 0x08;
        arp[13] = 0x06;
        let err = peek(&arp, LinkType::Ethernet).unwrap_err();
        assert_eq!(drop_stage(&arp, LinkType::Ethernet, err), DropStage::NonIp);

        // ICMP protocol inside a valid IPv4 header: not UDP/TCP. Rebuild
        // the header checksum so the rejection is really the protocol.
        let mut icmp = server_video_packet();
        icmp[ethernet::HEADER_LEN + 9] = 1; // protocol = ICMP
        let mut ip = ipv4::Packet::new_unchecked(&mut icmp[ethernet::HEADER_LEN..]);
        ip.fill_checksum();
        let err = peek(&icmp, LinkType::Ethernet).unwrap_err();
        assert_eq!(
            drop_stage(&icmp, LinkType::Ethernet, err),
            DropStage::NonTransport
        );
        // Same packet as a raw-IP capture.
        let raw = &icmp[ethernet::HEADER_LEN..];
        let err = peek(raw, LinkType::RawIp).unwrap_err();
        assert_eq!(drop_stage(raw, LinkType::RawIp, err), DropStage::NonTransport);

        // Truncated frame.
        let err = peek(b"x", LinkType::Ethernet).unwrap_err();
        assert_eq!(
            drop_stage(b"x", LinkType::Ethernet, err),
            DropStage::Truncated
        );

        // Bad IP version nibble over raw IP: malformed.
        let junk = [0xF0u8; 40];
        let err = peek(&junk, LinkType::RawIp).unwrap_err();
        assert_eq!(drop_stage(&junk, LinkType::RawIp, err), DropStage::Malformed);

        // Labels are stable metric suffixes.
        assert_eq!(DropStage::NonIp.label(), "non_ip");
        assert_eq!(DropStage::UnsupportedLink.label(), "unsupported_link");
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use crate::compose;
    use crate::handoff::RecordBatch;
    use crate::zoom::ZOOM_SFU_PORT;
    use std::net::Ipv4Addr;

    /// A mixed batch exercising every class: STUN, ZME media, ZME
    /// control, plain UDP, TCP, P2P-framed Zoom, and two rejects.
    fn mixed_batch() -> RecordBatch {
        let mut batch = RecordBatch::new();
        let mut push = |data: &[u8]| {
            let ts = 1_000 * (batch.len() as u64 + 1);
            batch.push(ts, data.len() as u32, data);
        };

        // STUN binding request on 3478.
        let msg = stun::Repr {
            message_type: stun::MessageType::BindingRequest,
            transaction_id: [7; 12],
            xor_mapped_address: None,
        };
        let mut stun_payload = vec![0u8; msg.buffer_len()];
        msg.emit(&mut stun_payload);
        push(&compose::udp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 0, 3),
            Ipv4Addr::new(52, 202, 62, 2),
            50_111,
            stun::STUN_PORT,
            &stun_payload,
        ));

        // ZME media: server-framed video to port 8801.
        let media = zoom::Builder {
            sfu: Some(zoom::SfuEncapRepr {
                encap_type: zoom::SFU_TYPE_MEDIA,
                sequence: 9,
                direction: zoom::DIR_FROM_SFU,
            }),
            media: zoom::MediaEncapRepr {
                media_type: zoom::MediaType::Video,
                sequence: 100,
                timestamp: 9000,
                frame_sequence: Some(5),
                packets_in_frame: Some(2),
            },
            rtp: Some(crate::rtp::Repr {
                marker: false,
                payload_type: 98,
                sequence_number: 700,
                timestamp: 90_000,
                ssrc: 0x99,
                csrc_count: 0,
                has_extension: false,
            }),
            payload: vec![0x5A; 64],
        }
        .build();
        push(&compose::udp_ipv4_ethernet(
            Ipv4Addr::new(52, 202, 62, 1),
            Ipv4Addr::new(10, 8, 0, 3),
            ZOOM_SFU_PORT,
            50_111,
            &media,
        ));

        // ZME control: port 8801, first byte is not SFU_TYPE_MEDIA.
        push(&compose::udp_ipv4_ethernet(
            Ipv4Addr::new(52, 202, 62, 1),
            Ipv4Addr::new(10, 8, 0, 3),
            ZOOM_SFU_PORT,
            50_111,
            &[0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x02],
        ));

        // Plain UDP, nothing Zoom about it.
        push(&compose::udp_ipv4_ethernet(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1234,
            5678,
            b"not zoom at all",
        ));

        // TCP segment.
        push(&compose::tcp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 0, 3),
            Ipv4Addr::new(170, 114, 0, 5),
            50_000,
            443,
            1000,
            2000,
            tcp::Flags {
                ack: true,
                ..Default::default()
            },
            b"x",
        ));

        // P2P-framed Zoom on ephemeral ports (classifies NotZoom until a
        // probe runs).
        let p2p = zoom::Builder {
            sfu: None,
            media: zoom::MediaEncapRepr {
                media_type: zoom::MediaType::Audio,
                sequence: 4,
                timestamp: 5,
                frame_sequence: None,
                packets_in_frame: None,
            },
            rtp: Some(crate::rtp::Repr {
                marker: false,
                payload_type: 112,
                sequence_number: 20,
                timestamp: 320,
                ssrc: 0x11,
                csrc_count: 0,
                has_extension: false,
            }),
            payload: vec![0xEE; 80],
        }
        .build();
        push(&compose::udp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 0, 3),
            Ipv4Addr::new(10, 9, 1, 4),
            50_111,
            61_234,
            &p2p,
        ));

        // Two rejects: an ARP ethertype and a truncated frame.
        let mut arp = compose::udp_ipv4_ethernet(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1,
            2,
            b"zz",
        );
        arp[12] = 0x08;
        arp[13] = 0x06;
        push(&arp);
        push(b"x");

        batch
    }

    #[test]
    fn peek_batch_matches_per_record_peek() {
        let batch = mixed_batch();
        let mut arena = PeekArena::new();
        peek_batch(&batch, LinkType::Ethernet, &mut arena);
        assert_eq!(arena.len(), batch.len());
        for (i, r) in batch.iter().enumerate() {
            match peek(r.data, LinkType::Ethernet) {
                Ok(p) => assert_eq!(arena.peek(i).unwrap(), &p.info, "record {i}"),
                Err(e) => {
                    assert_eq!(arena.peek(i).unwrap_err(), e, "record {i}");
                    assert_eq!(arena.class(i), PacketClass::Undissectable);
                }
            }
        }
    }

    #[test]
    fn peek_batch_assigns_expected_classes() {
        let batch = mixed_batch();
        let mut arena = PeekArena::new();
        peek_batch(&batch, LinkType::Ethernet, &mut arena);
        let classes: Vec<PacketClass> = (0..batch.len()).map(|i| arena.class(i)).collect();
        assert_eq!(
            classes,
            vec![
                PacketClass::Stun,
                PacketClass::ZmeMedia,
                PacketClass::ZmeControl,
                PacketClass::NotZoom,
                PacketClass::NotZoom, // TCP
                PacketClass::NotZoom, // P2P Zoom hides here pre-probe
                PacketClass::Undissectable,
                PacketClass::Undissectable,
            ]
        );
        assert_eq!(arena.class_count(PacketClass::Stun), 1);
        assert_eq!(arena.class_count(PacketClass::ZmeMedia), 1);
        assert_eq!(arena.class_count(PacketClass::ZmeControl), 1);
        // TCP is NotZoom by class but carries no app work to index.
        assert_eq!(arena.class_count(PacketClass::NotZoom), 2);
        assert_eq!(arena.class_count(PacketClass::Undissectable), 2);
        assert_eq!(PacketClass::ZmeMedia.label(), "zme_media");
    }

    #[test]
    fn dissect_batch_matches_per_record_dissect() {
        let batch = mixed_batch();
        for probe in [P2pProbe::Off, P2pProbe::Auto] {
            let mut arena = PeekArena::new();
            dissect_batch(&batch, LinkType::Ethernet, probe, &mut arena);
            for (i, r) in batch.iter().enumerate() {
                let expected = dissect(r.ts_nanos, r.data, LinkType::Ethernet, probe);
                let got = arena.take_dissection(&batch, i);
                match (expected, got) {
                    (Ok(e), Some(g)) => assert_eq!(e, g, "record {i}, probe {probe:?}"),
                    (Err(_), None) => {}
                    (e, g) => panic!("record {i} mismatch: {e:?} vs {g:?}"),
                }
            }
        }
    }

    #[test]
    fn arena_clear_retains_capacity_across_batches() {
        let batch = mixed_batch();
        let mut arena = PeekArena::new();
        dissect_batch(&batch, LinkType::Ethernet, P2pProbe::Off, &mut arena);
        let caps = (
            arena.peeks.capacity(),
            arena.classes.capacity(),
            arena.apps.capacity(),
        );
        dissect_batch(&batch, LinkType::Ethernet, P2pProbe::Off, &mut arena);
        assert_eq!(
            caps,
            (
                arena.peeks.capacity(),
                arena.classes.capacity(),
                arena.apps.capacity(),
            )
        );
        assert_eq!(arena.len(), batch.len());
    }

    #[test]
    fn webrtc_records_sort_into_their_own_classes() {
        // Append WebRTC-shaped records to the mixed batch: they take the
        // Dtls/Rtp dispatch classes without disturbing the Zoom classes.
        let mut batch = mixed_batch();
        let zoom_len = batch.len();
        let dtls = {
            let repr = crate::webrtc::DtlsRepr {
                content_type: crate::webrtc::DTLS_HANDSHAKE,
                version_minor: 0xfd,
                epoch: 0,
                sequence: 0,
                length: 8,
            };
            let mut buf = vec![0u8; repr.buffer_len()];
            repr.emit(&mut buf);
            buf
        };
        let dtls_rec = compose::udp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 0, 3),
            Ipv4Addr::new(203, 0, 113, 7),
            50_111,
            61_234,
            &dtls,
        );
        batch.push(9_000, dtls_rec.len() as u32, &dtls_rec);
        let rtp = crate::rtp::Repr {
            marker: false,
            payload_type: 111,
            sequence_number: 1,
            timestamp: 960,
            ssrc: 0x7,
            csrc_count: 0,
            has_extension: false,
        };
        let mut srtp = vec![0u8; rtp.header_len() + 40];
        rtp.emit(&mut crate::rtp::Packet::new_unchecked(&mut srtp[..]));
        let srtp_rec = compose::udp_ipv4_ethernet(
            Ipv4Addr::new(203, 0, 113, 7),
            Ipv4Addr::new(10, 8, 0, 3),
            61_234,
            50_111,
            &srtp,
        );
        batch.push(10_000, srtp_rec.len() as u32, &srtp_rec);

        let mut arena = PeekArena::new();
        peek_batch(&batch, LinkType::Ethernet, &mut arena);
        assert_eq!(arena.class(zoom_len), PacketClass::Dtls);
        assert_eq!(arena.class(zoom_len + 1), PacketClass::Rtp);
        assert_eq!(arena.class_count(PacketClass::Dtls), 1);
        assert_eq!(arena.class_count(PacketClass::Rtp), 1);
        assert_eq!(PacketClass::Dtls.label(), "dtls");
        assert_eq!(PacketClass::Rtp.label(), "rtp");
        // The Zoom-side classes are exactly what the Zoom-only batch had.
        assert_eq!(arena.class_count(PacketClass::Stun), 1);
        assert_eq!(arena.class_count(PacketClass::ZmeMedia), 1);
        assert_eq!(arena.class_count(PacketClass::ZmeControl), 1);
        assert_eq!(arena.class_count(PacketClass::NotZoom), 2);

        // Batched dispatch still matches per-record dissection with a
        // WebRTC-probing configuration.
        let probe = Probe {
            webrtc: WebrtcProbe::Auto,
            ..Probe::default()
        };
        let mut arena = PeekArena::new();
        dissect_batch(&batch, LinkType::Ethernet, probe, &mut arena);
        for (i, r) in batch.iter().enumerate() {
            let expected = dissect(r.ts_nanos, r.data, LinkType::Ethernet, probe);
            let got = arena.take_dissection(&batch, i);
            match (expected, got) {
                (Ok(e), Some(g)) => assert_eq!(e, g, "record {i}"),
                (Err(_), None) => {}
                (e, g) => panic!("record {i} mismatch: {e:?} vs {g:?}"),
            }
        }
    }

    #[test]
    fn prefetch_hint_is_safe_at_any_index() {
        let batch = mixed_batch();
        for i in 0..batch.len() + 2 {
            prefetch_record(&batch, i);
        }
        prefetch_record(&RecordBatch::new(), 0);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::ipv6;
    use crate::udp;
    use std::net::Ipv6Addr;

    /// Hand-compose an IPv6/UDP packet (no Ethernet).
    fn udp_ipv6_raw(payload: &[u8]) -> Vec<u8> {
        let src: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let dst: Ipv6Addr = "2001:db8::2".parse().unwrap();
        let udp_repr = udp::Repr {
            src_port: 5_000,
            dst_port: 8801,
            payload_len: payload.len(),
        };
        let ip_repr = ipv6::Repr {
            src_addr: src,
            dst_addr: dst,
            next_header: crate::ipv4::Protocol::Udp,
            payload_len: udp_repr.total_len(),
            hop_limit: 64,
        };
        let mut buf = vec![0u8; ip_repr.total_len()];
        ip_repr.emit(&mut ipv6::Packet::new_unchecked(&mut buf[..]));
        {
            let mut u = udp::Packet::new_unchecked(&mut buf[ipv6::HEADER_LEN..]);
            udp_repr.emit(&mut u);
            u.payload_mut().copy_from_slice(payload);
            u.fill_checksum_v6(src, dst);
        }
        buf
    }

    #[test]
    fn dissects_ipv6_udp_over_raw_ip() {
        let data = udp_ipv6_raw(b"hello v6");
        let d = dissect(3, &data, LinkType::RawIp, P2pProbe::Off).unwrap();
        assert_eq!(d.five_tuple.src_ip.to_string(), "2001:db8::1");
        assert_eq!(d.five_tuple.dst_port, 8801);
        assert_eq!(d.payload, b"hello v6");
        match d.transport {
            Transport::Udp { payload_len } => assert_eq!(payload_len, 8),
            _ => panic!("expected udp"),
        }
        // Port 8801 ⇒ treated as Zoom server traffic: the payload parses
        // structurally as a (non-media) SFU control frame — opaque but
        // classified, exactly like the ~10 % control packets of Table 2.
        match &d.app {
            App::Zoom(zoom::Framing::Server, z) => {
                assert!(z.rtp.is_none());
                assert!(z.rtcp.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dissects_ipv4_over_raw_ip() {
        let eth = crate::compose::udp_ipv4_ethernet(
            std::net::Ipv4Addr::new(10, 8, 0, 1),
            std::net::Ipv4Addr::new(1, 2, 3, 4),
            1_000,
            2_000,
            b"raw",
        );
        // Strip the Ethernet header: what a DLT_RAW capture stores.
        let d = dissect(0, &eth[ethernet::HEADER_LEN..], LinkType::RawIp, P2pProbe::Off)
            .unwrap();
        assert!(d.link.is_none());
        assert_eq!(d.five_tuple.src_port, 1_000);
        assert_eq!(d.payload, b"raw");
    }

    #[test]
    fn unknown_link_type_unsupported() {
        assert_eq!(
            dissect(0, &[0u8; 64], LinkType::Other(42), P2pProbe::Off).unwrap_err(),
            Error::Unsupported
        );
    }

    #[test]
    fn render_tree_for_rtcp_and_opaque() {
        // RTCP-bearing Zoom packet.
        let sr = crate::rtcp::SenderReportRepr {
            ssrc: 0x42,
            info: crate::rtcp::SenderInfo {
                ntp_timestamp: 1,
                rtp_timestamp: 2,
                packet_count: 3,
                octet_count: 4,
            },
            with_sdes: false,
        };
        let mut body = vec![0u8; sr.buffer_len()];
        sr.emit(&mut body);
        let payload = zoom::Builder {
            sfu: Some(zoom::SfuEncapRepr {
                encap_type: zoom::SFU_TYPE_MEDIA,
                sequence: 1,
                direction: zoom::DIR_TO_SFU,
            }),
            media: zoom::MediaEncapRepr {
                media_type: zoom::MediaType::RtcpSr,
                sequence: 2,
                timestamp: 3,
                frame_sequence: None,
                packets_in_frame: None,
            },
            rtp: None,
            payload: body,
        }
        .build();
        let data = crate::compose::udp_ipv4_ethernet(
            std::net::Ipv4Addr::new(10, 8, 0, 1),
            std::net::Ipv4Addr::new(170, 114, 0, 1),
            50_000,
            zoom::ZOOM_SFU_PORT,
            &payload,
        );
        let d = dissect(0, &data, LinkType::Ethernet, P2pProbe::Off).unwrap();
        let tree = render_tree(&d);
        assert!(tree.contains("Real-Time Control Protocol"));
        assert!(tree.contains("to SFU"));

        // Opaque UDP.
        let data = crate::compose::udp_ipv4_ethernet(
            std::net::Ipv4Addr::new(1, 1, 1, 1),
            std::net::Ipv4Addr::new(2, 2, 2, 2),
            5,
            6,
            b"??",
        );
        let d = dissect(0, &data, LinkType::Ethernet, P2pProbe::Off).unwrap();
        assert!(render_tree(&d).contains("Data: 2 bytes"));
    }
}
