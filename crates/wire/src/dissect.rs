//! Full-stack packet dissector: link → network → transport → Zoom.
//!
//! This is the library equivalent of the paper's Wireshark plugin
//! (Appendix C): it walks an Ethernet or raw-IP capture record down to the
//! Zoom encapsulations and exposes every field the analysis layer needs,
//! borrowing from the input buffer (no copies).
//!
//! Heuristics mirror the plugin: UDP traffic to/from port 8801 is treated
//! as Zoom server traffic; traffic to/from port 3478 is checked for STUN;
//! any other UDP payload can optionally be probed for P2P Zoom framing.

use crate::ethernet::{self, EtherType};
use crate::flow::FiveTuple;
use crate::ipv4::{self, Protocol};
use crate::ipv6;
use crate::pcap::LinkType;
use crate::stun;
use crate::tcp;
use crate::udp;
use crate::zoom::{self, Framing, ZoomPacket, ZOOM_SFU_PORT};
use crate::{Error, Result};
use std::fmt::Write as _;
use std::net::IpAddr;

/// Transport-layer summary of a dissected packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// UDP datagram.
    Udp {
        /// Payload length in bytes.
        payload_len: usize,
    },
    /// TCP segment.
    Tcp {
        /// Sequence number.
        seq: u32,
        /// Acknowledgment number.
        ack: u32,
        /// Control flags.
        flags: tcp::Flags,
        /// Receive window.
        window: u16,
        /// Payload length in bytes.
        payload_len: usize,
    },
}

/// Application-layer interpretation of a UDP payload.
#[derive(Debug, Clone, PartialEq)]
pub enum App {
    /// A parsed STUN message.
    Stun(stun::Repr),
    /// A parsed Zoom packet with the framing that succeeded.
    Zoom(Framing, ZoomPacket),
    /// The payload did not match anything we decode.
    Opaque,
}

/// A fully dissected packet, borrowing payload bytes from the input.
#[derive(Debug, Clone, PartialEq)]
pub struct Dissection<'a> {
    /// Capture timestamp, nanoseconds.
    pub ts_nanos: u64,
    /// Link header, when the trace has one.
    pub link: Option<ethernet::Repr>,
    /// The IP 5-tuple.
    pub five_tuple: FiveTuple,
    /// Bytes in the IP packet (header + payload) — the basis for
    /// flow-level bit rates.
    pub ip_total_len: usize,
    /// Transport summary.
    pub transport: Transport,
    /// Application interpretation (UDP only; TCP payloads stay opaque).
    pub app: App,
    /// The raw transport payload — the input to entropy analysis.
    pub payload: &'a [u8],
}

impl Dissection<'_> {
    /// Convenience: the parsed Zoom packet, if any.
    pub fn zoom(&self) -> Option<&ZoomPacket> {
        match &self.app {
            App::Zoom(_, z) => Some(z),
            _ => None,
        }
    }

    /// Convenience: true when the app layer parsed as STUN.
    pub fn is_stun(&self) -> bool {
        matches!(self.app, App::Stun(_))
    }
}

/// Controls whether non-8801 UDP payloads are probed for Zoom P2P framing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum P2pProbe {
    /// Never probe: only port-8801 traffic parses as Zoom. This is what a
    /// port-based filter would see.
    #[default]
    Off,
    /// Probe every UDP payload with [`zoom::parse_auto`]. Used once a flow
    /// has been flagged as P2P by the STUN tracker, or when scanning.
    Auto,
}

/// Dissect one capture record.
///
/// Returns `Err` only for packets that cannot be interpreted at the IP
/// layer or below; an unparseable application payload simply yields
/// [`App::Opaque`].
pub fn dissect<'a>(
    ts_nanos: u64,
    data: &'a [u8],
    link_type: LinkType,
    probe: P2pProbe,
) -> Result<Dissection<'a>> {
    let (link, ip_bytes) = match link_type {
        LinkType::Ethernet => {
            let eth = ethernet::Packet::new_checked(data)?;
            let repr = ethernet::Repr::parse(&eth);
            match repr.ethertype {
                EtherType::Ipv4 | EtherType::Ipv6 => {}
                _ => return Err(Error::Unsupported),
            }
            (Some(repr), &data[ethernet::HEADER_LEN..])
        }
        LinkType::RawIp => (None, data),
        LinkType::Other(_) => return Err(Error::Unsupported),
    };

    if ip_bytes.is_empty() {
        return Err(Error::Truncated);
    }
    let (src_ip, dst_ip, protocol, transport_bytes, ip_total_len) = match ip_bytes[0] >> 4 {
        4 => {
            let ip = ipv4::Packet::new_checked(ip_bytes)?;
            (
                IpAddr::V4(ip.src_addr()),
                IpAddr::V4(ip.dst_addr()),
                ip.protocol(),
                &ip_bytes[ip.header_len()..ip.total_len() as usize],
                ip.total_len() as usize,
            )
        }
        6 => {
            let ip = ipv6::Packet::new_checked(ip_bytes)?;
            let total = ipv6::HEADER_LEN + ip.payload_len() as usize;
            (
                IpAddr::V6(ip.src_addr()),
                IpAddr::V6(ip.dst_addr()),
                ip.next_header(),
                &ip_bytes[ipv6::HEADER_LEN..total],
                total,
            )
        }
        _ => return Err(Error::Malformed),
    };

    match protocol {
        Protocol::Udp => {
            let u = udp::Packet::new_checked(transport_bytes)?;
            let five_tuple = FiveTuple {
                src_ip,
                dst_ip,
                src_port: u.src_port(),
                dst_port: u.dst_port(),
                protocol: Protocol::Udp,
            };
            let payload_off = udp::HEADER_LEN;
            let payload_end = u.len() as usize;
            let payload = &transport_bytes[payload_off..payload_end];
            let app = classify_udp(&five_tuple, payload, probe);
            Ok(Dissection {
                ts_nanos,
                link,
                five_tuple,
                ip_total_len,
                transport: Transport::Udp {
                    payload_len: payload.len(),
                },
                app,
                payload,
            })
        }
        Protocol::Tcp => {
            let t = tcp::Packet::new_checked(transport_bytes)?;
            let five_tuple = FiveTuple {
                src_ip,
                dst_ip,
                src_port: t.src_port(),
                dst_port: t.dst_port(),
                protocol: Protocol::Tcp,
            };
            let hl = t.header_len();
            let payload = &transport_bytes[hl..];
            Ok(Dissection {
                ts_nanos,
                link,
                five_tuple,
                ip_total_len,
                transport: Transport::Tcp {
                    seq: t.seq_number(),
                    ack: t.ack_number(),
                    flags: t.flags(),
                    window: t.window(),
                    payload_len: payload.len(),
                },
                app: App::Opaque,
                payload,
            })
        }
        _ => Err(Error::Unsupported),
    }
}

/// A header-only view of a record: the 5-tuple plus the raw UDP payload.
///
/// [`peek`] applies exactly the link/IP/transport validation of
/// [`dissect`] — it returns `Err` for precisely the records `dissect`
/// rejects — but never touches application payloads, making it an order
/// of magnitude cheaper. The sharded analysis pipeline uses it to route
/// records by flow without paying for a second full dissection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Peek<'a> {
    /// The IP 5-tuple.
    pub five_tuple: FiveTuple,
    /// UDP payload bytes; `None` when the packet is TCP.
    pub udp_payload: Option<&'a [u8]>,
}

/// Parse just far enough to recover the 5-tuple (and, for UDP, the
/// payload slice). Accepts and rejects exactly the records [`dissect`]
/// does.
pub fn peek<'a>(data: &'a [u8], link_type: LinkType) -> Result<Peek<'a>> {
    let ip_bytes = match link_type {
        LinkType::Ethernet => {
            let eth = ethernet::Packet::new_checked(data)?;
            match ethernet::Repr::parse(&eth).ethertype {
                EtherType::Ipv4 | EtherType::Ipv6 => {}
                _ => return Err(Error::Unsupported),
            }
            &data[ethernet::HEADER_LEN..]
        }
        LinkType::RawIp => data,
        LinkType::Other(_) => return Err(Error::Unsupported),
    };
    if ip_bytes.is_empty() {
        return Err(Error::Truncated);
    }
    let (src_ip, dst_ip, protocol, transport_bytes) = match ip_bytes[0] >> 4 {
        4 => {
            let ip = ipv4::Packet::new_checked(ip_bytes)?;
            (
                IpAddr::V4(ip.src_addr()),
                IpAddr::V4(ip.dst_addr()),
                ip.protocol(),
                &ip_bytes[ip.header_len()..ip.total_len() as usize],
            )
        }
        6 => {
            let ip = ipv6::Packet::new_checked(ip_bytes)?;
            let total = ipv6::HEADER_LEN + ip.payload_len() as usize;
            (
                IpAddr::V6(ip.src_addr()),
                IpAddr::V6(ip.dst_addr()),
                ip.next_header(),
                &ip_bytes[ipv6::HEADER_LEN..total],
            )
        }
        _ => return Err(Error::Malformed),
    };
    match protocol {
        Protocol::Udp => {
            let u = udp::Packet::new_checked(transport_bytes)?;
            let five_tuple = FiveTuple {
                src_ip,
                dst_ip,
                src_port: u.src_port(),
                dst_port: u.dst_port(),
                protocol: Protocol::Udp,
            };
            let payload = &transport_bytes[udp::HEADER_LEN..u.len() as usize];
            Ok(Peek {
                five_tuple,
                udp_payload: Some(payload),
            })
        }
        Protocol::Tcp => {
            let t = tcp::Packet::new_checked(transport_bytes)?;
            Ok(Peek {
                five_tuple: FiveTuple {
                    src_ip,
                    dst_ip,
                    src_port: t.src_port(),
                    dst_port: t.dst_port(),
                    protocol: Protocol::Tcp,
                },
                udp_payload: None,
            })
        }
        _ => Err(Error::Unsupported),
    }
}

fn classify_udp(five_tuple: &FiveTuple, payload: &[u8], probe: P2pProbe) -> App {
    // STUN first: port 3478 traffic, or anything that passes the magic
    // cookie check (STUN and Zoom framings cannot be confused — the
    // leading bits differ).
    if five_tuple.involves_port(stun::STUN_PORT) || stun::looks_like_stun(payload) {
        if let Ok(p) = stun::Packet::new_checked(payload) {
            if let Ok(repr) = stun::Repr::parse(&p) {
                return App::Stun(repr);
            }
        }
    }
    if five_tuple.involves_port(ZOOM_SFU_PORT) {
        if let Ok(z) = zoom::parse(payload, Framing::Server) {
            return App::Zoom(Framing::Server, z);
        }
        return App::Opaque;
    }
    if probe == P2pProbe::Auto {
        if let Ok((framing, z)) = zoom::parse_auto(payload) {
            if z.rtp.is_some() || !z.rtcp.is_empty() {
                return App::Zoom(framing, z);
            }
        }
    }
    App::Opaque
}

/// Render a Wireshark-style field tree for a dissection — the textual
/// counterpart of the plugin screenshot in Fig. 18 of the paper.
pub fn render_tree(d: &Dissection<'_>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Frame: {} bytes on wire, ts={} ns",
        d.ip_total_len, d.ts_nanos
    );
    if let Some(link) = &d.link {
        let _ = writeln!(
            out,
            "Ethernet II, Src: {}, Dst: {}",
            link.src_addr, link.dst_addr
        );
    }
    let _ = writeln!(
        out,
        "Internet Protocol, Src: {}, Dst: {}",
        d.five_tuple.src_ip, d.five_tuple.dst_ip
    );
    match &d.transport {
        Transport::Udp { payload_len } => {
            let _ = writeln!(
                out,
                "User Datagram Protocol, Src Port: {}, Dst Port: {}, Payload: {} bytes",
                d.five_tuple.src_port, d.five_tuple.dst_port, payload_len
            );
        }
        Transport::Tcp {
            seq,
            ack,
            flags,
            payload_len,
            ..
        } => {
            let _ = writeln!(
                out,
                "Transmission Control Protocol, Src Port: {}, Dst Port: {}, Seq: {}, Ack: {}, \
                 Flags: [{}{}{}{}], Payload: {} bytes",
                d.five_tuple.src_port,
                d.five_tuple.dst_port,
                seq,
                ack,
                if flags.syn { "S" } else { "" },
                if flags.ack { "A" } else { "" },
                if flags.psh { "P" } else { "" },
                if flags.fin { "F" } else { "" },
                payload_len
            );
        }
    }
    match &d.app {
        App::Stun(s) => {
            let _ = writeln!(out, "Session Traversal Utilities for NAT");
            let _ = writeln!(out, "    Message Type: {:?}", s.message_type);
            if let Some(addr) = s.xor_mapped_address {
                let _ = writeln!(out, "    XOR-MAPPED-ADDRESS: {addr}");
            }
        }
        App::Zoom(framing, z) => {
            if let Some(sfu) = &z.sfu {
                let _ = writeln!(out, "Zoom SFU Encapsulation");
                let _ = writeln!(out, "    Type: {}", sfu.encap_type);
                let _ = writeln!(out, "    Sequence: {}", sfu.sequence);
                let _ = writeln!(
                    out,
                    "    Direction: {} ({})",
                    sfu.direction,
                    if sfu.direction == zoom::DIR_FROM_SFU {
                        "from SFU"
                    } else {
                        "to SFU"
                    }
                );
            }
            let _ = writeln!(
                out,
                "Zoom Media Encapsulation ({})",
                match framing {
                    Framing::Server => "server-based",
                    Framing::P2p => "P2P",
                }
            );
            let _ = writeln!(
                out,
                "    Type: {} ({})",
                z.media.media_type.to_byte(),
                z.media.media_type.label()
            );
            let _ = writeln!(out, "    Sequence: {}", z.media.sequence);
            let _ = writeln!(out, "    Timestamp: {}", z.media.timestamp);
            if let Some(fs) = z.media.frame_sequence {
                let _ = writeln!(out, "    Frame Sequence: {fs}");
            }
            if let Some(pf) = z.media.packets_in_frame {
                let _ = writeln!(out, "    Packets in Frame: {pf}");
            }
            if let Some(rtp) = &z.rtp {
                let _ = writeln!(out, "Real-Time Transport Protocol");
                let _ = writeln!(out, "    Payload Type: {}", rtp.payload_type);
                let _ = writeln!(out, "    Sequence Number: {}", rtp.sequence_number);
                let _ = writeln!(out, "    Timestamp: {}", rtp.timestamp);
                let _ = writeln!(out, "    SSRC: 0x{:08x}", rtp.ssrc);
                let _ = writeln!(out, "    Marker: {}", rtp.marker);
                let _ = writeln!(
                    out,
                    "    Media Payload: {} bytes (encrypted)",
                    z.media_payload_len
                );
            }
            for item in &z.rtcp {
                let _ = writeln!(out, "Real-Time Control Protocol: {item:?}");
            }
        }
        App::Opaque => {
            let _ = writeln!(out, "Data: {} bytes", d.payload.len());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose;
    use std::net::Ipv4Addr;

    fn server_video_packet() -> Vec<u8> {
        let zoom_payload = zoom::Builder {
            sfu: Some(zoom::SfuEncapRepr {
                encap_type: zoom::SFU_TYPE_MEDIA,
                sequence: 9,
                direction: zoom::DIR_FROM_SFU,
            }),
            media: zoom::MediaEncapRepr {
                media_type: zoom::MediaType::Video,
                sequence: 100,
                timestamp: 9000,
                frame_sequence: Some(5),
                packets_in_frame: Some(2),
            },
            rtp: Some(crate::rtp::Repr {
                marker: false,
                payload_type: 98,
                sequence_number: 700,
                timestamp: 90_000,
                ssrc: 0x99,
                csrc_count: 0,
                has_extension: false,
            }),
            payload: vec![0x5A; 64],
        }
        .build();
        compose::udp_ipv4_ethernet(
            Ipv4Addr::new(52, 202, 62, 1),
            Ipv4Addr::new(10, 8, 0, 3),
            ZOOM_SFU_PORT,
            50_111,
            &zoom_payload,
        )
    }

    #[test]
    fn dissects_server_video() {
        let data = server_video_packet();
        let d = dissect(42, &data, LinkType::Ethernet, P2pProbe::Off).unwrap();
        assert_eq!(d.five_tuple.src_port, ZOOM_SFU_PORT);
        let z = d.zoom().expect("zoom parsed");
        assert_eq!(z.media.media_type, zoom::MediaType::Video);
        assert_eq!(z.rtp.as_ref().unwrap().ssrc, 0x99);
        let tree = render_tree(&d);
        assert!(tree.contains("Zoom SFU Encapsulation"));
        assert!(tree.contains("RTP: Video") || tree.contains("Payload Type: 98"));
    }

    #[test]
    fn opaque_for_unknown_udp() {
        let data = compose::udp_ipv4_ethernet(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1234,
            5678,
            b"not zoom at all",
        );
        let d = dissect(0, &data, LinkType::Ethernet, P2pProbe::Off).unwrap();
        assert_eq!(d.app, App::Opaque);
    }

    #[test]
    fn stun_classified_on_3478() {
        let msg = stun::Repr {
            message_type: stun::MessageType::BindingRequest,
            transaction_id: [1; 12],
            xor_mapped_address: None,
        };
        let mut payload = vec![0u8; msg.buffer_len()];
        msg.emit(&mut payload);
        let data = compose::udp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 0, 3),
            Ipv4Addr::new(52, 202, 62, 2),
            50_111,
            stun::STUN_PORT,
            &payload,
        );
        let d = dissect(0, &data, LinkType::Ethernet, P2pProbe::Off).unwrap();
        assert!(d.is_stun());
    }

    #[test]
    fn p2p_probe_finds_zoom() {
        let zoom_payload = zoom::Builder {
            sfu: None,
            media: zoom::MediaEncapRepr {
                media_type: zoom::MediaType::Audio,
                sequence: 4,
                timestamp: 5,
                frame_sequence: None,
                packets_in_frame: None,
            },
            rtp: Some(crate::rtp::Repr {
                marker: false,
                payload_type: 112,
                sequence_number: 20,
                timestamp: 320,
                ssrc: 0x11,
                csrc_count: 0,
                has_extension: false,
            }),
            payload: vec![0xEE; 80],
        }
        .build();
        let data = compose::udp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 0, 3),
            Ipv4Addr::new(10, 9, 1, 4),
            50_111,
            61_234,
            &zoom_payload,
        );
        let off = dissect(0, &data, LinkType::Ethernet, P2pProbe::Off).unwrap();
        assert_eq!(off.app, App::Opaque);
        let on = dissect(0, &data, LinkType::Ethernet, P2pProbe::Auto).unwrap();
        match on.app {
            App::Zoom(Framing::P2p, ref z) => {
                assert_eq!(z.media.media_type, zoom::MediaType::Audio)
            }
            ref other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn tcp_dissects_with_seq_ack() {
        let data = compose::tcp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 0, 3),
            Ipv4Addr::new(170, 114, 0, 5),
            50_000,
            443,
            1000,
            2000,
            tcp::Flags {
                ack: true,
                ..Default::default()
            },
            b"x",
        );
        let d = dissect(0, &data, LinkType::Ethernet, P2pProbe::Off).unwrap();
        match d.transport {
            Transport::Tcp { seq, ack, .. } => {
                assert_eq!(seq, 1000);
                assert_eq!(ack, 2000);
            }
            _ => panic!("expected tcp"),
        }
    }

    #[test]
    fn non_ip_ethertype_unsupported() {
        let mut data = server_video_packet();
        data[12] = 0x08;
        data[13] = 0x06; // ARP
        assert_eq!(
            dissect(0, &data, LinkType::Ethernet, P2pProbe::Off).unwrap_err(),
            Error::Unsupported
        );
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::ipv6;
    use crate::udp;
    use std::net::Ipv6Addr;

    /// Hand-compose an IPv6/UDP packet (no Ethernet).
    fn udp_ipv6_raw(payload: &[u8]) -> Vec<u8> {
        let src: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let dst: Ipv6Addr = "2001:db8::2".parse().unwrap();
        let udp_repr = udp::Repr {
            src_port: 5_000,
            dst_port: 8801,
            payload_len: payload.len(),
        };
        let ip_repr = ipv6::Repr {
            src_addr: src,
            dst_addr: dst,
            next_header: crate::ipv4::Protocol::Udp,
            payload_len: udp_repr.total_len(),
            hop_limit: 64,
        };
        let mut buf = vec![0u8; ip_repr.total_len()];
        ip_repr.emit(&mut ipv6::Packet::new_unchecked(&mut buf[..]));
        {
            let mut u = udp::Packet::new_unchecked(&mut buf[ipv6::HEADER_LEN..]);
            udp_repr.emit(&mut u);
            u.payload_mut().copy_from_slice(payload);
            u.fill_checksum_v6(src, dst);
        }
        buf
    }

    #[test]
    fn dissects_ipv6_udp_over_raw_ip() {
        let data = udp_ipv6_raw(b"hello v6");
        let d = dissect(3, &data, LinkType::RawIp, P2pProbe::Off).unwrap();
        assert_eq!(d.five_tuple.src_ip.to_string(), "2001:db8::1");
        assert_eq!(d.five_tuple.dst_port, 8801);
        assert_eq!(d.payload, b"hello v6");
        match d.transport {
            Transport::Udp { payload_len } => assert_eq!(payload_len, 8),
            _ => panic!("expected udp"),
        }
        // Port 8801 ⇒ treated as Zoom server traffic: the payload parses
        // structurally as a (non-media) SFU control frame — opaque but
        // classified, exactly like the ~10 % control packets of Table 2.
        match &d.app {
            App::Zoom(zoom::Framing::Server, z) => {
                assert!(z.rtp.is_none());
                assert!(z.rtcp.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dissects_ipv4_over_raw_ip() {
        let eth = crate::compose::udp_ipv4_ethernet(
            std::net::Ipv4Addr::new(10, 8, 0, 1),
            std::net::Ipv4Addr::new(1, 2, 3, 4),
            1_000,
            2_000,
            b"raw",
        );
        // Strip the Ethernet header: what a DLT_RAW capture stores.
        let d = dissect(0, &eth[ethernet::HEADER_LEN..], LinkType::RawIp, P2pProbe::Off)
            .unwrap();
        assert!(d.link.is_none());
        assert_eq!(d.five_tuple.src_port, 1_000);
        assert_eq!(d.payload, b"raw");
    }

    #[test]
    fn unknown_link_type_unsupported() {
        assert_eq!(
            dissect(0, &[0u8; 64], LinkType::Other(42), P2pProbe::Off).unwrap_err(),
            Error::Unsupported
        );
    }

    #[test]
    fn render_tree_for_rtcp_and_opaque() {
        // RTCP-bearing Zoom packet.
        let sr = crate::rtcp::SenderReportRepr {
            ssrc: 0x42,
            info: crate::rtcp::SenderInfo {
                ntp_timestamp: 1,
                rtp_timestamp: 2,
                packet_count: 3,
                octet_count: 4,
            },
            with_sdes: false,
        };
        let mut body = vec![0u8; sr.buffer_len()];
        sr.emit(&mut body);
        let payload = zoom::Builder {
            sfu: Some(zoom::SfuEncapRepr {
                encap_type: zoom::SFU_TYPE_MEDIA,
                sequence: 1,
                direction: zoom::DIR_TO_SFU,
            }),
            media: zoom::MediaEncapRepr {
                media_type: zoom::MediaType::RtcpSr,
                sequence: 2,
                timestamp: 3,
                frame_sequence: None,
                packets_in_frame: None,
            },
            rtp: None,
            payload: body,
        }
        .build();
        let data = crate::compose::udp_ipv4_ethernet(
            std::net::Ipv4Addr::new(10, 8, 0, 1),
            std::net::Ipv4Addr::new(170, 114, 0, 1),
            50_000,
            zoom::ZOOM_SFU_PORT,
            &payload,
        );
        let d = dissect(0, &data, LinkType::Ethernet, P2pProbe::Off).unwrap();
        let tree = render_tree(&d);
        assert!(tree.contains("Real-Time Control Protocol"));
        assert!(tree.contains("to SFU"));

        // Opaque UDP.
        let data = crate::compose::udp_ipv4_ethernet(
            std::net::Ipv4Addr::new(1, 1, 1, 1),
            std::net::Ipv4Addr::new(2, 2, 2, 2),
            5,
            6,
            b"??",
        );
        let d = dissect(0, &data, LinkType::Ethernet, P2pProbe::Off).unwrap();
        assert!(render_tree(&d).contains("Data: 2 bytes"));
    }
}
