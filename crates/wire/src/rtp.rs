//! RTP fixed-header view and emitter (RFC 3550 §5.1).
//!
//! Zoom embeds standard RTP inside its media encapsulation (§4.2.3 of the
//! paper): every media packet carries version 2, a payload type from the
//! small set in Table 3, a 16-bit sequence number, a 32-bit timestamp
//! (90 kHz for video), and a per-meeting SSRC. The marker bit flags the
//! last packet of a frame. CSRC count is always zero in Zoom traffic
//! (evidence of an SFU rather than an MCU), but the parser handles CSRCs
//! and header extensions anyway, because the header-extension path *is*
//! exercised by Zoom video packets.

use crate::{be16, be32, set_be16, set_be32, Error, Result};

/// Fixed RTP header length (before CSRCs and extensions).
pub const HEADER_LEN: usize = 12;

/// The RTP version field value required by RFC 3550.
pub const VERSION: u8 = 2;

/// Zero-copy view of an RTP packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Packet { buffer }
    }

    /// Wrap, validating version and total header length (fixed header +
    /// CSRC list + extension, if flagged).
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = Packet { buffer };
        packet.check_len()?;
        Ok(packet)
    }

    /// Validate structural invariants.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if self.version() != VERSION {
            return Err(Error::Malformed);
        }
        let mut need = HEADER_LEN + usize::from(self.csrc_count()) * 4;
        if data.len() < need {
            return Err(Error::Truncated);
        }
        if self.has_extension() {
            if data.len() < need + 4 {
                return Err(Error::Truncated);
            }
            let ext_words = be16(data, need + 2) as usize;
            need += 4 + ext_words * 4;
            if data.len() < need {
                return Err(Error::Truncated);
            }
        }
        Ok(())
    }

    /// RTP version (2).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[0] >> 6
    }

    /// Padding flag.
    pub fn has_padding(&self) -> bool {
        self.buffer.as_ref()[0] & 0x20 != 0
    }

    /// Extension flag.
    pub fn has_extension(&self) -> bool {
        self.buffer.as_ref()[0] & 0x10 != 0
    }

    /// CSRC count (always 0 in Zoom traffic).
    pub fn csrc_count(&self) -> u8 {
        self.buffer.as_ref()[0] & 0x0F
    }

    /// Marker bit — set on the last packet of a video frame.
    pub fn marker(&self) -> bool {
        self.buffer.as_ref()[1] & 0x80 != 0
    }

    /// Payload type (Table 3 of the paper: 98/110 video, 99/110/112/113
    /// audio, 99 screen share).
    pub fn payload_type(&self) -> u8 {
        self.buffer.as_ref()[1] & 0x7F
    }

    /// 16-bit sequence number.
    pub fn sequence_number(&self) -> u16 {
        be16(self.buffer.as_ref(), 2)
    }

    /// 32-bit media timestamp.
    pub fn timestamp(&self) -> u32 {
        be32(self.buffer.as_ref(), 4)
    }

    /// Synchronization source identifier.
    pub fn ssrc(&self) -> u32 {
        be32(self.buffer.as_ref(), 8)
    }

    /// CSRC list.
    pub fn csrcs(&self) -> Vec<u32> {
        let data = self.buffer.as_ref();
        (0..usize::from(self.csrc_count()))
            .map(|i| be32(data, HEADER_LEN + i * 4))
            .collect()
    }

    /// Extension profile ID, when an extension header is present.
    pub fn extension_profile(&self) -> Option<u16> {
        if !self.has_extension() {
            return None;
        }
        let off = HEADER_LEN + usize::from(self.csrc_count()) * 4;
        Some(be16(self.buffer.as_ref(), off))
    }

    /// Offset where the payload begins (after CSRCs and extension).
    pub fn payload_offset(&self) -> usize {
        let data = self.buffer.as_ref();
        let mut off = HEADER_LEN + usize::from(self.csrc_count()) * 4;
        if self.has_extension() {
            let ext_words = be16(data, off + 2) as usize;
            off += 4 + ext_words * 4;
        }
        off
    }

    /// Payload after all headers; padding (if flagged) is stripped using
    /// the trailing count octet per RFC 3550 §5.1.
    pub fn payload(&self) -> &[u8] {
        let data = self.buffer.as_ref();
        let start = self.payload_offset();
        let mut end = data.len();
        if self.has_padding() && end > start {
            let pad = usize::from(data[end - 1]);
            if pad > 0 && pad <= end - start {
                end -= pad;
            }
        }
        &data[start..end]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Set version, clearing padding/extension/CSRC bits.
    pub fn set_version(&mut self, version: u8) {
        self.buffer.as_mut()[0] = (version & 0x3) << 6;
    }

    /// Set the extension flag.
    pub fn set_has_extension(&mut self, on: bool) {
        let b = &mut self.buffer.as_mut()[0];
        if on {
            *b |= 0x10;
        } else {
            *b &= !0x10;
        }
    }

    /// Set the CSRC count bits.
    pub fn set_csrc_count(&mut self, count: u8) {
        let b = &mut self.buffer.as_mut()[0];
        *b = (*b & !0x0F) | (count & 0x0F);
    }

    /// Set marker bit and payload type together (they share a byte).
    pub fn set_marker_and_payload_type(&mut self, marker: bool, pt: u8) {
        self.buffer.as_mut()[1] = (u8::from(marker) << 7) | (pt & 0x7F);
    }

    /// Set the sequence number.
    pub fn set_sequence_number(&mut self, v: u16) {
        set_be16(self.buffer.as_mut(), 2, v);
    }

    /// Set the timestamp.
    pub fn set_timestamp(&mut self, v: u32) {
        set_be32(self.buffer.as_mut(), 4, v);
    }

    /// Set the SSRC.
    pub fn set_ssrc(&mut self, v: u32) {
        set_be32(self.buffer.as_mut(), 8, v);
    }
}

/// High-level RTP header representation.
///
/// `has_extension` requests a minimal one-word extension header on emit
/// (profile 0xBEDE, length 1), mimicking Zoom's use of RTP extensions in
/// video packets without modeling their (encrypted) contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Marker bit.
    pub marker: bool,
    /// Payload type.
    pub payload_type: u8,
    /// Sequence number.
    pub sequence_number: u16,
    /// Media timestamp.
    pub timestamp: u32,
    /// Synchronization source.
    pub ssrc: u32,
    /// Number of CSRC entries.
    pub csrc_count: u8,
    /// Extension bit.
    pub has_extension: bool,
}

impl Repr {
    /// Parse a validated view.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Repr> {
        packet.check_len()?;
        Ok(Repr {
            marker: packet.marker(),
            payload_type: packet.payload_type(),
            sequence_number: packet.sequence_number(),
            timestamp: packet.timestamp(),
            ssrc: packet.ssrc(),
            csrc_count: packet.csrc_count(),
            has_extension: packet.has_extension(),
        })
    }

    /// Header length on emit (CSRCs are emitted as zeroes).
    pub fn header_len(&self) -> usize {
        HEADER_LEN + usize::from(self.csrc_count) * 4 + if self.has_extension { 8 } else { 0 }
    }

    /// Emit the header into `packet`, whose buffer must hold
    /// [`Repr::header_len`] bytes.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.set_version(VERSION);
        packet.set_csrc_count(self.csrc_count);
        packet.set_has_extension(self.has_extension);
        packet.set_marker_and_payload_type(self.marker, self.payload_type);
        packet.set_sequence_number(self.sequence_number);
        packet.set_timestamp(self.timestamp);
        packet.set_ssrc(self.ssrc);
        let csrc_end = HEADER_LEN + usize::from(self.csrc_count) * 4;
        let buf = packet.buffer.as_mut();
        for b in &mut buf[HEADER_LEN..csrc_end] {
            *b = 0;
        }
        if self.has_extension {
            set_be16(buf, csrc_end, 0xBEDE);
            set_be16(buf, csrc_end + 2, 1);
            set_be32(buf, csrc_end + 4, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit(repr: Repr, payload: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; repr.header_len() + payload.len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        let off = repr.header_len();
        buf[off..].copy_from_slice(payload);
        buf
    }

    fn base_repr() -> Repr {
        Repr {
            marker: false,
            payload_type: 98,
            sequence_number: 4321,
            timestamp: 90_000 * 3,
            ssrc: 0x0000_1234,
            csrc_count: 0,
            has_extension: false,
        }
    }

    #[test]
    fn roundtrip_plain() {
        let buf = emit(base_repr(), b"payload");
        let p = Packet::new_checked(&buf[..]).unwrap();
        let r = Repr::parse(&p).unwrap();
        assert_eq!(r, base_repr());
        assert_eq!(p.payload(), b"payload");
        assert_eq!(p.payload_offset(), HEADER_LEN);
    }

    #[test]
    fn roundtrip_with_extension() {
        let repr = Repr {
            has_extension: true,
            marker: true,
            ..base_repr()
        };
        let buf = emit(repr, b"xyz");
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert!(p.has_extension());
        assert_eq!(p.extension_profile(), Some(0xBEDE));
        assert_eq!(p.payload(), b"xyz");
        assert_eq!(p.payload_offset(), HEADER_LEN + 8);
        assert!(p.marker());
    }

    #[test]
    fn roundtrip_with_csrcs() {
        let repr = Repr {
            csrc_count: 2,
            ..base_repr()
        };
        let buf = emit(repr, b"q");
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.csrc_count(), 2);
        assert_eq!(p.csrcs(), vec![0, 0]);
        assert_eq!(p.payload(), b"q");
    }

    #[test]
    fn version_check_rejects_stun() {
        // A STUN message starts with two zero bits — version 0.
        let buf = [0x00u8; 20];
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn truncated_extension_rejected() {
        let repr = Repr {
            has_extension: true,
            ..base_repr()
        };
        let buf = emit(repr, b"");
        assert_eq!(
            Packet::new_checked(&buf[..14]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn padding_stripped() {
        let mut buf = emit(base_repr(), &[1, 2, 3, 0, 0, 3]);
        buf[0] |= 0x20; // padding flag; last byte says 3 pad bytes
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.payload(), &[1, 2, 3]);
    }

    #[test]
    fn sequence_wraps_are_representable() {
        let repr = Repr {
            sequence_number: u16::MAX,
            timestamp: u32::MAX,
            ..base_repr()
        };
        let buf = emit(repr, b"");
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.sequence_number(), u16::MAX);
        assert_eq!(p.timestamp(), u32::MAX);
    }
}
