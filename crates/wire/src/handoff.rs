//! Arena-packed record batches for cross-thread capture hand-off.
//!
//! A capture thread that forwards packets to an analysis engine one
//! [`Record`](crate::pcap::Record) at a time pays one heap allocation per
//! packet plus one ring-buffer slot per packet. [`RecordBatch`] amortizes
//! both: records are packed back-to-back into a single byte arena with
//! per-record timestamp/length side tables, so a whole batch crosses the
//! thread boundary as one object and — once the receiver recycles empty
//! batches back to the producer — the steady state allocates nothing.
//!
//! The layout is append-only: [`RecordBatch::push`] copies the packet bytes
//! to the end of the arena, [`RecordBatch::iter`] yields borrowed
//! [`RecordRef`]s in insertion order, and [`RecordBatch::clear`] resets the
//! batch for reuse while keeping its capacity.
//!
//! ```
//! use zoom_wire::handoff::RecordBatch;
//!
//! let mut batch = RecordBatch::with_capacity(4, 2048);
//! batch.push(1_000, 60, &[0xAA; 60]);
//! batch.push(2_000, 1500, &[0xBB; 64]); // truncated capture: 64 of 1500
//!
//! assert_eq!(batch.len(), 2);
//! let records: Vec<_> = batch.iter().collect();
//! assert_eq!(records[0].ts_nanos, 1_000);
//! assert_eq!(records[1].orig_len, 1500);
//! assert_eq!(records[1].data.len(), 64);
//!
//! batch.clear(); // arena retained, ready for the next fill
//! assert!(batch.is_empty());
//! ```

/// A single record borrowed from a [`RecordBatch`].
///
/// Mirrors the fields of [`crate::pcap::Record`] but borrows its payload
/// from the batch arena instead of owning a `Vec<u8>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordRef<'a> {
    /// Capture timestamp in nanoseconds since the Unix epoch.
    pub ts_nanos: u64,
    /// Original on-the-wire length (may exceed `data.len()` when the
    /// capture was truncated by a snap length).
    pub orig_len: u32,
    /// Captured bytes, borrowed from the batch arena.
    pub data: &'a [u8],
}

/// Per-record metadata kept alongside the shared byte arena.
#[derive(Debug, Clone, Copy)]
struct Slot {
    ts_nanos: u64,
    orig_len: u32,
    /// Offset of the record's first byte in the arena; its end is the next
    /// slot's offset (or the arena length for the last record).
    offset: u32,
}

/// An owned, recyclable batch of packet records packed into one arena.
///
/// See the [module documentation](self) for the hand-off protocol and a
/// usage example.
#[derive(Debug, Default)]
pub struct RecordBatch {
    slots: Vec<Slot>,
    arena: Vec<u8>,
    /// Causal trace ID stamped by a sampled capture site (`0` =
    /// untraced, the overwhelmingly common case). Rides the batch
    /// through every hand-off so downstream stages can attribute their
    /// span events to the batch's trace; cleared with the records.
    pub trace_id: u64,
}

impl RecordBatch {
    /// Creates an empty batch with no pre-reserved capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty batch pre-sized for `records` records totalling
    /// `bytes` captured bytes, so steady-state fills don't reallocate.
    pub fn with_capacity(records: usize, bytes: usize) -> Self {
        RecordBatch {
            slots: Vec::with_capacity(records),
            arena: Vec::with_capacity(bytes),
            trace_id: 0,
        }
    }

    /// Appends one record, copying `data` into the arena.
    pub fn push(&mut self, ts_nanos: u64, orig_len: u32, data: &[u8]) {
        debug_assert!(self.arena.len() + data.len() <= u32::MAX as usize);
        self.slots.push(Slot {
            ts_nanos,
            orig_len,
            offset: self.arena.len() as u32,
        });
        self.arena.extend_from_slice(data);
    }

    /// Number of records currently in the batch.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total captured bytes currently in the arena.
    pub fn arena_bytes(&self) -> usize {
        self.arena.len()
    }

    /// Returns the record at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<RecordRef<'_>> {
        let slot = self.slots.get(index)?;
        let start = slot.offset as usize;
        let end = self
            .slots
            .get(index + 1)
            .map(|next| next.offset as usize)
            .unwrap_or(self.arena.len());
        Some(RecordRef {
            ts_nanos: slot.ts_nanos,
            orig_len: slot.orig_len,
            data: &self.arena[start..end],
        })
    }

    /// Iterates the records in insertion order as borrowed [`RecordRef`]s.
    pub fn iter(&self) -> BatchIter<'_> {
        BatchIter {
            batch: self,
            index: 0,
        }
    }

    /// Empties the batch while retaining both the slot table's and the
    /// arena's capacity, making the batch reusable without reallocation.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.arena.clear();
        self.trace_id = 0;
    }
}

impl<'a> IntoIterator for &'a RecordBatch {
    type Item = RecordRef<'a>;
    type IntoIter = BatchIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over a [`RecordBatch`], yielding [`RecordRef`]s.
#[derive(Debug)]
pub struct BatchIter<'a> {
    batch: &'a RecordBatch,
    index: usize,
}

impl<'a> Iterator for BatchIter<'a> {
    type Item = RecordRef<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        let rec = self.batch.get(self.index)?;
        self.index += 1;
        Some(rec)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.batch.len() - self.index;
        (rest, Some(rest))
    }
}

impl<'a> ExactSizeIterator for BatchIter<'a> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_iter_roundtrip() {
        let mut b = RecordBatch::new();
        b.push(10, 100, &[1, 2, 3]);
        b.push(20, 4, &[9; 4]);
        b.push(30, 0, &[]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.arena_bytes(), 7);

        let r0 = b.get(0).unwrap();
        assert_eq!((r0.ts_nanos, r0.orig_len, r0.data), (10, 100, &[1, 2, 3][..]));
        let r2 = b.get(2).unwrap();
        assert_eq!(r2.data.len(), 0);
        assert!(b.get(3).is_none());

        let ts: Vec<u64> = b.iter().map(|r| r.ts_nanos).collect();
        assert_eq!(ts, vec![10, 20, 30]);
        assert_eq!(b.iter().len(), 3);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut b = RecordBatch::with_capacity(8, 1024);
        for i in 0..8 {
            b.push(i, 64, &[0u8; 64]);
        }
        let slot_cap = b.slots.capacity();
        let arena_cap = b.arena.capacity();
        b.trace_id = 0xDEAD_BEEF;
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.trace_id, 0, "clear() must reset the trace tag");
        assert_eq!(b.arena_bytes(), 0);
        assert_eq!(b.slots.capacity(), slot_cap);
        assert_eq!(b.arena.capacity(), arena_cap);
        // Refill within capacity: no growth.
        for i in 0..8 {
            b.push(i, 64, &[0u8; 64]);
        }
        assert_eq!(b.slots.capacity(), slot_cap);
        assert_eq!(b.arena.capacity(), arena_cap);
    }
}
