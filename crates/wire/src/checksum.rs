//! Internet checksum (RFC 1071) and transport pseudo-header helpers.
//!
//! Used by [`crate::ipv4`], [`crate::udp`], and [`crate::tcp`] to verify
//! checksums on captured packets and to fill them in when the simulator
//! emits synthetic traffic.

use std::net::{Ipv4Addr, Ipv6Addr};

/// Incremental one's-complement sum accumulator.
///
/// Fold order does not matter for the one's-complement sum, so data can be
/// added in arbitrary chunks (header, pseudo-header, payload).
#[derive(Debug, Clone, Copy, Default)]
pub struct Summer {
    sum: u32,
}

impl Summer {
    /// Create an accumulator with a zero sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a byte slice; an odd trailing byte is padded with zero as per
    /// RFC 1071.
    pub fn add(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(2);
        for c in &mut chunks {
            self.sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Add a single big-endian `u16` word.
    pub fn add_u16(&mut self, word: u16) {
        self.sum += u32::from(word);
    }

    /// Add a `u32` as two 16-bit words.
    pub fn add_u32(&mut self, word: u32) {
        self.add_u16((word >> 16) as u16);
        self.add_u16(word as u16);
    }

    /// Finish: fold carries and return the one's complement.
    pub fn finish(mut self) -> u16 {
        while self.sum >> 16 != 0 {
            self.sum = (self.sum & 0xFFFF) + (self.sum >> 16);
        }
        !(self.sum as u16)
    }
}

/// Checksum of a single contiguous buffer.
pub fn checksum(data: &[u8]) -> u16 {
    let mut s = Summer::new();
    s.add(data);
    s.finish()
}

/// Verify a buffer whose checksum field is already in place: the folded sum
/// over the whole buffer must be zero.
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

/// IPv4 pseudo-header sum for UDP/TCP (RFC 768 / RFC 793).
pub fn pseudo_header_v4(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, length: u16) -> Summer {
    let mut s = Summer::new();
    s.add(&src.octets());
    s.add(&dst.octets());
    s.add_u16(u16::from(protocol));
    s.add_u16(length);
    s
}

/// IPv6 pseudo-header sum for UDP/TCP (RFC 2460 §8.1).
pub fn pseudo_header_v6(src: Ipv6Addr, dst: Ipv6Addr, protocol: u8, length: u32) -> Summer {
    let mut s = Summer::new();
    s.add(&src.octets());
    s.add(&dst.octets());
    s.add_u32(length);
    s.add_u16(u16::from(protocol));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_reference_vector() {
        // Example from RFC 1071 §3: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2,
        // checksum is its complement.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_is_zero_padded() {
        assert_eq!(checksum(&[0xFF]), !0xFF00);
    }

    #[test]
    fn verify_detects_single_bit_flip() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x00, 0x00, 0x00, 0x00, 0x40, 0x11];
        // Append a correct checksum.
        let c = checksum(&data);
        data.extend_from_slice(&c.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn chunked_equals_contiguous() {
        let data: Vec<u8> = (0u8..=250).collect();
        let whole = checksum(&data);
        let mut s = Summer::new();
        // Split on an even boundary: one's-complement addition is
        // associative only when chunks keep 16-bit alignment.
        s.add(&data[..100]);
        s.add(&data[100..]);
        assert_eq!(s.finish(), whole);
    }

    #[test]
    fn pseudo_header_v4_known_udp() {
        // Hand-computed: 10.0.0.1 -> 10.0.0.2, UDP(17), len 8.
        let mut s = pseudo_header_v4(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            17,
            8,
        );
        s.add(&[0u8; 0]);
        // 0x0a00 + 0x0001 + 0x0a00 + 0x0002 + 0x0011 + 0x0008 = 0x141c
        assert_eq!(s.finish(), !0x141c);
    }
}
