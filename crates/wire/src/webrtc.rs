//! Native WebRTC wire formats: DTLS record framing and SRTP/SRTCP
//! session headers.
//!
//! WebRTC media travels without any application encapsulation the ZME
//! gives Zoom: after an ICE/STUN exchange the peers run a DTLS handshake
//! on the media 5-tuple and then ship standard RTP/RTCP whose payloads
//! are SRTP-encrypted — the headers stay cleartext (RFC 3711). That is
//! all a passive monitor needs: the RTP header carries SSRC, sequence
//! number, timestamp, and payload type, exactly the fields the
//! analysis-layer estimators consume.
//!
//! This module provides the strict framing checks the
//! [`WebrtcFamily`](crate::family::WebrtcFamily) classifier uses:
//!
//! * [`DtlsRepr`] — the 13-byte DTLS record header (content type,
//!   version, epoch, 48-bit sequence, length), with [`looks_like_dtls`]
//!   as the cheap peek-time signature;
//! * [`SrtpRepr`] — an SRTP packet seen as its cleartext
//!   [`rtp::Repr`] header plus the encrypted payload length;
//! * [`SrtcpRepr`] — the cleartext prefix of an SRTCP compound packet;
//! * [`classify`] — the family's strict DTLS → SRTCP → SRTP decision.
//!
//! None of these can be confused with Zoom framings at the byte level:
//! DTLS content types occupy 20–23 where ZME media-type bytes are
//! 13/15/16/33/34 (and the SFU encapsulation leads with 0x05), and
//! RTP/RTCP version-2 packets start with top bits `10` where every ZME
//! first byte starts `00`. The classifiers therefore never cross-match,
//! which is what keeps Zoom-only traces byte-identical when both
//! families are enabled.

use crate::rtp;
use crate::zoom::MediaType;
use crate::{Error, Result};

/// Length of the DTLS record header (RFC 6347 §4.1).
pub const DTLS_HEADER_LEN: usize = 13;

/// DTLS version major byte (`254` = `0xfe` for every DTLS version).
pub const DTLS_VERSION_MAJOR: u8 = 0xfe;

/// DTLS content type: change_cipher_spec.
pub const DTLS_CHANGE_CIPHER_SPEC: u8 = 20;
/// DTLS content type: alert.
pub const DTLS_ALERT: u8 = 21;
/// DTLS content type: handshake.
pub const DTLS_HANDSHAKE: u8 = 22;
/// DTLS content type: application_data.
pub const DTLS_APPLICATION_DATA: u8 = 23;

/// Authentication-tag length appended to SRTP/SRTCP packets by the
/// default `SRTP_AES128_CM_HMAC_SHA1_80` protection profile.
pub const SRTP_AUTH_TAG_LEN: usize = 10;

/// Minimum bytes of SRTCP cleartext we require: version/type word,
/// length, and the sender SSRC.
pub const SRTCP_MIN_LEN: usize = 8;

/// Fast header signature for a DTLS record: known content type, `0xfe`
/// version major, and a plausible version minor. Used at peek time to
/// tag the batch dispatch class; [`DtlsRepr::parse`] re-validates in
/// full.
pub fn looks_like_dtls(payload: &[u8]) -> bool {
    payload.len() >= DTLS_HEADER_LEN
        && (DTLS_CHANGE_CIPHER_SPEC..=DTLS_APPLICATION_DATA).contains(&payload[0])
        && payload[1] == DTLS_VERSION_MAJOR
        && matches!(payload[2], 0xff | 0xfd)
}

/// Fast header signature for a version-2 RTP packet that is *not* in the
/// RTCP packet-type range (RFC 5761 §4 demultiplexing: a second byte of
/// 192–223 means RTCP).
pub fn looks_like_rtp(payload: &[u8]) -> bool {
    payload.len() >= rtp::HEADER_LEN
        && payload[0] >> 6 == rtp::VERSION
        && !(192..=223).contains(&payload[1])
}

/// Fast header signature for an RTCP packet: version 2 and a packet type
/// in the standard 200–206 range (SR/RR/SDES/BYE/APP/RTPFB/PSFB).
pub fn looks_like_rtcp(payload: &[u8]) -> bool {
    payload.len() >= SRTCP_MIN_LEN
        && payload[0] >> 6 == rtp::VERSION
        && (200..=206).contains(&payload[1])
}

/// Parsed DTLS record header (RFC 6347 §4.1). The record body is
/// ciphertext past the handshake's first flights and is never
/// interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DtlsRepr {
    /// Record content type (20–23).
    pub content_type: u8,
    /// Version minor byte: `0xff` for DTLS 1.0, `0xfd` for DTLS 1.2.
    pub version_minor: u8,
    /// Epoch (increments at each cipher-state change).
    pub epoch: u16,
    /// 48-bit record sequence number within the epoch.
    pub sequence: u64,
    /// Length of the record body in bytes.
    pub length: u16,
}

impl DtlsRepr {
    /// Parse and validate the first DTLS record of a datagram.
    ///
    /// Strict: the content type, version, and the length field (the
    /// record must fit the datagram) are all checked, so arbitrary
    /// payloads essentially never pass — the false-positive rate is what
    /// makes DTLS a safe WebRTC session signal.
    pub fn parse(payload: &[u8]) -> Result<DtlsRepr> {
        if payload.len() < DTLS_HEADER_LEN {
            return Err(Error::Truncated);
        }
        if !(DTLS_CHANGE_CIPHER_SPEC..=DTLS_APPLICATION_DATA).contains(&payload[0])
            || payload[1] != DTLS_VERSION_MAJOR
            || !matches!(payload[2], 0xff | 0xfd)
        {
            return Err(Error::Malformed);
        }
        let epoch = u16::from_be_bytes([payload[3], payload[4]]);
        let sequence = (u64::from(payload[5]) << 40)
            | (u64::from(payload[6]) << 32)
            | (u64::from(payload[7]) << 24)
            | (u64::from(payload[8]) << 16)
            | (u64::from(payload[9]) << 8)
            | u64::from(payload[10]);
        let length = u16::from_be_bytes([payload[11], payload[12]]);
        if DTLS_HEADER_LEN + usize::from(length) > payload.len() {
            return Err(Error::Truncated);
        }
        Ok(DtlsRepr {
            content_type: payload[0],
            version_minor: payload[2],
            epoch,
            sequence,
            length,
        })
    }

    /// Bytes needed to emit this record header plus `length` body bytes.
    pub fn buffer_len(&self) -> usize {
        DTLS_HEADER_LEN + usize::from(self.length)
    }

    /// Emit the record header into `buf` (body bytes are the caller's).
    ///
    /// # Panics
    /// Panics if `buf` is shorter than [`DTLS_HEADER_LEN`].
    pub fn emit(&self, buf: &mut [u8]) {
        buf[0] = self.content_type;
        buf[1] = DTLS_VERSION_MAJOR;
        buf[2] = self.version_minor;
        buf[3..5].copy_from_slice(&self.epoch.to_be_bytes());
        buf[5] = (self.sequence >> 40) as u8;
        buf[6] = (self.sequence >> 32) as u8;
        buf[7] = (self.sequence >> 24) as u8;
        buf[8] = (self.sequence >> 16) as u8;
        buf[9] = (self.sequence >> 8) as u8;
        buf[10] = self.sequence as u8;
        buf[11..13].copy_from_slice(&self.length.to_be_bytes());
    }
}

/// An SRTP packet: the cleartext RTP header plus the length of the
/// encrypted media payload (auth tag excluded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrtpRepr {
    /// The cleartext RTP header fields.
    pub rtp: rtp::Repr,
    /// Encrypted media bytes between the RTP header and the auth tag.
    pub payload_len: usize,
}

/// Parse an SRTP packet: a strict version-2 RTP header check with the
/// RFC 5761 RTCP range excluded, yielding the header fields and the
/// encrypted payload length.
pub fn parse_srtp(payload: &[u8]) -> Result<SrtpRepr> {
    if payload.len() >= 2 && (192..=223).contains(&payload[1]) {
        return Err(Error::Malformed); // RTCP range: not an RTP packet
    }
    let pkt = rtp::Packet::new_checked(payload)?;
    let repr = rtp::Repr::parse(&pkt)?;
    let payload_len = pkt.payload().len().saturating_sub(SRTP_AUTH_TAG_LEN);
    Ok(SrtpRepr {
        rtp: repr,
        payload_len,
    })
}

/// Cleartext prefix of an SRTCP compound packet: everything after the
/// first SSRC is encrypted, so this is all a passive monitor gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrtcpRepr {
    /// RTCP packet type of the first (cleartext-headed) packet: 200–206.
    pub packet_type: u8,
    /// Length of the first RTCP packet in bytes (from its length field).
    pub first_packet_len: usize,
    /// Sender SSRC from the first packet.
    pub ssrc: u32,
}

/// Parse the cleartext header of an SRTCP packet: version 2, packet type
/// 200–206, and a length field that fits the datagram (the encrypted
/// remainder, SRTCP index, and auth tag may follow the first packet).
pub fn parse_srtcp(payload: &[u8]) -> Result<SrtcpRepr> {
    if payload.len() < SRTCP_MIN_LEN {
        return Err(Error::Truncated);
    }
    if payload[0] >> 6 != rtp::VERSION || !(200..=206).contains(&payload[1]) {
        return Err(Error::Malformed);
    }
    let words = u16::from_be_bytes([payload[2], payload[3]]);
    let first_packet_len = (usize::from(words) + 1) * 4;
    if first_packet_len > payload.len() {
        return Err(Error::Truncated);
    }
    let ssrc = u32::from_be_bytes([payload[4], payload[5], payload[6], payload[7]]);
    Ok(SrtcpRepr {
        packet_type: payload[1],
        first_packet_len,
        ssrc,
    })
}

/// One parsed WebRTC datagram, as the family classifier hands it to the
/// analysis layer.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pdu {
    /// A DTLS record (handshake, alert, or application data).
    Dtls(DtlsRepr),
    /// An SRTP media packet.
    Srtp(SrtpRepr),
    /// An SRTCP control packet.
    Srtcp(SrtcpRepr),
}

impl Pdu {
    /// Stable lower-case label for metrics and logs.
    pub fn label(&self) -> &'static str {
        match self {
            Pdu::Dtls(_) => "dtls",
            Pdu::Srtp(_) => "srtp",
            Pdu::Srtcp(_) => "srtcp",
        }
    }
}

/// Strict WebRTC classification of a UDP payload: DTLS first (its
/// signature is the strongest), then SRTCP, then SRTP. Errors mean "not
/// WebRTC traffic" — the caller decides whether that counts as a
/// malformed-framing drop (flow known to be a WebRTC session) or simply
/// as unclassified traffic.
pub fn classify(payload: &[u8]) -> Result<Pdu> {
    if looks_like_dtls(payload) {
        return DtlsRepr::parse(payload).map(Pdu::Dtls);
    }
    if payload.len() >= 2 && payload[0] >> 6 == rtp::VERSION {
        if (200..=206).contains(&payload[1]) {
            return parse_srtcp(payload).map(Pdu::Srtcp);
        }
        if !(192..=223).contains(&payload[1]) {
            return parse_srtp(payload).map(Pdu::Srtp);
        }
    }
    Err(Error::Unsupported)
}

/// Map a WebRTC RTP payload type to the analysis-layer media type, per
/// the common browser/SDK defaults (Opus on 111, PCMU/PCMA/G.722 in the
/// static range, VP8/VP9/H.264 and their RTX/FEC companions in the
/// dynamic video range).
pub fn media_type_for_pt(pt: u8) -> MediaType {
    match pt {
        0 | 8 | 9 | 13 | 63 | 110 | 111 | 126 => MediaType::Audio,
        96..=107 | 112..=125 => MediaType::Video,
        other => MediaType::Other(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dtls_record(content_type: u8, len: u16) -> Vec<u8> {
        let repr = DtlsRepr {
            content_type,
            version_minor: 0xfd,
            epoch: 1,
            sequence: 0x0000_0304_0506,
            length: len,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut buf);
        buf
    }

    fn srtp_packet(pt: u8, marker: bool, payload: usize) -> Vec<u8> {
        let repr = rtp::Repr {
            marker,
            payload_type: pt,
            sequence_number: 42,
            timestamp: 90_000,
            ssrc: 0xABCD_EF01,
            csrc_count: 0,
            has_extension: false,
        };
        let mut buf = vec![0u8; repr.header_len() + payload + SRTP_AUTH_TAG_LEN];
        let mut pkt = rtp::Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        buf
    }

    #[test]
    fn dtls_roundtrip_and_signature() {
        let buf = dtls_record(DTLS_HANDSHAKE, 40);
        assert!(looks_like_dtls(&buf));
        let repr = DtlsRepr::parse(&buf).unwrap();
        assert_eq!(repr.content_type, DTLS_HANDSHAKE);
        assert_eq!(repr.epoch, 1);
        assert_eq!(repr.sequence, 0x0000_0304_0506);
        assert_eq!(repr.length, 40);
        match classify(&buf).unwrap() {
            Pdu::Dtls(d) => assert_eq!(d, repr),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dtls_rejects_bad_version_type_and_length() {
        let mut buf = dtls_record(DTLS_HANDSHAKE, 4);
        buf[1] = 0x03; // TLS, not DTLS
        assert!(!looks_like_dtls(&buf));
        assert_eq!(DtlsRepr::parse(&buf).unwrap_err(), Error::Malformed);

        let mut buf = dtls_record(DTLS_HANDSHAKE, 4);
        buf[0] = 17; // unknown content type
        assert_eq!(DtlsRepr::parse(&buf).unwrap_err(), Error::Malformed);

        // Length field claims more bytes than the datagram holds.
        let mut buf = dtls_record(DTLS_HANDSHAKE, 4);
        buf[12] = 200;
        assert_eq!(DtlsRepr::parse(&buf).unwrap_err(), Error::Truncated);

        assert_eq!(DtlsRepr::parse(&buf[..5]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn srtp_parse_and_payload_len() {
        let buf = srtp_packet(111, false, 80);
        assert!(looks_like_rtp(&buf));
        let s = parse_srtp(&buf).unwrap();
        assert_eq!(s.rtp.payload_type, 111);
        assert_eq!(s.rtp.ssrc, 0xABCD_EF01);
        assert_eq!(s.payload_len, 80); // auth tag excluded
        match classify(&buf).unwrap() {
            Pdu::Srtp(p) => assert_eq!(p, s),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rtcp_range_excluded_from_rtp() {
        // Marker bit + PT 72 puts the second byte at 200: RTCP range.
        let mut buf = srtp_packet(72, true, 20);
        assert_eq!(buf[1], 200);
        assert!(!looks_like_rtp(&buf));
        assert!(parse_srtp(&buf).is_err());
        // As RTCP, the length field (zeroed by the RTP builder) is 1
        // word = 4 bytes, which fits: it classifies as SRTCP.
        buf[2] = 0;
        buf[3] = 1;
        let r = parse_srtcp(&buf).unwrap();
        assert_eq!(r.packet_type, 200);
        assert!(matches!(classify(&buf).unwrap(), Pdu::Srtcp(_)));
    }

    #[test]
    fn srtcp_rejects_short_and_oversized() {
        let mut buf = vec![0x80, 200, 0, 1, 0, 0, 0, 7];
        let r = parse_srtcp(&buf).unwrap();
        assert_eq!((r.first_packet_len, r.ssrc), (8, 7));
        buf[3] = 9; // 40 bytes claimed, 8 present
        assert_eq!(parse_srtcp(&buf).unwrap_err(), Error::Truncated);
        assert_eq!(parse_srtcp(&[0x80, 200]).unwrap_err(), Error::Truncated);
        assert_eq!(
            parse_srtcp(&[0x80, 99, 0, 0, 0, 0, 0, 0]).unwrap_err(),
            Error::Malformed
        );
    }

    #[test]
    fn zme_bytes_never_classify_as_webrtc() {
        // ZME media-type first bytes and the SFU encapsulation lead byte:
        // none can take the DTLS or RTP branch (top bits are 00).
        for first in [5u8, 13, 15, 16, 33, 34] {
            let mut buf = vec![0u8; 64];
            buf[0] = first;
            assert!(classify(&buf).is_err(), "first byte {first}");
        }
    }

    #[test]
    fn pt_mapping_covers_the_defaults() {
        assert_eq!(media_type_for_pt(111), MediaType::Audio); // Opus
        assert_eq!(media_type_for_pt(0), MediaType::Audio); // PCMU
        assert_eq!(media_type_for_pt(96), MediaType::Video); // VP8
        assert_eq!(media_type_for_pt(98), MediaType::Video); // VP9
        assert_eq!(media_type_for_pt(102), MediaType::Video); // H.264
        assert_eq!(media_type_for_pt(127), MediaType::Other(127));
    }

    #[test]
    fn pdu_labels_are_stable() {
        assert_eq!(classify(&dtls_record(20, 1)).unwrap().label(), "dtls");
        assert_eq!(classify(&srtp_packet(96, false, 10)).unwrap().label(), "srtp");
    }
}
