//! Classic libpcap trace file reader and writer.
//!
//! Supports both the microsecond (magic `0xA1B2C3D4`) and nanosecond
//! (`0xA1B23C4D`) variants in either byte order, link types Ethernet (1)
//! and raw IP (101). This is all the paper's offline toolchain needs to
//! exchange traces with tcpdump/Wireshark.
//!
//! Two ingest paths are offered:
//!
//! * the **owning** path — [`Reader::next_record`] / [`Reader::records`]
//!   allocate a fresh [`Record`] per packet (simple, `'static`, clonable);
//! * the **zero-copy fast path** — [`Reader::read_into`] reuses one
//!   growable [`RecordBuf`] across records (zero steady-state
//!   allocations), and [`SliceReader`] yields records *borrowed* straight
//!   out of an in-memory trace image (e.g. an `mmap`ed file) without
//!   copying payload bytes at all.
//!
//! The owning path is implemented on top of `read_into`, so the two paths
//! cannot drift: they parse identically by construction.

use crate::Error;
use std::io::{self, Read, Write};

/// Magic for microsecond-resolution files.
pub const MAGIC_USEC: u32 = 0xA1B2_C3D4;
/// Magic for nanosecond-resolution files.
pub const MAGIC_NSEC: u32 = 0xA1B2_3C4D;

/// Link types we understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkType {
    /// DLT_EN10MB — Ethernet.
    Ethernet,
    /// DLT_RAW — raw IP starting at the version nibble.
    RawIp,
    /// Anything else.
    Other(u32),
}

impl From<u32> for LinkType {
    fn from(v: u32) -> Self {
        match v {
            1 => LinkType::Ethernet,
            101 => LinkType::RawIp,
            other => LinkType::Other(other),
        }
    }
}

impl From<LinkType> for u32 {
    fn from(v: LinkType) -> u32 {
        match v {
            LinkType::Ethernet => 1,
            LinkType::RawIp => 101,
            LinkType::Other(other) => other,
        }
    }
}

/// One captured packet: a nanosecond timestamp and the captured bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Nanoseconds since the Unix epoch (or since trace start for
    /// synthetic traces).
    pub ts_nanos: u64,
    /// Original (on-the-wire) length; `data.len()` may be smaller if the
    /// capture clipped the packet.
    pub orig_len: u32,
    /// Captured bytes.
    pub data: Vec<u8>,
}

impl Record {
    /// A record whose snap length covers the whole packet.
    pub fn full(ts_nanos: u64, data: Vec<u8>) -> Record {
        Record {
            ts_nanos,
            orig_len: data.len() as u32,
            data,
        }
    }
}

/// A reusable record buffer for [`Reader::read_into`]: the data `Vec`
/// grows to the largest record seen and is then reused, so a steady-state
/// read loop performs no allocations at all.
#[derive(Debug, Default, Clone)]
pub struct RecordBuf {
    ts_nanos: u64,
    orig_len: u32,
    data: Vec<u8>,
}

impl RecordBuf {
    /// An empty buffer; the first read sizes it.
    pub fn new() -> RecordBuf {
        RecordBuf::default()
    }

    /// A buffer pre-sized for records up to `cap` bytes.
    pub fn with_capacity(cap: usize) -> RecordBuf {
        RecordBuf {
            data: Vec::with_capacity(cap),
            ..RecordBuf::default()
        }
    }

    /// Capture timestamp of the buffered record, nanoseconds.
    pub fn ts_nanos(&self) -> u64 {
        self.ts_nanos
    }

    /// Original (on-the-wire) length of the buffered record.
    pub fn orig_len(&self) -> u32 {
        self.orig_len
    }

    /// Captured bytes of the buffered record.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Clone the buffered record into an owning [`Record`].
    pub fn to_record(&self) -> Record {
        Record {
            ts_nanos: self.ts_nanos,
            orig_len: self.orig_len,
            data: self.data.clone(),
        }
    }

    /// Convert into an owning [`Record`], giving up the buffer.
    pub fn into_record(self) -> Record {
        Record {
            ts_nanos: self.ts_nanos,
            orig_len: self.orig_len,
            data: self.data,
        }
    }
}

/// Parsed pcap global header: (byte-swapped, nanosecond timestamps,
/// link type, snap length).
fn parse_global_header(hdr: &[u8; 24]) -> io::Result<(bool, bool, LinkType, u32)> {
    let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
    let (swapped, nanos) = match magic {
        MAGIC_USEC => (false, false),
        MAGIC_NSEC => (false, true),
        m if m.swap_bytes() == MAGIC_USEC => (true, false),
        m if m.swap_bytes() == MAGIC_NSEC => (true, true),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a pcap file (bad magic)",
            ))
        }
    };
    let rd32 = |o: usize| {
        let v = u32::from_le_bytes([hdr[o], hdr[o + 1], hdr[o + 2], hdr[o + 3]]);
        if swapped {
            v.swap_bytes()
        } else {
            v
        }
    };
    Ok((swapped, nanos, LinkType::from(rd32(20)), rd32(16)))
}

/// Read until `buf` is full or EOF; returns the bytes actually read.
/// Unlike `read_exact`, a short read is reported by count, not error, so
/// callers can tell a clean EOF (0) from a truncated tail (0 < n < len).
fn read_fully<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut n = 0;
    while n < buf.len() {
        match r.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(k) => n += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(n)
}

/// Streaming pcap reader.
pub struct Reader<R: Read> {
    inner: R,
    swapped: bool,
    nanos: bool,
    link_type: LinkType,
    snaplen: u32,
    truncated: u64,
    records_read: u64,
    bytes_read: u64,
}

impl<R: Read> Reader<R> {
    /// Read and validate the global header.
    pub fn new(mut inner: R) -> io::Result<Self> {
        let mut hdr = [0u8; 24];
        inner.read_exact(&mut hdr)?;
        let (swapped, nanos, link_type, snaplen) = parse_global_header(&hdr)?;
        Ok(Reader {
            inner,
            swapped,
            nanos,
            link_type,
            snaplen,
            truncated: 0,
            records_read: 0,
            bytes_read: 0,
        })
    }

    /// The file's link type.
    pub fn link_type(&self) -> LinkType {
        self.link_type
    }

    /// The file's snap length.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Records dropped because the file ended mid-record (a capture cut
    /// off mid-write). Such a tail yields `Ok(None)` / `Ok(false)` rather
    /// than an error; this counter is the warning channel.
    pub fn truncated_records(&self) -> u64 {
        self.truncated
    }

    /// Complete records delivered so far (all ingest paths funnel through
    /// [`read_into`](Reader::read_into), so this covers every path).
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Captured payload bytes delivered so far (record data only, not
    /// pcap framing).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Read the next record into `buf`, reusing its storage: the
    /// zero-copy fast path. Returns `Ok(false)` at end of file (including
    /// a truncated final record, which also bumps
    /// [`truncated_records`](Reader::truncated_records)); `buf` holds the
    /// new record only when `Ok(true)` is returned.
    pub fn read_into(&mut self, buf: &mut RecordBuf) -> io::Result<bool> {
        let mut hdr = [0u8; 16];
        let got = read_fully(&mut self.inner, &mut hdr)?;
        if got == 0 {
            return Ok(false);
        }
        if got < hdr.len() {
            self.truncated += 1;
            return Ok(false);
        }
        let rd32 = |b: &[u8], o: usize| {
            let v = u32::from_le_bytes([b[o], b[o + 1], b[o + 2], b[o + 3]]);
            if self.swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let ts_sec = u64::from(rd32(&hdr, 0));
        let ts_frac = u64::from(rd32(&hdr, 4));
        let incl_len = rd32(&hdr, 8);
        let orig_len = rd32(&hdr, 12);
        if incl_len > self.snaplen.max(65_535) * 2 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "pcap record longer than twice the snap length",
            ));
        }
        buf.data.resize(incl_len as usize, 0);
        let got = read_fully(&mut self.inner, &mut buf.data)?;
        if got < incl_len as usize {
            self.truncated += 1;
            buf.data.clear();
            return Ok(false);
        }
        let frac_nanos = if self.nanos { ts_frac } else { ts_frac * 1_000 };
        buf.ts_nanos = ts_sec * 1_000_000_000 + frac_nanos;
        buf.orig_len = orig_len;
        self.records_read += 1;
        self.bytes_read += u64::from(incl_len);
        Ok(true)
    }

    /// Read the next record; `Ok(None)` at a clean end of file *or* at a
    /// truncated final record (see
    /// [`truncated_records`](Reader::truncated_records)).
    ///
    /// This is the owning path: it allocates a fresh `Vec` per record.
    /// Hot loops should prefer [`read_into`](Reader::read_into).
    pub fn next_record(&mut self) -> io::Result<Option<Record>> {
        let mut buf = RecordBuf::new();
        if self.read_into(&mut buf)? {
            Ok(Some(buf.into_record()))
        } else {
            Ok(None)
        }
    }

    /// Iterate over all remaining records, stopping at the first error.
    pub fn records(self) -> RecordIter<R> {
        RecordIter { reader: self }
    }
}

/// Iterator adapter over a [`Reader`].
pub struct RecordIter<R: Read> {
    reader: Reader<R>,
}

impl<R: Read> Iterator for RecordIter<R> {
    type Item = io::Result<Record>;

    fn next(&mut self) -> Option<Self::Item> {
        self.reader.next_record().transpose()
    }
}

/// One record borrowed from a [`SliceReader`]'s trace image: no payload
/// copy, `data` points into the underlying buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceRecord<'a> {
    /// Nanoseconds since the Unix epoch.
    pub ts_nanos: u64,
    /// Original (on-the-wire) length.
    pub orig_len: u32,
    /// Captured bytes, borrowed from the trace image.
    pub data: &'a [u8],
}

impl SliceRecord<'_> {
    /// Copy into an owning [`Record`].
    pub fn to_record(&self) -> Record {
        Record {
            ts_nanos: self.ts_nanos,
            orig_len: self.orig_len,
            data: self.data.to_vec(),
        }
    }
}

/// Zero-copy pcap reader over an in-memory trace image (a `Vec<u8>`, an
/// `mmap`ed file, an embedded test trace): records are yielded as
/// [`SliceRecord`]s borrowing directly from the image.
///
/// Semantics mirror [`Reader`] exactly — same magic/byte-order handling,
/// same sanity limit, and the same truncated-tail policy (`Ok(None)` plus
/// the [`truncated_records`](SliceReader::truncated_records) counter).
pub struct SliceReader<'a> {
    data: &'a [u8],
    pos: usize,
    swapped: bool,
    nanos: bool,
    link_type: LinkType,
    snaplen: u32,
    truncated: u64,
    records_read: u64,
    bytes_read: u64,
}

impl<'a> SliceReader<'a> {
    /// Validate the global header of an in-memory trace.
    pub fn new(data: &'a [u8]) -> io::Result<SliceReader<'a>> {
        let hdr: &[u8; 24] = data
            .get(..24)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "pcap image shorter than header")
            })?;
        let (swapped, nanos, link_type, snaplen) = parse_global_header(hdr)?;
        Ok(SliceReader {
            data,
            pos: 24,
            swapped,
            nanos,
            link_type,
            snaplen,
            truncated: 0,
            records_read: 0,
            bytes_read: 0,
        })
    }

    /// The trace's link type.
    pub fn link_type(&self) -> LinkType {
        self.link_type
    }

    /// The trace's snap length.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Records dropped because the image ended mid-record.
    pub fn truncated_records(&self) -> u64 {
        self.truncated
    }

    /// Complete records delivered so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Captured payload bytes delivered so far (record data only, not
    /// pcap framing).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// The next borrowed record; `Ok(None)` at the end of the image or at
    /// a truncated tail (which bumps
    /// [`truncated_records`](SliceReader::truncated_records)).
    pub fn next_record(&mut self) -> io::Result<Option<SliceRecord<'a>>> {
        let rest = &self.data[self.pos..];
        if rest.is_empty() {
            return Ok(None);
        }
        if rest.len() < 16 {
            self.truncated += 1;
            self.pos = self.data.len();
            return Ok(None);
        }
        let rd32 = |o: usize| {
            let v = u32::from_le_bytes([rest[o], rest[o + 1], rest[o + 2], rest[o + 3]]);
            if self.swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let ts_sec = u64::from(rd32(0));
        let ts_frac = u64::from(rd32(4));
        let incl_len = rd32(8) as usize;
        let orig_len = rd32(12);
        if incl_len as u32 > self.snaplen.max(65_535) * 2 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "pcap record longer than twice the snap length",
            ));
        }
        let Some(data) = rest.get(16..16 + incl_len) else {
            self.truncated += 1;
            self.pos = self.data.len();
            return Ok(None);
        };
        self.pos += 16 + incl_len;
        self.records_read += 1;
        self.bytes_read += incl_len as u64;
        let frac_nanos = if self.nanos { ts_frac } else { ts_frac * 1_000 };
        Ok(Some(SliceRecord {
            ts_nanos: ts_sec * 1_000_000_000 + frac_nanos,
            orig_len,
            data,
        }))
    }
}

/// Streaming pcap writer (nanosecond resolution, native byte order).
pub struct Writer<W: Write> {
    inner: W,
}

impl<W: Write> Writer<W> {
    /// Write the global header and return the writer.
    pub fn new(mut inner: W, link_type: LinkType) -> io::Result<Self> {
        let mut hdr = [0u8; 24];
        hdr[0..4].copy_from_slice(&MAGIC_NSEC.to_le_bytes());
        hdr[4..6].copy_from_slice(&2u16.to_le_bytes()); // major
        hdr[6..8].copy_from_slice(&4u16.to_le_bytes()); // minor
        hdr[16..20].copy_from_slice(&262_144u32.to_le_bytes()); // snaplen
        hdr[20..24].copy_from_slice(&u32::from(link_type).to_le_bytes());
        inner.write_all(&hdr)?;
        Ok(Writer { inner })
    }

    /// Append one record.
    ///
    /// The written original length is `max(orig_len, data.len())`: snapped
    /// records (`orig_len > data.len()`) round-trip exactly, and a record
    /// whose `orig_len` was left at 0 (or otherwise below the captured
    /// length — malformed in pcap) is normalized so the file stays
    /// well-formed for other tools.
    pub fn write_record(&mut self, record: &Record) -> io::Result<()> {
        let mut hdr = [0u8; 16];
        let secs = (record.ts_nanos / 1_000_000_000) as u32;
        let nanos = (record.ts_nanos % 1_000_000_000) as u32;
        let orig_len = record.orig_len.max(record.data.len() as u32);
        hdr[0..4].copy_from_slice(&secs.to_le_bytes());
        hdr[4..8].copy_from_slice(&nanos.to_le_bytes());
        hdr[8..12].copy_from_slice(&(record.data.len() as u32).to_le_bytes());
        hdr[12..16].copy_from_slice(&orig_len.to_le_bytes());
        self.inner.write_all(&hdr)?;
        self.inner.write_all(&record.data)
    }

    /// Flush and recover the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Convert an [`Error`] from a parser into `io::Error` when bridging the
/// two worlds in trace-processing loops.
pub fn to_io(e: Error) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_trace(records: &[Record]) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf, LinkType::Ethernet).unwrap();
        for r in records {
            w.write_record(r).unwrap();
        }
        w.finish().unwrap();
        buf
    }

    fn roundtrip(records: &[Record]) -> Vec<Record> {
        let buf = write_trace(records);
        let r = Reader::new(&buf[..]).unwrap();
        assert_eq!(r.link_type(), LinkType::Ethernet);
        r.records().map(|x| x.unwrap()).collect()
    }

    #[test]
    fn empty_file_roundtrip() {
        assert!(roundtrip(&[]).is_empty());
    }

    #[test]
    fn records_roundtrip_with_nanos() {
        let records = vec![
            Record::full(1_234_567_891, vec![1, 2, 3]),
            Record::full(9_999_999_999_999, vec![0; 1500]),
        ];
        assert_eq!(roundtrip(&records), records);
    }

    #[test]
    fn snapped_record_keeps_orig_len() {
        let rec = Record {
            ts_nanos: 5,
            orig_len: 1500,
            data: vec![7; 96],
        };
        let got = roundtrip(std::slice::from_ref(&rec));
        assert_eq!(got[0].orig_len, 1500);
        assert_eq!(got[0].data.len(), 96);
    }

    #[test]
    fn undersized_orig_len_normalized_on_write() {
        // orig_len below the captured length is malformed pcap; the
        // writer raises it to data.len() so the file round-trips into a
        // well-formed record.
        let rec = Record {
            ts_nanos: 1,
            orig_len: 0,
            data: vec![9; 40],
        };
        let got = roundtrip(std::slice::from_ref(&rec));
        assert_eq!(got[0].orig_len, 40);
        assert_eq!(got[0].data, rec.data);
    }

    #[test]
    fn microsecond_file_parses() {
        // Hand-built µs-resolution header + one record.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_USEC.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&[0; 8]);
        buf.extend_from_slice(&65_535u32.to_le_bytes());
        buf.extend_from_slice(&101u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes()); // sec
        buf.extend_from_slice(&500u32.to_le_bytes()); // µs
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0xAA, 0xBB]);
        let r = Reader::new(&buf[..]).unwrap();
        assert_eq!(r.link_type(), LinkType::RawIp);
        let recs: Vec<_> = r.records().map(|x| x.unwrap()).collect();
        assert_eq!(recs[0].ts_nanos, 1_000_000_000 + 500_000);
        assert_eq!(recs[0].data, vec![0xAA, 0xBB]);

        // The slice reader agrees on the same image.
        let mut s = SliceReader::new(&buf).unwrap();
        assert_eq!(s.link_type(), LinkType::RawIp);
        let rec = s.next_record().unwrap().unwrap();
        assert_eq!(rec.ts_nanos, 1_000_000_000 + 500_000);
        assert_eq!(rec.data, &[0xAA, 0xBB]);
        assert!(s.next_record().unwrap().is_none());
    }

    #[test]
    fn big_endian_file_parses() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_USEC.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&[0; 8]);
        buf.extend_from_slice(&65_535u32.to_be_bytes());
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.push(0x42);
        let recs: Vec<_> = Reader::new(&buf[..])
            .unwrap()
            .records()
            .map(|x| x.unwrap())
            .collect();
        assert_eq!(recs[0].data, vec![0x42]);
        let mut s = SliceReader::new(&buf).unwrap();
        assert_eq!(s.next_record().unwrap().unwrap().data, &[0x42]);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = [0u8; 24];
        assert!(Reader::new(&buf[..]).is_err());
        assert!(SliceReader::new(&buf).is_err());
    }

    #[test]
    fn truncated_final_record_is_clean_eof_with_warning() {
        // Cut into the record *data*: the reader reports a clean end of
        // file and counts the dropped tail instead of erroring.
        let mut buf = write_trace(&[
            Record::full(0, vec![1, 2, 3, 4]),
            Record::full(1, vec![5, 6, 7, 8]),
        ]);
        buf.truncate(buf.len() - 2);
        let mut r = Reader::new(&buf[..]).unwrap();
        assert_eq!(r.next_record().unwrap().unwrap().data, vec![1, 2, 3, 4]);
        assert!(r.next_record().unwrap().is_none());
        assert_eq!(r.truncated_records(), 1);

        let mut s = SliceReader::new(&buf).unwrap();
        assert_eq!(s.next_record().unwrap().unwrap().data, &[1, 2, 3, 4]);
        assert!(s.next_record().unwrap().is_none());
        assert_eq!(s.truncated_records(), 1);
    }

    #[test]
    fn truncated_record_header_is_clean_eof_with_warning() {
        // Cut into the 16-byte per-record header itself.
        let mut buf = write_trace(&[Record::full(0, vec![1, 2, 3, 4])]);
        buf.truncate(buf.len() - 4 - 10); // keep 6 of the 16 header bytes
        let mut r = Reader::new(&buf[..]).unwrap();
        assert!(r.next_record().unwrap().is_none());
        assert_eq!(r.truncated_records(), 1);

        let mut s = SliceReader::new(&buf).unwrap();
        assert!(s.next_record().unwrap().is_none());
        assert_eq!(s.truncated_records(), 1);
    }

    #[test]
    fn read_into_reuses_one_buffer_and_matches_owning_path() {
        let records = vec![
            Record::full(10, vec![0xAB; 1400]),
            Record::full(20, vec![0xCD; 60]),
            Record {
                ts_nanos: 30,
                orig_len: 9000,
                data: vec![0xEF; 1200],
            },
        ];
        let img = write_trace(&records);

        let owned: Vec<Record> = Reader::new(&img[..])
            .unwrap()
            .records()
            .map(|x| x.unwrap())
            .collect();

        let mut fast = Vec::new();
        let mut reader = Reader::new(&img[..]).unwrap();
        let mut buf = RecordBuf::new();
        while reader.read_into(&mut buf).unwrap() {
            assert!(buf.data().len() <= buf.data.capacity());
            fast.push(buf.to_record());
        }
        assert_eq!(fast, owned);
        // The buffer grew once to the largest record and stayed there.
        assert_eq!(buf.data.capacity(), 1400);
        assert_eq!(reader.truncated_records(), 0);
    }

    #[test]
    fn readers_count_records_and_bytes() {
        let records = vec![
            Record::full(1, vec![0x11; 100]),
            Record::full(2, vec![0x22; 60]),
        ];
        let img = write_trace(&records);

        let mut r = Reader::new(&img[..]).unwrap();
        let mut buf = RecordBuf::new();
        while r.read_into(&mut buf).unwrap() {}
        assert_eq!(r.records_read(), 2);
        assert_eq!(r.bytes_read(), 160);

        let mut s = SliceReader::new(&img).unwrap();
        while s.next_record().unwrap().is_some() {}
        assert_eq!(s.records_read(), 2);
        assert_eq!(s.bytes_read(), 160);

        // A truncated tail is not counted as read.
        let mut cut = img.clone();
        cut.truncate(cut.len() - 2);
        let mut r = Reader::new(&cut[..]).unwrap();
        while r.read_into(&mut buf).unwrap() {}
        assert_eq!((r.records_read(), r.truncated_records()), (1, 1));
        assert_eq!(r.bytes_read(), 100);
    }

    #[test]
    fn slice_reader_yields_borrowed_records_identical_to_owning() {
        let records = vec![
            Record::full(7, vec![1; 128]),
            Record::full(8, (0..=255).collect()),
        ];
        let img = write_trace(&records);
        let mut s = SliceReader::new(&img).unwrap();
        assert_eq!(s.link_type(), LinkType::Ethernet);
        let mut got = Vec::new();
        while let Some(rec) = s.next_record().unwrap() {
            // Borrowed straight from the image: same backing allocation.
            let img_range = img.as_ptr_range();
            assert!(img_range.contains(&rec.data.as_ptr()));
            got.push(rec.to_record());
        }
        assert_eq!(got, records);
    }
}
