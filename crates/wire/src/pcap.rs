//! Classic libpcap trace file reader and writer.
//!
//! Supports both the microsecond (magic `0xA1B2C3D4`) and nanosecond
//! (`0xA1B23C4D`) variants in either byte order, link types Ethernet (1)
//! and raw IP (101). This is all the paper's offline toolchain needs to
//! exchange traces with tcpdump/Wireshark.

use crate::Error;
use std::io::{self, Read, Write};

/// Magic for microsecond-resolution files.
pub const MAGIC_USEC: u32 = 0xA1B2_C3D4;
/// Magic for nanosecond-resolution files.
pub const MAGIC_NSEC: u32 = 0xA1B2_3C4D;

/// Link types we understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkType {
    /// DLT_EN10MB — Ethernet.
    Ethernet,
    /// DLT_RAW — raw IP starting at the version nibble.
    RawIp,
    /// Anything else.
    Other(u32),
}

impl From<u32> for LinkType {
    fn from(v: u32) -> Self {
        match v {
            1 => LinkType::Ethernet,
            101 => LinkType::RawIp,
            other => LinkType::Other(other),
        }
    }
}

impl From<LinkType> for u32 {
    fn from(v: LinkType) -> u32 {
        match v {
            LinkType::Ethernet => 1,
            LinkType::RawIp => 101,
            LinkType::Other(other) => other,
        }
    }
}

/// One captured packet: a nanosecond timestamp and the captured bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Nanoseconds since the Unix epoch (or since trace start for
    /// synthetic traces).
    pub ts_nanos: u64,
    /// Original (on-the-wire) length; `data.len()` may be smaller if the
    /// capture clipped the packet.
    pub orig_len: u32,
    /// Captured bytes.
    pub data: Vec<u8>,
}

impl Record {
    /// A record whose snap length covers the whole packet.
    pub fn full(ts_nanos: u64, data: Vec<u8>) -> Record {
        Record {
            ts_nanos,
            orig_len: data.len() as u32,
            data,
        }
    }
}

/// Streaming pcap reader.
pub struct Reader<R: Read> {
    inner: R,
    swapped: bool,
    nanos: bool,
    link_type: LinkType,
    snaplen: u32,
}

impl<R: Read> Reader<R> {
    /// Read and validate the global header.
    pub fn new(mut inner: R) -> io::Result<Self> {
        let mut hdr = [0u8; 24];
        inner.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let (swapped, nanos) = match magic {
            MAGIC_USEC => (false, false),
            MAGIC_NSEC => (false, true),
            m if m.swap_bytes() == MAGIC_USEC => (true, false),
            m if m.swap_bytes() == MAGIC_NSEC => (true, true),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "not a pcap file (bad magic)",
                ))
            }
        };
        let rd32 = |b: &[u8], o: usize| {
            let v = u32::from_le_bytes([b[o], b[o + 1], b[o + 2], b[o + 3]]);
            if swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let snaplen = rd32(&hdr, 16);
        let link_type = LinkType::from(rd32(&hdr, 20));
        Ok(Reader {
            inner,
            swapped,
            nanos,
            link_type,
            snaplen,
        })
    }

    /// The file's link type.
    pub fn link_type(&self) -> LinkType {
        self.link_type
    }

    /// The file's snap length.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Read the next record; `Ok(None)` at a clean end of file.
    pub fn next_record(&mut self) -> io::Result<Option<Record>> {
        let mut hdr = [0u8; 16];
        match self.inner.read_exact(&mut hdr) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let rd32 = |b: &[u8], o: usize| {
            let v = u32::from_le_bytes([b[o], b[o + 1], b[o + 2], b[o + 3]]);
            if self.swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let ts_sec = u64::from(rd32(&hdr, 0));
        let ts_frac = u64::from(rd32(&hdr, 4));
        let incl_len = rd32(&hdr, 8);
        let orig_len = rd32(&hdr, 12);
        if incl_len > self.snaplen.max(65_535) * 2 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "pcap record longer than twice the snap length",
            ));
        }
        let mut data = vec![0u8; incl_len as usize];
        self.inner.read_exact(&mut data)?;
        let frac_nanos = if self.nanos { ts_frac } else { ts_frac * 1_000 };
        Ok(Some(Record {
            ts_nanos: ts_sec * 1_000_000_000 + frac_nanos,
            orig_len,
            data,
        }))
    }

    /// Iterate over all remaining records, stopping at the first error.
    pub fn records(self) -> RecordIter<R> {
        RecordIter { reader: self }
    }
}

/// Iterator adapter over a [`Reader`].
pub struct RecordIter<R: Read> {
    reader: Reader<R>,
}

impl<R: Read> Iterator for RecordIter<R> {
    type Item = io::Result<Record>;

    fn next(&mut self) -> Option<Self::Item> {
        self.reader.next_record().transpose()
    }
}

/// Streaming pcap writer (nanosecond resolution, native byte order).
pub struct Writer<W: Write> {
    inner: W,
}

impl<W: Write> Writer<W> {
    /// Write the global header and return the writer.
    pub fn new(mut inner: W, link_type: LinkType) -> io::Result<Self> {
        let mut hdr = [0u8; 24];
        hdr[0..4].copy_from_slice(&MAGIC_NSEC.to_le_bytes());
        hdr[4..6].copy_from_slice(&2u16.to_le_bytes()); // major
        hdr[6..8].copy_from_slice(&4u16.to_le_bytes()); // minor
        hdr[16..20].copy_from_slice(&262_144u32.to_le_bytes()); // snaplen
        hdr[20..24].copy_from_slice(&u32::from(link_type).to_le_bytes());
        inner.write_all(&hdr)?;
        Ok(Writer { inner })
    }

    /// Append one record.
    pub fn write_record(&mut self, record: &Record) -> io::Result<()> {
        let mut hdr = [0u8; 16];
        let secs = (record.ts_nanos / 1_000_000_000) as u32;
        let nanos = (record.ts_nanos % 1_000_000_000) as u32;
        hdr[0..4].copy_from_slice(&secs.to_le_bytes());
        hdr[4..8].copy_from_slice(&nanos.to_le_bytes());
        hdr[8..12].copy_from_slice(&(record.data.len() as u32).to_le_bytes());
        hdr[12..16].copy_from_slice(&record.orig_len.to_le_bytes());
        self.inner.write_all(&hdr)?;
        self.inner.write_all(&record.data)
    }

    /// Flush and recover the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Convert an [`Error`] from a parser into `io::Error` when bridging the
/// two worlds in trace-processing loops.
pub fn to_io(e: Error) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(records: &[Record]) -> Vec<Record> {
        let mut buf = Vec::new();
        {
            let mut w = Writer::new(&mut buf, LinkType::Ethernet).unwrap();
            for r in records {
                w.write_record(r).unwrap();
            }
            w.finish().unwrap();
        }
        let r = Reader::new(&buf[..]).unwrap();
        assert_eq!(r.link_type(), LinkType::Ethernet);
        r.records().map(|x| x.unwrap()).collect()
    }

    #[test]
    fn empty_file_roundtrip() {
        assert!(roundtrip(&[]).is_empty());
    }

    #[test]
    fn records_roundtrip_with_nanos() {
        let records = vec![
            Record::full(1_234_567_891, vec![1, 2, 3]),
            Record::full(9_999_999_999_999, vec![0; 1500]),
        ];
        assert_eq!(roundtrip(&records), records);
    }

    #[test]
    fn snapped_record_keeps_orig_len() {
        let rec = Record {
            ts_nanos: 5,
            orig_len: 1500,
            data: vec![7; 96],
        };
        let got = roundtrip(std::slice::from_ref(&rec));
        assert_eq!(got[0].orig_len, 1500);
        assert_eq!(got[0].data.len(), 96);
    }

    #[test]
    fn microsecond_file_parses() {
        // Hand-built µs-resolution header + one record.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_USEC.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&[0; 8]);
        buf.extend_from_slice(&65_535u32.to_le_bytes());
        buf.extend_from_slice(&101u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes()); // sec
        buf.extend_from_slice(&500u32.to_le_bytes()); // µs
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0xAA, 0xBB]);
        let r = Reader::new(&buf[..]).unwrap();
        assert_eq!(r.link_type(), LinkType::RawIp);
        let recs: Vec<_> = r.records().map(|x| x.unwrap()).collect();
        assert_eq!(recs[0].ts_nanos, 1_000_000_000 + 500_000);
        assert_eq!(recs[0].data, vec![0xAA, 0xBB]);
    }

    #[test]
    fn big_endian_file_parses() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_USEC.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&[0; 8]);
        buf.extend_from_slice(&65_535u32.to_be_bytes());
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.push(0x42);
        let recs: Vec<_> = Reader::new(&buf[..])
            .unwrap()
            .records()
            .map(|x| x.unwrap())
            .collect();
        assert_eq!(recs[0].data, vec![0x42]);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = [0u8; 24];
        assert!(Reader::new(&buf[..]).is_err());
    }

    #[test]
    fn truncated_record_is_error() {
        let mut buf = Vec::new();
        {
            let mut w = Writer::new(&mut buf, LinkType::Ethernet).unwrap();
            w.write_record(&Record::full(0, vec![1, 2, 3, 4])).unwrap();
        }
        buf.truncate(buf.len() - 2);
        let r = Reader::new(&buf[..]).unwrap();
        let results: Vec<_> = r.records().collect();
        assert!(results[0].is_err());
    }
}
