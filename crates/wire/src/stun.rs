//! STUN message view and emitter (RFC 5389).
//!
//! Before a Zoom P2P connection is established, each client exchanges STUN
//! binding requests with a Zoom zone controller on UDP port 3478 from the
//! ephemeral port that will later carry the P2P media flow (§4.1, Fig. 2 of
//! the paper). Detecting that exchange is what makes P2P capture
//! deterministic, so this module parses exactly what that detector needs:
//! the message type, the magic cookie, the transaction ID, and the
//! XOR-MAPPED-ADDRESS attribute.

use crate::{be16, be32, set_be16, set_be32, Error, Result};
use std::net::{IpAddr, Ipv4Addr, SocketAddr};

/// STUN header length.
pub const HEADER_LEN: usize = 20;

/// The fixed magic cookie (RFC 5389 §6).
pub const MAGIC_COOKIE: u32 = 0x2112_A442;

/// The well-known STUN UDP port, used by Zoom zone controllers.
pub const STUN_PORT: u16 = 3478;

/// STUN message classes and methods we understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageType {
    /// Binding request (0x0001).
    BindingRequest,
    /// Binding success response (0x0101).
    BindingSuccess,
    /// Binding error response (0x0111).
    BindingError,
    /// Binding indication (0x0011).
    BindingIndication,
    /// Any other class/method combination, carried verbatim.
    Other(u16),
}

impl From<u16> for MessageType {
    fn from(v: u16) -> Self {
        match v {
            0x0001 => MessageType::BindingRequest,
            0x0101 => MessageType::BindingSuccess,
            0x0111 => MessageType::BindingError,
            0x0011 => MessageType::BindingIndication,
            other => MessageType::Other(other),
        }
    }
}

impl From<MessageType> for u16 {
    fn from(v: MessageType) -> u16 {
        match v {
            MessageType::BindingRequest => 0x0001,
            MessageType::BindingSuccess => 0x0101,
            MessageType::BindingError => 0x0111,
            MessageType::BindingIndication => 0x0011,
            MessageType::Other(other) => other,
        }
    }
}

/// STUN attribute types we understand.
pub mod attr {
    /// MAPPED-ADDRESS (RFC 5389 §15.1).
    pub const MAPPED_ADDRESS: u16 = 0x0001;
    /// XOR-MAPPED-ADDRESS (RFC 5389 §15.2).
    pub const XOR_MAPPED_ADDRESS: u16 = 0x0020;
    /// SOFTWARE (RFC 5389 §15.10).
    pub const SOFTWARE: u16 = 0x8022;
    /// FINGERPRINT (RFC 5389 §15.5).
    pub const FINGERPRINT: u16 = 0x8028;
}

/// Zero-copy view of a STUN message.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Packet { buffer }
    }

    /// Wrap, validating the header: leading zero bits, magic cookie, and
    /// message length (which must be a multiple of 4 and fit the buffer).
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = Packet { buffer };
        packet.check_len()?;
        Ok(packet)
    }

    /// Validate structural invariants.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        // The two most significant bits of a STUN message are zero.
        if data[0] & 0xC0 != 0 {
            return Err(Error::Malformed);
        }
        if self.magic_cookie() != MAGIC_COOKIE {
            return Err(Error::Malformed);
        }
        let ml = self.message_len() as usize;
        if !ml.is_multiple_of(4) {
            return Err(Error::Malformed);
        }
        if data.len() < HEADER_LEN + ml {
            return Err(Error::Truncated);
        }
        Ok(())
    }

    /// Message type field.
    pub fn message_type(&self) -> MessageType {
        MessageType::from(be16(self.buffer.as_ref(), 0))
    }

    /// Message length field (attributes only, excludes the header).
    pub fn message_len(&self) -> u16 {
        be16(self.buffer.as_ref(), 2)
    }

    /// Magic cookie field.
    pub fn magic_cookie(&self) -> u32 {
        be32(self.buffer.as_ref(), 4)
    }

    /// 96-bit transaction ID.
    pub fn transaction_id(&self) -> [u8; 12] {
        let mut id = [0u8; 12];
        id.copy_from_slice(&self.buffer.as_ref()[8..20]);
        id
    }

    /// Iterate over `(attribute_type, value)` pairs.
    pub fn attributes(&self) -> AttributeIter<'_> {
        let ml = self.message_len() as usize;
        AttributeIter {
            data: &self.buffer.as_ref()[HEADER_LEN..HEADER_LEN + ml],
        }
    }

    /// Decode the XOR-MAPPED-ADDRESS attribute, if present (IPv4 only —
    /// Zoom zone controllers answer over IPv4).
    pub fn xor_mapped_address(&self) -> Option<SocketAddr> {
        for (ty, value) in self.attributes() {
            if ty == attr::XOR_MAPPED_ADDRESS && value.len() >= 8 && value[1] == 0x01 {
                let port = be16(value, 2) ^ (MAGIC_COOKIE >> 16) as u16;
                let raw = be32(value, 4) ^ MAGIC_COOKIE;
                let ip = Ipv4Addr::from(raw);
                return Some(SocketAddr::new(IpAddr::V4(ip), port));
            }
        }
        None
    }
}

/// Iterator over STUN attributes; tolerates a truncated trailing attribute
/// by stopping early (passive captures may clip payloads).
pub struct AttributeIter<'a> {
    data: &'a [u8],
}

impl<'a> Iterator for AttributeIter<'a> {
    type Item = (u16, &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.data.len() < 4 {
            return None;
        }
        let ty = be16(self.data, 0);
        let len = be16(self.data, 2) as usize;
        let padded = (len + 3) & !3;
        if self.data.len() < 4 + len {
            self.data = &[];
            return None;
        }
        let value = &self.data[4..4 + len];
        self.data = if self.data.len() >= 4 + padded {
            &self.data[4 + padded..]
        } else {
            &[]
        };
        Some((ty, value))
    }
}

/// High-level STUN message representation; attributes beyond
/// XOR-MAPPED-ADDRESS are not modeled (the detector does not need them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Message class and method.
    pub message_type: MessageType,
    /// 96-bit transaction id.
    pub transaction_id: [u8; 12],
    /// When set, an XOR-MAPPED-ADDRESS attribute is emitted.
    pub xor_mapped_address: Option<SocketAddr>,
}

impl Repr {
    /// Parse a validated view.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Repr> {
        packet.check_len()?;
        Ok(Repr {
            message_type: packet.message_type(),
            transaction_id: packet.transaction_id(),
            xor_mapped_address: packet.xor_mapped_address(),
        })
    }

    /// Length of the emitted message.
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN
            + if self.xor_mapped_address.is_some() {
                12
            } else {
                0
            }
    }

    /// Emit into `buf`, which must be at least [`Repr::buffer_len`] long.
    /// Returns the number of bytes written.
    pub fn emit(&self, buf: &mut [u8]) -> usize {
        let attrs_len = self.buffer_len() - HEADER_LEN;
        set_be16(buf, 0, self.message_type.into());
        set_be16(buf, 2, attrs_len as u16);
        set_be32(buf, 4, MAGIC_COOKIE);
        buf[8..20].copy_from_slice(&self.transaction_id);
        if let Some(addr) = self.xor_mapped_address {
            let (ip, port) = match addr {
                SocketAddr::V4(v4) => (*v4.ip(), v4.port()),
                SocketAddr::V6(_) => {
                    // We never emit IPv6 mappings; encode the unspecified v4
                    // address so the length stays consistent.
                    (Ipv4Addr::UNSPECIFIED, addr.port())
                }
            };
            set_be16(buf, 20, attr::XOR_MAPPED_ADDRESS);
            set_be16(buf, 22, 8);
            buf[24] = 0;
            buf[25] = 0x01; // family IPv4
            set_be16(buf, 26, port ^ (MAGIC_COOKIE >> 16) as u16);
            set_be32(buf, 28, u32::from(ip) ^ MAGIC_COOKIE);
        }
        self.buffer_len()
    }
}

/// Quick test: does this UDP payload look like a STUN message?
///
/// Used by the capture pipeline (Fig. 13) as the cheap data-plane check
/// before touching the stateful registers.
pub fn looks_like_stun(payload: &[u8]) -> bool {
    Packet::new_checked(payload).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> Vec<u8> {
        let repr = Repr {
            message_type: MessageType::BindingRequest,
            transaction_id: [7u8; 12],
            xor_mapped_address: None,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut buf);
        buf
    }

    fn response(addr: SocketAddr) -> Vec<u8> {
        let repr = Repr {
            message_type: MessageType::BindingSuccess,
            transaction_id: [7u8; 12],
            xor_mapped_address: Some(addr),
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut buf);
        buf
    }

    #[test]
    fn request_roundtrip() {
        let buf = request();
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.message_type(), MessageType::BindingRequest);
        assert_eq!(p.transaction_id(), [7u8; 12]);
        assert_eq!(p.xor_mapped_address(), None);
    }

    #[test]
    fn xor_mapped_address_roundtrip() {
        let addr: SocketAddr = "192.0.2.7:51234".parse().unwrap();
        let buf = response(addr);
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.message_type(), MessageType::BindingSuccess);
        assert_eq!(p.xor_mapped_address(), Some(addr));
    }

    #[test]
    fn rejects_bad_cookie() {
        let mut buf = request();
        buf[4] = 0;
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn rejects_rtp_like_payload() {
        // RTP version 2 sets the top bits to 10 — the STUN zero-bit check
        // must reject it.
        let buf = [0x80u8; 32];
        assert!(!looks_like_stun(&buf));
    }

    #[test]
    fn rejects_truncated_attributes() {
        let addr: SocketAddr = "192.0.2.7:51234".parse().unwrap();
        let buf = response(addr);
        assert_eq!(
            Packet::new_checked(&buf[..buf.len() - 1]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn attribute_iteration_handles_padding() {
        // SOFTWARE attribute with a 5-byte (padded to 8) value followed by
        // a FINGERPRINT.
        let mut buf = vec![0u8; HEADER_LEN];
        set_be16(&mut buf, 0, 0x0001);
        set_be32(&mut buf, 4, MAGIC_COOKIE);
        buf.extend_from_slice(&[0x80, 0x22, 0x00, 0x05]);
        buf.extend_from_slice(b"zoom\0\0\0\0");
        buf.extend_from_slice(&[0x80, 0x28, 0x00, 0x04, 1, 2, 3, 4]);
        let attrs_len = (buf.len() - HEADER_LEN) as u16;
        set_be16(&mut buf, 2, attrs_len);
        let p = Packet::new_checked(&buf[..]).unwrap();
        let attrs: Vec<_> = p.attributes().collect();
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs[0].0, attr::SOFTWARE);
        assert_eq!(&attrs[0].1[..4], b"zoom");
        assert_eq!(attrs[1].0, attr::FINGERPRINT);
    }

    #[test]
    fn message_type_roundtrip() {
        for v in [0x0001u16, 0x0101, 0x0111, 0x0011, 0x0999] {
            assert_eq!(u16::from(MessageType::from(v)), v);
        }
    }
}
