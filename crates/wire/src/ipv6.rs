//! IPv6 packet view and emitter (RFC 8200, fixed header only).
//!
//! Zoom traffic on the campus trace is overwhelmingly IPv4, but border taps
//! see both families, so the dissector must at least parse the fixed IPv6
//! header and hand UDP/TCP payloads up the stack. Extension headers are
//! reported as [`crate::Error::Unsupported`] rather than mis-parsed.

use crate::ipv4::Protocol;
use crate::{be16, set_be16, Error, Result};
use std::net::Ipv6Addr;

/// Fixed IPv6 header length.
pub const HEADER_LEN: usize = 40;

/// Zero-copy view of an IPv6 packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Packet { buffer }
    }

    /// Wrap, validating version and length fields.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = Packet { buffer };
        packet.check_len()?;
        Ok(packet)
    }

    /// Validate structural invariants.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if self.version() != 6 {
            return Err(Error::Malformed);
        }
        if data.len() < HEADER_LEN + self.payload_len() as usize {
            return Err(Error::Truncated);
        }
        Ok(())
    }

    /// IP version (must be 6).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[0] >> 4
    }

    /// Traffic-class byte.
    pub fn traffic_class(&self) -> u8 {
        let d = self.buffer.as_ref();
        (d[0] << 4) | (d[1] >> 4)
    }

    /// Payload length field.
    pub fn payload_len(&self) -> u16 {
        be16(self.buffer.as_ref(), 4)
    }

    /// Next-header field, mapped onto the shared [`Protocol`] enum.
    pub fn next_header(&self) -> Protocol {
        Protocol::from(self.buffer.as_ref()[6])
    }

    /// Hop limit.
    pub fn hop_limit(&self) -> u8 {
        self.buffer.as_ref()[7]
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv6Addr {
        let mut o = [0u8; 16];
        o.copy_from_slice(&self.buffer.as_ref()[8..24]);
        Ipv6Addr::from(o)
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv6Addr {
        let mut o = [0u8; 16];
        o.copy_from_slice(&self.buffer.as_ref()[24..40]);
        Ipv6Addr::from(o)
    }

    /// Payload bounded by the payload-length field.
    pub fn payload(&self) -> &[u8] {
        let pl = self.payload_len() as usize;
        &self.buffer.as_ref()[HEADER_LEN..HEADER_LEN + pl]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Set version 6 with zero traffic class and flow label.
    pub fn set_version(&mut self) {
        let d = self.buffer.as_mut();
        d[0] = 0x60;
        d[1] = 0;
        d[2] = 0;
        d[3] = 0;
    }

    /// Set payload length.
    pub fn set_payload_len(&mut self, v: u16) {
        set_be16(self.buffer.as_mut(), 4, v);
    }

    /// Set next header.
    pub fn set_next_header(&mut self, v: Protocol) {
        self.buffer.as_mut()[6] = v.into();
    }

    /// Set hop limit.
    pub fn set_hop_limit(&mut self, v: u8) {
        self.buffer.as_mut()[7] = v;
    }

    /// Set source address.
    pub fn set_src_addr(&mut self, v: Ipv6Addr) {
        self.buffer.as_mut()[8..24].copy_from_slice(&v.octets());
    }

    /// Set destination address.
    pub fn set_dst_addr(&mut self, v: Ipv6Addr) {
        self.buffer.as_mut()[24..40].copy_from_slice(&v.octets());
    }

    /// Mutable payload slice.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let pl = self.payload_len() as usize;
        &mut self.buffer.as_mut()[HEADER_LEN..HEADER_LEN + pl]
    }
}

/// High-level IPv6 header representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source address.
    pub src_addr: Ipv6Addr,
    /// Destination address.
    pub dst_addr: Ipv6Addr,
    /// Next-header (payload protocol) field.
    pub next_header: Protocol,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Hop limit.
    pub hop_limit: u8,
}

impl Repr {
    /// Parse a validated view. Extension headers (hop-by-hop, routing,
    /// fragment...) are flagged `Unsupported`.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Repr> {
        packet.check_len()?;
        match packet.next_header() {
            Protocol::Udp | Protocol::Tcp | Protocol::Icmp => {}
            Protocol::Unknown(0)
            | Protocol::Unknown(43)
            | Protocol::Unknown(44)
            | Protocol::Unknown(60) => return Err(Error::Unsupported),
            Protocol::Unknown(_) => {}
        }
        Ok(Repr {
            src_addr: packet.src_addr(),
            dst_addr: packet.dst_addr(),
            next_header: packet.next_header(),
            payload_len: packet.payload_len() as usize,
            hop_limit: packet.hop_limit(),
        })
    }

    /// Emitted header length.
    pub fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Total emitted length.
    pub fn total_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emit the fixed header.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.set_version();
        packet.set_payload_len(self.payload_len as u16);
        packet.set_next_header(self.next_header);
        packet.set_hop_limit(self.hop_limit);
        packet.set_src_addr(self.src_addr);
        packet.set_dst_addr(self.dst_addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let repr = Repr {
            src_addr: "2001:db8::1".parse().unwrap(),
            dst_addr: "2001:db8::2".parse().unwrap(),
            next_header: Protocol::Udp,
            payload_len: 3,
            hop_limit: 64,
        };
        let mut buf = vec![0u8; repr.total_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        buf[40..].copy_from_slice(&[9, 8, 7]);
        buf
    }

    #[test]
    fn emit_parse_roundtrip() {
        let buf = sample();
        let p = Packet::new_checked(&buf[..]).unwrap();
        let r = Repr::parse(&p).unwrap();
        assert_eq!(r.src_addr, "2001:db8::1".parse::<Ipv6Addr>().unwrap());
        assert_eq!(r.next_header, Protocol::Udp);
        assert_eq!(p.payload(), &[9, 8, 7]);
    }

    #[test]
    fn version_check() {
        let mut buf = sample();
        buf[0] = 0x40;
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn extension_headers_unsupported() {
        let mut buf = sample();
        buf[6] = 0; // hop-by-hop
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(Repr::parse(&p).unwrap_err(), Error::Unsupported);
    }

    #[test]
    fn truncated_payload() {
        let buf = sample();
        assert_eq!(
            Packet::new_checked(&buf[..41]).unwrap_err(),
            Error::Truncated
        );
    }
}
