//! Flow vocabulary shared by the capture pipeline and the analyzer.

use crate::ipv4::Protocol;
use std::fmt;
use std::net::IpAddr;

/// An IP 5-tuple identifying one direction of a transport flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    /// Source IP address.
    pub src_ip: IpAddr,
    /// Destination IP address.
    pub dst_ip: IpAddr,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
}

impl FiveTuple {
    /// The same flow seen in the opposite direction.
    pub fn reversed(&self) -> FiveTuple {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }

    /// A direction-independent key: the smaller (ip, port) endpoint first.
    /// Useful for grouping both directions of a conversation.
    pub fn canonical(&self) -> FiveTuple {
        if (self.src_ip, self.src_port) <= (self.dst_ip, self.dst_port) {
            *self
        } else {
            self.reversed()
        }
    }

    /// True if either endpoint uses the given port.
    pub fn involves_port(&self, port: u16) -> bool {
        self.src_port == port || self.dst_port == port
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let proto = match self.protocol {
            Protocol::Udp => "udp",
            Protocol::Tcp => "tcp",
            Protocol::Icmp => "icmp",
            Protocol::Unknown(n) => {
                return write!(
                    f,
                    "ip[{n}] {}:{} > {}:{}",
                    self.src_ip, self.src_port, self.dst_ip, self.dst_port
                )
            }
        };
        write!(
            f,
            "{proto} {}:{} > {}:{}",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
    }
}

/// An (address, port) endpoint — the key used by the paper's stateful P2P
/// detection registers (§4.1) and the meeting-grouping heuristic (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Endpoint {
    /// IP address.
    pub ip: IpAddr,
    /// Transport port.
    pub port: u16,
}

impl Endpoint {
    /// Construct from parts.
    pub fn new(ip: IpAddr, port: u16) -> Self {
        Endpoint { ip, port }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

impl FiveTuple {
    /// Source endpoint.
    pub fn src(&self) -> Endpoint {
        Endpoint::new(self.src_ip, self.src_port)
    }

    /// Destination endpoint.
    pub fn dst(&self) -> Endpoint {
        Endpoint::new(self.dst_ip, self.dst_port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn t() -> FiveTuple {
        FiveTuple {
            src_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
            dst_ip: IpAddr::V4(Ipv4Addr::new(3, 7, 35, 1)),
            src_port: 51_000,
            dst_port: 8801,
            protocol: Protocol::Udp,
        }
    }

    #[test]
    fn reverse_is_involutive() {
        assert_eq!(t().reversed().reversed(), t());
    }

    #[test]
    fn canonical_is_direction_independent() {
        assert_eq!(t().canonical(), t().reversed().canonical());
    }

    #[test]
    fn involves_port() {
        assert!(t().involves_port(8801));
        assert!(t().involves_port(51_000));
        assert!(!t().involves_port(3478));
    }

    #[test]
    fn endpoints() {
        assert_eq!(t().src().port, 51_000);
        assert_eq!(t().dst().ip, IpAddr::V4(Ipv4Addr::new(3, 7, 35, 1)));
    }

    #[test]
    fn display_contains_parts() {
        let s = t().to_string();
        assert!(s.contains("udp") && s.contains("8801"));
    }
}
