//! RTCP view and emitter (RFC 3550 §6).
//!
//! In Zoom traffic the paper observed *only* sender reports (SR), emitted
//! once per second per media stream, sometimes followed by an empty source
//! description (SDES) chunk — and notably *no* receiver reports, which is
//! why the performance metrics of §5 must be derived from RTP alone. This
//! module parses compound RTCP packets (SR, RR, SDES, BYE) and emits
//! Zoom-style SR(+empty SDES) compounds for the simulator.

use crate::{be16, be32, be64, set_be16, set_be32, set_be64, Error, Result};

/// Length of the fixed part common to all RTCP packets.
pub const HEADER_LEN: usize = 8;

/// RTCP packet types (RFC 3550 §12.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketType {
    /// SR (200).
    SenderReport,
    /// RR (201).
    ReceiverReport,
    /// SDES (202).
    SourceDescription,
    /// BYE (203).
    Bye,
    /// APP (204).
    ApplicationDefined,
    /// Any other packet type, carried verbatim.
    Other(u8),
}

impl From<u8> for PacketType {
    fn from(v: u8) -> Self {
        match v {
            200 => PacketType::SenderReport,
            201 => PacketType::ReceiverReport,
            202 => PacketType::SourceDescription,
            203 => PacketType::Bye,
            204 => PacketType::ApplicationDefined,
            other => PacketType::Other(other),
        }
    }
}

impl From<PacketType> for u8 {
    fn from(v: PacketType) -> u8 {
        match v {
            PacketType::SenderReport => 200,
            PacketType::ReceiverReport => 201,
            PacketType::SourceDescription => 202,
            PacketType::Bye => 203,
            PacketType::ApplicationDefined => 204,
            PacketType::Other(other) => other,
        }
    }
}

/// The sender-info block of an SR (RFC 3550 §6.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SenderInfo {
    /// 64-bit NTP timestamp: wall-clock time of this report.
    pub ntp_timestamp: u64,
    /// RTP timestamp corresponding to the same instant — the field that
    /// lets receivers map RTP time onto wall-clock time.
    pub rtp_timestamp: u32,
    /// Cumulative packets sent.
    pub packet_count: u32,
    /// Cumulative payload octets sent.
    pub octet_count: u32,
}

/// SSRCs carried inline before spilling to the heap. Zoom's SDES
/// compounds carry a single chunk, so real traffic never spills.
pub const INLINE_SSRCS: usize = 2;

/// A small-vector SSRC list: up to [`INLINE_SSRCS`] values stored inline,
/// the whole list moved to a heap `Vec` beyond that. Keeps the RTCP
/// dissection path allocation-free for the compounds Zoom actually sends
/// (SR + one-chunk SDES) — part of the ingest loop's steady-state
/// zero-allocation budget.
#[derive(Clone)]
pub struct SsrcList {
    len: u8,
    inline: [u32; INLINE_SSRCS],
    spill: Vec<u32>,
}

impl SsrcList {
    /// An empty list (no allocation).
    pub const fn new() -> SsrcList {
        SsrcList {
            len: 0,
            inline: [0; INLINE_SSRCS],
            spill: Vec::new(),
        }
    }

    /// Append one SSRC, spilling the whole list to the heap when the
    /// inline capacity is exceeded.
    pub fn push(&mut self, v: u32) {
        if !self.spill.is_empty() {
            self.spill.push(v);
        } else if (self.len as usize) < INLINE_SSRCS {
            self.inline[self.len as usize] = v;
            self.len += 1;
        } else {
            let mut spill = Vec::with_capacity(INLINE_SSRCS * 2);
            spill.extend_from_slice(&self.inline);
            spill.push(v);
            self.spill = spill;
        }
    }

    /// The SSRCs as one contiguous slice.
    pub fn as_slice(&self) -> &[u32] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }
}

impl Default for SsrcList {
    fn default() -> SsrcList {
        SsrcList::new()
    }
}

impl std::ops::Deref for SsrcList {
    type Target = [u32];
    fn deref(&self) -> &[u32] {
        self.as_slice()
    }
}

impl std::fmt::Debug for SsrcList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl PartialEq for SsrcList {
    fn eq(&self, other: &SsrcList) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SsrcList {}

impl From<&[u32]> for SsrcList {
    fn from(vals: &[u32]) -> SsrcList {
        let mut list = SsrcList::new();
        for &v in vals {
            list.push(v);
        }
        list
    }
}

/// One parsed RTCP sub-packet within a compound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// Sender report: originating SSRC plus sender info. Report blocks are
    /// counted but not decoded (Zoom SRs carry none).
    SenderReport {
        /// Originating SSRC.
        ssrc: u32,
        /// NTP/RTP timestamps and sender counters.
        info: SenderInfo,
        /// Number of report blocks (not decoded).
        report_count: u8,
    },
    /// Receiver report: originating SSRC (Zoom never sends these).
    ReceiverReport {
        /// Originating SSRC.
        ssrc: u32,
        /// Number of report blocks (not decoded).
        report_count: u8,
    },
    /// Source description: list of chunk SSRCs (Zoom's are empty of items).
    SourceDescription {
        /// SSRC of each SDES chunk.
        ssrcs: SsrcList,
    },
    /// BYE with its SSRC list.
    Bye {
        /// SSRCs leaving the session.
        ssrcs: SsrcList,
    },
    /// Anything else, kept opaque.
    Other {
        /// Raw RTCP packet type.
        packet_type: u8,
        /// Sub-packet length in bytes.
        len: usize,
    },
}

/// Compound items carried inline before spilling to the heap. Zoom's
/// compounds are SR + optional SDES — two items — so real traffic never
/// spills.
pub const INLINE_RTCP_ITEMS: usize = 2;

/// The placeholder filling unused inline slots.
const EMPTY_ITEM: Item = Item::Other {
    packet_type: 0,
    len: 0,
};

/// A small-vector compound: up to [`INLINE_RTCP_ITEMS`] items stored
/// inline, the whole list moved to a heap `Vec` beyond that. Dereferences
/// to `[Item]`, so it reads like the `Vec<Item>` it replaced — without
/// the per-packet allocation on the dissection hot path.
#[derive(Clone)]
pub struct ItemList {
    len: u8,
    inline: [Item; INLINE_RTCP_ITEMS],
    spill: Vec<Item>,
}

impl ItemList {
    /// An empty compound (no allocation).
    pub const fn new() -> ItemList {
        ItemList {
            len: 0,
            inline: [EMPTY_ITEM; INLINE_RTCP_ITEMS],
            spill: Vec::new(),
        }
    }

    /// Append one item, spilling the whole list to the heap when the
    /// inline capacity is exceeded.
    pub fn push(&mut self, item: Item) {
        if !self.spill.is_empty() {
            self.spill.push(item);
        } else if (self.len as usize) < INLINE_RTCP_ITEMS {
            self.inline[self.len as usize] = item;
            self.len += 1;
        } else {
            let mut spill = Vec::with_capacity(INLINE_RTCP_ITEMS * 2);
            for slot in &mut self.inline {
                spill.push(std::mem::replace(slot, EMPTY_ITEM));
            }
            spill.push(item);
            self.spill = spill;
        }
    }

    /// The items as one contiguous slice.
    pub fn as_slice(&self) -> &[Item] {
        if self.spill.is_empty() {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }
}

impl Default for ItemList {
    fn default() -> ItemList {
        ItemList::new()
    }
}

impl std::ops::Deref for ItemList {
    type Target = [Item];
    fn deref(&self) -> &[Item] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a ItemList {
    type Item = &'a Item;
    type IntoIter = std::slice::Iter<'a, Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl std::fmt::Debug for ItemList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl PartialEq for ItemList {
    fn eq(&self, other: &ItemList) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for ItemList {}

/// Parse a compound RTCP packet into its items.
///
/// Rejects buffers whose first sub-packet is not version 2 or whose length
/// words overrun the buffer.
pub fn parse_compound(data: &[u8]) -> Result<ItemList> {
    let mut items = ItemList::new();
    let mut rest = data;
    if rest.len() < 4 {
        return Err(Error::Truncated);
    }
    while rest.len() >= 4 {
        if rest[0] >> 6 != 2 {
            return Err(Error::Malformed);
        }
        let rc = rest[0] & 0x1F;
        let pt = rest[1];
        let len_words = be16(rest, 2) as usize;
        let total = (len_words + 1) * 4;
        if rest.len() < total {
            return Err(Error::Truncated);
        }
        let body = &rest[4..total];
        let item = match PacketType::from(pt) {
            PacketType::SenderReport => {
                if body.len() < 24 {
                    return Err(Error::Truncated);
                }
                Item::SenderReport {
                    ssrc: be32(body, 0),
                    info: SenderInfo {
                        ntp_timestamp: be64(body, 4),
                        rtp_timestamp: be32(body, 12),
                        packet_count: be32(body, 16),
                        octet_count: be32(body, 20),
                    },
                    report_count: rc,
                }
            }
            PacketType::ReceiverReport => {
                if body.len() < 4 {
                    return Err(Error::Truncated);
                }
                Item::ReceiverReport {
                    ssrc: be32(body, 0),
                    report_count: rc,
                }
            }
            PacketType::SourceDescription => {
                // Each chunk: SSRC + item list; Zoom emits chunks with a
                // single terminating zero item. We collect chunk SSRCs.
                let mut ssrcs = SsrcList::new();
                let mut off = 0;
                for _ in 0..rc {
                    if body.len() < off + 4 {
                        break;
                    }
                    ssrcs.push(be32(body, off));
                    off += 4;
                    // Skip SDES items until the zero terminator, then pad
                    // to a 4-byte boundary.
                    while off < body.len() && body[off] != 0 {
                        if body.len() < off + 2 {
                            break;
                        }
                        off += 2 + usize::from(body[off + 1]);
                    }
                    off = (off + 4) & !3;
                }
                Item::SourceDescription { ssrcs }
            }
            PacketType::Bye => {
                let mut ssrcs = SsrcList::new();
                for i in 0..usize::from(rc) {
                    if body.len() >= (i + 1) * 4 {
                        ssrcs.push(be32(body, i * 4));
                    }
                }
                Item::Bye { ssrcs }
            }
            _ => Item::Other {
                packet_type: pt,
                len: total,
            },
        };
        items.push(item);
        rest = &rest[total..];
    }
    if items.is_empty() {
        return Err(Error::Malformed);
    }
    Ok(items)
}

/// Search a buffer for any of the given SSRC values at 4-byte-aligned
/// offsets — the technique the paper used (§4.2.1) to locate RTCP packets
/// once RTP SSRCs were known: "RTCP packets always refer to one or more
/// specific SSRCs".
pub fn scan_for_ssrcs(data: &[u8], ssrcs: &[u32]) -> Vec<(usize, u32)> {
    let mut hits = Vec::new();
    if data.len() < 4 {
        return hits;
    }
    for off in (0..=data.len() - 4).step_by(4) {
        let v = be32(data, off);
        if ssrcs.contains(&v) {
            hits.push((off, v));
        }
    }
    hits
}

/// Builder for Zoom-style SR (+ optional empty SDES) compounds.
#[derive(Debug, Clone, Copy)]
pub struct SenderReportRepr {
    /// Originating SSRC.
    pub ssrc: u32,
    /// NTP/RTP timestamps and sender counters.
    pub info: SenderInfo,
    /// Append an SDES chunk naming the same SSRC with no items, as seen in
    /// Zoom type-34 packets.
    pub with_sdes: bool,
}

impl SenderReportRepr {
    /// Emitted length: SR (28 bytes) plus optional SDES (12 bytes).
    pub fn buffer_len(&self) -> usize {
        28 + if self.with_sdes { 12 } else { 0 }
    }

    /// Emit into `buf` (at least [`Self::buffer_len`] long); returns bytes
    /// written.
    pub fn emit(&self, buf: &mut [u8]) -> usize {
        buf[0] = 0x80; // V=2, P=0, RC=0
        buf[1] = PacketType::SenderReport.into();
        set_be16(buf, 2, 6); // 6 words follow = 28 bytes total
        set_be32(buf, 4, self.ssrc);
        set_be64(buf, 8, self.info.ntp_timestamp);
        set_be32(buf, 16, self.info.rtp_timestamp);
        set_be32(buf, 20, self.info.packet_count);
        set_be32(buf, 24, self.info.octet_count);
        if self.with_sdes {
            let b = &mut buf[28..40];
            b[0] = 0x81; // V=2, one chunk
            b[1] = PacketType::SourceDescription.into();
            set_be16(b, 2, 2); // 2 words follow
            set_be32(b, 4, self.ssrc);
            // Zero item terminator + padding.
            b[8] = 0;
            b[9] = 0;
            b[10] = 0;
            b[11] = 0;
        }
        self.buffer_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sr(with_sdes: bool) -> Vec<u8> {
        let repr = SenderReportRepr {
            ssrc: 0x42,
            info: SenderInfo {
                ntp_timestamp: 0x83AA_7E80_0000_0000,
                rtp_timestamp: 123_456,
                packet_count: 1000,
                octet_count: 800_000,
            },
            with_sdes,
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut buf);
        buf
    }

    #[test]
    fn sr_roundtrip() {
        let items = parse_compound(&sr(false)).unwrap();
        assert_eq!(items.len(), 1);
        match &items[0] {
            Item::SenderReport {
                ssrc,
                info,
                report_count,
            } => {
                assert_eq!(*ssrc, 0x42);
                assert_eq!(info.rtp_timestamp, 123_456);
                assert_eq!(info.packet_count, 1000);
                assert_eq!(info.octet_count, 800_000);
                assert_eq!(*report_count, 0);
            }
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn sr_with_empty_sdes() {
        let items = parse_compound(&sr(true)).unwrap();
        assert_eq!(items.len(), 2);
        match &items[1] {
            Item::SourceDescription { ssrcs } => assert_eq!(ssrcs.as_slice(), &[0x42]),
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = sr(false);
        buf[0] = 0x40;
        assert_eq!(parse_compound(&buf).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn rejects_overrunning_length() {
        let mut buf = sr(false);
        set_be16(&mut buf, 2, 100);
        assert_eq!(parse_compound(&buf).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn bye_parses() {
        let mut buf = vec![0x81, 203, 0x00, 0x01];
        buf.extend_from_slice(&0x1234_5678u32.to_be_bytes());
        let items = parse_compound(&buf).unwrap();
        assert_eq!(
            items.as_slice(),
            &[Item::Bye {
                ssrcs: SsrcList::from(&[0x1234_5678][..])
            }]
        );
    }

    #[test]
    fn ssrc_scan_finds_aligned_values() {
        let buf = sr(false);
        let hits = scan_for_ssrcs(&buf, &[0x42]);
        assert!(hits.contains(&(4, 0x42)));
    }

    #[test]
    fn ssrc_scan_empty_input() {
        assert!(scan_for_ssrcs(&[1, 2], &[0x42]).is_empty());
    }

    #[test]
    fn packet_type_roundtrip() {
        for v in [200u8, 201, 202, 203, 204, 250] {
            assert_eq!(u8::from(PacketType::from(v)), v);
        }
    }
}
