//! Whole-packet composition helpers.
//!
//! The simulator and tests need complete, checksummed Ethernet/IPv4/UDP and
//! TCP packets; these helpers stack the per-layer emitters so callers only
//! provide addresses, ports, and the application payload.

use crate::ethernet::{self, Address, EtherType};
use crate::ipv4::{self, Protocol};
use crate::tcp;
use crate::udp;
use std::net::Ipv4Addr;

/// Derive a stable, locally administered MAC from an IPv4 address so that
/// synthetic traces look plausible in Wireshark.
pub fn mac_for_ip(ip: Ipv4Addr) -> Address {
    let o = ip.octets();
    Address([0x02, 0x00, o[0], o[1], o[2], o[3]])
}

/// Compose Ethernet/IPv4/UDP around `payload`, filling both checksums.
pub fn udp_ipv4_ethernet(
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
) -> Vec<u8> {
    let udp_repr = udp::Repr {
        src_port,
        dst_port,
        payload_len: payload.len(),
    };
    let ip_repr = ipv4::Repr {
        src_addr: src_ip,
        dst_addr: dst_ip,
        protocol: Protocol::Udp,
        payload_len: udp_repr.total_len(),
        ttl: 64,
        dscp_ecn: 0,
        ident: 0,
    };
    let eth_repr = ethernet::Repr {
        dst_addr: mac_for_ip(dst_ip),
        src_addr: mac_for_ip(src_ip),
        ethertype: EtherType::Ipv4,
    };

    let total = ethernet::HEADER_LEN + ip_repr.total_len();
    let mut buf = vec![0u8; total];
    eth_repr.emit(&mut ethernet::Packet::new_unchecked(&mut buf[..]));
    let ip_bytes = &mut buf[ethernet::HEADER_LEN..];
    ip_repr.emit(&mut ipv4::Packet::new_unchecked(&mut ip_bytes[..]));
    let udp_bytes = &mut ip_bytes[ipv4::HEADER_LEN..];
    {
        let mut u = udp::Packet::new_unchecked(&mut udp_bytes[..]);
        udp_repr.emit(&mut u);
        u.payload_mut().copy_from_slice(payload);
        u.fill_checksum_v4(src_ip, dst_ip);
    }
    buf
}

/// Compose Ethernet/IPv4/TCP around `payload`, filling both checksums.
#[allow(clippy::too_many_arguments)]
pub fn tcp_ipv4_ethernet(
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    flags: tcp::Flags,
    payload: &[u8],
) -> Vec<u8> {
    let tcp_repr = tcp::Repr {
        src_port,
        dst_port,
        seq_number: seq,
        ack_number: ack,
        flags,
        window: 65_535,
        payload_len: payload.len(),
    };
    let ip_repr = ipv4::Repr {
        src_addr: src_ip,
        dst_addr: dst_ip,
        protocol: Protocol::Tcp,
        payload_len: tcp_repr.total_len(),
        ttl: 64,
        dscp_ecn: 0,
        ident: 0,
    };
    let eth_repr = ethernet::Repr {
        dst_addr: mac_for_ip(dst_ip),
        src_addr: mac_for_ip(src_ip),
        ethertype: EtherType::Ipv4,
    };

    let total = ethernet::HEADER_LEN + ip_repr.total_len();
    let mut buf = vec![0u8; total];
    eth_repr.emit(&mut ethernet::Packet::new_unchecked(&mut buf[..]));
    let ip_bytes = &mut buf[ethernet::HEADER_LEN..];
    ip_repr.emit(&mut ipv4::Packet::new_unchecked(&mut ip_bytes[..]));
    let tcp_bytes = &mut ip_bytes[ipv4::HEADER_LEN..];
    {
        let mut t = tcp::Packet::new_unchecked(&mut tcp_bytes[..]);
        tcp_repr.emit(&mut t);
        t.payload_mut().copy_from_slice(payload);
        t.fill_checksum_v4(src_ip, dst_ip);
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        ethernet::Packet as EthPacket, ipv4::Packet as Ip4Packet, udp::Packet as UdpPacket,
    };

    #[test]
    fn udp_compose_is_well_formed() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let buf = udp_ipv4_ethernet(src, dst, 1111, 2222, b"abc");
        let eth = EthPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(eth.ethertype(), EtherType::Ipv4);
        let ip = Ip4Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        let u = UdpPacket::new_checked(ip.payload()).unwrap();
        assert!(u.verify_checksum_v4(src, dst));
        assert_eq!(u.payload(), b"abc");
    }

    #[test]
    fn tcp_compose_is_well_formed() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let buf = tcp_ipv4_ethernet(
            src,
            dst,
            1111,
            443,
            7,
            8,
            tcp::Flags {
                ack: true,
                psh: true,
                ..Default::default()
            },
            b"hello",
        );
        let eth = EthPacket::new_checked(&buf[..]).unwrap();
        let ip = Ip4Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        let t = crate::tcp::Packet::new_checked(ip.payload()).unwrap();
        assert!(t.verify_checksum_v4(src, dst));
        assert_eq!(t.payload(), b"hello");
        assert_eq!(t.seq_number(), 7);
    }

    #[test]
    fn mac_derivation_is_stable_and_unicast() {
        let m = mac_for_ip(Ipv4Addr::new(10, 8, 3, 4));
        assert_eq!(m, mac_for_ip(Ipv4Addr::new(10, 8, 3, 4)));
        assert!(!m.is_multicast());
    }
}
