//! Length-prefixed fragment framing for the distributed shard tier.
//!
//! A capture worker that cannot run the full analysis locally ships its
//! records to a central merge node as a **fragment stream**: a byte
//! stream (file or TCP connection) that starts with a fixed header and
//! then carries self-delimiting frames. The merge node replays every
//! worker's records through the same deterministic `(ts, lane)` fan-in
//! the in-process multi-source path uses, so the merged analysis is
//! byte-identical to a single-process run over the concatenated trace
//! (pinned by `tests/distributed_differential.rs`).
//!
//! ## Stream layout
//!
//! ```text
//! magic   b"ZFRG"            stream identification
//! version u8 = 1             rejected if unknown
//! frame*                     until EOF or a Bye frame
//! ```
//!
//! Every frame is `[kind u8][len u32 BE][payload; len bytes]`:
//!
//! | kind | name       | payload |
//! |------|------------|---------|
//! | 1    | Hello      | `link u32 BE`, `label_len u16 BE`, label bytes (UTF-8) |
//! | 2    | Records    | `count u32 BE`, then per record `ts u64 BE`, `orig_len u32 BE`, `cap_len u32 BE`, `cap_len` bytes |
//! | 3    | Accounting | cumulative `packets`, `bytes`, `batches`, `ring_full_drops`, `truncated` (all `u64 BE`) |
//! | 4    | Bye        | same payload as Accounting — the worker's final totals |
//! | 5    | Trace      | `trace_id u64 BE`, then NDJSON span-event lines (UTF-8) |
//!
//! A Trace frame carries the worker-side span events for the trace ID
//! that annotates the **next** Records frame, letting a merge node
//! stitch the worker's causal tree onto its own spans. Workers only
//! emit Trace frames when tracing is enabled, so untraced streams are
//! byte-identical to protocol version 1 as shipped before trace
//! support — the addition is backwards compatible on the wire.
//!
//! The Hello frame must come first (the writer emits it with the stream
//! header); Accounting frames may appear at any point and carry the
//! worker's **cumulative** capture-side counters, so the merge node can
//! fold per-worker accounting into its conservation invariant without
//! tracking deltas. A stream that ends without Bye was cut off — the
//! reader reports this distinctly so the merge node can refuse to call
//! an incomplete worker "done".
//!
//! ## Robustness
//!
//! The reader never panics on hostile input: every length field is
//! bounds-checked before allocation (frames above [`MAX_FRAME_BYTES`]
//! are malformed by definition), truncated streams surface
//! [`Error::Truncated`], and unknown kinds or inconsistent interior
//! lengths surface [`Error::Malformed`]. This is property-tested with
//! random corruption in the distributed differential suite.
//!
//! ```
//! use zoom_wire::frame::{FrameReader, FrameWriter, FrameEvent, Totals};
//! use zoom_wire::handoff::RecordBatch;
//! use zoom_wire::pcap::LinkType;
//!
//! let mut w = FrameWriter::new(Vec::new(), "worker-0", LinkType::Ethernet).unwrap();
//! let mut batch = RecordBatch::new();
//! batch.push(1_000, 60, &[0xAA; 60]);
//! w.write_batch(&batch).unwrap();
//! let bytes = w.finish(Totals { packets: 1, bytes: 60, batches: 1,
//!                               ring_full_drops: 0, truncated: 0 }).unwrap();
//!
//! let mut r = FrameReader::new(&bytes[..]).unwrap();
//! assert_eq!(r.label(), "worker-0");
//! let mut out = RecordBatch::new();
//! assert!(matches!(r.next(&mut out).unwrap(), Some(FrameEvent::Records { count: 1 })));
//! assert!(matches!(r.next(&mut out).unwrap(), Some(FrameEvent::Bye(_))));
//! assert_eq!(out.len(), 1);
//! ```

use crate::handoff::RecordBatch;
use crate::pcap::LinkType;
use crate::{be16, be32, be64, Error};
use std::io::{self, Read, Write};

/// Stream magic: identifies a fragment stream in the first four bytes.
pub const MAGIC: [u8; 4] = *b"ZFRG";

/// Current protocol version, bumped on incompatible layout changes.
pub const VERSION: u8 = 1;

/// Upper bound on one frame's payload. A Records frame built from the
/// capture hand-off batches stays well under this; anything larger is a
/// corrupt or hostile length field and is rejected before allocation.
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

const KIND_HELLO: u8 = 1;
const KIND_RECORDS: u8 = 2;
const KIND_ACCOUNTING: u8 = 3;
const KIND_BYE: u8 = 4;
const KIND_TRACE: u8 = 5;

/// Cumulative capture-side accounting a worker ships alongside its
/// records, mirroring the fan-in's per-lane counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Totals {
    /// Records the worker's capture side pulled off its sources.
    pub packets: u64,
    /// Captured bytes across those records.
    pub bytes: u64,
    /// Batches the worker's fan-in handled.
    pub batches: u64,
    /// Records the worker dropped at full capture rings (lossy policy).
    pub ring_full_drops: u64,
    /// Records the worker's sources dropped (torn pcap tails).
    pub truncated: u64,
}

impl Totals {
    fn emit(&self, out: &mut Vec<u8>) {
        for v in [
            self.packets,
            self.bytes,
            self.batches,
            self.ring_full_drops,
            self.truncated,
        ] {
            out.extend_from_slice(&v.to_be_bytes());
        }
    }

    fn parse(payload: &[u8]) -> Result<Totals, Error> {
        if payload.len() != 40 {
            return Err(Error::Malformed);
        }
        Ok(Totals {
            packets: be64(payload, 0),
            bytes: be64(payload, 8),
            batches: be64(payload, 16),
            ring_full_drops: be64(payload, 24),
            truncated: be64(payload, 32),
        })
    }
}

/// One decoded frame, as surfaced by [`FrameReader::next`]. Records land
/// in the caller's batch; the event only reports how many.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameEvent {
    /// A Records frame: `count` records were appended to the batch.
    Records {
        /// Number of records decoded out of this frame.
        count: u32,
    },
    /// A mid-stream cumulative accounting update.
    Accounting(Totals),
    /// Span events for `trace_id`, annotating the next Records frame.
    /// The NDJSON payload is borrowed via
    /// [`FrameReader::trace_ndjson`] until the next `next()` call.
    Trace {
        /// The trace ID the shipped span events belong to.
        trace_id: u64,
    },
    /// The worker's final totals; no frames follow.
    Bye(Totals),
}

// -------------------------------------------------------------- writer --

/// Serializes a fragment stream onto any `Write` (file, TCP socket).
///
/// Construction writes the stream header and Hello frame immediately, so
/// the merge node learns the worker's label and link type before any
/// records flow.
#[derive(Debug)]
pub struct FrameWriter<W: Write> {
    out: W,
    scratch: Vec<u8>,
    records_written: u64,
    frames_written: u64,
}

impl<W: Write> FrameWriter<W> {
    /// Starts a fragment stream: magic, version, and the Hello frame
    /// carrying `label` and the worker's link type.
    pub fn new(mut out: W, label: &str, link: LinkType) -> io::Result<FrameWriter<W>> {
        let label = label.as_bytes();
        assert!(label.len() <= u16::MAX as usize, "worker label too long");
        out.write_all(&MAGIC)?;
        out.write_all(&[VERSION])?;
        let mut payload = Vec::with_capacity(6 + label.len());
        payload.extend_from_slice(&u32::from(link).to_be_bytes());
        payload.extend_from_slice(&(label.len() as u16).to_be_bytes());
        payload.extend_from_slice(label);
        let mut w = FrameWriter {
            out,
            scratch: Vec::with_capacity(4096),
            records_written: 0,
            frames_written: 0,
        };
        w.write_frame(KIND_HELLO, &payload)?;
        Ok(w)
    }

    fn write_frame(&mut self, kind: u8, payload: &[u8]) -> io::Result<()> {
        assert!(
            payload.len() <= MAX_FRAME_BYTES as usize,
            "frame payload exceeds MAX_FRAME_BYTES"
        );
        self.out.write_all(&[kind])?;
        self.out.write_all(&(payload.len() as u32).to_be_bytes())?;
        self.out.write_all(payload)?;
        self.frames_written += 1;
        Ok(())
    }

    /// Ships one batch of records. Empty batches are skipped (a Records
    /// frame always carries at least one record).
    pub fn write_batch(&mut self, batch: &RecordBatch) -> io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        self.scratch.clear();
        self.scratch
            .extend_from_slice(&(batch.len() as u32).to_be_bytes());
        for r in batch.iter() {
            self.scratch.extend_from_slice(&r.ts_nanos.to_be_bytes());
            self.scratch.extend_from_slice(&r.orig_len.to_be_bytes());
            self.scratch
                .extend_from_slice(&(r.data.len() as u32).to_be_bytes());
            self.scratch.extend_from_slice(r.data);
        }
        let scratch = std::mem::take(&mut self.scratch);
        let res = self.write_frame(KIND_RECORDS, &scratch);
        self.scratch = scratch;
        self.records_written += batch.len() as u64;
        res
    }

    /// Ships a cumulative accounting update.
    pub fn write_accounting(&mut self, totals: Totals) -> io::Result<()> {
        let mut payload = Vec::with_capacity(40);
        totals.emit(&mut payload);
        self.write_frame(KIND_ACCOUNTING, &payload)
    }

    /// Ships the span events for `trace_id` as NDJSON, annotating the
    /// next Records frame. Only emitted on traced runs; empty payloads
    /// are skipped so an idle trace tick costs no frame.
    pub fn write_trace(&mut self, trace_id: u64, ndjson: &[u8]) -> io::Result<()> {
        if ndjson.is_empty() {
            return Ok(());
        }
        let mut payload = Vec::with_capacity(8 + ndjson.len());
        payload.extend_from_slice(&trace_id.to_be_bytes());
        payload.extend_from_slice(ndjson);
        self.write_frame(KIND_TRACE, &payload)
    }

    /// Records shipped so far across all Records frames.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Ends the stream with a Bye frame carrying the final totals,
    /// flushes, and returns the underlying writer.
    pub fn finish(mut self, totals: Totals) -> io::Result<W> {
        let mut payload = Vec::with_capacity(40);
        totals.emit(&mut payload);
        self.write_frame(KIND_BYE, &payload)?;
        self.out.flush()?;
        Ok(self.out)
    }
}

// -------------------------------------------------------------- reader --

/// Decodes a fragment stream from any `Read` (file, TCP socket).
///
/// Construction consumes the stream header and Hello frame; every
/// [`next`](FrameReader::next) call then yields one [`FrameEvent`] (or
/// `Ok(None)` at clean EOF — note that EOF *before* a Bye frame means
/// the stream was cut off; [`saw_bye`](FrameReader::saw_bye)
/// distinguishes the two).
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    input: R,
    label: String,
    link: LinkType,
    payload: Vec<u8>,
    saw_bye: bool,
    records_read: u64,
}

impl<R: Read> FrameReader<R> {
    /// Validates the stream header and reads the Hello frame.
    pub fn new(mut input: R) -> Result<FrameReader<R>, Error> {
        let mut head = [0u8; 5];
        read_exact(&mut input, &mut head)?;
        if head[..4] != MAGIC {
            return Err(Error::Malformed);
        }
        if head[4] != VERSION {
            return Err(Error::Unsupported);
        }
        let mut payload = Vec::new();
        let kind = read_frame(&mut input, &mut payload)?.ok_or(Error::Truncated)?;
        if kind != KIND_HELLO || payload.len() < 6 {
            return Err(Error::Malformed);
        }
        let link = LinkType::from(be32(&payload, 0));
        let label_len = be16(&payload, 4) as usize;
        if payload.len() != 6 + label_len {
            return Err(Error::Malformed);
        }
        let label = std::str::from_utf8(&payload[6..])
            .map_err(|_| Error::Malformed)?
            .to_string();
        Ok(FrameReader {
            input,
            label,
            link,
            payload,
            saw_bye: false,
            records_read: 0,
        })
    }

    /// The worker label from the Hello frame.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The worker's link type from the Hello frame.
    pub fn link_type(&self) -> LinkType {
        self.link
    }

    /// Whether the stream ended with a proper Bye frame.
    pub fn saw_bye(&self) -> bool {
        self.saw_bye
    }

    /// Records decoded so far across all Records frames.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// The NDJSON span events of the Trace frame [`next`](Self::next)
    /// just returned. Borrowed from the frame scratch buffer — valid
    /// only until the next `next()` call, and meaningless unless the
    /// last event was [`FrameEvent::Trace`].
    pub fn trace_ndjson(&self) -> &[u8] {
        if self.payload.len() >= 8 {
            &self.payload[8..]
        } else {
            &[]
        }
    }

    /// Decodes the next frame. Records are **appended** to `batch`;
    /// `Ok(None)` signals EOF (check [`saw_bye`](Self::saw_bye) for
    /// whether it was a clean end of stream).
    pub fn next(&mut self, batch: &mut RecordBatch) -> Result<Option<FrameEvent>, Error> {
        if self.saw_bye {
            return Ok(None);
        }
        let mut payload = std::mem::take(&mut self.payload);
        let kind = read_frame(&mut self.input, &mut payload);
        self.payload = payload;
        let Some(kind) = kind? else {
            return Ok(None);
        };
        match kind {
            KIND_RECORDS => {
                let count = decode_records(&self.payload, batch)?;
                self.records_read += count as u64;
                Ok(Some(FrameEvent::Records { count }))
            }
            KIND_ACCOUNTING => Ok(Some(FrameEvent::Accounting(Totals::parse(&self.payload)?))),
            KIND_TRACE => {
                if self.payload.len() < 8 {
                    return Err(Error::Malformed);
                }
                Ok(Some(FrameEvent::Trace {
                    trace_id: be64(&self.payload, 0),
                }))
            }
            KIND_BYE => {
                self.saw_bye = true;
                Ok(Some(FrameEvent::Bye(Totals::parse(&self.payload)?)))
            }
            // A second Hello (or anything unknown) mid-stream is corrupt.
            _ => Err(Error::Malformed),
        }
    }
}

/// Reads one `[kind][len][payload]` frame into `payload`. `Ok(None)` at
/// a clean frame boundary EOF; `Err(Truncated)` when the stream ends
/// mid-frame; `Err(Malformed)` on an oversized length field.
fn read_frame<R: Read>(input: &mut R, payload: &mut Vec<u8>) -> Result<Option<u8>, Error> {
    let mut head = [0u8; 5];
    match input.read(&mut head[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            return read_frame(input, payload);
        }
        Err(_) => return Err(Error::Truncated),
    }
    read_exact(input, &mut head[1..])?;
    let kind = head[0];
    let len = be32(&head, 1);
    if len > MAX_FRAME_BYTES {
        return Err(Error::Malformed);
    }
    payload.clear();
    payload.resize(len as usize, 0);
    read_exact(input, payload)?;
    Ok(Some(kind))
}

/// Decodes a Records payload, appending to `batch`; returns the count.
fn decode_records(payload: &[u8], batch: &mut RecordBatch) -> Result<u32, Error> {
    if payload.len() < 4 {
        return Err(Error::Malformed);
    }
    let count = be32(payload, 0);
    let mut off = 4usize;
    for _ in 0..count {
        if payload.len() - off < 16 {
            return Err(Error::Malformed);
        }
        let ts = be64(payload, off);
        let orig_len = be32(payload, off + 8);
        let cap_len = be32(payload, off + 12) as usize;
        off += 16;
        if payload.len() - off < cap_len {
            return Err(Error::Malformed);
        }
        batch.push(ts, orig_len, &payload[off..off + cap_len]);
        off += cap_len;
    }
    if off != payload.len() {
        // Trailing garbage inside the frame: length fields disagree.
        return Err(Error::Malformed);
    }
    Ok(count)
}

fn read_exact<R: Read>(input: &mut R, buf: &mut [u8]) -> Result<(), Error> {
    input.read_exact(buf).map_err(|_| Error::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream() -> Vec<u8> {
        let mut w = FrameWriter::new(Vec::new(), "worker-a", LinkType::Ethernet).unwrap();
        let mut batch = RecordBatch::new();
        batch.push(10, 60, &[0xAA; 60]);
        batch.push(20, 1500, &[0xBB; 64]);
        w.write_batch(&batch).unwrap();
        w.write_accounting(Totals {
            packets: 2,
            bytes: 124,
            batches: 1,
            ring_full_drops: 0,
            truncated: 0,
        })
        .unwrap();
        batch.clear();
        batch.push(30, 80, &[0xCC; 80]);
        w.write_batch(&batch).unwrap();
        assert_eq!(w.records_written(), 3);
        w.finish(Totals {
            packets: 3,
            bytes: 204,
            batches: 2,
            ring_full_drops: 0,
            truncated: 0,
        })
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_records_and_accounting() {
        let bytes = sample_stream();
        let mut r = FrameReader::new(&bytes[..]).unwrap();
        assert_eq!(r.label(), "worker-a");
        assert_eq!(r.link_type(), LinkType::Ethernet);

        let mut batch = RecordBatch::new();
        assert_eq!(
            r.next(&mut batch).unwrap(),
            Some(FrameEvent::Records { count: 2 })
        );
        let acct = r.next(&mut batch).unwrap();
        assert!(matches!(acct, Some(FrameEvent::Accounting(t)) if t.packets == 2));
        assert_eq!(
            r.next(&mut batch).unwrap(),
            Some(FrameEvent::Records { count: 1 })
        );
        let bye = r.next(&mut batch).unwrap();
        assert!(matches!(bye, Some(FrameEvent::Bye(t)) if t.packets == 3 && t.batches == 2));
        assert!(r.saw_bye());
        assert_eq!(r.records_read(), 3);
        assert_eq!(r.next(&mut batch).unwrap(), None);

        assert_eq!(batch.len(), 3);
        let r1 = batch.get(1).unwrap();
        assert_eq!((r1.ts_nanos, r1.orig_len, r1.data.len()), (20, 1500, 64));
        let r2 = batch.get(2).unwrap();
        assert_eq!((r2.ts_nanos, r2.orig_len), (30, 80));
    }

    #[test]
    fn trace_frames_roundtrip_and_annotate_the_next_records() {
        let mut w = FrameWriter::new(Vec::new(), "worker-a", LinkType::Ethernet).unwrap();
        let ndjson = b"{\"type\":\"trace_span\",\"span\":\"source_read\"}\n";
        w.write_trace(0x00C0_FFEE_00C0_FFEE, ndjson).unwrap();
        let mut batch = RecordBatch::new();
        batch.push(10, 60, &[0xAA; 60]);
        w.write_batch(&batch).unwrap();
        // Empty trace payloads cost no frame.
        w.write_trace(1, b"").unwrap();
        let bytes = w.finish(Totals::default()).unwrap();

        let mut r = FrameReader::new(&bytes[..]).unwrap();
        let mut out = RecordBatch::new();
        assert_eq!(
            r.next(&mut out).unwrap(),
            Some(FrameEvent::Trace {
                trace_id: 0x00C0_FFEE_00C0_FFEE
            })
        );
        assert_eq!(r.trace_ndjson(), ndjson);
        assert_eq!(
            r.next(&mut out).unwrap(),
            Some(FrameEvent::Records { count: 1 })
        );
        assert!(matches!(r.next(&mut out).unwrap(), Some(FrameEvent::Bye(_))));
        assert!(r.saw_bye());
    }

    #[test]
    fn short_trace_payload_is_malformed() {
        let mut w = FrameWriter::new(Vec::new(), "w", LinkType::Ethernet).unwrap();
        w.write_frame(KIND_TRACE, &[0u8; 4]).unwrap(); // < 8-byte trace_id
        let bytes = w.finish(Totals::default()).unwrap();
        let mut r = FrameReader::new(&bytes[..]).unwrap();
        let mut out = RecordBatch::new();
        assert_eq!(r.next(&mut out).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn empty_batches_are_skipped() {
        let mut w = FrameWriter::new(Vec::new(), "w", LinkType::RawIp).unwrap();
        w.write_batch(&RecordBatch::new()).unwrap();
        let bytes = w.finish(Totals::default()).unwrap();
        let mut r = FrameReader::new(&bytes[..]).unwrap();
        assert_eq!(r.link_type(), LinkType::RawIp);
        let mut batch = RecordBatch::new();
        assert!(matches!(
            r.next(&mut batch).unwrap(),
            Some(FrameEvent::Bye(_))
        ));
        assert!(batch.is_empty());
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let bytes = sample_stream();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(FrameReader::new(&bad[..]).unwrap_err(), Error::Malformed);
        let mut bad = bytes;
        bad[4] = 99;
        assert_eq!(FrameReader::new(&bad[..]).unwrap_err(), Error::Unsupported);
    }

    #[test]
    fn truncated_stream_is_an_error_not_a_clean_eof() {
        let bytes = sample_stream();
        // Cut inside the first Records frame.
        let cut = &bytes[..bytes.len() - 50];
        let mut r = FrameReader::new(cut).unwrap();
        let mut batch = RecordBatch::new();
        let mut saw_err = false;
        loop {
            match r.next(&mut batch) {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    saw_err = true;
                    assert_eq!(e, Error::Truncated);
                    break;
                }
            }
        }
        assert!(saw_err || !r.saw_bye(), "a cut stream must not look clean");
    }

    #[test]
    fn oversized_length_field_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(KIND_HELLO);
        bytes.extend_from_slice(&u32::MAX.to_be_bytes()); // absurd length
        assert_eq!(FrameReader::new(&bytes[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn interior_length_disagreement_is_malformed() {
        let mut w = FrameWriter::new(Vec::new(), "w", LinkType::Ethernet).unwrap();
        let mut batch = RecordBatch::new();
        batch.push(1, 10, &[0u8; 10]);
        w.write_batch(&batch).unwrap();
        let mut bytes = w.finish(Totals::default()).unwrap();
        // Bump the per-record cap_len inside the Records frame so it
        // disagrees with the frame length.
        let records_frame_start = 5 + 5 + (6 + "w".len()); // header + hello frame
        let cap_len_off = records_frame_start + 5 + 4 + 8 + 4;
        bytes[cap_len_off + 3] = 9; // cap_len 10 -> 9: trailing byte left over
        let mut r = FrameReader::new(&bytes[..]).unwrap();
        let mut out = RecordBatch::new();
        assert_eq!(r.next(&mut out).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn mid_stream_hello_is_malformed() {
        let mut bytes = sample_stream();
        // Corrupt the first Records frame's kind byte into a second
        // Hello: anything but Records/Accounting/Bye mid-stream is bad.
        let records_frame_kind = 5 + 5 + (6 + "worker-a".len());
        bytes[records_frame_kind] = KIND_HELLO;
        let mut r = FrameReader::new(&bytes[..]).unwrap();
        let mut out = RecordBatch::new();
        assert_eq!(r.next(&mut out).unwrap_err(), Error::Malformed);
    }
}
