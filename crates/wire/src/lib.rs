//! # zoom-wire — wire formats for passive Zoom measurement
//!
//! Zero-copy parsers ("views") and emitters for every protocol layer needed
//! to analyze Zoom traffic passively, as reverse-engineered in
//! *"Enabling Passive Measurement of Zoom Performance in Production
//! Networks"* (IMC '22):
//!
//! * Link / network / transport: [`ethernet`], [`ipv4`], [`ipv6`], [`udp`],
//!   [`tcp`]
//! * Session / media: [`stun`] (RFC 5389), [`rtp`] / [`rtcp`] (RFC 3550)
//! * Zoom's proprietary encapsulations: [`zoom`] (Zoom SFU Encapsulation and
//!   Zoom Media Encapsulation, Table 1/2 + Fig. 7 of the paper)
//! * Native WebRTC framing: [`webrtc`] (DTLS records, SRTP/SRTCP headers)
//! * Protocol-family plug-in contract: [`family`] (the `ProtocolFamily`
//!   trait generalizing dissection beyond Zoom, see `docs/PROTOCOLS.md`)
//! * Trace I/O: [`pcap`] (classic libpcap format, µs and ns resolution)
//! * Capture hand-off: [`handoff`] (arena-packed record batches for
//!   crossing capture→analysis thread boundaries without per-packet
//!   allocation)
//! * Distributed fragments: [`frame`] (length-prefixed frames carrying
//!   record batches and worker accounting across process boundaries for
//!   the shard tier, see `docs/DISTRIBUTED.md`)
//! * A full-stack dissector: [`dissect`] (the library equivalent of the
//!   paper's Wireshark plugin, Appendix C)
//!
//! ## Design
//!
//! The crate follows the smoltcp idiom: a `Packet<T: AsRef<[u8]>>` wrapper
//! per protocol with `new_checked` length validation, plain field accessors,
//! mutable setters for `T: AsMut<[u8]>`, and a `Repr` ("representation")
//! struct with `parse`/`emit` for high-level round-tripping. There is no
//! allocation on the parse path and no async runtime — passive trace
//! analysis is CPU-bound batch work.
//!
//! ```
//! use zoom_wire::rtp;
//!
//! let mut buf = [0u8; 12];
//! let repr = rtp::Repr {
//!     marker: true,
//!     payload_type: 98,
//!     sequence_number: 7,
//!     timestamp: 90_000,
//!     ssrc: 0x11,
//!     csrc_count: 0,
//!     has_extension: false,
//! };
//! repr.emit(&mut rtp::Packet::new_unchecked(&mut buf[..]));
//! let pkt = rtp::Packet::new_checked(&buf[..]).unwrap();
//! assert_eq!(pkt.sequence_number(), 7);
//! assert_eq!(pkt.payload_type(), 98);
//! ```

#![warn(missing_docs)]

pub mod checksum;
pub mod compose;
pub mod dissect;
pub mod ethernet;
pub mod family;
pub mod flow;
pub mod frame;
pub mod handoff;
pub mod ipv4;
pub mod ipv6;
pub mod pcap;
pub mod rtcp;
pub mod rtp;
pub mod stun;
pub mod tcp;
pub mod udp;
pub mod webrtc;
pub mod zoom;

use std::fmt;

/// Errors produced while parsing or emitting wire formats.
///
/// Parsing passively captured traffic must never panic on hostile or
/// truncated input, so every view constructor validates lengths and every
/// semantic check returns one of these variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// The buffer is too short to contain the fixed header, or a length
    /// field points past the end of the buffer.
    Truncated,
    /// A version, magic, or type field has a value that identifies the
    /// buffer as *not* being this protocol.
    Malformed,
    /// A checksum did not verify.
    Checksum,
    /// The value is syntactically valid but not supported by this
    /// implementation (e.g. an IPv4 packet with options we refuse to edit).
    Unsupported,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Truncated => write!(f, "truncated packet"),
            Error::Malformed => write!(f, "malformed packet"),
            Error::Checksum => write!(f, "checksum failure"),
            Error::Unsupported => write!(f, "unsupported format"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, Error>;

/// Read a big-endian `u16` at `offset` (caller guarantees bounds).
#[inline]
pub(crate) fn be16(data: &[u8], offset: usize) -> u16 {
    u16::from_be_bytes([data[offset], data[offset + 1]])
}

/// Read a big-endian `u32` at `offset` (caller guarantees bounds).
#[inline]
pub(crate) fn be32(data: &[u8], offset: usize) -> u32 {
    u32::from_be_bytes([
        data[offset],
        data[offset + 1],
        data[offset + 2],
        data[offset + 3],
    ])
}

/// Read a big-endian `u64` at `offset` (caller guarantees bounds).
#[inline]
pub(crate) fn be64(data: &[u8], offset: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[offset..offset + 8]);
    u64::from_be_bytes(b)
}

/// Write a big-endian `u16` at `offset` (caller guarantees bounds).
#[inline]
pub(crate) fn set_be16(data: &mut [u8], offset: usize, value: u16) {
    data[offset..offset + 2].copy_from_slice(&value.to_be_bytes());
}

/// Write a big-endian `u32` at `offset` (caller guarantees bounds).
#[inline]
pub(crate) fn set_be32(data: &mut [u8], offset: usize, value: u32) {
    data[offset..offset + 4].copy_from_slice(&value.to_be_bytes());
}

/// Write a big-endian `u64` at `offset` (caller guarantees bounds).
#[inline]
pub(crate) fn set_be64(data: &mut [u8], offset: usize, value: u64) {
    data[offset..offset + 8].copy_from_slice(&value.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endian_helpers_roundtrip() {
        let mut buf = [0u8; 16];
        set_be16(&mut buf, 1, 0xBEEF);
        assert_eq!(be16(&buf, 1), 0xBEEF);
        set_be32(&mut buf, 4, 0xDEAD_BEEF);
        assert_eq!(be32(&buf, 4), 0xDEAD_BEEF);
        set_be64(&mut buf, 8, 0x0123_4567_89AB_CDEF);
        assert_eq!(be64(&buf, 8), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn error_display_is_stable() {
        assert_eq!(Error::Truncated.to_string(), "truncated packet");
        assert_eq!(Error::Malformed.to_string(), "malformed packet");
        assert_eq!(Error::Checksum.to_string(), "checksum failure");
        assert_eq!(Error::Unsupported.to_string(), "unsupported format");
    }
}
