//! Pluggable protocol families: the contract that generalizes the
//! pipeline beyond Zoom.
//!
//! The paper's estimators (bitrate, fps, jitter, loss, RTT) are
//! RTP-generic; only the encapsulation dissection is Zoom-specific. This
//! module lifts that Zoom-specific part behind the [`ProtocolFamily`]
//! trait so a second conferencing system plugs into the same
//! peek → class → dissect pipeline:
//!
//! * [`FamilyId`] names a family and provides the stable `family=` label
//!   every metric and report row uses;
//! * [`ProtocolFamily`] is the per-family contract — a cheap peek-time
//!   [`PacketClass`] prediction for the batched type-sorted dispatch, the
//!   full payload classification, and the family-owned malformed-drop
//!   label (satisfying the per-family conservation invariant);
//! * [`ZoomFamily`] wraps the original ZME/SFU dissection with
//!   byte-identical behaviour;
//! * [`WebrtcFamily`] recognizes native WebRTC sessions
//!   (DTLS-SRTP framing + standard RTP/RTCP, see [`crate::webrtc`]);
//! * [`FamilySelect`] is the user-facing `--family auto|zoom|webrtc`
//!   switch, mapping to the dissector [`Probe`] configuration.
//!
//! Families are zero-sized types dispatched statically in the hot loop —
//! the trait buys the *contract*, not vtables. The dispatch order is
//! fixed (shared STUN check, then Zoom, then WebRTC) and the byte-level
//! signatures cannot overlap: DTLS content types (20–23) and RTP version
//! bits (`10`) are disjoint from every ZME leading byte, so enabling one
//! family never changes another family's output. See
//! `docs/PROTOCOLS.md` for the full contract and a worked guide to
//! adding a family.

use crate::dissect::{App, P2pProbe, PacketClass, Probe, WebrtcProbe};
use crate::flow::FiveTuple;
use crate::stun;
use crate::webrtc;
use crate::zoom::{self, Framing, ZOOM_SFU_PORT};
use std::fmt;
use std::str::FromStr;

/// Identifies a protocol family — the value behind every `family=` label
/// in metrics, reports, and logs.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FamilyId {
    /// Zoom's proprietary encapsulations (ZME/SFU, server and P2P
    /// framings) — the original subject of the paper.
    Zoom,
    /// Native WebRTC: STUN/DTLS-SRTP session framing with standard
    /// RTP/RTCP media.
    Webrtc,
}

/// Number of known families; sizes per-family counter arrays.
pub const FAMILY_COUNT: usize = 2;

/// All known families, in [`FamilyId::index`] order.
pub const ALL_FAMILIES: [FamilyId; FAMILY_COUNT] = [FamilyId::Zoom, FamilyId::Webrtc];

impl FamilyId {
    /// Stable lower-case label for metrics, reports, and logs.
    pub fn label(self) -> &'static str {
        match self {
            FamilyId::Zoom => "zoom",
            FamilyId::Webrtc => "webrtc",
        }
    }

    /// Dense index for per-family counter arrays (`0..FAMILY_COUNT`).
    pub fn index(self) -> usize {
        match self {
            FamilyId::Zoom => 0,
            FamilyId::Webrtc => 1,
        }
    }
}

impl fmt::Display for FamilyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A family (or family-selection) string that is not `auto`, `zoom`, or
/// `webrtc`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFamilyError {
    rejected: String,
}

impl fmt::Display for ParseFamilyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown family {:?} (expected auto, zoom, or webrtc)",
            self.rejected
        )
    }
}

impl std::error::Error for ParseFamilyError {}

impl FromStr for FamilyId {
    type Err = ParseFamilyError;

    fn from_str(s: &str) -> Result<FamilyId, ParseFamilyError> {
        match s {
            "zoom" => Ok(FamilyId::Zoom),
            "webrtc" => Ok(FamilyId::Webrtc),
            other => Err(ParseFamilyError {
                rejected: other.to_string(),
            }),
        }
    }
}

/// User-facing family selection (`--family auto|zoom|webrtc`).
///
/// `parse(display(x)) == x` round-trips, mirroring
/// `SourceSpec`: labels printed in metrics and reports are re-parseable.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FamilySelect {
    /// Recognize every family, session-gated: Zoom parses eagerly
    /// (ports and P2P probing via the STUN tracker, exactly as before),
    /// WebRTC engages only on flows whose endpoints the STUN tracker
    /// has seen. On Zoom-only traffic this is byte-identical to
    /// `Only(FamilyId::Zoom)`.
    #[default]
    Auto,
    /// Restrict dissection to a single family.
    Only(FamilyId),
}

impl FamilySelect {
    /// Stable label: `auto` or the family label.
    pub fn label(self) -> &'static str {
        match self {
            FamilySelect::Auto => "auto",
            FamilySelect::Only(id) => id.label(),
        }
    }

    /// Whether packets of `family` may be classified under this selection.
    pub fn allows(self, family: FamilyId) -> bool {
        match self {
            FamilySelect::Auto => true,
            FamilySelect::Only(id) => id == family,
        }
    }

    /// The dissector [`Probe`] this selection maps to.
    ///
    /// `Auto` keeps the eager probe Zoom-only — identical to today's
    /// dissection, preserving byte-for-byte output on Zoom traffic — and
    /// relies on the analysis layer's session gating (STUN-tracked
    /// endpoints) to route WebRTC second chances. `Only(Webrtc)` probes
    /// WebRTC framing eagerly and disables Zoom parsing entirely.
    pub fn probe(self) -> Probe {
        match self {
            FamilySelect::Auto | FamilySelect::Only(FamilyId::Zoom) => Probe::default(),
            FamilySelect::Only(FamilyId::Webrtc) => Probe {
                zoom: false,
                p2p: P2pProbe::Off,
                webrtc: WebrtcProbe::Auto,
            },
        }
    }
}

impl fmt::Display for FamilySelect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for FamilySelect {
    type Err = ParseFamilyError;

    fn from_str(s: &str) -> Result<FamilySelect, ParseFamilyError> {
        if s == "auto" {
            return Ok(FamilySelect::Auto);
        }
        s.parse().map(FamilySelect::Only)
    }
}

/// The per-family dissection contract.
///
/// A family supplies three things, matching the three stages of the
/// batched pipeline:
///
/// 1. **Peek** ([`peek_class`](ProtocolFamily::peek_class)): a cheap
///    header/first-bytes prediction of the [`PacketClass`], used by
///    `peek_batch` to sort application-layer dispatch into
///    branch-predictable per-class loops. Predictions may be wrong — a
///    misprediction costs a branch miss, never a wrong result.
/// 2. **Classify** ([`classify`](ProtocolFamily::classify)): the full
///    payload parse. `Some(app)` claims the packet for this family
///    (including `Some(App::Opaque)` — "mine, but malformed", which
///    stops later families from seeing it); `None` passes it on.
/// 3. **Drop attribution** ([`malformed_label`](ProtocolFamily::malformed_label)):
///    the metric label under which this family's framing failures are
///    counted, so the conservation invariant holds *per family*.
///
/// Implementations are zero-sized and dispatched statically; the shared
/// STUN parse (both families signal sessions via STUN) runs once in the
/// dispatcher, before any family sees the payload.
pub trait ProtocolFamily {
    /// Which family this is.
    fn id(&self) -> FamilyId;

    /// Cheap peek-time class prediction from header fields and the first
    /// payload bytes; `None` when the packet shows none of this family's
    /// signals.
    fn peek_class(&self, five_tuple: &FiveTuple, payload: &[u8]) -> Option<PacketClass>;

    /// Full payload classification. `Some` claims the packet for this
    /// family; `None` lets the next family try.
    fn classify(&self, five_tuple: &FiveTuple, payload: &[u8], probe: Probe) -> Option<App>;

    /// Metric label for payloads this family claimed but could not parse.
    fn malformed_label(&self) -> &'static str;
}

/// The Zoom family: ZME/SFU encapsulations, server and P2P framings.
/// First implementor of [`ProtocolFamily`]; behaviour is byte-identical
/// to the pre-trait dissector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZoomFamily;

impl ProtocolFamily for ZoomFamily {
    fn id(&self) -> FamilyId {
        FamilyId::Zoom
    }

    fn peek_class(&self, five_tuple: &FiveTuple, payload: &[u8]) -> Option<PacketClass> {
        if five_tuple.involves_port(ZOOM_SFU_PORT) {
            Some(if payload.first() == Some(&zoom::SFU_TYPE_MEDIA) {
                PacketClass::ZmeMedia
            } else {
                PacketClass::ZmeControl
            })
        } else {
            None
        }
    }

    fn classify(&self, five_tuple: &FiveTuple, payload: &[u8], probe: Probe) -> Option<App> {
        if five_tuple.involves_port(ZOOM_SFU_PORT) {
            // Port 8801 is authoritatively Zoom server traffic: parse
            // failures still claim the packet (the caller attributes them
            // under this family's malformed label), exactly as before the
            // family refactor.
            return match zoom::parse(payload, Framing::Server) {
                Ok(z) => Some(App::Zoom(Framing::Server, z)),
                Err(_) => Some(App::Opaque),
            };
        }
        if probe.p2p == P2pProbe::Auto {
            if let Ok((framing, z)) = zoom::parse_auto(payload) {
                if z.rtp.is_some() || !z.rtcp.is_empty() {
                    return Some(App::Zoom(framing, z));
                }
            }
        }
        None
    }

    fn malformed_label(&self) -> &'static str {
        "malformed_zme"
    }
}

/// The native WebRTC family: DTLS-SRTP session framing with standard
/// RTP/RTCP ([`crate::webrtc`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WebrtcFamily;

impl ProtocolFamily for WebrtcFamily {
    fn id(&self) -> FamilyId {
        FamilyId::Webrtc
    }

    fn peek_class(&self, _five_tuple: &FiveTuple, payload: &[u8]) -> Option<PacketClass> {
        if webrtc::looks_like_dtls(payload) {
            Some(PacketClass::Dtls)
        } else if !payload.is_empty() && payload[0] >> 6 == crate::rtp::VERSION {
            // Any version-2 packet: SRTP or SRTCP — one dispatch class.
            Some(PacketClass::Rtp)
        } else {
            None
        }
    }

    fn classify(&self, _five_tuple: &FiveTuple, payload: &[u8], _probe: Probe) -> Option<App> {
        webrtc::classify(payload).ok().map(App::Webrtc)
    }

    fn malformed_label(&self) -> &'static str {
        "malformed_srtp"
    }
}

/// Shared STUN classification, run by the dispatcher before any family:
/// both families signal sessions via STUN, so it belongs to neither.
pub(crate) fn classify_stun(five_tuple: &FiveTuple, payload: &[u8]) -> Option<App> {
    if five_tuple.involves_port(stun::STUN_PORT) || stun::looks_like_stun(payload) {
        if let Ok(p) = stun::Packet::new_checked(payload) {
            if let Ok(repr) = stun::Repr::parse(&p) {
                return Some(App::Stun(repr));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::Protocol;
    use std::net::{IpAddr, Ipv4Addr};

    fn tuple(src_port: u16, dst_port: u16) -> FiveTuple {
        FiveTuple {
            src_ip: IpAddr::V4(Ipv4Addr::new(10, 8, 0, 3)),
            dst_ip: IpAddr::V4(Ipv4Addr::new(52, 202, 62, 1)),
            src_port,
            dst_port,
            protocol: Protocol::Udp,
        }
    }

    #[test]
    fn family_labels_and_indices_are_stable() {
        assert_eq!(FamilyId::Zoom.label(), "zoom");
        assert_eq!(FamilyId::Webrtc.label(), "webrtc");
        assert_eq!(FamilyId::Zoom.index(), 0);
        assert_eq!(FamilyId::Webrtc.index(), 1);
        for (i, id) in ALL_FAMILIES.iter().enumerate() {
            assert_eq!(id.index(), i);
        }
        assert_eq!(ZoomFamily.id(), FamilyId::Zoom);
        assert_eq!(WebrtcFamily.id(), FamilyId::Webrtc);
        assert_eq!(ZoomFamily.malformed_label(), "malformed_zme");
        assert_eq!(WebrtcFamily.malformed_label(), "malformed_srtp");
    }

    #[test]
    fn family_parsing_roundtrips() {
        for s in ["auto", "zoom", "webrtc"] {
            let sel: FamilySelect = s.parse().unwrap();
            assert_eq!(sel.to_string(), s);
        }
        assert_eq!("zoom".parse::<FamilyId>().unwrap(), FamilyId::Zoom);
        assert_eq!("webrtc".parse::<FamilyId>().unwrap(), FamilyId::Webrtc);
        let err = "meet".parse::<FamilySelect>().unwrap_err();
        assert_eq!(
            err.to_string(),
            "unknown family \"meet\" (expected auto, zoom, or webrtc)"
        );
        assert!("auto".parse::<FamilyId>().is_err());
        assert!("Zoom".parse::<FamilyId>().is_err()); // case-sensitive
    }

    #[test]
    fn select_allows_and_probe_mapping() {
        assert!(FamilySelect::Auto.allows(FamilyId::Zoom));
        assert!(FamilySelect::Auto.allows(FamilyId::Webrtc));
        assert!(FamilySelect::Only(FamilyId::Zoom).allows(FamilyId::Zoom));
        assert!(!FamilySelect::Only(FamilyId::Zoom).allows(FamilyId::Webrtc));

        // Auto and Only(Zoom) map to the exact pre-refactor probe: this
        // is what pins Zoom-only byte-identity at the dissector level.
        assert_eq!(FamilySelect::Auto.probe(), Probe::default());
        assert_eq!(
            FamilySelect::Only(FamilyId::Zoom).probe(),
            Probe::default()
        );
        let w = FamilySelect::Only(FamilyId::Webrtc).probe();
        assert!(!w.zoom);
        assert_eq!(w.webrtc, WebrtcProbe::Auto);
    }

    #[test]
    fn zoom_family_peeks_and_claims_8801() {
        let ft = tuple(ZOOM_SFU_PORT, 50_111);
        assert_eq!(
            ZoomFamily.peek_class(&ft, &[zoom::SFU_TYPE_MEDIA, 0, 0]),
            Some(PacketClass::ZmeMedia)
        );
        assert_eq!(
            ZoomFamily.peek_class(&ft, &[0x01, 0, 0]),
            Some(PacketClass::ZmeControl)
        );
        assert_eq!(ZoomFamily.peek_class(&tuple(1, 2), &[0x01]), None);
        // Garbage on 8801 is claimed (Opaque), not passed on.
        assert_eq!(
            ZoomFamily.classify(&ft, b"garbage", Probe::default()),
            Some(App::Opaque)
        );
        // Garbage elsewhere is passed on.
        assert_eq!(
            ZoomFamily.classify(&tuple(1, 2), b"garbage", Probe::default()),
            None
        );
    }

    #[test]
    fn webrtc_family_peeks_dtls_and_rtp() {
        let ft = tuple(50_111, 61_234);
        let dtls = {
            let repr = webrtc::DtlsRepr {
                content_type: webrtc::DTLS_HANDSHAKE,
                version_minor: 0xfd,
                epoch: 0,
                sequence: 0,
                length: 0,
            };
            let mut buf = vec![0u8; repr.buffer_len()];
            repr.emit(&mut buf);
            buf
        };
        assert_eq!(
            WebrtcFamily.peek_class(&ft, &dtls),
            Some(PacketClass::Dtls)
        );
        assert_eq!(
            WebrtcFamily.peek_class(&ft, &[0x80, 111]),
            Some(PacketClass::Rtp)
        );
        // ZME leading bytes never peek as WebRTC.
        for first in [5u8, 13, 15, 16, 33, 34] {
            assert_eq!(WebrtcFamily.peek_class(&ft, &[first, 0, 0]), None);
        }
        assert!(matches!(
            WebrtcFamily.classify(&ft, &dtls, Probe::default()),
            Some(App::Webrtc(webrtc::Pdu::Dtls(_)))
        ));
        assert_eq!(
            WebrtcFamily.classify(&ft, b"not webrtc", Probe::default()),
            None
        );
    }
}
