//! TCP segment view and emitter (RFC 793).
//!
//! Passive latency estimation ("Method 2" in §5.3 of the paper) matches the
//! sequence numbers of outgoing control-connection segments against the
//! acknowledgment numbers of incoming ones, so the view exposes exactly the
//! fields that estimator needs: ports, SEQ, ACK, flags, and payload length.

use crate::checksum;
use crate::{be16, be32, set_be16, set_be32, Error, Result};
use std::net::Ipv4Addr;

/// Minimum TCP header length (no options).
pub const HEADER_LEN: usize = 20;

/// TCP control flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// FIN.
    pub fin: bool,
    /// SYN.
    pub syn: bool,
    /// RST.
    pub rst: bool,
    /// PSH.
    pub psh: bool,
    /// ACK.
    pub ack: bool,
    /// URG.
    pub urg: bool,
}

impl Flags {
    /// Build from the low byte of the flags field.
    pub fn from_byte(b: u8) -> Flags {
        Flags {
            fin: b & 0x01 != 0,
            syn: b & 0x02 != 0,
            rst: b & 0x04 != 0,
            psh: b & 0x08 != 0,
            ack: b & 0x10 != 0,
            urg: b & 0x20 != 0,
        }
    }

    /// Serialize to the low byte of the flags field.
    pub fn to_byte(self) -> u8 {
        let mut b = 0;
        if self.fin {
            b |= 0x01;
        }
        if self.syn {
            b |= 0x02;
        }
        if self.rst {
            b |= 0x04;
        }
        if self.psh {
            b |= 0x08;
        }
        if self.ack {
            b |= 0x10;
        }
        if self.urg {
            b |= 0x20;
        }
        b
    }
}

/// Zero-copy view of a TCP segment.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Packet { buffer }
    }

    /// Wrap, validating header length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = Packet { buffer };
        packet.check_len()?;
        Ok(packet)
    }

    /// Validate structural invariants.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let hl = self.header_len();
        if hl < HEADER_LEN {
            return Err(Error::Malformed);
        }
        if data.len() < hl {
            return Err(Error::Truncated);
        }
        Ok(())
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        be16(self.buffer.as_ref(), 0)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        be16(self.buffer.as_ref(), 2)
    }

    /// Sequence number.
    pub fn seq_number(&self) -> u32 {
        be32(self.buffer.as_ref(), 4)
    }

    /// Acknowledgment number (meaningful only when `flags().ack`).
    pub fn ack_number(&self) -> u32 {
        be32(self.buffer.as_ref(), 8)
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[12] >> 4) * 4
    }

    /// Control flags.
    pub fn flags(&self) -> Flags {
        Flags::from_byte(self.buffer.as_ref()[13])
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        be16(self.buffer.as_ref(), 14)
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        be16(self.buffer.as_ref(), 16)
    }

    /// Payload after the (possibly option-bearing) header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }

    /// Number of sequence-space bytes this segment consumes
    /// (payload + SYN + FIN).
    pub fn seq_len(&self) -> u32 {
        let f = self.flags();
        self.payload().len() as u32 + u32::from(f.syn) + u32::from(f.fin)
    }

    /// Verify the checksum under an IPv4 pseudo header.
    pub fn verify_checksum_v4(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        let data = self.buffer.as_ref();
        let mut s = checksum::pseudo_header_v4(src, dst, 6, data.len() as u16);
        s.add(data);
        s.finish() == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Set source port.
    pub fn set_src_port(&mut self, v: u16) {
        set_be16(self.buffer.as_mut(), 0, v);
    }

    /// Set destination port.
    pub fn set_dst_port(&mut self, v: u16) {
        set_be16(self.buffer.as_mut(), 2, v);
    }

    /// Set sequence number.
    pub fn set_seq_number(&mut self, v: u32) {
        set_be32(self.buffer.as_mut(), 4, v);
    }

    /// Set acknowledgment number.
    pub fn set_ack_number(&mut self, v: u32) {
        set_be32(self.buffer.as_mut(), 8, v);
    }

    /// Set data offset (header length in bytes).
    pub fn set_header_len(&mut self, len: usize) {
        debug_assert!(len.is_multiple_of(4) && (HEADER_LEN..=60).contains(&len));
        self.buffer.as_mut()[12] = ((len / 4) as u8) << 4;
    }

    /// Set flags.
    pub fn set_flags(&mut self, f: Flags) {
        self.buffer.as_mut()[13] = f.to_byte();
    }

    /// Set receive window.
    pub fn set_window(&mut self, v: u16) {
        set_be16(self.buffer.as_mut(), 14, v);
    }

    /// Compute and set the checksum under an IPv4 pseudo header.
    pub fn fill_checksum_v4(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        set_be16(self.buffer.as_mut(), 16, 0);
        let data = self.buffer.as_ref();
        let mut s = checksum::pseudo_header_v4(src, dst, 6, data.len() as u16);
        s.add(data);
        let c = s.finish();
        set_be16(self.buffer.as_mut(), 16, c);
    }

    /// Mutable payload slice.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hl = self.header_len();
        &mut self.buffer.as_mut()[hl..]
    }
}

/// High-level TCP header representation (options-free emit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq_number: u32,
    /// Acknowledgment number.
    pub ack_number: u32,
    /// Control flags.
    pub flags: Flags,
    /// Receive window.
    pub window: u16,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl Repr {
    /// Parse a validated view.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Repr> {
        packet.check_len()?;
        Ok(Repr {
            src_port: packet.src_port(),
            dst_port: packet.dst_port(),
            seq_number: packet.seq_number(),
            ack_number: packet.ack_number(),
            flags: packet.flags(),
            window: packet.window(),
            payload_len: packet.payload().len(),
        })
    }

    /// Emitted header length.
    pub fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Total emitted length.
    pub fn total_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emit the header; checksum is left zero for the caller to fill.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.set_src_port(self.src_port);
        packet.set_dst_port(self.dst_port);
        packet.set_seq_number(self.seq_number);
        packet.set_ack_number(self.ack_number);
        packet.set_header_len(HEADER_LEN);
        packet.set_flags(self.flags);
        packet.set_window(self.window);
        set_be16(packet.buffer.as_mut(), 16, 0);
        set_be16(packet.buffer.as_mut(), 18, 0); // urgent pointer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let repr = Repr {
            src_port: 50_123,
            dst_port: 443,
            seq_number: 1_000,
            ack_number: 2_000,
            flags: Flags {
                ack: true,
                psh: true,
                ..Default::default()
            },
            window: 65_535,
            payload_len: 3,
        };
        let mut buf = vec![0u8; repr.total_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        buf[20..].copy_from_slice(&[1, 2, 3]);
        buf
    }

    #[test]
    fn emit_parse_roundtrip() {
        let buf = sample();
        let p = Packet::new_checked(&buf[..]).unwrap();
        let r = Repr::parse(&p).unwrap();
        assert_eq!(r.seq_number, 1_000);
        assert_eq!(r.ack_number, 2_000);
        assert!(r.flags.ack && r.flags.psh && !r.flags.syn);
        assert_eq!(p.payload(), &[1, 2, 3]);
    }

    #[test]
    fn seq_len_counts_syn_fin() {
        let mut buf = sample();
        {
            let mut p = Packet::new_unchecked(&mut buf[..]);
            p.set_flags(Flags {
                syn: true,
                fin: true,
                ..Default::default()
            });
        }
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.seq_len(), 3 + 2);
    }

    #[test]
    fn checksum_roundtrip() {
        let mut buf = sample();
        let src = Ipv4Addr::new(10, 0, 0, 9);
        let dst = Ipv4Addr::new(170, 114, 0, 5);
        Packet::new_unchecked(&mut buf[..]).fill_checksum_v4(src, dst);
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert!(p.verify_checksum_v4(src, dst));
    }

    #[test]
    fn options_respected_in_payload() {
        let mut buf = sample();
        buf[12] = 0x60; // header length 24 — beyond buffer only if payload short
        buf.extend_from_slice(&[0, 0, 0, 0]);
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.header_len(), 24);
    }

    #[test]
    fn malformed_data_offset() {
        let mut buf = sample();
        buf[12] = 0x10; // header length 4 < 20
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn flags_byte_roundtrip() {
        for b in 0u8..64 {
            assert_eq!(Flags::from_byte(b).to_byte(), b);
        }
    }
}
