//! UDP datagram view and emitter (RFC 768).

use crate::checksum::{self, Summer};
use crate::{be16, set_be16, Error, Result};
use std::net::{Ipv4Addr, Ipv6Addr};

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// Zero-copy view of a UDP datagram.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Packet { buffer }
    }

    /// Wrap, validating the length field against the buffer.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = Packet { buffer };
        packet.check_len()?;
        Ok(packet)
    }

    /// Validate structural invariants.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        let l = self.len() as usize;
        if l < HEADER_LEN {
            return Err(Error::Malformed);
        }
        if data.len() < l {
            return Err(Error::Truncated);
        }
        Ok(())
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        be16(self.buffer.as_ref(), 0)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        be16(self.buffer.as_ref(), 2)
    }

    /// Length field (header + payload).
    pub fn len(&self) -> u16 {
        be16(self.buffer.as_ref(), 4)
    }

    /// True when the length field covers only the header.
    pub fn is_empty(&self) -> bool {
        self.len() as usize == HEADER_LEN
    }

    /// Checksum field (0 means "not computed" for IPv4).
    pub fn checksum(&self) -> u16 {
        be16(self.buffer.as_ref(), 6)
    }

    /// Payload bounded by the length field.
    pub fn payload(&self) -> &[u8] {
        let l = self.len() as usize;
        &self.buffer.as_ref()[HEADER_LEN..l]
    }

    /// Verify the checksum under an IPv4 pseudo header. A zero checksum is
    /// accepted as "not present" per RFC 768.
    pub fn verify_checksum_v4(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        if self.checksum() == 0 {
            return true;
        }
        let l = self.len();
        let mut s = checksum::pseudo_header_v4(src, dst, 17, l);
        s.add(&self.buffer.as_ref()[..l as usize]);
        s.finish() == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Set source port.
    pub fn set_src_port(&mut self, v: u16) {
        set_be16(self.buffer.as_mut(), 0, v);
    }

    /// Set destination port.
    pub fn set_dst_port(&mut self, v: u16) {
        set_be16(self.buffer.as_mut(), 2, v);
    }

    /// Set the length field.
    pub fn set_len(&mut self, v: u16) {
        set_be16(self.buffer.as_mut(), 4, v);
    }

    /// Zero the checksum field.
    pub fn clear_checksum(&mut self) {
        set_be16(self.buffer.as_mut(), 6, 0);
    }

    /// Compute and set the checksum under an IPv4 pseudo header,
    /// substituting 0xFFFF for a computed zero per RFC 768.
    pub fn fill_checksum_v4(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        self.clear_checksum();
        let l = self.len();
        let mut s = checksum::pseudo_header_v4(src, dst, 17, l);
        s.add(&self.buffer.as_ref()[..l as usize]);
        let c = match s.finish() {
            0 => 0xFFFF,
            c => c,
        };
        set_be16(self.buffer.as_mut(), 6, c);
    }

    /// Compute and set the checksum under an IPv6 pseudo header (mandatory
    /// for IPv6).
    pub fn fill_checksum_v6(&mut self, src: Ipv6Addr, dst: Ipv6Addr) {
        self.clear_checksum();
        let l = self.len();
        let mut s: Summer = checksum::pseudo_header_v6(src, dst, 17, u32::from(l));
        s.add(&self.buffer.as_ref()[..l as usize]);
        let c = match s.finish() {
            0 => 0xFFFF,
            c => c,
        };
        set_be16(self.buffer.as_mut(), 6, c);
    }

    /// Mutable payload slice.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let l = self.len() as usize;
        &mut self.buffer.as_mut()[HEADER_LEN..l]
    }
}

/// High-level UDP header representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl Repr {
    /// Parse a validated view.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Repr> {
        packet.check_len()?;
        Ok(Repr {
            src_port: packet.src_port(),
            dst_port: packet.dst_port(),
            payload_len: packet.len() as usize - HEADER_LEN,
        })
    }

    /// Emitted header length.
    pub fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Total emitted length.
    pub fn total_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emit ports and length; the checksum is left zero so callers can fill
    /// it once addresses are known.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.set_src_port(self.src_port);
        packet.set_dst_port(self.dst_port);
        packet.set_len(self.total_len() as u16);
        packet.clear_checksum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let repr = Repr {
            src_port: 52_000,
            dst_port: 8801,
            payload_len: 5,
        };
        let mut buf = vec![0u8; repr.total_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        buf[8..].copy_from_slice(b"hello");
        buf
    }

    #[test]
    fn emit_parse_roundtrip() {
        let buf = sample();
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.src_port(), 52_000);
        assert_eq!(p.dst_port(), 8801);
        assert_eq!(p.payload(), b"hello");
    }

    #[test]
    fn checksum_v4_roundtrip() {
        let mut buf = sample();
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(3, 7, 35, 1);
        let mut p = Packet::new_unchecked(&mut buf[..]);
        p.fill_checksum_v4(src, dst);
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert!(p.verify_checksum_v4(src, dst));
        // Note: swapping src and dst does NOT invalidate the checksum
        // (one's-complement addition is commutative); a different address
        // does.
        assert!(!p.verify_checksum_v4(Ipv4Addr::new(10, 0, 0, 2), dst));
    }

    #[test]
    fn zero_checksum_accepted() {
        let buf = sample();
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert!(p.verify_checksum_v4(Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED));
    }

    #[test]
    fn bad_len_field() {
        let mut buf = sample();
        buf[4] = 0;
        buf[5] = 4; // len 4 < header
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
        buf[5] = 200; // len beyond buffer
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Truncated);
    }

    #[test]
    fn payload_bounded_by_len_field() {
        let mut buf = sample();
        buf.extend_from_slice(&[0xAA; 4]); // padding beyond UDP length
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.payload(), b"hello");
    }
}
