//! IPv4 packet view and emitter (RFC 791).

use crate::checksum;
use crate::{be16, set_be16, Error, Result};
use std::net::Ipv4Addr;

/// Minimum IPv4 header length (no options).
pub const HEADER_LEN: usize = 20;

/// IP protocol numbers this crate cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Any other protocol number, carried verbatim.
    Unknown(u8),
}

impl From<u8> for Protocol {
    fn from(v: u8) -> Self {
        match v {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Unknown(other),
        }
    }
}

impl From<Protocol> for u8 {
    fn from(v: Protocol) -> u8 {
        match v {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Unknown(other) => other,
        }
    }
}

/// Zero-copy view of an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Packet { buffer }
    }

    /// Wrap a buffer, validating version, header length, and total length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let packet = Packet { buffer };
        packet.check_len()?;
        Ok(packet)
    }

    /// Validate structural invariants without consuming the view.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(Error::Truncated);
        }
        if self.version() != 4 {
            return Err(Error::Malformed);
        }
        let hl = self.header_len();
        if hl < HEADER_LEN || data.len() < hl {
            return Err(Error::Malformed);
        }
        let tl = self.total_len() as usize;
        if tl < hl || data.len() < tl {
            return Err(Error::Truncated);
        }
        Ok(())
    }

    /// Recover the inner buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// IP version (must be 4).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[0] >> 4
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.buffer.as_ref()[0] & 0x0F) * 4
    }

    /// DSCP/ECN byte.
    pub fn dscp_ecn(&self) -> u8 {
        self.buffer.as_ref()[1]
    }

    /// Total length field (header plus payload).
    pub fn total_len(&self) -> u16 {
        be16(self.buffer.as_ref(), 2)
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        be16(self.buffer.as_ref(), 4)
    }

    /// Don't-fragment flag.
    pub fn dont_frag(&self) -> bool {
        self.buffer.as_ref()[6] & 0x40 != 0
    }

    /// More-fragments flag.
    pub fn more_frags(&self) -> bool {
        self.buffer.as_ref()[6] & 0x20 != 0
    }

    /// Fragment offset in bytes.
    pub fn frag_offset(&self) -> u16 {
        (be16(self.buffer.as_ref(), 6) & 0x1FFF) * 8
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Next-level protocol.
    pub fn protocol(&self) -> Protocol {
        Protocol::from(self.buffer.as_ref()[9])
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        be16(self.buffer.as_ref(), 10)
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv4Addr {
        let d = self.buffer.as_ref();
        Ipv4Addr::new(d[12], d[13], d[14], d[15])
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv4Addr {
        let d = self.buffer.as_ref();
        Ipv4Addr::new(d[16], d[17], d[18], d[19])
    }

    /// Verify the header checksum.
    pub fn verify_checksum(&self) -> bool {
        let hl = self.header_len();
        checksum::verify(&self.buffer.as_ref()[..hl])
    }

    /// Payload as bounded by `total_len` (trailing link padding excluded).
    pub fn payload(&self) -> &[u8] {
        let hl = self.header_len();
        let tl = self.total_len() as usize;
        &self.buffer.as_ref()[hl..tl]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Packet<T> {
    /// Set version to 4 and IHL to `len / 4`.
    pub fn set_version_and_header_len(&mut self, len: usize) {
        debug_assert!(len.is_multiple_of(4) && (HEADER_LEN..=60).contains(&len));
        self.buffer.as_mut()[0] = 0x40 | (len / 4) as u8;
    }

    /// Set DSCP/ECN.
    pub fn set_dscp_ecn(&mut self, v: u8) {
        self.buffer.as_mut()[1] = v;
    }

    /// Set total length.
    pub fn set_total_len(&mut self, v: u16) {
        set_be16(self.buffer.as_mut(), 2, v);
    }

    /// Set identification.
    pub fn set_ident(&mut self, v: u16) {
        set_be16(self.buffer.as_mut(), 4, v);
    }

    /// Set flags and fragment offset to "don't fragment".
    pub fn set_dont_frag(&mut self) {
        self.buffer.as_mut()[6] = 0x40;
        self.buffer.as_mut()[7] = 0;
    }

    /// Set TTL.
    pub fn set_ttl(&mut self, v: u8) {
        self.buffer.as_mut()[8] = v;
    }

    /// Set protocol.
    pub fn set_protocol(&mut self, v: Protocol) {
        self.buffer.as_mut()[9] = v.into();
    }

    /// Set source address.
    pub fn set_src_addr(&mut self, v: Ipv4Addr) {
        self.buffer.as_mut()[12..16].copy_from_slice(&v.octets());
    }

    /// Set destination address.
    pub fn set_dst_addr(&mut self, v: Ipv4Addr) {
        self.buffer.as_mut()[16..20].copy_from_slice(&v.octets());
    }

    /// Zero then recompute the header checksum.
    pub fn fill_checksum(&mut self) {
        let hl = self.header_len();
        let buf = self.buffer.as_mut();
        buf[10] = 0;
        buf[11] = 0;
        let c = checksum::checksum(&buf[..hl]);
        set_be16(buf, 10, c);
    }

    /// Mutable payload slice.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hl = self.header_len();
        let tl = self.total_len() as usize;
        &mut self.buffer.as_mut()[hl..tl]
    }
}

/// High-level IPv4 header representation (options-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source address.
    pub src_addr: Ipv4Addr,
    /// Destination address.
    pub dst_addr: Ipv4Addr,
    /// Payload protocol.
    pub protocol: Protocol,
    /// Payload length in bytes (total length minus header).
    pub payload_len: usize,
    /// Time to live.
    pub ttl: u8,
    /// DSCP/ECN byte.
    pub dscp_ecn: u8,
    /// Identification field.
    pub ident: u16,
}

impl Repr {
    /// Parse a validated view; packets with options are accepted (the
    /// options are ignored) so passive captures never error out here.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Repr> {
        packet.check_len()?;
        Ok(Repr {
            src_addr: packet.src_addr(),
            dst_addr: packet.dst_addr(),
            protocol: packet.protocol(),
            payload_len: packet.total_len() as usize - packet.header_len(),
            ttl: packet.ttl(),
            dscp_ecn: packet.dscp_ecn(),
            ident: packet.ident(),
        })
    }

    /// Emitted header length (always 20: we never emit options).
    pub fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Total emitted length.
    pub fn total_len(&self) -> usize {
        HEADER_LEN + self.payload_len
    }

    /// Emit header fields and compute the checksum.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Packet<T>) {
        packet.set_version_and_header_len(HEADER_LEN);
        packet.set_dscp_ecn(self.dscp_ecn);
        packet.set_total_len((HEADER_LEN + self.payload_len) as u16);
        packet.set_ident(self.ident);
        packet.set_dont_frag();
        packet.set_ttl(self.ttl);
        packet.set_protocol(self.protocol);
        packet.set_src_addr(self.src_addr);
        packet.set_dst_addr(self.dst_addr);
        packet.fill_checksum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let repr = Repr {
            src_addr: Ipv4Addr::new(10, 8, 0, 1),
            dst_addr: Ipv4Addr::new(52, 202, 62, 17),
            protocol: Protocol::Udp,
            payload_len: 4,
            ttl: 64,
            dscp_ecn: 0,
            ident: 0x1234,
        };
        let mut buf = vec![0u8; repr.total_len()];
        repr.emit(&mut Packet::new_unchecked(&mut buf[..]));
        buf[20..].copy_from_slice(&[1, 2, 3, 4]);
        buf
    }

    #[test]
    fn emit_parse_roundtrip() {
        let buf = sample();
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert!(p.verify_checksum());
        let r = Repr::parse(&p).unwrap();
        assert_eq!(r.src_addr, Ipv4Addr::new(10, 8, 0, 1));
        assert_eq!(r.protocol, Protocol::Udp);
        assert_eq!(r.payload_len, 4);
        assert_eq!(p.payload(), &[1, 2, 3, 4]);
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = sample();
        buf[0] = 0x65; // version 6
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn truncated_total_len_rejected() {
        let buf = sample();
        assert_eq!(
            Packet::new_checked(&buf[..22]).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn bad_ihl_rejected() {
        let mut buf = sample();
        buf[0] = 0x43; // IHL 12 bytes < 20
        assert_eq!(Packet::new_checked(&buf[..]).unwrap_err(), Error::Malformed);
    }

    #[test]
    fn checksum_flip_detected() {
        let mut buf = sample();
        buf[12] ^= 0x80;
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert!(!p.verify_checksum());
    }

    #[test]
    fn payload_excludes_link_padding() {
        let mut buf = sample();
        buf.extend_from_slice(&[0u8; 10]); // Ethernet trailer padding
        let p = Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.payload().len(), 4);
    }

    #[test]
    fn protocol_conversion() {
        assert_eq!(Protocol::from(17u8), Protocol::Udp);
        assert_eq!(u8::from(Protocol::Unknown(250)), 250);
    }
}
