//! Zoom's proprietary encapsulation headers, as reverse-engineered in §4.2
//! of the paper (Table 1, Table 2, Fig. 7).
//!
//! Two headers wrap every Zoom UDP media packet:
//!
//! * **Zoom SFU Encapsulation** — a fixed 8-byte header present only on
//!   server-based (client ⇄ SFU) traffic. Byte 0 is a type field (0x05 on
//!   98.4 % of packets, meaning "media encapsulation follows"), bytes 1–2
//!   are a sequence number, and byte 7 encodes the direction (0x00 toward
//!   the SFU, 0x04 from the SFU).
//! * **Zoom Media Encapsulation** — a variable-length header whose first
//!   byte selects the payload kind and, with it, the offset where the inner
//!   RTP/RTCP header starts (Table 2): screen share (13) → 27, audio (15)
//!   → 19, video (16) → 24, RTCP (33/34) → 16. Video packets additionally
//!   carry a frame sequence number (bytes 21–22) and the number of packets
//!   in the frame (byte 23) — the fields that make passive frame-rate and
//!   frame-size measurement possible. A media-level sequence number sits at
//!   bytes 9–10 and a timestamp at bytes 11–14 (Table 1).
//!
//! P2P traffic starts directly with the media encapsulation; server traffic
//! prefixes the SFU encapsulation. The exact layout of the reserved bytes
//! is not published; this crate fixes the self-consistent layout documented
//! in `DESIGN.md` and treats reserved ranges as opaque.

use crate::{be16, be32, rtcp, rtp, set_be16, set_be32, Error, Result};

/// Length of the Zoom SFU encapsulation header.
pub const SFU_ENCAP_LEN: usize = 8;

/// SFU-encapsulation type value indicating a media encapsulation follows
/// (98.4 % of server-based packets in the paper's trace).
pub const SFU_TYPE_MEDIA: u8 = 0x05;

/// Direction byte: packet traveling toward the SFU.
pub const DIR_TO_SFU: u8 = 0x00;

/// Direction byte: packet traveling from the SFU.
pub const DIR_FROM_SFU: u8 = 0x04;

/// The well-known UDP port of Zoom multi-media routers (SFUs).
pub const ZOOM_SFU_PORT: u16 = 8801;

/// Media-encapsulation type values (Table 2) plus the screen-share /
/// audio / video distinction that drives all downstream classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MediaType {
    /// Type 13: RTP screen sharing, RTP at offset 27.
    ScreenShare,
    /// Type 15: RTP audio, RTP at offset 19.
    Audio,
    /// Type 16: RTP video, RTP at offset 24.
    Video,
    /// Type 33: RTCP sender report, RTCP at offset 16.
    RtcpSr,
    /// Type 34: RTCP sender report + source description, RTCP at offset 16.
    RtcpSrSdes,
    /// Any other type value — the ~10 % of packets the paper classifies as
    /// "other control information, e.g., congestion control".
    Other(u8),
}

impl MediaType {
    /// Decode from the first media-encapsulation byte.
    pub fn from_byte(b: u8) -> MediaType {
        match b {
            13 => MediaType::ScreenShare,
            15 => MediaType::Audio,
            16 => MediaType::Video,
            33 => MediaType::RtcpSr,
            34 => MediaType::RtcpSrSdes,
            other => MediaType::Other(other),
        }
    }

    /// Encode to the first media-encapsulation byte.
    pub fn to_byte(self) -> u8 {
        match self {
            MediaType::ScreenShare => 13,
            MediaType::Audio => 15,
            MediaType::Video => 16,
            MediaType::RtcpSr => 33,
            MediaType::RtcpSrSdes => 34,
            MediaType::Other(other) => other,
        }
    }

    /// Offset (from the start of the media encapsulation) where the inner
    /// RTP/RTCP header begins — Table 2 of the paper. `None` for types we
    /// do not decode.
    pub fn payload_offset(self) -> Option<usize> {
        match self {
            MediaType::ScreenShare => Some(27),
            MediaType::Audio => Some(19),
            MediaType::Video => Some(24),
            MediaType::RtcpSr | MediaType::RtcpSrSdes => Some(16),
            MediaType::Other(_) => None,
        }
    }

    /// True for the three RTP media kinds.
    pub fn is_rtp_media(self) -> bool {
        matches!(
            self,
            MediaType::ScreenShare | MediaType::Audio | MediaType::Video
        )
    }

    /// True for the RTCP kinds.
    pub fn is_rtcp(self) -> bool {
        matches!(self, MediaType::RtcpSr | MediaType::RtcpSrSdes)
    }

    /// Human-readable label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            MediaType::ScreenShare => "RTP: Screen Share",
            MediaType::Audio => "RTP: Audio",
            MediaType::Video => "RTP: Video",
            MediaType::RtcpSr => "RTCP: SR",
            MediaType::RtcpSrSdes => "RTCP: SR + SDES",
            MediaType::Other(_) => "Other",
        }
    }
}

/// RTP payload-type semantics within each Zoom media stream (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RtpPayloadKind {
    /// Video PT 98 — the main video stream.
    VideoMain,
    /// Video PT 110 — forward error correction.
    VideoFec,
    /// Audio PT 112 — participant actively speaking.
    AudioSpeaking,
    /// Audio PT 99 — silence / background noise (fixed 40-byte payload).
    AudioSilent,
    /// Audio PT 113 — mode unknown (observed from the mobile app).
    AudioUnknownMode,
    /// Audio PT 110 — forward error correction.
    AudioFec,
    /// Screen share PT 99 — the main screen-share stream.
    ScreenShareMain,
    /// Any other (media type, payload type) combination (< 0.02 % of the
    /// paper's trace).
    Other,
}

impl RtpPayloadKind {
    /// Classify from the Zoom media type and the inner RTP payload type.
    pub fn classify(media: MediaType, pt: u8) -> RtpPayloadKind {
        match (media, pt) {
            (MediaType::Video, 98) => RtpPayloadKind::VideoMain,
            (MediaType::Video, 110) => RtpPayloadKind::VideoFec,
            (MediaType::Audio, 112) => RtpPayloadKind::AudioSpeaking,
            (MediaType::Audio, 99) => RtpPayloadKind::AudioSilent,
            (MediaType::Audio, 113) => RtpPayloadKind::AudioUnknownMode,
            (MediaType::Audio, 110) => RtpPayloadKind::AudioFec,
            (MediaType::ScreenShare, 99) => RtpPayloadKind::ScreenShareMain,
            _ => RtpPayloadKind::Other,
        }
    }

    /// True for FEC sub-streams.
    pub fn is_fec(self) -> bool {
        matches!(self, RtpPayloadKind::VideoFec | RtpPayloadKind::AudioFec)
    }

    /// Description matching Table 3.
    pub fn description(self) -> &'static str {
        match self {
            RtpPayloadKind::VideoMain => "main stream",
            RtpPayloadKind::VideoFec => "FEC",
            RtpPayloadKind::AudioSpeaking => "speaking mode",
            RtpPayloadKind::AudioSilent => "silent mode",
            RtpPayloadKind::AudioUnknownMode => "mode unknown",
            RtpPayloadKind::AudioFec => "FEC",
            RtpPayloadKind::ScreenShareMain => "main stream",
            RtpPayloadKind::Other => "other",
        }
    }
}

/// The fixed RTP payload size of Zoom's silent-audio packets (type 99,
/// 40 bytes of RTP payload — §4.2.3 of the paper).
pub const SILENT_AUDIO_PAYLOAD_LEN: usize = 40;

/// Zero-copy view of the Zoom SFU encapsulation.
#[derive(Debug, Clone)]
pub struct SfuEncap<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> SfuEncap<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        SfuEncap { buffer }
    }

    /// Wrap, validating the length.
    pub fn new_checked(buffer: T) -> Result<Self> {
        if buffer.as_ref().len() < SFU_ENCAP_LEN {
            return Err(Error::Truncated);
        }
        Ok(SfuEncap { buffer })
    }

    /// Type byte (0x05 ⇒ media encapsulation follows).
    pub fn encap_type(&self) -> u8 {
        self.buffer.as_ref()[0]
    }

    /// 16-bit sequence number.
    pub fn sequence(&self) -> u16 {
        be16(self.buffer.as_ref(), 1)
    }

    /// Direction byte: [`DIR_TO_SFU`] or [`DIR_FROM_SFU`].
    pub fn direction(&self) -> u8 {
        self.buffer.as_ref()[7]
    }

    /// True if this header announces a media encapsulation.
    pub fn is_media(&self) -> bool {
        self.encap_type() == SFU_TYPE_MEDIA
    }

    /// Bytes following the SFU encapsulation.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[SFU_ENCAP_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> SfuEncap<T> {
    /// Set the type byte.
    pub fn set_encap_type(&mut self, v: u8) {
        self.buffer.as_mut()[0] = v;
    }

    /// Set the sequence number.
    pub fn set_sequence(&mut self, v: u16) {
        set_be16(self.buffer.as_mut(), 1, v);
    }

    /// Set the direction byte.
    pub fn set_direction(&mut self, v: u8) {
        self.buffer.as_mut()[7] = v;
    }

    /// Zero the reserved bytes 3–6.
    pub fn clear_reserved(&mut self) {
        for b in &mut self.buffer.as_mut()[3..7] {
            *b = 0;
        }
    }
}

/// High-level SFU encapsulation representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SfuEncapRepr {
    /// Encapsulation type byte (e.g. [`SFU_TYPE_MEDIA`]).
    pub encap_type: u8,
    /// Outer SFU sequence number.
    pub sequence: u16,
    /// Direction byte: [`DIR_TO_SFU`] or [`DIR_FROM_SFU`].
    pub direction: u8,
}

impl SfuEncapRepr {
    /// Parse from a checked view.
    pub fn parse<T: AsRef<[u8]>>(p: &SfuEncap<T>) -> SfuEncapRepr {
        SfuEncapRepr {
            encap_type: p.encap_type(),
            sequence: p.sequence(),
            direction: p.direction(),
        }
    }

    /// Emitted length.
    pub fn header_len(&self) -> usize {
        SFU_ENCAP_LEN
    }

    /// Emit into a view.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, p: &mut SfuEncap<T>) {
        p.set_encap_type(self.encap_type);
        p.set_sequence(self.sequence);
        p.clear_reserved();
        p.set_direction(self.direction);
    }
}

/// Zero-copy view of the Zoom media encapsulation.
#[derive(Debug, Clone)]
pub struct MediaEncap<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> MediaEncap<T> {
    /// Wrap without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        MediaEncap { buffer }
    }

    /// Wrap, validating that the buffer covers the type-specific header.
    /// Unknown types only require the type byte itself.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let p = MediaEncap { buffer };
        p.check_len()?;
        Ok(p)
    }

    /// Validate structural invariants.
    pub fn check_len(&self) -> Result<()> {
        let data = self.buffer.as_ref();
        if data.is_empty() {
            return Err(Error::Truncated);
        }
        if let Some(off) = self.media_type().payload_offset() {
            if data.len() < off {
                return Err(Error::Truncated);
            }
        }
        Ok(())
    }

    /// Media type from the first byte.
    pub fn media_type(&self) -> MediaType {
        MediaType::from_byte(self.buffer.as_ref()[0])
    }

    /// Media-level sequence number (bytes 9–10, Table 1).
    pub fn sequence(&self) -> Option<u16> {
        let data = self.buffer.as_ref();
        if data.len() >= 11 {
            Some(be16(data, 9))
        } else {
            None
        }
    }

    /// Media-level timestamp (bytes 11–14, Table 1).
    pub fn timestamp(&self) -> Option<u32> {
        let data = self.buffer.as_ref();
        if data.len() >= 15 {
            Some(be32(data, 11))
        } else {
            None
        }
    }

    /// Frame sequence number — video packets only (bytes 21–22, Table 1).
    pub fn frame_sequence(&self) -> Option<u16> {
        if self.media_type() != MediaType::Video {
            return None;
        }
        let data = self.buffer.as_ref();
        if data.len() >= 23 {
            Some(be16(data, 21))
        } else {
            None
        }
    }

    /// Number of packets making up the current frame — video packets only
    /// (byte 23, Table 1). This is the field "Method 1" frame-rate
    /// estimation keys on (§5.2).
    pub fn packets_in_frame(&self) -> Option<u8> {
        if self.media_type() != MediaType::Video {
            return None;
        }
        let data = self.buffer.as_ref();
        if data.len() >= 24 {
            Some(data[23])
        } else {
            None
        }
    }

    /// The encapsulated RTP/RTCP bytes, when the type is one we decode.
    pub fn payload(&self) -> Option<&[u8]> {
        let off = self.media_type().payload_offset()?;
        Some(&self.buffer.as_ref()[off..])
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> MediaEncap<T> {
    /// Set the type byte.
    pub fn set_media_type(&mut self, v: MediaType) {
        self.buffer.as_mut()[0] = v.to_byte();
    }

    /// Set the media-level sequence number.
    pub fn set_sequence(&mut self, v: u16) {
        set_be16(self.buffer.as_mut(), 9, v);
    }

    /// Set the media-level timestamp.
    pub fn set_timestamp(&mut self, v: u32) {
        set_be32(self.buffer.as_mut(), 11, v);
    }

    /// Set the video frame sequence number.
    pub fn set_frame_sequence(&mut self, v: u16) {
        set_be16(self.buffer.as_mut(), 21, v);
    }

    /// Set the video packets-in-frame count.
    pub fn set_packets_in_frame(&mut self, v: u8) {
        self.buffer.as_mut()[23] = v;
    }
}

/// High-level media encapsulation representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MediaEncapRepr {
    /// Media encapsulation type.
    pub media_type: MediaType,
    /// Media-layer sequence number.
    pub sequence: u16,
    /// Media-layer timestamp.
    pub timestamp: u32,
    /// Video only.
    pub frame_sequence: Option<u16>,
    /// Video only.
    pub packets_in_frame: Option<u8>,
}

impl MediaEncapRepr {
    /// Parse from a checked view; fields outside the type's header length
    /// come back as `None`/zero.
    pub fn parse<T: AsRef<[u8]>>(p: &MediaEncap<T>) -> Result<MediaEncapRepr> {
        p.check_len()?;
        Ok(MediaEncapRepr {
            media_type: p.media_type(),
            sequence: p.sequence().unwrap_or(0),
            timestamp: p.timestamp().unwrap_or(0),
            frame_sequence: p.frame_sequence(),
            packets_in_frame: p.packets_in_frame(),
        })
    }

    /// Header length implied by the media type; unknown types get a minimal
    /// 16-byte header when emitted.
    pub fn header_len(&self) -> usize {
        self.media_type.payload_offset().unwrap_or(16)
    }

    /// Emit the header (reserved bytes zeroed) into `buf`, which must be at
    /// least [`Self::header_len`] long. Returns the header length.
    pub fn emit(&self, buf: &mut [u8]) -> usize {
        let len = self.header_len();
        for b in &mut buf[..len] {
            *b = 0;
        }
        buf[0] = self.media_type.to_byte();
        if len >= 15 {
            set_be16(buf, 9, self.sequence);
            set_be32(buf, 11, self.timestamp);
        }
        if self.media_type == MediaType::Video {
            set_be16(buf, 21, self.frame_sequence.unwrap_or(0));
            buf[23] = self.packets_in_frame.unwrap_or(0);
        }
        len
    }
}

/// A fully parsed Zoom UDP payload: optional SFU encapsulation, media
/// encapsulation, and the decoded inner RTP header or RTCP items.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoomPacket {
    /// Present on server-based traffic, absent on P2P.
    pub sfu: Option<SfuEncapRepr>,
    /// The media encapsulation header.
    pub media: MediaEncapRepr,
    /// Decoded RTP header for media types 13/15/16.
    pub rtp: Option<rtp::Repr>,
    /// Decoded RTCP items for types 33/34.
    pub rtcp: rtcp::ItemList,
    /// Length in bytes of the RTP payload (media bytes after the RTP
    /// header), or of the undecoded remainder for other types.
    pub media_payload_len: usize,
}

impl ZoomPacket {
    /// Convenience: the payload kind per Table 3 (media + RTP PT).
    pub fn payload_kind(&self) -> Option<RtpPayloadKind> {
        self.rtp
            .as_ref()
            .map(|r| RtpPayloadKind::classify(self.media.media_type, r.payload_type))
    }
}

/// How a UDP payload should be interpreted before parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// Server-based traffic: SFU encapsulation first (UDP port 8801).
    Server,
    /// P2P traffic: media encapsulation first.
    P2p,
}

/// Parse a complete Zoom UDP payload.
///
/// For [`Framing::Server`], the payload must begin with an SFU
/// encapsulation of type 0x05; other SFU types yield a packet with
/// `media.media_type == MediaType::Other` and no decoded payload.
pub fn parse(payload: &[u8], framing: Framing) -> Result<ZoomPacket> {
    let (sfu, media_bytes) = match framing {
        Framing::Server => {
            let sfu = SfuEncap::new_checked(payload)?;
            let repr = SfuEncapRepr::parse(&sfu);
            if !sfu.is_media() {
                // Not a media encapsulation — report as opaque.
                return Ok(ZoomPacket {
                    sfu: Some(repr),
                    media: MediaEncapRepr {
                        media_type: MediaType::Other(0),
                        sequence: 0,
                        timestamp: 0,
                        frame_sequence: None,
                        packets_in_frame: None,
                    },
                    rtp: None,
                    rtcp: rtcp::ItemList::new(),
                    media_payload_len: payload.len() - SFU_ENCAP_LEN,
                });
            }
            (Some(repr), &payload[SFU_ENCAP_LEN..])
        }
        Framing::P2p => (None, payload),
    };

    let encap = MediaEncap::new_checked(media_bytes)?;
    let media = MediaEncapRepr::parse(&encap)?;
    let mut rtp_repr = None;
    let mut rtcp_items = rtcp::ItemList::new();
    let mut media_payload_len = 0;

    match media.media_type {
        t if t.is_rtp_media() => {
            let inner = encap.payload().expect("rtp media always has an offset");
            let rtp_pkt = rtp::Packet::new_checked(inner)?;
            media_payload_len = rtp_pkt.payload().len();
            rtp_repr = Some(rtp::Repr::parse(&rtp_pkt)?);
        }
        t if t.is_rtcp() => {
            let inner = encap.payload().expect("rtcp always has an offset");
            rtcp_items = rtcp::parse_compound(inner)?;
        }
        _ => {
            media_payload_len = media_bytes.len().saturating_sub(1);
        }
    }

    Ok(ZoomPacket {
        sfu,
        media,
        rtp: rtp_repr,
        rtcp: rtcp_items,
        media_payload_len,
    })
}

/// Try both framings: Zoom server traffic is identified by port 8801, but
/// when the port is unknown (e.g. scanning a flow for Zoom-ness) this
/// attempts server framing first, then P2P.
pub fn parse_auto(payload: &[u8]) -> Result<(Framing, ZoomPacket)> {
    if let Ok(p) = parse(payload, Framing::Server) {
        if p.rtp.is_some() || !p.rtcp.is_empty() {
            return Ok((Framing::Server, p));
        }
    }
    if let Ok(p) = parse(payload, Framing::P2p) {
        if p.rtp.is_some() || !p.rtcp.is_empty() {
            return Ok((Framing::P2p, p));
        }
    }
    // Fall back to whatever structurally parses, preferring server framing.
    parse(payload, Framing::Server)
        .map(|p| (Framing::Server, p))
        .or_else(|_| parse(payload, Framing::P2p).map(|p| (Framing::P2p, p)))
}

/// Builder that composes a complete Zoom UDP payload: optional SFU encap +
/// media encap + RTP header + payload bytes.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Optional SFU encapsulation (server framing when present).
    pub sfu: Option<SfuEncapRepr>,
    /// Media encapsulation header.
    pub media: MediaEncapRepr,
    /// Optional inner RTP header.
    pub rtp: Option<rtp::Repr>,
    /// RTP payload bytes (media data, typically "encrypted" noise from the
    /// simulator), or raw bytes for non-RTP types.
    pub payload: Vec<u8>,
}

impl Builder {
    /// Total length of the composed UDP payload.
    pub fn buffer_len(&self) -> usize {
        let mut len = 0;
        if self.sfu.is_some() {
            len += SFU_ENCAP_LEN;
        }
        len += self.media.header_len();
        if let Some(rtp) = &self.rtp {
            len += rtp.header_len();
        }
        len + self.payload.len()
    }

    /// Compose into a freshly allocated buffer.
    pub fn build(&self) -> Vec<u8> {
        let mut buf = vec![0u8; self.buffer_len()];
        let mut off = 0;
        if let Some(sfu) = &self.sfu {
            sfu.emit(&mut SfuEncap::new_unchecked(
                &mut buf[off..off + SFU_ENCAP_LEN],
            ));
            off += SFU_ENCAP_LEN;
        }
        off += self.media.emit(&mut buf[off..]);
        if let Some(rtp) = &self.rtp {
            let hl = rtp.header_len();
            rtp.emit(&mut rtp::Packet::new_unchecked(&mut buf[off..off + hl]));
            off += hl;
        }
        buf[off..].copy_from_slice(&self.payload);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn video_builder() -> Builder {
        Builder {
            sfu: Some(SfuEncapRepr {
                encap_type: SFU_TYPE_MEDIA,
                sequence: 77,
                direction: DIR_FROM_SFU,
            }),
            media: MediaEncapRepr {
                media_type: MediaType::Video,
                sequence: 500,
                timestamp: 1_000_000,
                frame_sequence: Some(42),
                packets_in_frame: Some(3),
            },
            rtp: Some(rtp::Repr {
                marker: true,
                payload_type: 98,
                sequence_number: 1234,
                timestamp: 900_000,
                ssrc: 0x21,
                csrc_count: 0,
                has_extension: true,
            }),
            payload: vec![0xAB; 100],
        }
    }

    #[test]
    fn video_roundtrip_server() {
        let buf = video_builder().build();
        let pkt = parse(&buf, Framing::Server).unwrap();
        let sfu = pkt.sfu.unwrap();
        assert_eq!(sfu.sequence, 77);
        assert_eq!(sfu.direction, DIR_FROM_SFU);
        assert_eq!(pkt.media.media_type, MediaType::Video);
        assert_eq!(pkt.media.frame_sequence, Some(42));
        assert_eq!(pkt.media.packets_in_frame, Some(3));
        let rtp = pkt.rtp.unwrap();
        assert_eq!(rtp.sequence_number, 1234);
        assert_eq!(rtp.ssrc, 0x21);
        assert!(rtp.marker);
        assert_eq!(pkt.media_payload_len, 100);
        assert_eq!(pkt.payload_kind(), Some(RtpPayloadKind::VideoMain));
    }

    #[test]
    fn audio_roundtrip_p2p() {
        let b = Builder {
            sfu: None,
            media: MediaEncapRepr {
                media_type: MediaType::Audio,
                sequence: 1,
                timestamp: 2,
                frame_sequence: None,
                packets_in_frame: None,
            },
            rtp: Some(rtp::Repr {
                marker: false,
                payload_type: 99,
                sequence_number: 9,
                timestamp: 160,
                ssrc: 0x31,
                csrc_count: 0,
                has_extension: false,
            }),
            payload: vec![0u8; SILENT_AUDIO_PAYLOAD_LEN],
        };
        let buf = b.build();
        let pkt = parse(&buf, Framing::P2p).unwrap();
        assert!(pkt.sfu.is_none());
        assert_eq!(pkt.media.media_type, MediaType::Audio);
        assert_eq!(pkt.payload_kind(), Some(RtpPayloadKind::AudioSilent));
        assert_eq!(pkt.media_payload_len, SILENT_AUDIO_PAYLOAD_LEN);
    }

    #[test]
    fn rtcp_roundtrip() {
        let sr = rtcp::SenderReportRepr {
            ssrc: 0x21,
            info: rtcp::SenderInfo {
                ntp_timestamp: 1,
                rtp_timestamp: 2,
                packet_count: 3,
                octet_count: 4,
            },
            with_sdes: true,
        };
        let mut sr_buf = vec![0u8; sr.buffer_len()];
        sr.emit(&mut sr_buf);
        let b = Builder {
            sfu: Some(SfuEncapRepr {
                encap_type: SFU_TYPE_MEDIA,
                sequence: 5,
                direction: DIR_TO_SFU,
            }),
            media: MediaEncapRepr {
                media_type: MediaType::RtcpSrSdes,
                sequence: 11,
                timestamp: 12,
                frame_sequence: None,
                packets_in_frame: None,
            },
            rtp: None,
            payload: sr_buf,
        };
        let buf = b.build();
        let pkt = parse(&buf, Framing::Server).unwrap();
        assert_eq!(pkt.media.media_type, MediaType::RtcpSrSdes);
        assert_eq!(pkt.rtcp.len(), 2);
    }

    #[test]
    fn frame_fields_absent_on_audio() {
        let buf = Builder {
            sfu: None,
            media: MediaEncapRepr {
                media_type: MediaType::Audio,
                sequence: 0,
                timestamp: 0,
                frame_sequence: None,
                packets_in_frame: None,
            },
            rtp: Some(rtp::Repr {
                marker: false,
                payload_type: 112,
                sequence_number: 0,
                timestamp: 0,
                ssrc: 1,
                csrc_count: 0,
                has_extension: false,
            }),
            payload: vec![1, 2, 3],
        }
        .build();
        let encap = MediaEncap::new_checked(&buf[..]).unwrap();
        assert_eq!(encap.frame_sequence(), None);
        assert_eq!(encap.packets_in_frame(), None);
    }

    #[test]
    fn non_media_sfu_type_is_opaque() {
        let mut buf = video_builder().build();
        buf[0] = 0x07; // unknown SFU type
        let pkt = parse(&buf, Framing::Server).unwrap();
        assert!(pkt.rtp.is_none());
        assert_eq!(pkt.media.media_type, MediaType::Other(0));
    }

    #[test]
    fn parse_auto_detects_framing() {
        let server = video_builder().build();
        let (framing, _) = parse_auto(&server).unwrap();
        assert_eq!(framing, Framing::Server);

        let mut b = video_builder();
        b.sfu = None;
        let p2p = b.build();
        let (framing, pkt) = parse_auto(&p2p).unwrap();
        assert_eq!(framing, Framing::P2p);
        assert_eq!(pkt.rtp.unwrap().ssrc, 0x21);
    }

    #[test]
    fn truncated_media_encap() {
        let buf = video_builder().build();
        // Keep SFU encap (8) + 10 bytes of a 24-byte video encap.
        assert_eq!(
            parse(&buf[..18], Framing::Server).unwrap_err(),
            Error::Truncated
        );
    }

    #[test]
    fn media_type_table2_offsets() {
        assert_eq!(MediaType::ScreenShare.payload_offset(), Some(27));
        assert_eq!(MediaType::Audio.payload_offset(), Some(19));
        assert_eq!(MediaType::Video.payload_offset(), Some(24));
        assert_eq!(MediaType::RtcpSr.payload_offset(), Some(16));
        assert_eq!(MediaType::RtcpSrSdes.payload_offset(), Some(16));
        assert_eq!(MediaType::Other(30).payload_offset(), None);
    }

    #[test]
    fn payload_kind_table3() {
        use RtpPayloadKind::*;
        assert_eq!(RtpPayloadKind::classify(MediaType::Video, 98), VideoMain);
        assert_eq!(RtpPayloadKind::classify(MediaType::Video, 110), VideoFec);
        assert_eq!(
            RtpPayloadKind::classify(MediaType::Audio, 112),
            AudioSpeaking
        );
        assert_eq!(RtpPayloadKind::classify(MediaType::Audio, 99), AudioSilent);
        assert_eq!(
            RtpPayloadKind::classify(MediaType::Audio, 113),
            AudioUnknownMode
        );
        assert_eq!(RtpPayloadKind::classify(MediaType::Audio, 110), AudioFec);
        assert_eq!(
            RtpPayloadKind::classify(MediaType::ScreenShare, 99),
            ScreenShareMain
        );
        assert_eq!(RtpPayloadKind::classify(MediaType::ScreenShare, 98), Other);
    }

    #[test]
    fn media_type_byte_roundtrip() {
        for b in 0u8..=255 {
            assert_eq!(MediaType::from_byte(b).to_byte(), b);
        }
    }
}
