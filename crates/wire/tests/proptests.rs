//! Property-based tests for the wire formats: every emitter/parser pair
//! must round-trip for arbitrary field values, and no parser may panic on
//! arbitrary bytes.

use proptest::prelude::*;
use std::net::Ipv4Addr;
use zoom_wire::dissect::{dissect, P2pProbe};
use zoom_wire::pcap::LinkType;
use zoom_wire::{compose, ethernet, ipv4, rtcp, rtp, stun, tcp, udp, webrtc, zoom};

proptest! {
    #[test]
    fn rtp_repr_roundtrips(
        marker: bool,
        pt in 0u8..128,
        seq: u16,
        ts: u32,
        ssrc: u32,
        csrc in 0u8..16,
        ext: bool,
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let repr = rtp::Repr {
            marker,
            payload_type: pt,
            sequence_number: seq,
            timestamp: ts,
            ssrc,
            csrc_count: csrc,
            has_extension: ext,
        };
        let mut buf = vec![0u8; repr.header_len() + payload.len()];
        repr.emit(&mut rtp::Packet::new_unchecked(&mut buf[..]));
        buf[repr.header_len()..].copy_from_slice(&payload);
        let pkt = rtp::Packet::new_checked(&buf[..]).unwrap();
        prop_assert_eq!(rtp::Repr::parse(&pkt).unwrap(), repr);
        prop_assert_eq!(pkt.payload(), &payload[..]);
    }

    #[test]
    fn rtp_parser_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = rtp::Packet::new_checked(&data[..]).map(|p| {
            let _ = p.payload();
            let _ = p.payload_offset();
            p.csrcs()
        });
    }

    #[test]
    fn zoom_builder_roundtrips(
        sfu_seq: u16,
        direction in prop_oneof![Just(zoom::DIR_TO_SFU), Just(zoom::DIR_FROM_SFU)],
        media_byte in prop_oneof![Just(13u8), Just(15), Just(16)],
        mseq: u16,
        mts: u32,
        frame_seq: u16,
        pkts in 1u8..32,
        rtp_seq: u16,
        rtp_ts: u32,
        ssrc: u32,
        payload in proptest::collection::vec(any::<u8>(), 1..200),
    ) {
        let media_type = zoom::MediaType::from_byte(media_byte);
        let is_video = media_type == zoom::MediaType::Video;
        let b = zoom::Builder {
            sfu: Some(zoom::SfuEncapRepr {
                encap_type: zoom::SFU_TYPE_MEDIA,
                sequence: sfu_seq,
                direction,
            }),
            media: zoom::MediaEncapRepr {
                media_type,
                sequence: mseq,
                timestamp: mts,
                frame_sequence: is_video.then_some(frame_seq),
                packets_in_frame: is_video.then_some(pkts),
            },
            rtp: Some(rtp::Repr {
                marker: false,
                payload_type: 98,
                sequence_number: rtp_seq,
                timestamp: rtp_ts,
                ssrc,
                csrc_count: 0,
                has_extension: false,
            }),
            payload: payload.clone(),
        };
        let bytes = b.build();
        let parsed = zoom::parse(&bytes, zoom::Framing::Server).unwrap();
        let sfu = parsed.sfu.unwrap();
        prop_assert_eq!(sfu.sequence, sfu_seq);
        prop_assert_eq!(sfu.direction, direction);
        prop_assert_eq!(parsed.media.media_type, media_type);
        prop_assert_eq!(parsed.media.sequence, mseq);
        prop_assert_eq!(parsed.media.timestamp, mts);
        if is_video {
            prop_assert_eq!(parsed.media.frame_sequence, Some(frame_seq));
            prop_assert_eq!(parsed.media.packets_in_frame, Some(pkts));
        }
        let r = parsed.rtp.unwrap();
        prop_assert_eq!(r.sequence_number, rtp_seq);
        prop_assert_eq!(r.ssrc, ssrc);
        prop_assert_eq!(parsed.media_payload_len, payload.len());
    }

    #[test]
    fn zoom_parser_never_panics(
        data in proptest::collection::vec(any::<u8>(), 0..256),
        framing in prop_oneof![Just(zoom::Framing::Server), Just(zoom::Framing::P2p)],
    ) {
        let _ = zoom::parse(&data, framing);
        let _ = zoom::parse_auto(&data);
    }

    #[test]
    fn stun_repr_roundtrips(tid: [u8; 12], ip: u32, port: u16) {
        let addr = std::net::SocketAddr::new(
            std::net::IpAddr::V4(Ipv4Addr::from(ip)),
            port,
        );
        let repr = stun::Repr {
            message_type: stun::MessageType::BindingSuccess,
            transaction_id: tid,
            xor_mapped_address: Some(addr),
        };
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut buf);
        let parsed = stun::Repr::parse(&stun::Packet::new_checked(&buf[..]).unwrap()).unwrap();
        prop_assert_eq!(parsed, repr);
    }

    #[test]
    fn stun_parser_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        if let Ok(p) = stun::Packet::new_checked(&data[..]) {
            let _ = p.xor_mapped_address();
            let _: Vec<_> = p.attributes().collect();
        }
    }

    #[test]
    fn rtcp_parser_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = rtcp::parse_compound(&data);
    }

    #[test]
    fn rtcp_sr_roundtrips(ssrc: u32, ntp: u64, rts: u32, pk: u32, oc: u32, sdes: bool) {
        let sr = rtcp::SenderReportRepr {
            ssrc,
            info: rtcp::SenderInfo {
                ntp_timestamp: ntp,
                rtp_timestamp: rts,
                packet_count: pk,
                octet_count: oc,
            },
            with_sdes: sdes,
        };
        let mut buf = vec![0u8; sr.buffer_len()];
        sr.emit(&mut buf);
        let items = rtcp::parse_compound(&buf).unwrap();
        match &items[0] {
            rtcp::Item::SenderReport { ssrc: s, info, .. } => {
                prop_assert_eq!(*s, ssrc);
                prop_assert_eq!(info.ntp_timestamp, ntp);
                prop_assert_eq!(info.packet_count, pk);
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
        prop_assert_eq!(items.len(), if sdes { 2 } else { 1 });
    }

    #[test]
    fn composed_packets_always_dissect(
        src: u32,
        dst: u32,
        sport: u16,
        dport: u16,
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let data = compose::udp_ipv4_ethernet(
            Ipv4Addr::from(src),
            Ipv4Addr::from(dst),
            sport,
            dport,
            &payload,
        );
        // Every composed packet parses layer by layer with verified
        // checksums.
        let eth = ethernet::Packet::new_checked(&data[..]).unwrap();
        let ip = ipv4::Packet::new_checked(eth.payload()).unwrap();
        prop_assert!(ip.verify_checksum());
        let u = udp::Packet::new_checked(ip.payload()).unwrap();
        prop_assert!(u.verify_checksum_v4(Ipv4Addr::from(src), Ipv4Addr::from(dst)));
        prop_assert_eq!(u.payload(), &payload[..]);
        let d = dissect(0, &data, LinkType::Ethernet, P2pProbe::Off).unwrap();
        prop_assert_eq!(d.five_tuple.src_port, sport);
        prop_assert_eq!(d.payload, &payload[..]);
    }

    #[test]
    fn dissect_never_panics_on_arbitrary_bytes(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        link in prop_oneof![Just(LinkType::Ethernet), Just(LinkType::RawIp)],
    ) {
        let _ = dissect(0, &data, link, P2pProbe::Auto);
    }

    #[test]
    fn tcp_repr_roundtrips(
        sport: u16,
        dport: u16,
        seq: u32,
        ack: u32,
        flags_byte in 0u8..64,
        window: u16,
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let repr = tcp::Repr {
            src_port: sport,
            dst_port: dport,
            seq_number: seq,
            ack_number: ack,
            flags: tcp::Flags::from_byte(flags_byte),
            window,
            payload_len: payload.len(),
        };
        let mut buf = vec![0u8; repr.total_len()];
        repr.emit(&mut tcp::Packet::new_unchecked(&mut buf[..]));
        buf[tcp::HEADER_LEN..].copy_from_slice(&payload);
        let parsed = tcp::Repr::parse(&tcp::Packet::new_checked(&buf[..]).unwrap()).unwrap();
        prop_assert_eq!(parsed, repr);
    }

    #[test]
    fn pcap_roundtrips_arbitrary_records(
        records in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..256)),
            0..20,
        )
    ) {
        use zoom_wire::pcap::{Reader, Record, Writer};
        let records: Vec<Record> = records
            .into_iter()
            // Keep timestamps in the representable range (u32 seconds).
            .map(|(t, d)| Record::full(t % (u64::from(u32::MAX) * 1_000_000_000), d))
            .collect();
        let mut buf = Vec::new();
        {
            let mut w = Writer::new(&mut buf, LinkType::Ethernet).unwrap();
            for r in &records {
                w.write_record(r).unwrap();
            }
            w.finish().unwrap();
        }
        let got: Vec<Record> = Reader::new(&buf[..])
            .unwrap()
            .records()
            .map(|r| r.unwrap())
            .collect();
        prop_assert_eq!(got, records);
    }

    #[test]
    fn fragment_frames_roundtrip_arbitrary_records(
        label_seed in proptest::collection::vec(any::<u8>(), 0..40),
        chunks in proptest::collection::vec(
            proptest::collection::vec(
                (any::<u64>(), any::<u32>(), proptest::collection::vec(any::<u8>(), 0..256)),
                1..20,
            ),
            0..6,
        ),
        totals in any::<[u64; 5]>(),
    ) {
        use zoom_wire::frame::{FrameEvent, FrameReader, FrameWriter, Totals};
        use zoom_wire::handoff::RecordBatch;

        // Arbitrary worker label over the charset the CLI accepts.
        const CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789:._-";
        let label: String = label_seed
            .iter()
            .map(|b| CHARSET[*b as usize % CHARSET.len()] as char)
            .collect();
        let totals = Totals {
            packets: totals[0],
            bytes: totals[1],
            batches: totals[2],
            ring_full_drops: totals[3],
            truncated: totals[4],
        };
        let mut w = FrameWriter::new(Vec::new(), &label, LinkType::RawIp).unwrap();
        let mut batch = RecordBatch::new();
        for chunk in &chunks {
            batch.clear();
            for (ts, orig, data) in chunk {
                batch.push(*ts, *orig, data);
            }
            w.write_batch(&batch).unwrap();
            w.write_accounting(totals).unwrap();
        }
        let stream = w.finish(totals).unwrap();

        let mut r = FrameReader::new(&stream[..]).unwrap();
        prop_assert_eq!(r.label(), &label[..]);
        prop_assert_eq!(r.link_type(), LinkType::RawIp);
        let mut got = RecordBatch::new();
        let mut bye = None;
        let mut accounting_frames = 0usize;
        while let Some(ev) = r.next(&mut got).unwrap() {
            match ev {
                FrameEvent::Records { .. } => {}
                FrameEvent::Accounting(t) => {
                    accounting_frames += 1;
                    prop_assert_eq!(t, totals);
                }
                FrameEvent::Bye(t) => {
                    prop_assert_eq!(t, totals);
                    bye = Some(t);
                }
                FrameEvent::Trace { .. } => {
                    prop_assert!(false, "untraced writer emitted a Trace frame");
                }
            }
        }
        prop_assert!(bye.is_some(), "stream must end with Bye");
        prop_assert!(r.saw_bye());
        prop_assert_eq!(accounting_frames, chunks.len());
        let expected: Vec<(u64, u32, Vec<u8>)> = chunks.concat();
        prop_assert_eq!(got.len(), expected.len());
        for (rec, (ts, orig, data)) in got.iter().zip(&expected) {
            prop_assert_eq!(rec.ts_nanos, *ts);
            prop_assert_eq!(rec.orig_len, *orig);
            prop_assert_eq!(rec.data, &data[..]);
        }
    }

    #[test]
    fn fragment_reader_rejects_corruption_without_panicking(
        records in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64)),
            1..10,
        ),
        flip_at: usize,
        flip_bits in 1u8..=255,
        cut_at: usize,
    ) {
        use zoom_wire::frame::{FrameReader, FrameWriter, Totals};
        use zoom_wire::handoff::RecordBatch;

        let mut w = FrameWriter::new(Vec::new(), "w", LinkType::Ethernet).unwrap();
        let mut batch = RecordBatch::new();
        for (ts, data) in &records {
            batch.push(*ts, data.len() as u32, data);
        }
        w.write_batch(&batch).unwrap();
        let stream = w.finish(Totals::default()).unwrap();

        // Drain a (possibly damaged) stream; must never panic and must
        // not report a clean Bye unless the bytes still form one.
        let drain = |bytes: &[u8]| -> Result<bool, zoom_wire::Error> {
            let mut r = FrameReader::new(bytes)?;
            let mut b = RecordBatch::new();
            while r.next(&mut b)?.is_some() {}
            Ok(r.saw_bye())
        };

        // Any truncation strictly inside the stream must surface an
        // error somewhere — header, frame, or the missing Bye.
        let cut = cut_at % stream.len().max(1);
        if cut < stream.len() {
            prop_assert!(
                matches!(drain(&stream[..cut]), Err(_) | Ok(false)),
                "truncated stream passed as complete"
            );
        }

        // A bit-flip anywhere must not panic; the reader either errors
        // out or the flip landed in a spot (timestamp, payload byte,
        // totals) that stays structurally valid.
        let mut flipped = stream.clone();
        let at = flip_at % flipped.len();
        flipped[at] ^= flip_bits;
        let _ = drain(&flipped);
    }
}

proptest! {
    /// DTLS record headers round-trip for arbitrary field values with a
    /// valid content type.
    #[test]
    fn dtls_repr_roundtrips(
        content_type in 20u8..=23,
        version_minor in prop_oneof![Just(0xffu8), Just(0xfdu8)],
        epoch: u16,
        sequence in 0u64..(1 << 48),
        length in 0u16..1024,
    ) {
        let repr = webrtc::DtlsRepr {
            content_type,
            version_minor,
            epoch,
            sequence,
            length,
        };
        // The parser checks that the record body fits the datagram, so
        // emit header + body, not just the 13-byte header.
        let mut buf = vec![0u8; repr.buffer_len()];
        repr.emit(&mut buf);
        let parsed = webrtc::DtlsRepr::parse(&buf).unwrap();
        prop_assert_eq!(parsed, repr);
    }

    /// The WebRTC family classifier returns errors, never panics, on
    /// arbitrary bytes — a malformed datagram on a known WebRTC flow
    /// must become a `malformed_srtp` drop, not a crash.
    #[test]
    fn webrtc_classify_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = webrtc::classify(&data);
        let _ = webrtc::DtlsRepr::parse(&data);
        let _ = webrtc::parse_srtp(&data);
        let _ = webrtc::parse_srtcp(&data);
    }

    /// An emitted SRTP-shaped packet (strict RTP header + payload + auth
    /// tag) always classifies as SRTP, and the parsed header matches.
    #[test]
    fn srtp_shaped_payloads_classify(
        pt in prop_oneof![0u8..72, 96u8..128],
        seq: u16,
        ts: u32,
        ssrc: u32,
        payload in proptest::collection::vec(any::<u8>(), 10..256),
    ) {
        let repr = rtp::Repr {
            marker: false,
            payload_type: pt,
            sequence_number: seq,
            timestamp: ts,
            ssrc,
            csrc_count: 0,
            has_extension: false,
        };
        let mut buf = vec![0u8; repr.header_len() + payload.len() + webrtc::SRTP_AUTH_TAG_LEN];
        let mut pkt = rtp::Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut pkt);
        buf[repr.header_len()..repr.header_len() + payload.len()].copy_from_slice(&payload);
        match webrtc::classify(&buf) {
            Ok(webrtc::Pdu::Srtp(s)) => {
                prop_assert_eq!(s.rtp.payload_type, pt);
                prop_assert_eq!(s.rtp.ssrc, ssrc);
                prop_assert_eq!(s.payload_len, payload.len());
            }
            other => prop_assert!(false, "expected SRTP, got {other:?}"),
        }
    }
}
