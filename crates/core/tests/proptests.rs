//! Property-based tests on the analysis layer's core invariants.

use proptest::prelude::*;
use zoom_analysis::entropy::{extract_series, FieldSeries};
use zoom_analysis::metrics::frame::FrameTracker;
use zoom_analysis::metrics::jitter::JitterEstimator;
use zoom_analysis::metrics::loss::SeqTracker;
use zoom_analysis::stats::{Samples, SparseBins};

proptest! {
    /// Sequence-tracker conservation: unique + duplicates == received, and
    /// unique ≤ received, for ANY input sequence.
    #[test]
    fn seq_tracker_conservation(seqs in proptest::collection::vec(any::<u16>(), 1..2_000)) {
        let mut t = SeqTracker::new();
        for &s in &seqs {
            t.on_sequence(s);
        }
        let st = t.finish();
        prop_assert_eq!(st.received, seqs.len() as u64);
        prop_assert_eq!(st.unique + st.duplicates, st.received);
        prop_assert!(st.reordered <= st.unique);
        prop_assert!(st.loss_fraction() >= 0.0 && st.loss_fraction() <= 1.0);
    }

    /// An in-order run with arbitrary start has no loss, dupes, reorders.
    #[test]
    fn seq_tracker_clean_run(start: u16, len in 1usize..5_000) {
        let mut t = SeqTracker::new();
        for i in 0..len {
            t.on_sequence(start.wrapping_add(i as u16));
        }
        let st = t.finish();
        prop_assert_eq!(st.unique, len as u64);
        prop_assert_eq!(st.duplicates, 0);
        prop_assert_eq!(st.missing, 0);
        prop_assert_eq!(st.reordered, 0);
    }

    /// Jitter is always non-negative and zero for perfectly paced input.
    #[test]
    fn jitter_nonnegative(
        deltas in proptest::collection::vec(0u64..200_000_000, 2..500),
        ticks in 1u32..10_000,
    ) {
        let mut j = JitterEstimator::video();
        let mut t = 0u64;
        let mut ts = 0u32;
        for d in deltas {
            j.on_frame(t, ts);
            t += d;
            ts = ts.wrapping_add(ticks);
        }
        prop_assert!(j.jitter_nanos() >= 0.0);
    }

    /// Perfectly paced: jitter stays ~0 regardless of rate.
    #[test]
    fn jitter_zero_when_paced(fps in 1u64..120, n in 10usize..300) {
        let mut j = JitterEstimator::video();
        let interval = 1_000_000_000 / fps;
        let ticks = (90_000 / fps) as u32;
        for i in 0..n as u64 {
            j.on_frame(i * interval, (i as u32).wrapping_mul(ticks));
        }
        // Rounding of ticks introduces sub-ms residue at odd rates.
        prop_assert!(j.jitter_ms() < 1.0, "jitter {}", j.jitter_ms());
    }

    /// Frame tracker: every completed frame has the announced packet
    /// count, and duplicates never inflate sizes.
    #[test]
    fn frame_tracker_counts(
        frames in proptest::collection::vec((1u8..8, 1usize..1_200), 1..50),
    ) {
        let mut t = FrameTracker::video();
        let mut seq = 0u16;
        let mut at = 0u64;
        for (i, &(pkts, payload)) in frames.iter().enumerate() {
            let ts = (i as u32 + 1) * 3_000;
            for k in 0..pkts {
                seq = seq.wrapping_add(1);
                at += 1_000_000;
                t.on_packet(at, ts, seq, k + 1 == pkts, payload, Some(pkts));
                // Duplicate delivery of the same packet:
                t.on_packet(at + 1, ts, seq, k + 1 == pkts, payload, Some(pkts));
            }
        }
        prop_assert_eq!(t.frames().len(), frames.len());
        for (f, &(pkts, payload)) in t.frames().iter().zip(&frames) {
            prop_assert_eq!(f.packets, u32::from(pkts));
            prop_assert_eq!(f.size_bytes, payload * pkts as usize);
        }
    }

    /// CDF invariants: monotone, ends at 1, quantiles ordered.
    #[test]
    fn samples_cdf_invariants(values in proptest::collection::vec(-1e9f64..1e9, 1..500)) {
        let mut s = Samples::new();
        for &v in &values {
            s.push(v);
        }
        let pts = s.cdf_points(50);
        prop_assert!(!pts.is_empty());
        for w in pts.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 < w[1].1);
        }
        prop_assert_eq!(pts.last().unwrap().1, 1.0);
        let q10 = s.quantile(0.1);
        let q50 = s.quantile(0.5);
        let q90 = s.quantile(0.9);
        prop_assert!(q10 <= q50 && q50 <= q90);
        prop_assert!(s.cdf_at(q90) >= 0.5);
    }

    /// Sparse bins conserve mass.
    #[test]
    fn sparse_bins_conserve(values in proptest::collection::vec((0u64..1_000_000_000_000, 0.0f64..1e6), 0..300)) {
        let mut b = SparseBins::per_second();
        let mut total = 0.0;
        for &(t, v) in &values {
            b.add(t, v);
            total += v;
        }
        let binned: f64 = b.sorted().iter().map(|(_, v)| v).sum();
        prop_assert!((binned - total).abs() < 1e-6 * total.max(1.0));
    }

    /// The entropy classifier never panics and yields a signature with all
    /// fields in range for arbitrary series.
    #[test]
    fn entropy_signature_in_range(
        values in proptest::collection::vec(any::<u8>(), 0..1_000),
        width in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let packets: Vec<(u64, Vec<u8>)> = values
            .chunks(8)
            .enumerate()
            .map(|(i, c)| (i as u64, c.to_vec()))
            .collect();
        let series: FieldSeries = extract_series(
            packets.iter().map(|(t, p)| (*t, p.as_slice())),
            0,
            width,
        );
        let sig = series.signature();
        prop_assert!((0.0..=1.0).contains(&sig.normalized_entropy));
        prop_assert!((0.0..=1.0).contains(&sig.distinct_ratio));
        prop_assert!((0.0..=1.0).contains(&sig.monotonic_fraction));
        prop_assert!((0.0..=1.0).contains(&sig.small_step_fraction));
        prop_assert!((0.0..=1.0).contains(&sig.top_value_fraction) || series.values.is_empty());
        let _ = series.classify();
    }
}
