//! Entropy-based header analysis — the reverse-engineering methodology of
//! §4.2 (Figs. 3–5) as a reusable toolkit.
//!
//! Given the payloads of one UDP flow, the analyzer extracts the value
//! sequence of every 8/16/32-bit block at every offset and classifies each
//! sequence by its statistical signature:
//!
//! * **Random** — near-maximal entropy over the full value space:
//!   encrypted payload;
//! * **Constant / Identifier** — one or a few horizontal lines: type
//!   fields, stream identifiers, flag masks;
//! * **Counter** — angled lines with small regular increments that wrap:
//!   sequence numbers;
//! * **TimestampLike** — monotonic with large, time-proportional
//!   increments: media timestamps.
//!
//! On top of the generic classifier sit two protocol-aware scanners that
//! replicate the paper's actual discovery steps: [`find_rtp_offsets`]
//! looks for the RTP signature (version bits, a 16-bit counter, a 32-bit
//! timestamp, a 32-bit identifier), and [`find_rtcp_by_ssrc`] locates RTCP
//! by searching remaining payloads for SSRC values learned from RTP.

use std::collections::HashMap;
use zoom_wire::rtp;

/// One extracted field-value sequence.
#[derive(Debug, Clone)]
pub struct FieldSeries {
    /// Byte offset within the payload.
    pub offset: usize,
    /// Field width in bytes (1, 2, or 4).
    pub width: usize,
    /// (capture time, value) pairs — the dots of Figs. 3–5.
    pub values: Vec<(u64, u64)>,
}

/// Statistical signature of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Signature {
    /// Shannon entropy normalized by the field width (1.0 = uniform).
    pub normalized_entropy: f64,
    /// Distinct values / total values.
    pub distinct_ratio: f64,
    /// Fraction of consecutive deltas that are non-decreasing (in the
    /// wrapped sense): 1.0 for counters and timestamps, ~0.5 for noise.
    pub monotonic_fraction: f64,
    /// Mean absolute wrapped delta between consecutive values.
    pub mean_abs_delta: f64,
    /// Fraction of consecutive deltas with |Δ| ≤ 64 — robustly high for
    /// counters even when several sub-stream counters overlap in one flow
    /// ("several lines with different slopes", §4.2.1).
    pub small_step_fraction: f64,
    /// Number of distinct values.
    pub distinct: usize,
    /// Share of the single most common value — near 1.0 for constants
    /// and identifiers even when a few alien packets pollute the series.
    pub top_value_fraction: f64,
}

/// Classification of a field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldClass {
    /// A single value.
    Constant,
    /// A small set of repeated values (type fields, identifiers, flags).
    Identifier,
    /// Monotonically increasing small steps, wrapping (sequence numbers).
    Counter,
    /// Monotonically increasing large steps (media timestamps).
    TimestampLike,
    /// High-entropy, near-uniform (encrypted data).
    Random,
    /// None of the above.
    Mixed,
}

/// Extract the series of `width`-byte big-endian values at `offset` from
/// each `(time, payload)`; payloads too short are skipped.
pub fn extract_series<'a>(
    packets: impl IntoIterator<Item = (u64, &'a [u8])>,
    offset: usize,
    width: usize,
) -> FieldSeries {
    assert!(matches!(width, 1 | 2 | 4), "supported widths: 1, 2, 4");
    let mut values = Vec::new();
    for (t, p) in packets {
        if p.len() >= offset + width {
            let v = match width {
                1 => u64::from(p[offset]),
                2 => u64::from(u16::from_be_bytes([p[offset], p[offset + 1]])),
                _ => u64::from(u32::from_be_bytes([
                    p[offset],
                    p[offset + 1],
                    p[offset + 2],
                    p[offset + 3],
                ])),
            };
            values.push((t, v));
        }
    }
    FieldSeries {
        offset,
        width,
        values,
    }
}

impl FieldSeries {
    /// Compute the statistical signature.
    pub fn signature(&self) -> Signature {
        let n = self.values.len();
        if n == 0 {
            return Signature {
                normalized_entropy: 0.0,
                distinct_ratio: 0.0,
                monotonic_fraction: 0.0,
                mean_abs_delta: 0.0,
                small_step_fraction: 0.0,
                distinct: 0,
                top_value_fraction: 0.0,
            };
        }
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for &(_, v) in &self.values {
            *counts.entry(v).or_default() += 1;
        }
        let entropy: f64 = counts
            .values()
            .map(|&c| {
                let p = c as f64 / n as f64;
                -p * p.log2()
            })
            .sum();
        // Entropy ceiling: min(bits of field, log2(n)) — a short sample
        // cannot exhibit more than log2(n) bits.
        let max_entropy = (self.width as f64 * 8.0).min((n as f64).log2().max(1.0));
        let bits = self.width as u32 * 8;
        let modulus = 1u128 << bits;
        let half = (modulus / 2) as u64;
        let mut forward = 0usize;
        let mut small_steps = 0usize;
        let mut abs_delta_sum = 0f64;
        for w in self.values.windows(2) {
            let (a, b) = (w[0].1, w[1].1);
            // Wrapped signed delta: forward if the wrapped difference is
            // in the lower half of the value space.
            let d = (b as i128 - a as i128).rem_euclid(modulus as i128) as u64;
            let mag = if d < half {
                forward += 1;
                d
            } else {
                (modulus as u64).wrapping_sub(d)
            };
            if mag <= 64 {
                small_steps += 1;
            }
            abs_delta_sum += mag as f64;
        }
        let pairs = n.saturating_sub(1).max(1);
        Signature {
            normalized_entropy: (entropy / max_entropy).min(1.0),
            distinct_ratio: counts.len() as f64 / n as f64,
            monotonic_fraction: forward as f64 / pairs as f64,
            mean_abs_delta: abs_delta_sum / pairs as f64,
            small_step_fraction: small_steps as f64 / pairs as f64,
            distinct: counts.len(),
            top_value_fraction: counts.values().copied().max().unwrap_or(0) as f64 / n as f64,
        }
    }

    /// Classify the series.
    pub fn classify(&self) -> FieldClass {
        let s = self.signature();
        if s.distinct <= 1 {
            return FieldClass::Constant;
        }
        if s.distinct <= 12 && s.distinct_ratio < 0.1 {
            return FieldClass::Identifier;
        }
        if s.monotonic_fraction > 0.85 && s.distinct_ratio > 0.05 {
            // Mostly non-decreasing: counter vs timestamp by step size —
            // sequence numbers advance by ~1 per packet, media timestamps
            // by hundreds-to-thousands of clock ticks per frame.
            if s.mean_abs_delta <= 8.0 {
                return FieldClass::Counter;
            }
            return FieldClass::TimestampLike;
        }
        // Random: near-maximal entropy AND the value set saturates what
        // the sample size could possibly show.
        let max_distinct =
            ((1u128 << (self.width as u32 * 8)) as f64).min(self.values.len() as f64);
        if s.normalized_entropy > 0.9 && s.distinct as f64 > 0.6 * max_distinct {
            return FieldClass::Random;
        }
        FieldClass::Mixed
    }
}

/// Scan a flow: classify every (offset, width) combination up to
/// `max_offset`, returning `(offset, width, class, signature)` rows — the
/// automated version of the paper's "hundreds of plots".
pub fn scan_flow(
    packets: &[(u64, Vec<u8>)],
    max_offset: usize,
) -> Vec<(usize, usize, FieldClass, Signature)> {
    let mut rows = Vec::new();
    for width in [1usize, 2, 4] {
        for offset in 0..=max_offset.saturating_sub(width) {
            let series = extract_series(
                packets.iter().map(|(t, p)| (*t, p.as_slice())),
                offset,
                width,
            );
            if series.values.len() < 8 {
                continue;
            }
            let sig = series.signature();
            rows.push((offset, width, series.classify(), sig));
        }
    }
    rows
}

/// Find offsets where a plausible RTP header begins, by the signature the
/// paper searched for: version bits `10`, a 16-bit counter at +2, a 32-bit
/// timestamp-like field at +4, and a 32-bit identifier at +8. Returns
/// offsets with the fraction of packets matching structurally.
pub fn find_rtp_offsets(packets: &[(u64, Vec<u8>)], max_offset: usize) -> Vec<(usize, f64)> {
    let mut hits = Vec::new();
    for offset in 0..=max_offset {
        // Group packets by structural match first (§4.2.2: "we took a
        // group of packets with the same RTP header offset and compared
        // them with groups of packets with a different offset") — other
        // packet types (RTCP, control) are interleaved in the same flow
        // and must not pollute the field series.
        let mut matching: Vec<(u64, &[u8])> = Vec::new();
        let mut total = 0usize;
        for (t, p) in packets {
            if p.len() < offset + rtp::HEADER_LEN {
                continue;
            }
            total += 1;
            if rtp::Packet::new_checked(&p[offset..]).is_ok() {
                matching.push((*t, p.as_slice()));
            }
        }
        if total < 8 || matching.len() * 2 < total {
            continue;
        }
        let structural = matching.len();
        // A single UDP flow multiplexes several streams ("several such
        // lines, often with different slopes, usually overlap at the
        // level of a UDP flow" — §4.2.1), so the field dynamics must be
        // evaluated per candidate stream: partition by the would-be SSRC
        // word at offset+8 and test each sizeable partition.
        let mut by_ssrc: HashMap<u32, Vec<(u64, &[u8])>> = HashMap::new();
        for &(t, p) in &matching {
            let v =
                u32::from_be_bytes([p[offset + 8], p[offset + 9], p[offset + 10], p[offset + 11]]);
            by_ssrc.entry(v).or_default().push((t, p));
        }
        let sizeable: Vec<&Vec<(u64, &[u8])>> = by_ssrc.values().filter(|g| g.len() >= 8).collect();
        if sizeable.is_empty() {
            continue;
        }
        // The identifier must partition the flow into few real streams
        // covering most packets; random bytes would shatter into
        // singleton groups.
        let covered: usize = sizeable.iter().map(|g| g.len()).sum();
        if sizeable.len() > 16 || covered * 2 < matching.len() {
            continue;
        }
        let ok = sizeable.iter().all(|group| {
            let seq = extract_series(group.iter().copied(), offset + 2, 2);
            let ts = extract_series(group.iter().copied(), offset + 4, 4);
            let seq_sig = seq.signature();
            // Sub-streams (main + FEC) still interleave within one SSRC:
            // require mostly-small steps, not a perfect counter.
            let seq_ok = seq_sig.small_step_fraction > 0.4 && seq_sig.distinct > 4;
            let ts_sig = ts.signature();
            let ts_ok = ts_sig.monotonic_fraction > 0.7 || ts_sig.distinct <= 12;
            seq_ok && ts_ok
        });
        if ok {
            hits.push((offset, structural as f64 / total as f64));
        }
    }
    hits
}

/// Search payloads for known SSRC values at 4-byte alignment — how the
/// paper located RTCP once RTP was understood. Returns, per offset, the
/// number of packets whose word at the offset is one of the SSRCs.
pub fn find_rtcp_by_ssrc(packets: &[(u64, Vec<u8>)], ssrcs: &[u32]) -> HashMap<usize, usize> {
    let mut by_offset: HashMap<usize, usize> = HashMap::new();
    for (_, p) in packets {
        for (off, _) in zoom_wire::rtcp::scan_for_ssrcs(p, ssrcs) {
            *by_offset.entry(off).or_default() += 1;
        }
    }
    by_offset
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn series_of(values: Vec<u64>, width: usize) -> FieldSeries {
        FieldSeries {
            offset: 0,
            width,
            values: values
                .into_iter()
                .enumerate()
                .map(|(i, v)| (i as u64, v))
                .collect(),
        }
    }

    #[test]
    fn constant_detected() {
        assert_eq!(series_of(vec![7; 100], 1).classify(), FieldClass::Constant);
    }

    #[test]
    fn identifier_detected() {
        // A few repeated type values, like the media-encapsulation type.
        let vals: Vec<u64> = (0..300).map(|i| [13u64, 15, 16][i % 3]).collect();
        assert_eq!(series_of(vals, 1).classify(), FieldClass::Identifier);
    }

    #[test]
    fn counter_detected_with_wrap() {
        let vals: Vec<u64> = (0..1_000u64).map(|i| (65_500 + i) % 65_536).collect();
        assert_eq!(series_of(vals, 2).classify(), FieldClass::Counter);
    }

    #[test]
    fn timestamp_detected() {
        // 90 kHz timestamps at 30 fps: +3000 per step.
        let vals: Vec<u64> = (0..500u64).map(|i| i * 3_000).collect();
        assert_eq!(series_of(vals, 4).classify(), FieldClass::TimestampLike);
    }

    #[test]
    fn random_detected() {
        let mut rng = StdRng::seed_from_u64(1);
        let vals: Vec<u64> = (0..2_000).map(|_| u64::from(rng.gen::<u32>())).collect();
        assert_eq!(series_of(vals, 4).classify(), FieldClass::Random);
    }

    #[test]
    fn random_bytes_detected_at_width_1() {
        let mut rng = StdRng::seed_from_u64(2);
        let vals: Vec<u64> = (0..2_000).map(|_| u64::from(rng.gen::<u8>())).collect();
        assert_eq!(series_of(vals, 1).classify(), FieldClass::Random);
    }

    #[test]
    fn extract_skips_short_packets() {
        let packets: Vec<(u64, Vec<u8>)> = vec![(0, vec![1, 2, 3]), (1, vec![1, 2, 3, 4, 5])];
        let s = extract_series(packets.iter().map(|(t, p)| (*t, p.as_slice())), 2, 2);
        assert_eq!(s.values, vec![(1, 0x0304)]);
    }

    #[test]
    fn rtp_offset_found_in_synthetic_flow() {
        // Build payloads: 4 junk bytes, then a real RTP header, then
        // random payload.
        let mut rng = StdRng::seed_from_u64(3);
        let packets: Vec<(u64, Vec<u8>)> = (0..200u64)
            .map(|i| {
                let repr = rtp::Repr {
                    marker: i % 30 == 0,
                    payload_type: 98,
                    sequence_number: 100 + i as u16,
                    timestamp: 5_000 + (i as u32 / 2) * 3_000,
                    ssrc: 0x21,
                    csrc_count: 0,
                    has_extension: false,
                };
                let mut buf = vec![0u8; 4 + repr.header_len() + 50];
                buf[0] = 5;
                buf[1] = 16;
                repr.emit(&mut rtp::Packet::new_unchecked(&mut buf[4..4 + 12]));
                rng.fill(&mut buf[16..]);
                (i * 33_000_000, buf)
            })
            .collect();
        let hits = find_rtp_offsets(&packets, 8);
        assert!(
            hits.iter().any(|&(off, frac)| off == 4 && frac > 0.9),
            "hits: {hits:?}"
        );
        // And the junk offset 0 (version 0) is not reported.
        assert!(!hits.iter().any(|&(off, _)| off == 0));
    }

    #[test]
    fn scan_flow_classifies_known_layout() {
        // Payload: [0]=type id (identifier), [1..3]=counter, [3..7]=junk
        // random.
        let mut rng = StdRng::seed_from_u64(4);
        let packets: Vec<(u64, Vec<u8>)> = (0..500u64)
            .map(|i| {
                let mut p = vec![0u8; 7];
                p[0] = if i % 4 == 0 { 15 } else { 16 };
                p[1..3].copy_from_slice(&(i as u16).to_be_bytes());
                rng.fill(&mut p[3..]);
                (i, p)
            })
            .collect();
        let rows = scan_flow(&packets, 7);
        let class_at = |off: usize, w: usize| {
            rows.iter()
                .find(|r| r.0 == off && r.1 == w)
                .map(|r| r.2)
                .unwrap()
        };
        assert_eq!(class_at(0, 1), FieldClass::Identifier);
        assert_eq!(class_at(1, 2), FieldClass::Counter);
        assert_eq!(class_at(3, 4), FieldClass::Random);
    }

    #[test]
    fn rtcp_ssrc_scan_counts_offsets() {
        let mut p = vec![0u8; 16];
        p[4..8].copy_from_slice(&0x42u32.to_be_bytes());
        let packets = vec![(0u64, p.clone()), (1, p)];
        let hits = find_rtcp_by_ssrc(&packets, &[0x42]);
        assert_eq!(hits.get(&4), Some(&2));
    }
}
