//! Frame-level interarrival jitter (§5.4, Fig. 12 of the paper).
//!
//! Naïve packet interarrival variance is meaningless for RTP video: frames
//! are bursts of back-to-back packets, and Zoom's packetization interval
//! varies. The paper therefore computes jitter *between frames*, corrected
//! by what the gap *should* be according to the RTP timestamps — exactly
//! the RFC 3550 §A.8 estimator applied at frame granularity:
//!
//! ```text
//! D(i,j) = (Rj − Ri) − (Sj − Si)        // arrival delta − media delta
//! J     += (|D| − J) / 16
//! ```
//!
//! where `R` is the arrival time of the first packet of a frame and `S`
//! the frame's RTP timestamp converted to wall time via the sampling rate.

use super::VIDEO_SAMPLING_RATE;

/// RFC 3550 jitter estimator over frame-level observations.
#[derive(Debug, Clone)]
pub struct JitterEstimator {
    sampling_rate: f64,
    jitter_nanos: f64,
    last: Option<(u64, u32)>,
    /// (time, jitter ms) samples captured once per second.
    samples: Vec<(u64, f64)>,
    last_sample_second: Option<u64>,
}

impl JitterEstimator {
    /// Estimator with the given RTP clock rate.
    pub fn new(sampling_rate: u32) -> JitterEstimator {
        JitterEstimator {
            sampling_rate: f64::from(sampling_rate),
            jitter_nanos: 0.0,
            last: None,
            samples: Vec::new(),
            last_sample_second: None,
        }
    }

    /// Estimator for Zoom video (90 kHz).
    pub fn video() -> JitterEstimator {
        JitterEstimator::new(VIDEO_SAMPLING_RATE)
    }

    /// Feed the first packet of each frame (a new RTP timestamp on the
    /// main sub-stream).
    pub fn on_frame(&mut self, arrival_nanos: u64, rtp_timestamp: u32) {
        if let Some((prev_arrival, prev_ts)) = self.last {
            let r_delta = arrival_nanos as f64 - prev_arrival as f64;
            // Signed RTP delta (handles wraparound).
            let s_ticks = rtp_timestamp.wrapping_sub(prev_ts) as i32;
            let s_delta = f64::from(s_ticks) * 1e9 / self.sampling_rate;
            let d = r_delta - s_delta;
            self.jitter_nanos += (d.abs() - self.jitter_nanos) / 16.0;
        }
        self.last = Some((arrival_nanos, rtp_timestamp));
        // One sample per wall-clock second (Fig. 15d's 1 s bins).
        let second = arrival_nanos / 1_000_000_000;
        if self.last_sample_second != Some(second) {
            self.last_sample_second = Some(second);
            self.samples.push((arrival_nanos, self.jitter_ms()));
        }
    }

    /// Current jitter estimate in nanoseconds.
    pub fn jitter_nanos(&self) -> f64 {
        self.jitter_nanos
    }

    /// Current jitter estimate in milliseconds.
    pub fn jitter_ms(&self) -> f64 {
        self.jitter_nanos / 1e6
    }

    /// Once-per-second samples of the estimate.
    pub fn samples(&self) -> &[(u64, f64)] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    #[test]
    fn perfectly_paced_stream_has_zero_jitter() {
        let mut j = JitterEstimator::video();
        // 30 fps: 3000 ticks and 33.333... ms per frame, exactly matched.
        for i in 0..100u64 {
            j.on_frame(i * 33_333_333, (i as u32) * 3_000);
        }
        assert!(j.jitter_ms() < 0.2, "jitter {}", j.jitter_ms());
    }

    #[test]
    fn variable_packetization_is_not_jitter() {
        // The encoder alternates 1/30 s and 1/15 s frame intervals, and
        // the network delivers each exactly on time: the RTP-timestamp
        // correction must cancel the variation (the whole point of §5.4).
        let mut j = JitterEstimator::video();
        let mut t = 0u64;
        let mut ts = 0u32;
        for i in 0..200 {
            j.on_frame(t, ts);
            let (dt, dticks) = if i % 2 == 0 {
                (33_333_333u64, 3_000u32)
            } else {
                (66_666_666, 6_000)
            };
            t += dt;
            ts = ts.wrapping_add(dticks);
        }
        assert!(j.jitter_ms() < 0.2, "jitter {}", j.jitter_ms());
    }

    #[test]
    fn network_delay_variation_is_jitter() {
        // Constant 30 fps encoding, but arrivals alternate ±8 ms.
        let mut j = JitterEstimator::video();
        for i in 0..200u64 {
            let wobble = if i % 2 == 0 { 0 } else { 8 * MS };
            j.on_frame(i * 33_333_333 + wobble, (i as u32) * 3_000);
        }
        // |D| = 8 ms every frame → J converges toward 8 ms.
        assert!(j.jitter_ms() > 6.0, "jitter {}", j.jitter_ms());
    }

    #[test]
    fn converges_per_rfc_recursion() {
        let mut j = JitterEstimator::video();
        j.on_frame(0, 0);
        j.on_frame(33_333_333 + 16 * MS, 3_000);
        // First difference: |16 ms| / 16 = 1 ms.
        assert!((j.jitter_ms() - 1.0).abs() < 0.01, "{}", j.jitter_ms());
    }

    #[test]
    fn timestamp_wrap_handled() {
        let mut j = JitterEstimator::video();
        j.on_frame(0, u32::MAX - 1_500);
        j.on_frame(33_333_333, 1_500); // Δticks = 3000 across the wrap
        assert!(j.jitter_ms() < 0.1, "jitter {}", j.jitter_ms());
    }

    #[test]
    fn samples_once_per_second() {
        let mut j = JitterEstimator::video();
        for i in 0..90u64 {
            j.on_frame(i * 33_333_333, (i as u32) * 3_000); // ~3 s
        }
        assert_eq!(j.samples().len(), 3);
    }
}
