//! Sequence-number analysis: loss, retransmission/duplicates, and
//! reordering (§5.5 of the paper).
//!
//! Zoom retransmits lost packets up to twice *reusing the original RTP
//! sequence number*, so a passive monitor mostly sees duplicates rather
//! than holes; remaining holes indicate packets lost on every attempt (or
//! dropped upstream of the vantage point). The paper is explicit that the
//! sequence numbers alone cannot disambiguate retransmissions from
//! reordering with certainty — this tracker reports exactly the quantities
//! that *are* observable: duplicates, out-of-order arrivals, and
//! unaccounted gaps.

use std::collections::VecDeque;

/// Summary counters for one RTP sub-stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeqStats {
    /// Total packets observed (including duplicates).
    pub received: u64,
    /// Packets whose sequence number was already seen — retransmission
    /// duplicates.
    pub duplicates: u64,
    /// Packets that arrived after a higher sequence number (late/
    /// reordered or a retransmission of a packet lost before the tap).
    pub reordered: u64,
    /// Sequence numbers in the covered range never observed at all.
    pub missing: u64,
    /// Distinct sequence numbers observed.
    pub unique: u64,
}

impl SeqStats {
    /// Fraction of the sequence space covered that never arrived.
    pub fn loss_fraction(&self) -> f64 {
        let expected = self.unique + self.missing;
        if expected == 0 {
            0.0
        } else {
            self.missing as f64 / expected as f64
        }
    }

    /// Fraction of received packets that were duplicates.
    pub fn duplicate_fraction(&self) -> f64 {
        if self.received == 0 {
            0.0
        } else {
            self.duplicates as f64 / self.received as f64
        }
    }
}

/// Window size (in sequence numbers) within which late arrivals can still
/// be recognized; beyond it a hole is counted as missing.
const WINDOW: usize = 2_048;

/// Tracks one sub-stream's 16-bit sequence space with wraparound.
#[derive(Debug)]
pub struct SeqTracker {
    stats: SeqStats,
    /// Extended (unwrapped) highest sequence seen.
    highest_ext: Option<u64>,
    /// Seen-bits for the trailing window ending at `highest_ext`.
    window: VecDeque<bool>,
}

impl Default for SeqTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl SeqTracker {
    /// Fresh tracker.
    pub fn new() -> SeqTracker {
        SeqTracker {
            stats: SeqStats::default(),
            highest_ext: None,
            window: VecDeque::new(),
        }
    }

    /// Feed one observed sequence number.
    pub fn on_sequence(&mut self, seq: u16) {
        self.stats.received += 1;
        let Some(highest) = self.highest_ext else {
            self.highest_ext = Some(u64::from(seq) + 65_536);
            self.window.push_back(true);
            self.stats.unique += 1;
            return;
        };
        // Unwrap: interpret seq as the nearest value to `highest`.
        let base = highest & 0xFFFF;
        let diff = i64::from(seq.wrapping_sub(base as u16) as i16);
        let ext = highest.wrapping_add_signed(diff);

        if ext > highest {
            // Forward progress: extend the window, marking skipped
            // sequence numbers unseen for now.
            let advance = (ext - highest) as usize;
            for _ in 0..advance.saturating_sub(1).min(WINDOW) {
                self.window.push_back(false);
            }
            self.window.push_back(true);
            self.stats.unique += 1;
            self.highest_ext = Some(ext);
            // Retire sequence numbers that fell out of the window; holes
            // retired unseen become confirmed missing.
            while self.window.len() > WINDOW {
                if let Some(false) = self.window.pop_front() {
                    self.stats.missing += 1;
                }
            }
        } else {
            // ext <= highest: late arrival.
            let offset = (highest - ext) as usize;
            if offset < self.window.len() {
                let idx = self.window.len() - 1 - offset;
                if self.window[idx] {
                    self.stats.duplicates += 1;
                } else {
                    self.window[idx] = true;
                    self.stats.unique += 1;
                    self.stats.reordered += 1;
                }
            } else {
                // Too old to judge; count as a duplicate-ish late packet.
                self.stats.duplicates += 1;
            }
        }
    }

    /// Snapshot of the counters; call [`SeqTracker::finish`] for final
    /// numbers including holes still inside the window.
    pub fn stats(&self) -> SeqStats {
        self.stats
    }

    /// Close the stream: unseen slots still in the window become missing.
    pub fn finish(mut self) -> SeqStats {
        while let Some(seen) = self.window.pop_front() {
            if !seen {
                self.stats.missing += 1;
            }
        }
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_is_clean() {
        let mut t = SeqTracker::new();
        for s in 0..1_000u16 {
            t.on_sequence(s);
        }
        let st = t.finish();
        assert_eq!(st.received, 1_000);
        assert_eq!(st.unique, 1_000);
        assert_eq!(st.duplicates, 0);
        assert_eq!(st.reordered, 0);
        assert_eq!(st.missing, 0);
        assert_eq!(st.loss_fraction(), 0.0);
    }

    #[test]
    fn duplicates_counted() {
        let mut t = SeqTracker::new();
        for s in [1u16, 2, 3, 2, 3, 4] {
            t.on_sequence(s);
        }
        let st = t.finish();
        assert_eq!(st.duplicates, 2);
        assert_eq!(st.unique, 4);
        assert!(st.duplicate_fraction() > 0.3);
    }

    #[test]
    fn reordering_counted_once_filled() {
        let mut t = SeqTracker::new();
        for s in [1u16, 2, 4, 3, 5] {
            t.on_sequence(s);
        }
        let st = t.finish();
        assert_eq!(st.reordered, 1);
        assert_eq!(st.missing, 0);
        assert_eq!(st.unique, 5);
    }

    #[test]
    fn holes_become_missing() {
        let mut t = SeqTracker::new();
        for s in [1u16, 2, /* 3 lost */ 4, 5] {
            t.on_sequence(s);
        }
        let st = t.finish();
        assert_eq!(st.missing, 1);
        assert!(st.loss_fraction() > 0.15 && st.loss_fraction() < 0.25);
    }

    #[test]
    fn wraparound_handled() {
        let mut t = SeqTracker::new();
        for s in [65_533u16, 65_534, 65_535, 0, 1, 2] {
            t.on_sequence(s);
        }
        let st = t.finish();
        assert_eq!(st.unique, 6);
        assert_eq!(st.missing, 0);
        assert_eq!(st.reordered, 0);
    }

    #[test]
    fn big_forward_jump_bounded() {
        let mut t = SeqTracker::new();
        t.on_sequence(0);
        t.on_sequence(10_000); // jump larger than the window
        let st = t.finish();
        // Holes are capped at the window size; no panic, sane numbers.
        assert_eq!(st.unique, 2);
        assert!(st.missing > 0);
        assert!(st.missing <= WINDOW as u64);
    }

    #[test]
    fn late_beyond_window_is_counted_but_not_reordered() {
        let mut t = SeqTracker::new();
        t.on_sequence(5_000);
        for s in 5_001..8_000u16 {
            t.on_sequence(s);
        }
        t.on_sequence(5_000); // ancient duplicate, far outside the window
        let st = t.stats();
        assert_eq!(st.duplicates, 1);
    }
}
