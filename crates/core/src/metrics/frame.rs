//! Frame reconstruction: frame rate (two methods), frame size, and frame
//! delay (§5.2, §5.5 of the paper).
//!
//! **Method 1** counts *delivered* frames: a video frame is complete when
//! N distinct RTP sequence numbers share one RTP timestamp, where N comes
//! from the packets-in-frame field of the Zoom media encapsulation; the
//! current frame rate is the number of completions within the trailing
//! second. Screen-share packets have no packets-in-frame field, so their
//! frames complete on the RTP marker bit instead.
//!
//! **Method 2** recovers the *encoder's* intended frame rate from RTP
//! timestamp increments at the stream's sampling rate (90 kHz for video):
//! `FR = SR / ΔRTP`. Under congestion the two diverge — delivered frames
//! lag the encoder — which is precisely the signal that distinguishes a
//! network problem from a user-behaviour change.

use super::VIDEO_SAMPLING_RATE;
use std::collections::{HashMap, VecDeque};

/// One fully delivered frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameRecord {
    /// Arrival time of the first packet of the frame.
    pub first_packet_at: u64,
    /// Arrival time of the packet that completed the frame.
    pub completed_at: u64,
    /// The frame's RTP timestamp.
    pub rtp_timestamp: u32,
    /// Media payload bytes across the frame's packets.
    pub size_bytes: usize,
    /// Packets in the frame.
    pub packets: u32,
    /// Method 2: the encoder's frame interval derived from the RTP
    /// timestamp increment since the previous completed frame, in
    /// nanoseconds (`None` for the first frame or after a wrap anomaly).
    pub encoder_interval_nanos: Option<u64>,
}

impl FrameRecord {
    /// Frame delay (§5.5): first packet to completion. Values far above
    /// the path RTT + ~100 ms indicate retransmission.
    pub fn frame_delay_nanos(&self) -> u64 {
        self.completed_at - self.first_packet_at
    }

    /// Method 2 encoder frame rate, frames/second.
    pub fn encoder_fps(&self) -> Option<f64> {
        self.encoder_interval_nanos
            .filter(|&i| i > 0)
            .map(|i| 1e9 / i as f64)
    }
}

/// How frames are recognized as complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// Count distinct sequence numbers up to the packets-in-frame field
    /// (video — Table 1 gives us the field).
    PacketCount,
    /// Complete on the marker-bit packet (screen share).
    MarkerBit,
}

#[derive(Debug)]
struct Pending {
    first_at: u64,
    seqs: Vec<u16>,
    bytes: usize,
    expected: Option<u8>,
    marker_seen: bool,
}

/// Per-stream frame tracker.
#[derive(Debug)]
pub struct FrameTracker {
    completion: Completion,
    sampling_rate: u32,
    pending: HashMap<u32, Pending>,
    completed: Vec<FrameRecord>,
    /// Completion times within the trailing window (method 1's circular
    /// buffer).
    recent: VecDeque<u64>,
    last_completed_ts: Option<u32>,
    /// Timestamps of recently completed frames: a retransmitted duplicate
    /// arriving after completion must not re-open (and re-count) the
    /// frame.
    completed_ts: VecDeque<u32>,
    /// Emptied `seqs` vectors recovered from completed (or purged) frames
    /// and handed to the next frame opened, so steady-state frame
    /// reconstruction never allocates per frame.
    spare_seqs: Vec<Vec<u16>>,
}

/// Spare `seqs` vectors kept for reuse; more in-flight frames than this
/// fall back to fresh allocations.
const SPARE_SEQS: usize = 8;

impl FrameTracker {
    /// Tracker for video streams (90 kHz, packet-count completion).
    pub fn video() -> FrameTracker {
        FrameTracker::new(Completion::PacketCount, VIDEO_SAMPLING_RATE)
    }

    /// Tracker for screen-share streams (marker-bit completion; the
    /// paper uses 90 kHz here too but flags the uncertainty).
    pub fn screen_share() -> FrameTracker {
        FrameTracker::new(Completion::MarkerBit, VIDEO_SAMPLING_RATE)
    }

    /// Custom tracker.
    pub fn new(completion: Completion, sampling_rate: u32) -> FrameTracker {
        FrameTracker {
            completion,
            sampling_rate,
            pending: HashMap::new(),
            completed: Vec::new(),
            recent: VecDeque::new(),
            last_completed_ts: None,
            completed_ts: VecDeque::new(),
            spare_seqs: Vec::new(),
        }
    }

    /// Feed one main-substream media packet (callers must filter out FEC:
    /// it shares timestamps but is not part of the frame).
    pub fn on_packet(
        &mut self,
        at: u64,
        rtp_timestamp: u32,
        sequence: u16,
        marker: bool,
        payload_len: usize,
        pkts_in_frame: Option<u8>,
    ) {
        if self.completed_ts.contains(&rtp_timestamp) {
            return; // late duplicate of an already-completed frame
        }
        let pending = match self.pending.entry(rtp_timestamp) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => v.insert(Pending {
                first_at: at,
                seqs: self.spare_seqs.pop().unwrap_or_default(),
                bytes: 0,
                expected: pkts_in_frame,
                marker_seen: false,
            }),
        };
        if pending.seqs.contains(&sequence) {
            return; // retransmission duplicate
        }
        pending.seqs.push(sequence);
        pending.bytes += payload_len;
        pending.marker_seen |= marker;
        if pending.expected.is_none() {
            pending.expected = pkts_in_frame;
        }
        let complete = match self.completion {
            Completion::PacketCount => pending
                .expected
                .map(|n| pending.seqs.len() >= usize::from(n.max(1)))
                .unwrap_or(false),
            Completion::MarkerBit => pending.marker_seen,
        };
        if complete {
            let mut p = self.pending.remove(&rtp_timestamp).expect("just inserted");
            let encoder_interval_nanos = self.last_completed_ts.and_then(|prev| {
                let delta = rtp_timestamp.wrapping_sub(prev);
                // Reject wraps/reorders that imply absurd intervals.
                if delta == 0 || delta > self.sampling_rate * 30 {
                    None
                } else {
                    Some(u64::from(delta) * 1_000_000_000 / u64::from(self.sampling_rate))
                }
            });
            self.last_completed_ts = Some(rtp_timestamp);
            self.completed.push(FrameRecord {
                first_packet_at: p.first_at,
                completed_at: at,
                rtp_timestamp,
                size_bytes: p.bytes,
                packets: p.seqs.len() as u32,
                encoder_interval_nanos,
            });
            self.recent.push_back(at);
            self.completed_ts.push_back(rtp_timestamp);
            if self.completed_ts.len() > 128 {
                self.completed_ts.pop_front();
            }
            if self.spare_seqs.len() < SPARE_SEQS {
                p.seqs.clear();
                self.spare_seqs.push(std::mem::take(&mut p.seqs));
            }
        }
        // Bound pending state: discard frames that have not completed
        // within 5 seconds (packets lost beyond recovery).
        if self.pending.len() > 64 {
            let spare = &mut self.spare_seqs;
            self.pending.retain(|_, p| {
                let keep = at.saturating_sub(p.first_at) < 5_000_000_000;
                if !keep && spare.len() < SPARE_SEQS {
                    p.seqs.clear();
                    spare.push(std::mem::take(&mut p.seqs));
                }
                keep
            });
        }
    }

    /// Method 1's instantaneous frame rate: completed frames within the
    /// second before `now`.
    pub fn instantaneous_fps(&mut self, now: u64) -> usize {
        while let Some(&front) = self.recent.front() {
            if now.saturating_sub(front) > 1_000_000_000 {
                self.recent.pop_front();
            } else {
                break;
            }
        }
        self.recent.len()
    }

    /// All completed frames, in completion order.
    pub fn frames(&self) -> &[FrameRecord] {
        &self.completed
    }

    /// Frames that never completed (lost packets).
    pub fn incomplete(&self) -> usize {
        self.pending.len()
    }

    /// Per-second delivered frame rate over `[0, end)`; index = second.
    pub fn fps_bins(&self, end: u64) -> Vec<u32> {
        let n = end.div_ceil(1_000_000_000) as usize;
        let mut bins = vec![0u32; n];
        for f in &self.completed {
            let idx = (f.completed_at / 1_000_000_000) as usize;
            if idx < n {
                bins[idx] += 1;
            }
        }
        bins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    /// Feed a 3-packet frame at the given base time/timestamp.
    fn feed_frame(t: &mut FrameTracker, at: u64, ts: u32, seq0: u16) {
        t.on_packet(at, ts, seq0, false, 1_000, Some(3));
        t.on_packet(at + MS / 4, ts, seq0 + 1, false, 1_000, Some(3));
        t.on_packet(at + MS / 2, ts, seq0 + 2, true, 500, Some(3));
    }

    #[test]
    fn completes_on_packet_count() {
        let mut t = FrameTracker::video();
        feed_frame(&mut t, 1_000 * MS, 90_000, 1);
        assert_eq!(t.frames().len(), 1);
        let f = &t.frames()[0];
        assert_eq!(f.size_bytes, 2_500);
        assert_eq!(f.packets, 3);
        assert_eq!(f.frame_delay_nanos(), MS / 2);
        assert_eq!(f.encoder_interval_nanos, None); // first frame
    }

    #[test]
    fn method2_interval_from_rtp_delta() {
        let mut t = FrameTracker::video();
        feed_frame(&mut t, 1_000 * MS, 90_000, 1);
        feed_frame(&mut t, 1_033 * MS, 90_000 + 3_000, 10); // Δ=3000 ticks = 1/30 s
        let f = &t.frames()[1];
        assert_eq!(f.encoder_interval_nanos, Some(33_333_333));
        assert!((f.encoder_fps().unwrap() - 30.0).abs() < 0.01);
    }

    #[test]
    fn duplicates_do_not_complete_frames_early() {
        let mut t = FrameTracker::video();
        t.on_packet(0, 100, 1, false, 500, Some(3));
        t.on_packet(MS, 100, 1, false, 500, Some(3)); // retransmission
        t.on_packet(2 * MS, 100, 2, false, 500, Some(3));
        assert!(t.frames().is_empty());
        t.on_packet(3 * MS, 100, 3, true, 500, Some(3));
        assert_eq!(t.frames().len(), 1);
        assert_eq!(t.frames()[0].size_bytes, 1_500);
    }

    #[test]
    fn marker_bit_completion_for_screen_share() {
        let mut t = FrameTracker::screen_share();
        t.on_packet(0, 200, 1, false, 1_000, None);
        t.on_packet(MS, 200, 2, false, 1_000, None);
        assert!(t.frames().is_empty());
        t.on_packet(2 * MS, 200, 3, true, 300, None);
        assert_eq!(t.frames().len(), 1);
        assert_eq!(t.frames()[0].size_bytes, 2_300);
    }

    #[test]
    fn instantaneous_fps_window() {
        let mut t = FrameTracker::video();
        for i in 0..30u64 {
            feed_frame(
                &mut t,
                i * 33 * MS,
                90_000 + i as u32 * 3_000,
                (i * 10) as u16,
            );
        }
        // All 30 frames completed within ~1 s.
        let fps = t.instantaneous_fps(30 * 33 * MS);
        assert!((28..=30).contains(&fps), "fps {fps}");
        // Two seconds later the window is empty.
        assert_eq!(t.instantaneous_fps(3_000 * MS), 0);
    }

    #[test]
    fn fps_bins_count_per_second() {
        let mut t = FrameTracker::video();
        for i in 0..10u64 {
            feed_frame(
                &mut t,
                i * 100 * MS,
                1_000 + i as u32 * 9_000,
                (i * 10) as u16,
            );
        }
        let bins = t.fps_bins(2_000 * MS);
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0], 10);
        assert_eq!(bins[1], 0);
    }

    #[test]
    fn incomplete_frames_tracked_and_purged() {
        let mut t = FrameTracker::video();
        // 100 frames each missing one packet.
        for i in 0..100u32 {
            t.on_packet(
                u64::from(i) * 40 * MS,
                i * 3_000,
                (i * 10) as u16,
                false,
                800,
                Some(2),
            );
        }
        assert!(t.frames().is_empty());
        assert!(t.incomplete() > 0);
        // Much later, a new packet triggers the purge path.
        t.on_packet(60_000 * MS, 999_999, 9_999, false, 10, Some(2));
        assert!(t.incomplete() < 100);
    }

    #[test]
    fn timestamp_wrap_rejected_for_method2() {
        let mut t = FrameTracker::video();
        feed_frame(&mut t, 0, u32::MAX - 100, 1);
        feed_frame(&mut t, 33 * MS, 50, 10); // wraps
                                             // Wrap of ~150 ticks is tiny and fine; a huge "backwards" wrap is
                                             // what gets rejected:
        let f = &t.frames()[1];
        assert!(f.encoder_interval_nanos.is_some());
        feed_frame(&mut t, 66 * MS, 40, 20); // goes backwards → huge delta
        assert_eq!(t.frames()[2].encoder_interval_nanos, None);
    }
}
