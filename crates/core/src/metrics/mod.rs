//! Performance-metric estimators (§5 of the paper).
//!
//! * [`frame`] — frame rate (methods 1 and 2), frame size, frame delay
//! * [`jitter`] — RFC 3550 frame-level interarrival jitter
//! * [`latency`] — RTP stream-copy RTT and TCP control-connection RTT
//! * [`loss`] — sequence-number analysis: loss, retransmission, reordering
//! * [`stall`] — jitter-buffer drain / stall detection and frame-delay
//!   retransmission inference (the paper's §5.5/§8 future work)

pub mod frame;
pub mod jitter;
pub mod latency;
pub mod loss;
pub mod stall;

/// The video RTP clock rate the paper determined via parameter sweep
/// (§5.2): 90 kHz, the RFC 3551 recommendation.
pub const VIDEO_SAMPLING_RATE: u32 = 90_000;
