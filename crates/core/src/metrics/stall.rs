//! Stall detection and retransmission inference from frame delay — the
//! §5.5/§8 extensions the paper sketches and leaves as future work.
//!
//! Two signals come out of the frame records:
//!
//! * **Retransmission-recovered frames.** "Observing a packet with
//!   suspiciously high delay (i.e., 100 ms + RTT) delivered out-of-order
//!   ... is a strong indicator that the respective packet was
//!   retransmitted" (§5.5): a frame whose delivery took longer than
//!   RTT + retransmission timeout almost certainly needed one.
//! * **Jitter-buffer drain / stalls.** "If the delay is larger than the
//!   packetization time over the course of several frames, the jitter
//!   buffer gets drained and the video will eventually stall" (§5.5). We
//!   model a receive-side jitter buffer with a configurable depth: frame
//!   lateness (delivery interval minus media interval) accumulates as
//!   drain; when the buffer empties, a stall begins, and playable time
//!   must build back up before playback resumes.

use crate::metrics::frame::FrameRecord;

/// Retransmission-timeout constant observed by the paper (§5.5).
pub const ZOOM_RETRANSMIT_TIMEOUT_NANOS: u64 = 100_000_000;

/// One detected stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stall {
    /// When the buffer ran dry.
    pub start: u64,
    /// When enough media had re-buffered to resume.
    pub end: u64,
}

impl Stall {
    /// Stall duration in nanoseconds.
    pub fn duration_nanos(&self) -> u64 {
        self.end - self.start
    }
}

/// Report of the frame-delay analysis of one stream.
#[derive(Debug, Clone, Default)]
pub struct StallReport {
    /// Frames whose delivery exceeded RTT + retransmission timeout — the
    /// §5.5 retransmission indicator.
    pub retransmission_recovered: usize,
    /// Total frames analyzed.
    pub frames: usize,
    /// Detected playback stalls.
    pub stalls: Vec<Stall>,
    /// Total stalled time, nanoseconds.
    pub stalled_nanos: u64,
}

impl StallReport {
    /// Fraction of frames that needed retransmission recovery.
    pub fn retransmission_fraction(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.retransmission_recovered as f64 / self.frames as f64
        }
    }
}

/// Configuration of the analysis.
#[derive(Debug, Clone, Copy)]
pub struct StallConfig {
    /// Current RTT estimate to the SFU (from Method-1/-2 latency), used
    /// for the retransmission threshold.
    pub rtt_nanos: u64,
    /// Receive jitter-buffer depth; Zoom-class apps hold roughly
    /// 100–200 ms of media.
    pub jitter_buffer_nanos: u64,
}

impl Default for StallConfig {
    fn default() -> Self {
        StallConfig {
            rtt_nanos: 50_000_000,
            jitter_buffer_nanos: 150_000_000,
        }
    }
}

/// Analyze a stream's completed frames.
///
/// `frames` must be in completion order (as produced by
/// [`crate::metrics::frame::FrameTracker::frames`]).
pub fn analyze(frames: &[FrameRecord], config: StallConfig) -> StallReport {
    let mut report = StallReport {
        frames: frames.len(),
        ..Default::default()
    };
    let retx_threshold = config.rtt_nanos + ZOOM_RETRANSMIT_TIMEOUT_NANOS;

    // Playable media in the buffer, nanoseconds. Starts full (initial
    // buffering is not a stall).
    let mut buffer = config.jitter_buffer_nanos as i64;
    let mut stall_start: Option<u64> = None;

    for (i, f) in frames.iter().enumerate() {
        if f.frame_delay_nanos() > retx_threshold {
            report.retransmission_recovered += 1;
        }
        if i == 0 {
            continue;
        }
        let prev = &frames[i - 1];
        // Media time this frame adds (the packetization interval).
        let media = f.encoder_interval_nanos.unwrap_or(0) as i64;
        if let Some(start) = stall_start {
            // Stalled: playback is paused, so arriving media only
            // accumulates; resume once half the buffer has re-built
            // (standard rebuffering behaviour).
            buffer += media;
            if buffer >= config.jitter_buffer_nanos as i64 / 2 {
                let stall = Stall {
                    start,
                    end: f.completed_at.max(start),
                };
                report.stalled_nanos += stall.duration_nanos();
                report.stalls.push(stall);
                stall_start = None;
            }
            continue;
        }
        // Playing: wall time consumes the buffer, media refills it.
        let wall = f.completed_at.saturating_sub(prev.completed_at) as i64;
        buffer += media - wall;
        buffer = buffer.min(config.jitter_buffer_nanos as i64);
        if buffer <= 0 {
            // Buffer dry: playback stalls.
            stall_start = Some(f.completed_at);
            buffer = 0;
        }
    }
    if let Some(start) = stall_start {
        if let Some(last) = frames.last() {
            if last.completed_at > start {
                let stall = Stall {
                    start,
                    end: last.completed_at,
                };
                report.stalled_nanos += stall.duration_nanos();
                report.stalls.push(stall);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    /// Frames delivered at a steady cadence matching their media time.
    fn steady(n: usize, interval_ms: u64) -> Vec<FrameRecord> {
        (0..n)
            .map(|i| FrameRecord {
                first_packet_at: i as u64 * interval_ms * MS,
                completed_at: i as u64 * interval_ms * MS + 2 * MS,
                rtp_timestamp: (i as u32) * 3_000,
                size_bytes: 1_000,
                packets: 1,
                encoder_interval_nanos: Some(interval_ms * MS),
            })
            .collect()
    }

    #[test]
    fn steady_stream_never_stalls() {
        let report = analyze(&steady(300, 33), StallConfig::default());
        assert!(report.stalls.is_empty());
        assert_eq!(report.stalled_nanos, 0);
        assert_eq!(report.retransmission_recovered, 0);
        assert_eq!(report.frames, 300);
    }

    #[test]
    fn high_frame_delay_flags_retransmission() {
        let mut frames = steady(100, 33);
        // One frame took 300 ms first-packet → completion.
        frames[50].completed_at = frames[50].first_packet_at + 300 * MS;
        let report = analyze(
            &frames,
            StallConfig {
                rtt_nanos: 50 * MS,
                jitter_buffer_nanos: 150 * MS,
            },
        );
        assert_eq!(report.retransmission_recovered, 1);
        assert!((report.retransmission_fraction() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn sustained_lateness_drains_buffer_and_stalls() {
        // 33 ms of media per frame but 80 ms between deliveries: the
        // buffer drains at 47 ms per frame; a 150 ms buffer dies after
        // ~4 frames.
        let frames: Vec<FrameRecord> = (0..60)
            .map(|i| FrameRecord {
                first_packet_at: i as u64 * 80 * MS,
                completed_at: i as u64 * 80 * MS + MS,
                rtp_timestamp: (i as u32) * 3_000,
                size_bytes: 1_000,
                packets: 1,
                encoder_interval_nanos: Some(33 * MS),
            })
            .collect();
        let report = analyze(&frames, StallConfig::default());
        assert!(!report.stalls.is_empty());
        assert!(report.stalled_nanos > 0);
    }

    #[test]
    fn brief_hiccup_absorbed_by_buffer() {
        let mut frames = steady(100, 33);
        // One 120 ms gap: within the 150 ms buffer, no stall.
        for f in frames.iter_mut().skip(50) {
            f.completed_at += 120 * MS;
            f.first_packet_at += 120 * MS;
        }
        let report = analyze(&frames, StallConfig::default());
        assert!(report.stalls.is_empty(), "stalls: {:?}", report.stalls);
    }

    #[test]
    fn long_gap_causes_one_bounded_stall() {
        let mut frames = steady(100, 33);
        // A 400 ms freeze mid-stream.
        for f in frames.iter_mut().skip(50) {
            f.completed_at += 400 * MS;
            f.first_packet_at += 400 * MS;
        }
        let report = analyze(&frames, StallConfig::default());
        assert_eq!(report.stalls.len(), 1);
        let stall = report.stalls[0];
        // Rebuffering takes ~half the buffer of media time to recover.
        assert!(stall.duration_nanos() > 30 * MS);
        assert!(stall.duration_nanos() < 600 * MS);
    }

    #[test]
    fn empty_input() {
        let report = analyze(&[], StallConfig::default());
        assert_eq!(report.frames, 0);
        assert_eq!(report.retransmission_fraction(), 0.0);
    }
}
