//! Passive latency estimation (§5.3, Fig. 11 of the paper).
//!
//! **Method 1 — RTP stream copies.** Zoom's SFU forwards media packets
//! without rewriting RTP headers, so when two participants of a meeting
//! sit behind the same monitor, every uplink packet reappears later as a
//! forwarded downlink copy with identical (SSRC, payload type, sequence,
//! timestamp). The time between the two sightings is the RTT between the
//! monitor and the SFU — tens to hundreds of probes per second.
//!
//! **Method 2 — TCP control connection.** Each client keeps a TLS control
//! connection to a Zoom server. Matching the sequence number of a data
//! segment against the acknowledgment that covers it yields the RTT from
//! the monitor to whichever endpoint sent the ACK — server-side and
//! client-side RTTs separately, locating congestion upstream or
//! downstream of the tap.

use crate::packet::{Direction, PacketMeta, TcpMeta};
use std::collections::{HashMap, VecDeque};
use std::net::IpAddr;
use zoom_wire::flow::FiveTuple;

/// One RTT observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RttSample {
    /// When the returning packet was seen.
    pub at: u64,
    /// Round-trip time, nanoseconds.
    pub rtt_nanos: u64,
    /// The endpoint the RTT is measured to (the SFU for RTP samples; the
    /// ACK sender for TCP samples).
    pub to: IpAddr,
}

impl RttSample {
    /// RTT in milliseconds.
    pub fn rtt_ms(&self) -> f64 {
        self.rtt_nanos as f64 / 1e6
    }
}

/// Method 1: RTT to the SFU by matching forwarded stream copies.
#[derive(Debug)]
pub struct RtpRttEstimator {
    /// (ssrc, pt, seq, ts) of uplink packets → first-seen time.
    outstanding: HashMap<(u32, u8, u16, u32), u64>,
    /// Insertion order for eviction.
    order: VecDeque<((u32, u8, u16, u32), u64)>,
    window_nanos: u64,
    samples: Vec<RttSample>,
}

impl Default for RtpRttEstimator {
    fn default() -> Self {
        Self::new(5_000_000_000)
    }
}

impl RtpRttEstimator {
    /// Estimator that forgets unmatched uplink packets after `window`.
    pub fn new(window_nanos: u64) -> RtpRttEstimator {
        RtpRttEstimator {
            outstanding: HashMap::new(),
            order: VecDeque::new(),
            window_nanos,
            samples: Vec::new(),
        }
    }

    /// Feed every Zoom media packet.
    pub fn on_packet(&mut self, m: &PacketMeta) {
        let Some(rtp) = &m.rtp else { return };
        let key = (rtp.ssrc, rtp.payload_type, rtp.sequence, rtp.timestamp);
        self.observe(m.ts_nanos, key, m.direction, m.five_tuple.src_ip);
    }

    /// Core matching step on the already-extracted RTP identity
    /// `(ssrc, payload type, sequence, timestamp)`. Split out from
    /// [`Self::on_packet`] so the sharded pipeline's merge-time replay can
    /// feed logged events without rebuilding full packet metadata.
    pub(crate) fn observe(
        &mut self,
        ts_nanos: u64,
        key: (u32, u8, u16, u32),
        direction: Direction,
        src_ip: IpAddr,
    ) {
        match direction {
            Direction::ToServer => {
                // Record the egress sighting (first one wins: a
                // retransmission should not shrink the measured RTT).
                if let std::collections::hash_map::Entry::Vacant(e) = self.outstanding.entry(key) {
                    e.insert(ts_nanos);
                    self.order.push_back((key, ts_nanos));
                }
                self.evict(ts_nanos);
            }
            Direction::FromServer => {
                if let Some(t_out) = self.outstanding.remove(&key) {
                    self.samples.push(RttSample {
                        at: ts_nanos,
                        rtt_nanos: ts_nanos.saturating_sub(t_out),
                        to: src_ip,
                    });
                }
            }
            Direction::Unknown => {}
        }
    }

    fn evict(&mut self, now: u64) {
        while let Some(&(key, t)) = self.order.front() {
            if now.saturating_sub(t) > self.window_nanos {
                self.order.pop_front();
                // Only remove if the stored time still matches (it may
                // have been matched and re-inserted meanwhile).
                if self.outstanding.get(&key) == Some(&t) {
                    self.outstanding.remove(&key);
                }
            } else {
                break;
            }
        }
    }

    /// Drop unmatched uplink packets older than the matching window —
    /// the streaming engine's per-tick bound on candidate state. Lossless
    /// (the evicted entries could never match again anyway).
    pub(crate) fn prune(&mut self, now: u64) {
        self.evict(now);
    }

    /// All samples so far.
    pub fn samples(&self) -> &[RttSample] {
        &self.samples
    }

    /// Unmatched uplink packets currently held.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }
}

/// Method 2: RTTs from the TCP control connection.
#[derive(Debug)]
pub struct TcpRttEstimator {
    /// (data-direction 5-tuple, expected ack) → send time.
    pending: HashMap<(FiveTuple, u32), u64>,
    order: VecDeque<((FiveTuple, u32), u64)>,
    window_nanos: u64,
    samples: Vec<RttSample>,
}

impl Default for TcpRttEstimator {
    fn default() -> Self {
        Self::new(5_000_000_000)
    }
}

impl TcpRttEstimator {
    /// Estimator with the given matching window.
    pub fn new(window_nanos: u64) -> TcpRttEstimator {
        TcpRttEstimator {
            pending: HashMap::new(),
            order: VecDeque::new(),
            window_nanos,
            samples: Vec::new(),
        }
    }

    /// Feed every TCP segment on Zoom control connections.
    pub fn on_segment(&mut self, t: &TcpMeta) {
        // A data segment arms a probe: we await an ACK covering seq+len.
        if t.payload_len > 0 {
            let expected = t.seq.wrapping_add(t.payload_len as u32);
            let key = (t.five_tuple, expected);
            self.pending.entry(key).or_insert(t.ts_nanos);
            self.order.push_back((key, t.ts_nanos));
            self.evict(t.ts_nanos);
        }
        // An ACK answers a probe armed in the reverse direction; the RTT
        // is attributed to the ACK's sender.
        if t.has_ack {
            let key = (t.five_tuple.reversed(), t.ack);
            if let Some(t_data) = self.pending.remove(&key) {
                self.samples.push(RttSample {
                    at: t.ts_nanos,
                    rtt_nanos: t.ts_nanos.saturating_sub(t_data),
                    to: t.five_tuple.src_ip,
                });
            }
        }
    }

    fn evict(&mut self, now: u64) {
        while let Some(&(key, t)) = self.order.front() {
            if now.saturating_sub(t) > self.window_nanos {
                self.order.pop_front();
                if self.pending.get(&key) == Some(&t) {
                    self.pending.remove(&key);
                }
            } else {
                break;
            }
        }
    }

    /// All samples so far.
    pub fn samples(&self) -> &[RttSample] {
        &self.samples
    }

    /// Replace the sample vector — the sharded merge installs the k-way
    /// time-merged union of per-shard samples.
    pub(crate) fn set_samples(&mut self, samples: Vec<RttSample>) {
        self.samples = samples;
    }

    /// Samples attributed to a particular responder.
    pub fn samples_to(&self, ip: IpAddr) -> Vec<RttSample> {
        self.samples
            .iter()
            .filter(|s| s.to == ip)
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::RtpMeta;
    use std::net::Ipv4Addr;
    use zoom_wire::ipv4::Protocol;
    use zoom_wire::zoom::{Framing, MediaType, RtpPayloadKind};

    const MS: u64 = 1_000_000;

    fn tuple(up: bool) -> FiveTuple {
        let client = IpAddr::V4(Ipv4Addr::new(10, 8, 0, 1));
        let server = IpAddr::V4(Ipv4Addr::new(170, 114, 0, 9));
        if up {
            FiveTuple {
                src_ip: client,
                dst_ip: server,
                src_port: 51_000,
                dst_port: 8801,
                protocol: Protocol::Udp,
            }
        } else {
            FiveTuple {
                src_ip: server,
                dst_ip: IpAddr::V4(Ipv4Addr::new(10, 8, 0, 2)),
                src_port: 8801,
                dst_port: 52_000,
                protocol: Protocol::Udp,
            }
        }
    }

    fn media(at: u64, dir: Direction, seq: u16) -> PacketMeta {
        PacketMeta {
            ts_nanos: at,
            five_tuple: tuple(dir == Direction::ToServer),
            ip_len: 1_000,
            family: zoom_wire::family::FamilyId::Zoom,
            framing: Framing::Server,
            media_type: MediaType::Video,
            direction: dir,
            rtp: Some(RtpMeta {
                ssrc: 0x21,
                payload_type: 98,
                sequence: seq,
                timestamp: 90_000,
                marker: false,
                kind: RtpPayloadKind::VideoMain,
            }),
            rtcp: None,
            frame_seq: Some(1),
            pkts_in_frame: Some(1),
            media_payload_len: 900,
        }
    }

    #[test]
    fn matches_stream_copies() {
        let mut e = RtpRttEstimator::default();
        e.on_packet(&media(1_000 * MS, Direction::ToServer, 5));
        e.on_packet(&media(1_046 * MS, Direction::FromServer, 5));
        assert_eq!(e.samples().len(), 1);
        let s = e.samples()[0];
        assert_eq!(s.rtt_nanos, 46 * MS);
        assert!((s.rtt_ms() - 46.0).abs() < 1e-9);
        assert_eq!(s.to, IpAddr::V4(Ipv4Addr::new(170, 114, 0, 9)));
    }

    #[test]
    fn no_match_for_different_seq_or_pt() {
        let mut e = RtpRttEstimator::default();
        e.on_packet(&media(0, Direction::ToServer, 5));
        e.on_packet(&media(10 * MS, Direction::FromServer, 6));
        let mut other_pt = media(12 * MS, Direction::FromServer, 5);
        other_pt.rtp.as_mut().unwrap().payload_type = 110;
        e.on_packet(&other_pt);
        assert!(e.samples().is_empty());
    }

    #[test]
    fn retransmission_does_not_shrink_rtt() {
        let mut e = RtpRttEstimator::default();
        e.on_packet(&media(0, Direction::ToServer, 5));
        e.on_packet(&media(130 * MS, Direction::ToServer, 5)); // retransmit
        e.on_packet(&media(150 * MS, Direction::FromServer, 5));
        assert_eq!(e.samples()[0].rtt_nanos, 150 * MS);
    }

    #[test]
    fn old_probes_evicted() {
        let mut e = RtpRttEstimator::new(1_000 * MS);
        e.on_packet(&media(0, Direction::ToServer, 5));
        // Trigger eviction with a much later uplink packet.
        e.on_packet(&media(5_000 * MS, Direction::ToServer, 6));
        assert_eq!(e.outstanding(), 1);
        e.on_packet(&media(5_010 * MS, Direction::FromServer, 5));
        assert!(e.samples().is_empty());
    }

    fn tcp(at: u64, up: bool, seq: u32, ack: u32, len: usize) -> TcpMeta {
        let client = IpAddr::V4(Ipv4Addr::new(10, 8, 0, 1));
        let server = IpAddr::V4(Ipv4Addr::new(170, 114, 0, 9));
        let ft = if up {
            FiveTuple {
                src_ip: client,
                dst_ip: server,
                src_port: 50_000,
                dst_port: 443,
                protocol: Protocol::Tcp,
            }
        } else {
            FiveTuple {
                src_ip: server,
                dst_ip: client,
                src_port: 443,
                dst_port: 50_000,
                protocol: Protocol::Tcp,
            }
        };
        TcpMeta {
            ts_nanos: at,
            five_tuple: ft,
            seq,
            ack,
            has_ack: true,
            payload_len: len,
            ip_len: 40 + len,
        }
    }

    #[test]
    fn tcp_rtt_to_server_and_client() {
        let mut e = TcpRttEstimator::default();
        // Client data at t=0, server ACK at t=40 ms → RTT to server.
        e.on_segment(&tcp(0, true, 1_000, 0, 100));
        e.on_segment(&tcp(40 * MS, false, 500, 1_100, 0));
        // Server data at t=100 ms, client ACK at t=103 ms → RTT to client.
        e.on_segment(&tcp(100 * MS, false, 500, 1_100, 50));
        e.on_segment(&tcp(103 * MS, true, 1_100, 550, 0));
        assert_eq!(e.samples().len(), 2);
        let server = IpAddr::V4(Ipv4Addr::new(170, 114, 0, 9));
        let client = IpAddr::V4(Ipv4Addr::new(10, 8, 0, 1));
        assert_eq!(e.samples_to(server)[0].rtt_nanos, 40 * MS);
        assert_eq!(e.samples_to(client)[0].rtt_nanos, 3 * MS);
    }

    #[test]
    fn tcp_partial_ack_does_not_match() {
        let mut e = TcpRttEstimator::default();
        e.on_segment(&tcp(0, true, 1_000, 0, 100));
        e.on_segment(&tcp(40 * MS, false, 500, 1_050, 0)); // acks half
        assert!(e.samples().is_empty());
    }

    #[test]
    fn tcp_seq_wraparound() {
        let mut e = TcpRttEstimator::default();
        e.on_segment(&tcp(0, true, u32::MAX - 10, 0, 100));
        e.on_segment(&tcp(
            25 * MS,
            false,
            500,
            (u32::MAX - 10).wrapping_add(100),
            0,
        ));
        assert_eq!(e.samples().len(), 1);
        assert_eq!(e.samples()[0].rtt_nanos, 25 * MS);
    }
}
