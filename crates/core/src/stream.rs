//! RTP stream and sub-stream tracking (Fig. 6's aggregation levels).
//!
//! A *media stream* is identified by IP 5-tuple + SSRC; inside it,
//! *sub-streams* are told apart by RTP payload type (main vs FEC — same
//! timestamps, separate sequence spaces, §4.2.3). On top of each video or
//! screen-share stream sit frames, reconstructed by
//! [`crate::metrics::frame::FrameTracker`]; every stream also accumulates
//! per-second media bit rates and the frame-level jitter estimate.

use crate::fxhash::FxHashMap;
use crate::metrics::frame::{Completion, FrameTracker};
use crate::metrics::VIDEO_SAMPLING_RATE;
use crate::metrics::jitter::JitterEstimator;
use crate::metrics::loss::{SeqStats, SeqTracker};
use crate::packet::{Direction, PacketMeta};
use crate::stats::SparseBins;
use zoom_wire::family::FamilyId;
use zoom_wire::flow::FiveTuple;
use zoom_wire::zoom::{MediaType, RtpPayloadKind};

/// Identity of one directional media stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamKey {
    /// The directional 5-tuple carrying the stream.
    pub flow: FiveTuple,
    /// RTP synchronization source.
    pub ssrc: u32,
}

/// One RTP sub-stream (payload type) within a stream.
#[derive(Debug)]
pub struct SubStream {
    /// RTP payload type.
    pub payload_type: u8,
    /// Sub-stream classification (media, FEC, probe, …).
    pub kind: RtpPayloadKind,
    /// Packets observed.
    pub packets: u64,
    /// RTP payload bytes observed.
    pub media_bytes: u64,
    /// First RTP sequence number seen.
    pub first_seq: u16,
    /// Most recent RTP sequence number.
    pub last_seq: u16,
    /// First RTP timestamp seen.
    pub first_rtp_ts: u32,
    /// Most recent RTP timestamp.
    pub last_rtp_ts: u32,
    seq: SeqTracker,
}

impl SubStream {
    /// Sequence statistics so far.
    pub fn seq_stats(&self) -> SeqStats {
        self.seq.stats()
    }
}

/// One tracked media stream.
pub struct Stream {
    /// The stream's identity: (flow, SSRC).
    pub key: StreamKey,
    /// Protocol family the stream was classified under.
    pub family: FamilyId,
    /// Media type (ZME encapsulation type, or the WebRTC payload-type
    /// mapping).
    pub media_type: MediaType,
    /// Inferred direction.
    pub direction: Direction,
    /// Timestamp of the first packet, nanoseconds.
    pub first_seen: u64,
    /// Timestamp of the most recent packet, nanoseconds.
    pub last_seen: u64,
    /// Identifier shared by all copies of the same media (assigned by the
    /// grouping heuristic's step 1).
    pub unique_id: Option<u32>,
    /// Sub-streams keyed by RTP payload type.
    pub substreams: FxHashMap<u8, SubStream>,
    /// Frame reconstruction (video and screen share only).
    pub frames: Option<FrameTracker>,
    /// Frame-level jitter over the main sub-stream.
    pub frame_jitter: JitterEstimator,
    /// Media payload bytes per second.
    pub media_rate: SparseBins,
    /// IP bytes per second (overall rate including headers).
    pub ip_rate: SparseBins,
    /// Packets per second.
    pub pkt_rate: SparseBins,
    /// Recently fed RTP timestamps: the jitter estimator gets exactly one
    /// observation per frame (its first sighting), and a retransmitted
    /// duplicate of an already-seen frame must not re-trigger it. Genuine
    /// reorderings (a frame first seen late) still feed it — that lateness
    /// IS jitter, per RFC 3550.
    fed_jitter_ts: std::collections::VecDeque<u32>,
    /// Total packets.
    pub packets: u64,
}

impl Stream {
    fn new(
        key: StreamKey,
        family: FamilyId,
        media_type: MediaType,
        direction: Direction,
        now: u64,
    ) -> Stream {
        let frames = match (family, media_type) {
            // Zoom video carries a packets-in-frame field (Table 1);
            // WebRTC video has no such field, so frames complete on the
            // RTP marker bit like screen share does.
            (FamilyId::Zoom, MediaType::Video) => Some(FrameTracker::video()),
            (_, MediaType::Video) => {
                Some(FrameTracker::new(Completion::MarkerBit, VIDEO_SAMPLING_RATE))
            }
            (_, MediaType::ScreenShare) => Some(FrameTracker::screen_share()),
            _ => None,
        };
        Stream {
            key,
            family,
            media_type,
            direction,
            first_seen: now,
            last_seen: now,
            unique_id: None,
            substreams: FxHashMap::default(),
            frames,
            frame_jitter: JitterEstimator::video(),
            media_rate: SparseBins::per_second(),
            ip_rate: SparseBins::per_second(),
            pkt_rate: SparseBins::per_second(),
            fed_jitter_ts: std::collections::VecDeque::new(),
            packets: 0,
        }
    }

    fn on_packet(&mut self, m: &PacketMeta) {
        let rtp = m.rtp.as_ref().expect("stream packets carry RTP");
        self.last_seen = m.ts_nanos;
        self.packets += 1;
        self.ip_rate.add(m.ts_nanos, m.ip_len as f64);
        self.pkt_rate.add(m.ts_nanos, 1.0);
        self.media_rate.add(m.ts_nanos, m.media_payload_len as f64);

        let sub = self
            .substreams
            .entry(rtp.payload_type)
            .or_insert_with(|| SubStream {
                payload_type: rtp.payload_type,
                kind: rtp.kind,
                packets: 0,
                media_bytes: 0,
                first_seq: rtp.sequence,
                last_seq: rtp.sequence,
                first_rtp_ts: rtp.timestamp,
                last_rtp_ts: rtp.timestamp,
                seq: SeqTracker::new(),
            });
        sub.packets += 1;
        sub.media_bytes += m.media_payload_len as u64;
        sub.last_seq = rtp.sequence;
        sub.last_rtp_ts = rtp.timestamp;
        sub.seq.on_sequence(rtp.sequence);

        // Frames and jitter: main sub-stream only (FEC shares timestamps
        // but is not part of the frame).
        if !rtp.kind.is_fec() {
            if let Some(frames) = &mut self.frames {
                frames.on_packet(
                    m.ts_nanos,
                    rtp.timestamp,
                    rtp.sequence,
                    rtp.marker,
                    m.media_payload_len,
                    m.pkts_in_frame,
                );
            }
            // Feed the jitter estimator once per frame, on the frame's
            // first sighting. Duplicates (Zoom retransmissions reuse the
            // timestamp) must not re-trigger; first-seen-late frames do.
            if !self.fed_jitter_ts.contains(&rtp.timestamp) {
                self.fed_jitter_ts.push_back(rtp.timestamp);
                if self.fed_jitter_ts.len() > 64 {
                    self.fed_jitter_ts.pop_front();
                }
                if self.media_type == MediaType::Video || self.media_type == MediaType::ScreenShare
                {
                    self.frame_jitter.on_frame(m.ts_nanos, rtp.timestamp);
                }
            }
        }
    }

    /// The dominant sub-stream: most packets, ties broken by payload type.
    ///
    /// The explicit tie-break makes the choice independent of `HashMap`
    /// iteration order, which both the sequential and the sharded pipeline
    /// rely on for reproducible grouping decisions.
    fn dominant_substream(&self) -> Option<&SubStream> {
        self.substreams
            .values()
            .max_by_key(|s| (s.packets, s.payload_type))
    }

    /// Most recent RTP timestamp across sub-streams (grouping step 1 uses
    /// this to match stream copies).
    pub fn last_rtp_timestamp(&self) -> Option<u32> {
        self.dominant_substream().map(|s| s.last_rtp_ts)
    }

    /// Snapshot of the state grouping step 1 compares candidates on:
    /// `(last RTP timestamp, last sequence number, last seen)`, read from
    /// the dominant sub-stream. `None` until the first RTP packet.
    pub fn candidate_state(&self) -> Option<(u32, u16, u64)> {
        self.dominant_substream()
            .map(|s| (s.last_rtp_ts, s.last_seq, self.last_seen))
    }

    /// Media payload bytes across all sub-streams.
    pub fn media_bytes(&self) -> u64 {
        self.substreams.values().map(|s| s.media_bytes).sum()
    }

    /// Duration from first to last packet.
    pub fn duration_nanos(&self) -> u64 {
        self.last_seen.saturating_sub(self.first_seen)
    }

    /// Mean media bit rate over the stream's lifetime, bits/s.
    pub fn mean_media_bitrate(&self) -> f64 {
        let d = self.duration_nanos();
        if d == 0 {
            return 0.0;
        }
        self.media_bytes() as f64 * 8.0 / (d as f64 / 1e9)
    }
}

/// Tracks all streams in a trace.
#[derive(Default)]
pub struct StreamTracker {
    streams: FxHashMap<StreamKey, Stream>,
    /// Keys in creation order (stable reporting).
    order: Vec<StreamKey>,
}

impl StreamTracker {
    /// Empty tracker.
    pub fn new() -> StreamTracker {
        StreamTracker::default()
    }

    /// Feed one Zoom media packet. Returns the key and whether the packet
    /// created a new stream (the grouping heuristic hooks on creation).
    pub fn on_packet(&mut self, m: &PacketMeta) -> Option<(StreamKey, bool)> {
        let rtp = m.rtp.as_ref()?;
        let key = StreamKey {
            flow: m.five_tuple,
            ssrc: rtp.ssrc,
        };
        let created = !self.streams.contains_key(&key);
        let stream = self
            .streams
            .entry(key)
            .or_insert_with(|| Stream::new(key, m.family, m.media_type, m.direction, m.ts_nanos));
        stream.on_packet(m);
        if created {
            self.order.push(key);
        }
        Some((key, created))
    }

    /// Number of tracked streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True when no streams were seen.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Access one stream.
    pub fn get(&self, key: &StreamKey) -> Option<&Stream> {
        self.streams.get(key)
    }

    /// Mutable access (grouping sets `unique_id`).
    pub fn get_mut(&mut self, key: &StreamKey) -> Option<&mut Stream> {
        self.streams.get_mut(key)
    }

    /// Iterate streams in creation order.
    pub fn iter(&self) -> impl Iterator<Item = &Stream> + '_ {
        self.order.iter().filter_map(move |k| self.streams.get(k))
    }

    /// Iterate streams of one media type.
    pub fn of_type(&self, t: MediaType) -> impl Iterator<Item = &Stream> + '_ {
        self.iter().filter(move |s| s.media_type == t)
    }

    /// Take ownership of all streams (sharded merge moves per-shard
    /// streams into the merged tracker).
    pub(crate) fn into_streams(self) -> FxHashMap<StreamKey, Stream> {
        self.streams
    }

    /// Insert a fully built stream, appending it to the creation order.
    /// Used by the sharded merge, which replays global creation order.
    pub(crate) fn adopt(&mut self, stream: Stream) {
        let key = stream.key;
        if self.streams.insert(key, stream).is_none() {
            self.order.push(key);
        }
    }

    /// Remove and return every stream idle since before `cutoff`
    /// (`last_seen < cutoff`), preserving creation order among both the
    /// evicted and the survivors. The streaming engine's bounded-memory
    /// tick; a stream that reappears later is tracked as a fresh one.
    pub(crate) fn evict_idle(&mut self, cutoff: u64) -> Vec<Stream> {
        let mut evicted = Vec::new();
        let streams = &mut self.streams;
        self.order.retain(|k| match streams.get(k) {
            Some(s) if s.last_seen < cutoff => {
                evicted.push(streams.remove(k).expect("checked present"));
                false
            }
            _ => true,
        });
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::RtpMeta;
    use std::net::{IpAddr, Ipv4Addr};
    use zoom_wire::ipv4::Protocol;
    use zoom_wire::zoom::Framing;

    const MS: u64 = 1_000_000;

    fn meta(at: u64, ssrc: u32, pt: u8, seq: u16, ts: u32, marker: bool) -> PacketMeta {
        PacketMeta {
            ts_nanos: at,
            five_tuple: FiveTuple {
                src_ip: IpAddr::V4(Ipv4Addr::new(10, 8, 0, 1)),
                dst_ip: IpAddr::V4(Ipv4Addr::new(170, 114, 0, 1)),
                src_port: 50_000,
                dst_port: 8801,
                protocol: Protocol::Udp,
            },
            ip_len: 1_000,
            family: zoom_wire::family::FamilyId::Zoom,
            framing: Framing::Server,
            media_type: MediaType::Video,
            direction: Direction::ToServer,
            rtp: Some(RtpMeta {
                ssrc,
                payload_type: pt,
                sequence: seq,
                timestamp: ts,
                marker,
                kind: RtpPayloadKind::classify(MediaType::Video, pt),
            }),
            rtcp: None,
            frame_seq: Some(1),
            pkts_in_frame: Some(1),
            media_payload_len: 900,
        }
    }

    #[test]
    fn streams_keyed_by_flow_and_ssrc() {
        let mut t = StreamTracker::new();
        let (k1, created1) = t.on_packet(&meta(0, 0x21, 98, 1, 100, true)).unwrap();
        let (_, created2) = t.on_packet(&meta(MS, 0x21, 98, 2, 200, true)).unwrap();
        let (k3, created3) = t.on_packet(&meta(MS, 0x22, 98, 1, 100, true)).unwrap();
        assert!(created1);
        assert!(!created2);
        assert!(created3);
        assert_ne!(k1, k3);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&k1).unwrap().packets, 2);
    }

    #[test]
    fn fec_forms_separate_substream() {
        let mut t = StreamTracker::new();
        let (k, _) = t.on_packet(&meta(0, 0x21, 98, 1, 100, true)).unwrap();
        t.on_packet(&meta(MS, 0x21, 110, 1, 100, false)).unwrap();
        let s = t.get(&k).unwrap();
        assert_eq!(s.substreams.len(), 2);
        assert!(s.substreams[&110].kind.is_fec());
        // FEC packets don't create frames; the single main packet does.
        assert_eq!(s.frames.as_ref().unwrap().frames().len(), 1);
    }

    #[test]
    fn media_rate_accumulates() {
        let mut t = StreamTracker::new();
        let (k, _) = t.on_packet(&meta(0, 0x21, 98, 1, 100, true)).unwrap();
        t.on_packet(&meta(100 * MS, 0x21, 98, 2, 200, true))
            .unwrap();
        t.on_packet(&meta(1_500 * MS, 0x21, 98, 3, 300, true))
            .unwrap();
        let s = t.get(&k).unwrap();
        assert_eq!(s.media_bytes(), 2_700);
        assert_eq!(s.media_rate.len(), 2); // two seconds touched
        assert!(s.mean_media_bitrate() > 0.0);
        assert_eq!(s.duration_nanos(), 1_500 * MS);
    }

    #[test]
    fn jitter_fed_once_per_timestamp() {
        let mut t = StreamTracker::new();
        // Two packets of the same frame, then the next frame.
        let (k, _) = t.on_packet(&meta(0, 0x21, 98, 1, 100, false)).unwrap();
        t.on_packet(&meta(MS / 4, 0x21, 98, 2, 100, true)).unwrap();
        t.on_packet(&meta(33 * MS, 0x21, 98, 3, 3_100, true))
            .unwrap();
        let s = t.get(&k).unwrap();
        // Only two jitter observations (one per distinct timestamp).
        assert!(s.frame_jitter.samples().len() <= 2);
        assert_eq!(s.last_rtp_timestamp(), Some(3_100));
    }

    #[test]
    fn of_type_filters() {
        let mut t = StreamTracker::new();
        t.on_packet(&meta(0, 0x21, 98, 1, 100, true)).unwrap();
        assert_eq!(t.of_type(MediaType::Video).count(), 1);
        assert_eq!(t.of_type(MediaType::Audio).count(), 0);
    }
}
