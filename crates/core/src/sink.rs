//! The unified ingest API: one trait all three analysis sinks implement.
//!
//! Before this trait existed the pipeline had three drifting entry
//! points — `Analyzer::process_record`, `ParallelAnalyzer::process_record`
//! and `StreamingEngine::push_record` — with incompatible shapes (borrow
//! vs. owned records, infallible vs. `Result`, report-by-reference vs.
//! owned report). Those record-taking methods have since been removed;
//! [`PacketSink`] pins the one remaining shape:
//!
//! * [`push`](PacketSink::push) — borrowed bytes in, `Result` out: the
//!   zero-copy fast path every sink already had inherently
//!   (`process_packet` / `push_packet`) becomes the canonical API;
//! * [`finish`](PacketSink::finish) — consumes the sink, returns the
//!   owned [`AnalysisReport`];
//! * [`take_windows`](PacketSink::take_windows) — drains any window
//!   reports a streaming sink has buffered (batch sinks return nothing),
//!   so one generic read loop serves windowed and unwindowed modes;
//! * [`metrics`](PacketSink::metrics) /
//!   [`note_pcap_truncated`](PacketSink::note_pcap_truncated) — the
//!   observability surface ([`crate::obs`]), written once at the sink
//!   boundary instead of three times.
//!
//! ## Migration (the old entry points no longer exist)
//!
//! ```text
//! removed                                  replacement
//! ---------------------------------------  -------------------------------------
//! a.process_record(&rec, link)             a.push(rec.ts_nanos, &rec.data, link)?
//! a.finish() (borrowing snapshot)          a.finish()? (consuming) / a.report()
//! engine.push_record(&rec, link)? -> wins  engine.push(..)?; engine.take_windows()
//! ```
//!
//! A generic feed loop over any sink:
//!
//! ```
//! use zoom_analysis::{PacketSink, Error};
//! use zoom_analysis::report::AnalysisReport;
//! use zoom_wire::pcap::{LinkType, Record};
//!
//! fn feed<S: PacketSink>(mut sink: S, records: &[Record]) -> Result<AnalysisReport, Error> {
//!     for r in records {
//!         sink.push(r.ts_nanos, &r.data, LinkType::Ethernet)?;
//!         for w in sink.take_windows() {
//!             println!("{}", w.to_json());
//!         }
//!     }
//!     sink.finish()
//! }
//!
//! # use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
//! let report = feed(Analyzer::new(AnalyzerConfig::default()), &[])?;
//! assert_eq!(report.summary.total_packets, 0);
//! # Ok::<(), Error>(())
//! ```

use crate::error::Error;
use crate::obs::MetricsSnapshot;
use crate::report::{AnalysisReport, WindowReport};
use zoom_wire::handoff::RecordBatch;
use zoom_wire::pcap::LinkType;

/// A packet-ingest sink: feed it capture records, finish it into an
/// [`AnalysisReport`]. Implemented by [`crate::pipeline::Analyzer`]
/// (sequential batch), [`crate::parallel::ParallelAnalyzer`] (sharded),
/// and [`crate::engine::StreamingEngine`] (windowed streaming).
pub trait PacketSink {
    /// Ingest one record as borrowed bytes (the zero-copy fast path; no
    /// per-record allocation in any implementation).
    ///
    /// A record the dissector rejects is *not* an error — it is counted
    /// in the sink's drop metrics and the call returns `Ok(())`. `Err` is
    /// reserved for sink-level failures (e.g. a dead shard worker).
    fn push(&mut self, ts_nanos: u64, data: &[u8], link: LinkType) -> Result<(), Error>;

    /// Ingest a whole capture hand-off batch
    /// ([`zoom_wire::handoff::RecordBatch`], the unit a
    /// `zoom-capture` fan-in ring carries) of records sharing one link
    /// type. Provided: the default loops [`push`](PacketSink::push) over
    /// the borrowed records and stops at the first sink-level error.
    fn push_batch(&mut self, batch: &RecordBatch, link: LinkType) -> Result<(), Error> {
        for r in batch.iter() {
            self.push(r.ts_nanos, r.data, link)?;
        }
        Ok(())
    }

    /// Drain window reports completed by previous [`push`](PacketSink::push)
    /// calls. Batch sinks never produce any; the streaming engine yields
    /// each closed tumbling window exactly once.
    fn take_windows(&mut self) -> Vec<WindowReport> {
        Vec::new()
    }

    /// Snapshot of the sink's [`crate::obs::PipelineMetrics`].
    fn metrics(&self) -> MetricsSnapshot;

    /// Record the pcap reader's torn-tail count (a gauge: pass the
    /// reader's cumulative [`zoom_wire::pcap::Reader::truncated_records`]
    /// before finishing so lossy inputs surface in the report's `drops`
    /// section instead of only on stderr).
    fn note_pcap_truncated(&mut self, records: u64);

    /// Record the pcap reader's cumulative delivery progress (gauges:
    /// pass [`zoom_wire::pcap::Reader::records_read`] /
    /// [`zoom_wire::pcap::Reader::bytes_read`]), so a metrics snapshot
    /// can relate pipeline counters to reader position. Optional; the
    /// default keeps the gauges at zero.
    fn note_pcap_progress(&mut self, _records: u64, _bytes: u64) {}

    /// Finish the analysis, consuming the sink and returning the owned
    /// final report.
    fn finish(self) -> Result<AnalysisReport, Error>
    where
        Self: Sized;
}
