//! Production observability: a lock-light metrics registry for the
//! analysis pipeline, plus feature-gated tracing hooks.
//!
//! The paper's toolchain is meant to run unattended against production
//! campus traffic (§6: a 12-hour, 1.8-billion-packet trace), which
//! demands the operational visibility a real deployment has: where
//! packets are dropped, which dissect stage rejected them, how hot each
//! shard runs, and whether eviction is discarding live streams. This
//! module provides:
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — relaxed-ordering atomics,
//!   no locks, no allocation after construction, safe to share across the
//!   router and shard threads through one `Arc<PipelineMetrics>`;
//! * [`PipelineMetrics`] — the registry every sink
//!   ([`crate::pipeline::Analyzer`], [`crate::parallel::ParallelAnalyzer`],
//!   [`crate::engine::StreamingEngine`]) threads through its hot path;
//! * [`MetricsSnapshot`] — a plain-data copy renderable as JSON
//!   ([`MetricsSnapshot::to_json`]) or Prometheus text exposition format
//!   ([`MetricsSnapshot::to_prom`]);
//! * [`trace`] — span/event hooks around shard merge, checkpoint, and
//!   drain that compile to nothing unless the `obs-trace` cargo feature
//!   is enabled.
//!
//! Counter updates use `Ordering::Relaxed` throughout: each counter is
//! independently monotone and snapshots are only read after ingest
//! quiesces (or as an eventually-consistent live view), so no
//! cross-counter ordering is required. An uncontended relaxed RMW is a
//! single lock-prefixed instruction — the full per-packet budget is a
//! handful of them, which keeps the `bench_ingest` throughput regression
//! inside the ≤5 % acceptance bound.

use crate::report::JsonObj;
use std::sync::atomic::{AtomicU64, Ordering};
use zoom_wire::dissect::DropStage;

// ---------------------------------------------------------- primitives --

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins atomic gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if `v` is larger (peak tracking).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket cumulative histogram (Prometheus semantics: each bucket
/// counts observations ≤ its bound, plus an implicit `+Inf` bucket).
///
/// Bounds are a static slice so construction allocates exactly one `Vec`
/// of atomics and observation is a branch-free scan of ≤ 8 bounds.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram over `bounds` (must be strictly increasing).
    pub fn new(bounds: &'static [u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.iter().take_while(|&&b| v > b).count();
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Plain-data copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds,
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`]. `buckets[i]` counts observations
/// in `(bounds[i-1], bounds[i]]`; the final entry is the `+Inf` bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Upper bounds of the finite buckets.
    pub bounds: &'static [u64],
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

// ------------------------------------------------------------ registry --

/// Captured-packet size buckets (bytes): small control frames through
/// full-MTU media.
pub const PACKET_SIZE_BOUNDS: &[u64] = &[64, 128, 256, 512, 1024, 1536];

/// Per-shard routing metrics.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Records routed to this shard.
    pub routed: Counter,
    /// Batches flushed to this shard's channel.
    pub batches: Counter,
    /// Records batched but not yet flushed (queue depth at the router).
    pub pending: Gauge,
}

/// The pipeline-wide metrics registry, shared by the router and every
/// shard through one `Arc`.
///
/// All fields are public so instrumentation sites pay exactly one atomic
/// RMW with no accessor indirection; readers should go through
/// [`PipelineMetrics::snapshot`].
#[derive(Debug)]
pub struct PipelineMetrics {
    /// Records offered to the sink (accepted or dropped).
    pub packets_in: Counter,
    /// Captured bytes across offered records.
    pub bytes_in: Counter,
    /// Records that dissected and classified as Zoom traffic.
    pub packets_classified: Counter,
    /// Records that dissected but did not classify as Zoom.
    pub packets_not_zoom: Counter,
    /// Subset of `packets_not_zoom`: UDP to/from the Zoom media port
    /// (8801) whose Zoom Media Encapsulation failed to parse.
    pub malformed_zme: Counter,
    /// Captured-size distribution of offered records.
    pub packet_size: Histogram,

    /// Dissect drops: capture link type not decoded.
    pub drop_unsupported_link: Counter,
    /// Dissect drops: Ethernet frame that is not IPv4/IPv6.
    pub drop_non_ip: Counter,
    /// Dissect drops: IP protocol other than UDP/TCP.
    pub drop_non_transport: Counter,
    /// Dissect drops: headers ran past the captured bytes.
    pub drop_truncated: Counter,
    /// Dissect drops: structurally invalid header.
    pub drop_malformed: Counter,

    /// Records the pcap reader dropped at a torn file tail (gauge: set
    /// from [`zoom_wire::pcap::Reader::truncated_records`] by the ingest
    /// loop).
    pub pcap_truncated_records: Gauge,
    /// Complete records the pcap reader delivered.
    pub pcap_records_read: Gauge,
    /// Captured bytes the pcap reader delivered.
    pub pcap_bytes_read: Gauge,

    /// Per-shard routing metrics (one entry per shard; a sequential
    /// analyzer has none).
    pub shards: Vec<ShardMetrics>,

    /// Tumbling windows closed by the streaming engine.
    pub windows_closed: Counter,
    /// Explicit checkpoints taken.
    pub checkpoints: Counter,
    /// Flows evicted by the idle timeout.
    pub evicted_flows: Counter,
    /// Streams evicted by the idle timeout.
    pub evicted_streams: Counter,
    /// Entries (flows + streams + STUN registrations + RTT candidates)
    /// currently tracked across shards.
    pub tracked_entries: Gauge,
    /// High-water mark of `tracked_entries`.
    pub peak_tracked_entries: Gauge,
}

impl PipelineMetrics {
    /// A zeroed registry with `shards` per-shard slots (0 for a purely
    /// sequential sink).
    pub fn new(shards: usize) -> PipelineMetrics {
        PipelineMetrics {
            packets_in: Counter::new(),
            bytes_in: Counter::new(),
            packets_classified: Counter::new(),
            packets_not_zoom: Counter::new(),
            malformed_zme: Counter::new(),
            packet_size: Histogram::new(PACKET_SIZE_BOUNDS),
            drop_unsupported_link: Counter::new(),
            drop_non_ip: Counter::new(),
            drop_non_transport: Counter::new(),
            drop_truncated: Counter::new(),
            drop_malformed: Counter::new(),
            pcap_truncated_records: Gauge::new(),
            pcap_records_read: Gauge::new(),
            pcap_bytes_read: Gauge::new(),
            shards: (0..shards).map(|_| ShardMetrics::default()).collect(),
            windows_closed: Counter::new(),
            checkpoints: Counter::new(),
            evicted_flows: Counter::new(),
            evicted_streams: Counter::new(),
            tracked_entries: Gauge::new(),
            peak_tracked_entries: Gauge::new(),
        }
    }

    /// Count one dissect rejection at its [`DropStage`].
    #[inline]
    pub fn record_drop(&self, stage: DropStage) {
        match stage {
            DropStage::UnsupportedLink => self.drop_unsupported_link.inc(),
            DropStage::NonIp => self.drop_non_ip.inc(),
            DropStage::NonTransport => self.drop_non_transport.inc(),
            DropStage::Truncated => self.drop_truncated.inc(),
            DropStage::Malformed => self.drop_malformed.inc(),
        }
    }

    /// Count one offered record (size histogram included).
    #[inline]
    pub fn record_in(&self, bytes: usize) {
        self.packets_in.inc();
        self.bytes_in.add(bytes as u64);
        self.packet_size.observe(bytes as u64);
    }

    /// Sum of all dissect-stage drop counters.
    pub fn drops_total(&self) -> u64 {
        self.drop_unsupported_link.get()
            + self.drop_non_ip.get()
            + self.drop_non_transport.get()
            + self.drop_truncated.get()
            + self.drop_malformed.get()
    }

    /// Plain-data copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            packets_in: self.packets_in.get(),
            bytes_in: self.bytes_in.get(),
            packets_classified: self.packets_classified.get(),
            packets_not_zoom: self.packets_not_zoom.get(),
            malformed_zme: self.malformed_zme.get(),
            packet_size: self.packet_size.snapshot(),
            drop_unsupported_link: self.drop_unsupported_link.get(),
            drop_non_ip: self.drop_non_ip.get(),
            drop_non_transport: self.drop_non_transport.get(),
            drop_truncated: self.drop_truncated.get(),
            drop_malformed: self.drop_malformed.get(),
            pcap_truncated_records: self.pcap_truncated_records.get(),
            pcap_records_read: self.pcap_records_read.get(),
            pcap_bytes_read: self.pcap_bytes_read.get(),
            shards: self
                .shards
                .iter()
                .map(|s| ShardSnapshot {
                    routed: s.routed.get(),
                    batches: s.batches.get(),
                    pending: s.pending.get(),
                })
                .collect(),
            windows_closed: self.windows_closed.get(),
            checkpoints: self.checkpoints.get(),
            evicted_flows: self.evicted_flows.get(),
            evicted_streams: self.evicted_streams.get(),
            tracked_entries: self.tracked_entries.get(),
            peak_tracked_entries: self.peak_tracked_entries.get(),
            capture: None,
        }
    }
}

// ------------------------------------------------------------ snapshot --

/// Plain-data copy of one shard's routing metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Records routed to this shard.
    pub routed: u64,
    /// Batches flushed to this shard's channel.
    pub batches: u64,
    /// Records batched but not yet flushed.
    pub pending: u64,
}

/// Capture-pipeline verdict counters (the software Tofino of Fig. 13),
/// folded into a snapshot by the CLI when the capture stage runs in the
/// same process. Plain data: `zoom-analysis` does not depend on
/// `zoom-capture`, so the CLI maps `StageCounters` field by field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureMetricsSnapshot {
    /// Packets offered to the capture filter.
    pub total: u64,
    /// Dropped: campus endpoint in an excluded subnet.
    pub excluded: u64,
    /// Passed: either address matched the Zoom server list.
    pub zoom_ip_matched: u64,
    /// Passed: STUN exchange with a Zoom server (registers the endpoint).
    pub stun_registered: u64,
    /// Passed: P2P media recognized via the STUN registers.
    pub p2p_matched: u64,
    /// Dropped: neither a Zoom server nor a registered P2P endpoint.
    pub dropped: u64,
    /// Dropped: headers the data plane needs did not parse.
    pub unparseable: u64,
    /// Packets that reached the capture output.
    pub passed: u64,
    /// Bytes across passing packets.
    pub passed_bytes: u64,
    /// Bytes across all offered packets.
    pub total_bytes: u64,
}

/// A point-in-time, plain-data copy of [`PipelineMetrics`], renderable
/// as JSON or Prometheus text.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Records offered to the sink.
    pub packets_in: u64,
    /// Captured bytes across offered records.
    pub bytes_in: u64,
    /// Records classified as Zoom traffic.
    pub packets_classified: u64,
    /// Records dissected but not classified as Zoom.
    pub packets_not_zoom: u64,
    /// Port-8801 UDP records whose ZME framing failed to parse.
    pub malformed_zme: u64,
    /// Captured-size distribution.
    pub packet_size: HistogramSnapshot,
    /// Dissect drops: unsupported link type.
    pub drop_unsupported_link: u64,
    /// Dissect drops: non-IP ethertype.
    pub drop_non_ip: u64,
    /// Dissect drops: non-UDP/TCP protocol.
    pub drop_non_transport: u64,
    /// Dissect drops: truncated headers.
    pub drop_truncated: u64,
    /// Dissect drops: malformed headers.
    pub drop_malformed: u64,
    /// Records dropped at a torn pcap tail.
    pub pcap_truncated_records: u64,
    /// Complete records the pcap reader delivered.
    pub pcap_records_read: u64,
    /// Captured bytes the pcap reader delivered.
    pub pcap_bytes_read: u64,
    /// Per-shard routing snapshots.
    pub shards: Vec<ShardSnapshot>,
    /// Tumbling windows closed.
    pub windows_closed: u64,
    /// Explicit checkpoints taken.
    pub checkpoints: u64,
    /// Flows evicted by the idle timeout.
    pub evicted_flows: u64,
    /// Streams evicted by the idle timeout.
    pub evicted_streams: u64,
    /// Entries currently tracked.
    pub tracked_entries: u64,
    /// High-water mark of tracked entries.
    pub peak_tracked_entries: u64,
    /// Capture-filter verdict counters, when the capture stage ran in
    /// the same process (`cli filter --metrics`).
    pub capture: Option<CaptureMetricsSnapshot>,
}

impl MetricsSnapshot {
    /// Sum of the dissect-stage drop counters.
    pub fn drops_total(&self) -> u64 {
        self.drop_unsupported_link
            + self.drop_non_ip
            + self.drop_non_transport
            + self.drop_truncated
            + self.drop_malformed
    }

    /// The conservation invariant every sink maintains once ingest has
    /// quiesced: every offered record is classified, counted not-Zoom, or
    /// attributed to exactly one drop stage.
    pub fn conservation_holds(&self) -> bool {
        self.packets_in == self.packets_classified + self.packets_not_zoom + self.drops_total()
    }

    /// Serialize as one NDJSON-friendly line, tagged `"type":"metrics"`.
    pub fn to_json(&self) -> String {
        let mut drops = JsonObj::new();
        drops
            .u64("unsupported_link", self.drop_unsupported_link)
            .u64("non_ip", self.drop_non_ip)
            .u64("non_transport", self.drop_non_transport)
            .u64("truncated", self.drop_truncated)
            .u64("malformed", self.drop_malformed);
        let mut pcap = JsonObj::new();
        pcap.u64("truncated_records", self.pcap_truncated_records)
            .u64("records_read", self.pcap_records_read)
            .u64("bytes_read", self.pcap_bytes_read);
        let mut engine = JsonObj::new();
        engine
            .u64("windows_closed", self.windows_closed)
            .u64("checkpoints", self.checkpoints)
            .u64("evicted_flows", self.evicted_flows)
            .u64("evicted_streams", self.evicted_streams)
            .u64("tracked_entries", self.tracked_entries)
            .u64("peak_tracked_entries", self.peak_tracked_entries);
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|s| {
                let mut o = JsonObj::new();
                o.u64("routed", s.routed)
                    .u64("batches", s.batches)
                    .u64("pending", s.pending);
                o.finish()
            })
            .collect();
        let mut size = JsonObj::new();
        size.raw(
            "bounds",
            &format!(
                "[{}]",
                self.packet_size
                    .bounds
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        )
        .raw(
            "buckets",
            &format!(
                "[{}]",
                self.packet_size
                    .buckets
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        )
        .u64("sum", self.packet_size.sum)
        .u64("count", self.packet_size.count);

        let mut o = JsonObj::new();
        o.str("type", "metrics")
            .u64("packets_in", self.packets_in)
            .u64("bytes_in", self.bytes_in)
            .u64("packets_classified", self.packets_classified)
            .u64("packets_not_zoom", self.packets_not_zoom)
            .u64("malformed_zme", self.malformed_zme)
            .raw("drops", &drops.finish())
            .bool("conservation_holds", self.conservation_holds())
            .raw("pcap", &pcap.finish())
            .raw("packet_size", &size.finish())
            .raw("shards", &{
                let mut buf = String::from("[");
                for (i, s) in shards.iter().enumerate() {
                    if i > 0 {
                        buf.push(',');
                    }
                    buf.push_str(s);
                }
                buf.push(']');
                buf
            })
            .raw("engine", &engine.finish());
        if let Some(c) = &self.capture {
            let mut cap = JsonObj::new();
            cap.u64("total", c.total)
                .u64("excluded", c.excluded)
                .u64("zoom_ip_matched", c.zoom_ip_matched)
                .u64("stun_registered", c.stun_registered)
                .u64("p2p_matched", c.p2p_matched)
                .u64("dropped", c.dropped)
                .u64("unparseable", c.unparseable)
                .u64("passed", c.passed)
                .u64("passed_bytes", c.passed_bytes)
                .u64("total_bytes", c.total_bytes);
            o.raw("capture", &cap.finish());
        }
        o.finish()
    }

    /// Render in the Prometheus text exposition format (version 0.0.4):
    /// `# HELP` / `# TYPE` per family, `zoom_`-prefixed names, shard
    /// labels, and cumulative `_bucket{le=...}` histogram series.
    pub fn to_prom(&self) -> String {
        use std::fmt::Write as _;
        fn family(out: &mut String, name: &str, kind: &str, help: &str, v: u64) {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {v}");
        }
        let mut out2 = String::with_capacity(4096);
        for (name, help, v) in [
            (
                "zoom_packets_in_total",
                "Records offered to the analysis sink.",
                self.packets_in,
            ),
            (
                "zoom_bytes_in_total",
                "Captured bytes across offered records.",
                self.bytes_in,
            ),
            (
                "zoom_packets_classified_total",
                "Records classified as Zoom traffic.",
                self.packets_classified,
            ),
            (
                "zoom_packets_not_zoom_total",
                "Records dissected but not classified as Zoom.",
                self.packets_not_zoom,
            ),
            (
                "zoom_malformed_zme_total",
                "Port-8801 UDP records whose Zoom Media Encapsulation failed to parse.",
                self.malformed_zme,
            ),
        ] {
            family(&mut out2, name, "counter", help, v);
        }
        {
            let _ = writeln!(
                out2,
                "# HELP zoom_dissect_drops_total Records rejected by the dissector, by stage."
            );
            let _ = writeln!(out2, "# TYPE zoom_dissect_drops_total counter");
            for (stage, v) in [
                ("unsupported_link", self.drop_unsupported_link),
                ("non_ip", self.drop_non_ip),
                ("non_transport", self.drop_non_transport),
                ("truncated", self.drop_truncated),
                ("malformed", self.drop_malformed),
            ] {
                let _ = writeln!(out2, "zoom_dissect_drops_total{{stage=\"{stage}\"}} {v}");
            }

            for (name, help, v) in [
                (
                    "zoom_pcap_truncated_records",
                    "Records dropped at a torn pcap tail.",
                    self.pcap_truncated_records,
                ),
                (
                    "zoom_pcap_records_read",
                    "Complete records delivered by the pcap reader.",
                    self.pcap_records_read,
                ),
                (
                    "zoom_pcap_bytes_read",
                    "Captured bytes delivered by the pcap reader.",
                    self.pcap_bytes_read,
                ),
            ] {
                family(&mut out2, name, "gauge", help, v);
            }

            if !self.shards.is_empty() {
                let _ = writeln!(
                    out2,
                    "# HELP zoom_shard_routed_total Records routed to each shard."
                );
                let _ = writeln!(out2, "# TYPE zoom_shard_routed_total counter");
                for (i, s) in self.shards.iter().enumerate() {
                    let _ = writeln!(out2, "zoom_shard_routed_total{{shard=\"{i}\"}} {}", s.routed);
                }
                let _ = writeln!(
                    out2,
                    "# HELP zoom_shard_batches_total Batches flushed to each shard's channel."
                );
                let _ = writeln!(out2, "# TYPE zoom_shard_batches_total counter");
                for (i, s) in self.shards.iter().enumerate() {
                    let _ =
                        writeln!(out2, "zoom_shard_batches_total{{shard=\"{i}\"}} {}", s.batches);
                }
                let _ = writeln!(
                    out2,
                    "# HELP zoom_shard_pending_records Records batched at the router, not yet flushed."
                );
                let _ = writeln!(out2, "# TYPE zoom_shard_pending_records gauge");
                for (i, s) in self.shards.iter().enumerate() {
                    let _ =
                        writeln!(out2, "zoom_shard_pending_records{{shard=\"{i}\"}} {}", s.pending);
                }
            }

            for (name, help, v) in [
                (
                    "zoom_windows_closed_total",
                    "Tumbling windows closed by the streaming engine.",
                    self.windows_closed,
                ),
                (
                    "zoom_checkpoints_total",
                    "Explicit checkpoints taken.",
                    self.checkpoints,
                ),
                (
                    "zoom_evicted_flows_total",
                    "Flows evicted by the idle timeout.",
                    self.evicted_flows,
                ),
                (
                    "zoom_evicted_streams_total",
                    "Streams evicted by the idle timeout.",
                    self.evicted_streams,
                ),
            ] {
                family(&mut out2, name, "counter", help, v);
            }
            for (name, help, v) in [
                (
                    "zoom_tracked_entries",
                    "Entries currently tracked across shards.",
                    self.tracked_entries,
                ),
                (
                    "zoom_peak_tracked_entries",
                    "High-water mark of tracked entries.",
                    self.peak_tracked_entries,
                ),
            ] {
                family(&mut out2, name, "gauge", help, v);
            }

            let _ = writeln!(
                out2,
                "# HELP zoom_packet_size_bytes Captured-size distribution of offered records."
            );
            let _ = writeln!(out2, "# TYPE zoom_packet_size_bytes histogram");
            let mut cumulative = 0u64;
            for (i, bound) in self.packet_size.bounds.iter().enumerate() {
                cumulative += self.packet_size.buckets[i];
                let _ = writeln!(
                    out2,
                    "zoom_packet_size_bytes_bucket{{le=\"{bound}\"}} {cumulative}"
                );
            }
            let _ = writeln!(
                out2,
                "zoom_packet_size_bytes_bucket{{le=\"+Inf\"}} {}",
                self.packet_size.count
            );
            let _ = writeln!(out2, "zoom_packet_size_bytes_sum {}", self.packet_size.sum);
            let _ = writeln!(out2, "zoom_packet_size_bytes_count {}", self.packet_size.count);

            if let Some(c) = &self.capture {
                let _ = writeln!(
                    out2,
                    "# HELP zoom_capture_verdicts_total Capture-filter verdicts, by stage."
                );
                let _ = writeln!(out2, "# TYPE zoom_capture_verdicts_total counter");
                for (stage, v) in [
                    ("excluded", c.excluded),
                    ("zoom_ip_matched", c.zoom_ip_matched),
                    ("stun_registered", c.stun_registered),
                    ("p2p_matched", c.p2p_matched),
                    ("dropped", c.dropped),
                    ("unparseable", c.unparseable),
                ] {
                    let _ = writeln!(out2, "zoom_capture_verdicts_total{{stage=\"{stage}\"}} {v}");
                }
                for (name, help, v) in [
                    (
                        "zoom_capture_packets_total",
                        "Packets offered to the capture filter.",
                        c.total,
                    ),
                    (
                        "zoom_capture_passed_total",
                        "Packets that reached the capture output.",
                        c.passed,
                    ),
                    (
                        "zoom_capture_passed_bytes_total",
                        "Bytes across passing packets.",
                        c.passed_bytes,
                    ),
                    (
                        "zoom_capture_bytes_total",
                        "Bytes across all offered packets.",
                        c.total_bytes,
                    ),
                ] {
                    family(&mut out2, name, "counter", help, v);
                }
            }
        }
        out2
    }
}

// ------------------------------------------------------------- tracing --

/// Structured span/event hooks around the engine's coarse operations
/// (shard merge, checkpoint, drain).
///
/// With the `obs-trace` cargo feature enabled, spans time themselves and
/// emit one structured line to stderr on drop; events emit immediately.
/// Without the feature every call is an empty `#[inline(always)]` stub
/// and the whole module compiles to nothing — zero cost on hot paths.
#[cfg(feature = "obs-trace")]
pub mod trace {
    use std::time::Instant;

    /// A timed span; emits `[obs] span=<name> elapsed_us=<n>` on drop.
    pub struct Span {
        name: &'static str,
        start: Instant,
    }

    /// Open a span around an operation.
    #[must_use = "a span times until it is dropped"]
    pub fn span(name: &'static str) -> Span {
        Span {
            name,
            start: Instant::now(),
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            eprintln!(
                "[obs] span={} elapsed_us={}",
                self.name,
                self.start.elapsed().as_micros()
            );
        }
    }

    /// Emit one structured event line.
    pub fn event(name: &'static str, detail: &str) {
        eprintln!("[obs] event={name} {detail}");
    }
}

/// Zero-cost stand-ins compiled when the `obs-trace` feature is off.
#[cfg(not(feature = "obs-trace"))]
pub mod trace {
    /// Zero-sized disabled span.
    pub struct Span;

    /// No-op; returns a zero-sized [`Span`].
    #[inline(always)]
    pub fn span(_name: &'static str) -> Span {
        Span
    }

    /// No-op.
    #[inline(always)]
    pub fn event(_name: &'static str, _detail: &str) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative_in_prom() {
        let h = Histogram::new(PACKET_SIZE_BOUNDS);
        for v in [10u64, 64, 65, 200, 2000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 10 + 64 + 65 + 200 + 2000);
        // ≤64: two (10, 64); (64,128]: one (65); (128,256]: one (200);
        // +Inf overflow: one (2000).
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(*s.buckets.last().unwrap(), 1);
    }

    #[test]
    fn conservation_and_drop_routing() {
        let m = PipelineMetrics::new(2);
        m.record_in(100);
        m.record_in(200);
        m.record_in(300);
        m.packets_classified.inc();
        m.packets_not_zoom.inc();
        m.record_drop(DropStage::NonIp);
        let s = m.snapshot();
        assert_eq!(s.packets_in, 3);
        assert_eq!(s.bytes_in, 600);
        assert_eq!(s.drop_non_ip, 1);
        assert_eq!(s.drops_total(), 1);
        assert!(s.conservation_holds());
        m.record_drop(DropStage::Truncated);
        assert!(!m.snapshot().conservation_holds());
    }

    /// Snapshot test: the Prometheus text render is pinned byte for byte
    /// so schema drift (name, label, or HELP changes) is an explicit,
    /// reviewed diff.
    #[test]
    fn prom_render_is_pinned() {
        let m = PipelineMetrics::new(1);
        m.record_in(100);
        m.record_in(1500);
        m.packets_classified.inc();
        m.record_drop(DropStage::Truncated);
        m.packets_not_zoom.inc();
        m.shards[0].routed.add(2);
        m.shards[0].batches.inc();
        m.windows_closed.inc();
        m.tracked_entries.set(4);
        m.peak_tracked_entries.set_max(9);
        let prom = m.snapshot().to_prom();
        let expected = "\
# HELP zoom_packets_in_total Records offered to the analysis sink.
# TYPE zoom_packets_in_total counter
zoom_packets_in_total 2
# HELP zoom_bytes_in_total Captured bytes across offered records.
# TYPE zoom_bytes_in_total counter
zoom_bytes_in_total 1600
# HELP zoom_packets_classified_total Records classified as Zoom traffic.
# TYPE zoom_packets_classified_total counter
zoom_packets_classified_total 1
# HELP zoom_packets_not_zoom_total Records dissected but not classified as Zoom.
# TYPE zoom_packets_not_zoom_total counter
zoom_packets_not_zoom_total 1
# HELP zoom_malformed_zme_total Port-8801 UDP records whose Zoom Media Encapsulation failed to parse.
# TYPE zoom_malformed_zme_total counter
zoom_malformed_zme_total 0
# HELP zoom_dissect_drops_total Records rejected by the dissector, by stage.
# TYPE zoom_dissect_drops_total counter
zoom_dissect_drops_total{stage=\"unsupported_link\"} 0
zoom_dissect_drops_total{stage=\"non_ip\"} 0
zoom_dissect_drops_total{stage=\"non_transport\"} 0
zoom_dissect_drops_total{stage=\"truncated\"} 1
zoom_dissect_drops_total{stage=\"malformed\"} 0
# HELP zoom_pcap_truncated_records Records dropped at a torn pcap tail.
# TYPE zoom_pcap_truncated_records gauge
zoom_pcap_truncated_records 0
# HELP zoom_pcap_records_read Complete records delivered by the pcap reader.
# TYPE zoom_pcap_records_read gauge
zoom_pcap_records_read 0
# HELP zoom_pcap_bytes_read Captured bytes delivered by the pcap reader.
# TYPE zoom_pcap_bytes_read gauge
zoom_pcap_bytes_read 0
# HELP zoom_shard_routed_total Records routed to each shard.
# TYPE zoom_shard_routed_total counter
zoom_shard_routed_total{shard=\"0\"} 2
# HELP zoom_shard_batches_total Batches flushed to each shard's channel.
# TYPE zoom_shard_batches_total counter
zoom_shard_batches_total{shard=\"0\"} 1
# HELP zoom_shard_pending_records Records batched at the router, not yet flushed.
# TYPE zoom_shard_pending_records gauge
zoom_shard_pending_records{shard=\"0\"} 0
# HELP zoom_windows_closed_total Tumbling windows closed by the streaming engine.
# TYPE zoom_windows_closed_total counter
zoom_windows_closed_total 1
# HELP zoom_checkpoints_total Explicit checkpoints taken.
# TYPE zoom_checkpoints_total counter
zoom_checkpoints_total 0
# HELP zoom_evicted_flows_total Flows evicted by the idle timeout.
# TYPE zoom_evicted_flows_total counter
zoom_evicted_flows_total 0
# HELP zoom_evicted_streams_total Streams evicted by the idle timeout.
# TYPE zoom_evicted_streams_total counter
zoom_evicted_streams_total 0
# HELP zoom_tracked_entries Entries currently tracked across shards.
# TYPE zoom_tracked_entries gauge
zoom_tracked_entries 4
# HELP zoom_peak_tracked_entries High-water mark of tracked entries.
# TYPE zoom_peak_tracked_entries gauge
zoom_peak_tracked_entries 9
# HELP zoom_packet_size_bytes Captured-size distribution of offered records.
# TYPE zoom_packet_size_bytes histogram
zoom_packet_size_bytes_bucket{le=\"64\"} 0
zoom_packet_size_bytes_bucket{le=\"128\"} 1
zoom_packet_size_bytes_bucket{le=\"256\"} 1
zoom_packet_size_bytes_bucket{le=\"512\"} 1
zoom_packet_size_bytes_bucket{le=\"1024\"} 1
zoom_packet_size_bytes_bucket{le=\"1536\"} 2
zoom_packet_size_bytes_bucket{le=\"+Inf\"} 2
zoom_packet_size_bytes_sum 1600
zoom_packet_size_bytes_count 2
";
        assert_eq!(prom, expected);
    }

    #[test]
    fn json_snapshot_has_schema_keys() {
        let m = PipelineMetrics::new(2);
        m.record_in(64);
        m.packets_classified.inc();
        let mut s = m.snapshot();
        s.capture = Some(CaptureMetricsSnapshot {
            total: 5,
            passed: 3,
            ..Default::default()
        });
        let json = s.to_json();
        for key in [
            "\"type\":\"metrics\"",
            "\"packets_in\":1",
            "\"drops\":{",
            "\"conservation_holds\":true",
            "\"pcap\":{",
            "\"packet_size\":{",
            "\"shards\":[",
            "\"engine\":{",
            "\"capture\":{",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn trace_stubs_compile_and_run() {
        let _s = trace::span("test");
        trace::event("test", "detail=1");
    }
}
