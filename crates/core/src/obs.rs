//! Production observability: a lock-light metrics registry for the
//! analysis pipeline, plus feature-gated tracing hooks.
//!
//! The paper's toolchain is meant to run unattended against production
//! campus traffic (§6: a 12-hour, 1.8-billion-packet trace), which
//! demands the operational visibility a real deployment has: where
//! packets are dropped, which dissect stage rejected them, how hot each
//! shard runs, and whether eviction is discarding live streams. This
//! module provides:
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — relaxed-ordering atomics,
//!   no locks, no allocation after construction, safe to share across the
//!   router and shard threads through one `Arc<PipelineMetrics>`;
//! * [`PipelineMetrics`] — the registry every sink
//!   ([`crate::pipeline::Analyzer`], [`crate::parallel::ParallelAnalyzer`],
//!   [`crate::engine::StreamingEngine`]) threads through its hot path;
//! * [`MetricsSnapshot`] — a plain-data copy renderable as JSON
//!   ([`MetricsSnapshot::to_json`]) or Prometheus text exposition format
//!   ([`MetricsSnapshot::to_prom`]);
//! * [`trace`] — the sampled structured-tracing core: causal trace IDs
//!   attached to record batches at the capture source, per-stage span
//!   events exported as pinned-schema NDJSON, and cross-process
//!   stitching over the `ZFRG` Trace frame (plus the legacy coarse
//!   span/event stderr hooks behind the `obs-trace` cargo feature).
//!
//! Counter updates use `Ordering::Relaxed` throughout: each counter is
//! independently monotone and snapshots are only read after ingest
//! quiesces (or as an eventually-consistent live view), so no
//! cross-counter ordering is required. An uncontended relaxed RMW is a
//! single lock-prefixed instruction — the full per-packet budget is a
//! handful of them, which keeps the `bench_ingest` throughput regression
//! inside the ≤5 % acceptance bound.

use crate::report::JsonObj;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use zoom_wire::dissect::DropStage;
use zoom_wire::zoom::MediaType;

#[cfg(feature = "obs-http")]
pub mod serve;
pub mod trace;

// ---------------------------------------------------------- primitives --

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins atomic gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if `v` is larger (peak tracking).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge holding an `f64` (stored as its bit pattern
/// in an `AtomicU64`), for rate-style QoE values — bits per second,
/// frames per second, milliseconds of jitter.
#[derive(Debug, Default)]
pub struct FloatGauge(AtomicU64);

impl FloatGauge {
    /// A gauge at `0.0`.
    pub const fn new() -> FloatGauge {
        FloatGauge(AtomicU64::new(0))
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket cumulative histogram (Prometheus semantics: each bucket
/// counts observations ≤ its bound, plus an implicit `+Inf` bucket).
///
/// Bounds are a static slice so construction allocates exactly one `Vec`
/// of atomics and observation is a branch-free scan of ≤ 8 bounds.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram over `bounds` (must be strictly increasing).
    pub fn new(bounds: &'static [u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.iter().take_while(|&&b| v > b).count();
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Plain-data copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds,
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`]. `buckets[i]` counts observations
/// in `(bounds[i-1], bounds[i]]`; the final entry is the `+Inf` bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Upper bounds of the finite buckets.
    pub bounds: &'static [u64],
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// within the bucket holding the target rank — the same estimator
    /// Prometheus's `histogram_quantile` uses.
    ///
    /// Bias, documented: values inside a bucket are assumed uniformly
    /// distributed over `(lo, hi]`, so the result can be off by up to one
    /// bucket width; a rank that lands in the `+Inf` overflow bucket is
    /// clamped to the largest finite bound. An empty histogram reports
    /// `0.0`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if (cum + n) as f64 >= target {
                if i >= self.bounds.len() {
                    // +Inf bucket: no finite upper edge to interpolate to.
                    return self.bounds.last().copied().unwrap_or(0) as f64;
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] as f64 };
                let hi = self.bounds[i] as f64;
                let frac = ((target - cum as f64) / n as f64).max(0.0);
                return lo + frac * (hi - lo);
            }
            cum += n;
        }
        self.bounds.last().copied().unwrap_or(0) as f64
    }
}

// ----------------------------------------------------- labeled families --

/// A metric type usable as the per-series value of a [`LabeledFamily`].
///
/// Sealed in practice: implemented by [`Counter`], [`Gauge`],
/// [`FloatGauge`], and [`Histogram`].
pub trait FamilyMetric: std::fmt::Debug {
    /// Plain-data copy of one series' value.
    type Snap: Clone + PartialEq + std::fmt::Debug;
    /// Snapshot this series.
    fn snap(&self) -> Self::Snap;
}

impl FamilyMetric for Counter {
    type Snap = u64;
    fn snap(&self) -> u64 {
        self.get()
    }
}

impl FamilyMetric for Gauge {
    type Snap = u64;
    fn snap(&self) -> u64 {
        self.get()
    }
}

impl FamilyMetric for FloatGauge {
    type Snap = f64;
    fn snap(&self) -> f64 {
        self.get()
    }
}

impl FamilyMetric for Histogram {
    type Snap = HistogramSnapshot;
    fn snap(&self) -> HistogramSnapshot {
        self.snapshot()
    }
}

/// One series of a labeled-family snapshot: the label *values* (in the
/// family's label-name order) and the series' value.
pub type LabeledSeries<S> = (Vec<String>, S);

#[derive(Debug)]
struct FamilyInner<M> {
    /// Label values → (metric, last-touch stamp). A `BTreeMap` keeps
    /// snapshot/render order deterministic regardless of insert order.
    series: BTreeMap<Vec<String>, (M, u64)>,
    /// Monotone stamp; bumped on every touch, used for LRU eviction.
    touch: u64,
}

/// A bounded set of labeled series over one metric type: the label
/// registry behind `zoom_qoe_*{meeting=…,media=…}`.
///
/// Cardinality is hard-capped: creating a series beyond `cap` evicts the
/// least-recently-updated one and counts it in
/// [`series_evicted`](LabeledFamily::series_evicted), so a meeting churn
/// storm can never grow the registry without bound (the same discipline
/// the engine applies to flow/stream state). Updates take an uncontended
/// `Mutex` — families are written only at window boundaries, never on
/// the per-packet path.
#[derive(Debug)]
pub struct LabeledFamily<M> {
    /// Label names, in the order label values must be supplied.
    names: &'static [&'static str],
    cap: usize,
    make: fn() -> M,
    evicted: Counter,
    inner: Mutex<FamilyInner<M>>,
}

impl<M: FamilyMetric> LabeledFamily<M> {
    /// An empty family with the given label names, series cap, and
    /// per-series constructor.
    pub fn new(names: &'static [&'static str], cap: usize, make: fn() -> M) -> LabeledFamily<M> {
        LabeledFamily {
            names,
            cap: cap.max(1),
            make,
            evicted: Counter::new(),
            inner: Mutex::new(FamilyInner {
                series: BTreeMap::new(),
                touch: 0,
            }),
        }
    }

    /// Label names, in declaration order.
    pub fn label_names(&self) -> &'static [&'static str] {
        self.names
    }

    /// Update (creating if needed) the series for `labels`, which must
    /// match [`label_names`](LabeledFamily::label_names) in length. If
    /// the family is at its cap, the least-recently-updated series is
    /// evicted first and counted.
    pub fn with(&self, labels: &[&str], f: impl FnOnce(&M)) {
        debug_assert_eq!(labels.len(), self.names.len());
        let key: Vec<String> = labels.iter().map(|s| (*s).to_string()).collect();
        let mut inner = self.inner.lock().expect("family lock");
        inner.touch += 1;
        let stamp = inner.touch;
        if let Some((metric, last)) = inner.series.get_mut(&key) {
            *last = stamp;
            f(metric);
            return;
        }
        if inner.series.len() >= self.cap {
            let lru = inner
                .series
                .iter()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(k, _)| k.clone())
                .expect("non-empty at cap");
            inner.series.remove(&lru);
            self.evicted.inc();
        }
        let metric = (self.make)();
        f(&metric);
        inner.series.insert(key, (metric, stamp));
    }

    /// Series evicted by the cardinality cap so far.
    pub fn series_evicted(&self) -> u64 {
        self.evicted.get()
    }

    /// Live series count.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("family lock").series.len()
    }

    /// True when no series exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Plain-data copy of every series, sorted by label values.
    pub fn snapshot(&self) -> Vec<LabeledSeries<M::Snap>> {
        self.inner
            .lock()
            .expect("family lock")
            .series
            .iter()
            .map(|(k, (m, _))| (k.clone(), m.snap()))
            .collect()
    }
}

/// Short machine-readable slug for a media type, used as the `media`
/// label value of the QoE series (the human label has spaces/colons).
pub fn media_slug(mt: MediaType) -> &'static str {
    match mt {
        MediaType::ScreenShare => "screen",
        MediaType::Audio => "audio",
        MediaType::Video => "video",
        MediaType::RtcpSr => "rtcp_sr",
        MediaType::RtcpSrSdes => "rtcp_sr_sdes",
        MediaType::Other(_) => "other",
    }
}

// ------------------------------------------------------------ registry --

/// Captured-packet size buckets (bytes): small control frames through
/// full-MTU media.
pub const PACKET_SIZE_BOUNDS: &[u64] = &[64, 128, 256, 512, 1024, 1536];

/// Reconstructed-frame size buckets (bytes): audio frames through large
/// screen-share keyframes (Fig. 15b's range).
pub const FRAME_SIZE_BOUNDS: &[u64] = &[256, 512, 1024, 2048, 4096, 8192, 16384, 32768];

/// Stage-latency buckets (nanoseconds): 1 µs through 100 ms, one decade
/// per bucket — wide enough to separate a healthy push (~1 µs) from a
/// window tick (~ms) without paying for fine resolution.
pub const STAGE_LATENCY_BOUNDS: &[u64] =
    &[1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000];

/// Default hard cap on series per labeled QoE family. Each (meeting ×
/// media type) pair is one series, so 64 covers dozens of concurrent
/// meetings; beyond it the least-recently-updated series is evicted and
/// counted in `zoom_qoe_series_evicted_total`.
pub const QOE_SERIES_CAP: usize = 64;

/// The per-meeting / per-media-type QoE series registry: the paper's §5
/// estimators (bitrate, frame rate, jitter, frame size, retransmissions,
/// RTT) as live labeled time series, updated by the streaming engine at
/// every window boundary and rendered by
/// [`MetricsSnapshot::to_prom`]/[`MetricsSnapshot::to_json`].
#[derive(Debug)]
pub struct QoeMetrics {
    /// `zoom_qoe_bitrate_bps{meeting,media,family}` — media bit rate over
    /// the last closed window.
    pub bitrate_bps: LabeledFamily<FloatGauge>,
    /// `zoom_qoe_fps{meeting,media,family}` — delivered frame rate over
    /// the last closed window.
    pub fps: LabeledFamily<FloatGauge>,
    /// `zoom_qoe_jitter_ms{meeting,media,family}` — mean frame-level
    /// jitter over the last closed window's samples.
    pub jitter_ms: LabeledFamily<FloatGauge>,
    /// `zoom_qoe_frame_size_bytes{media,family}` — histogram of
    /// per-stream mean frame sizes, one observation per active stream per
    /// window.
    pub frame_size_bytes: LabeledFamily<Histogram>,
    /// `zoom_qoe_retransmissions_total{meeting,media,family}` — duplicate
    /// (retransmitted) packets, accumulated across windows.
    pub retransmissions: LabeledFamily<Counter>,
    /// `zoom_qoe_degraded{meeting,kind}` — 1 while the degradation
    /// detector holds an alert for the meeting, 0 once it clears.
    pub degraded: LabeledFamily<Gauge>,
    /// `zoom_qoe_estimated_rtt_ms` — mean RTP-copy RTT over the last
    /// window that produced samples.
    pub estimated_rtt_ms: FloatGauge,
}

impl QoeMetrics {
    fn new(cap: usize) -> QoeMetrics {
        QoeMetrics {
            bitrate_bps: LabeledFamily::new(&["meeting", "media", "family"], cap, FloatGauge::new),
            fps: LabeledFamily::new(&["meeting", "media", "family"], cap, FloatGauge::new),
            jitter_ms: LabeledFamily::new(&["meeting", "media", "family"], cap, FloatGauge::new),
            frame_size_bytes: LabeledFamily::new(&["media", "family"], cap, || {
                Histogram::new(FRAME_SIZE_BOUNDS)
            }),
            retransmissions: LabeledFamily::new(&["meeting", "media", "family"], cap, Counter::new),
            degraded: LabeledFamily::new(&["meeting", "kind"], cap, Gauge::new),
            estimated_rtt_ms: FloatGauge::new(),
        }
    }

    /// Series evicted by the cardinality cap, per family (family name,
    /// count) — rendered as `zoom_qoe_series_evicted_total{family=…}`.
    pub fn evictions(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("bitrate_bps", self.bitrate_bps.series_evicted()),
            ("fps", self.fps.series_evicted()),
            ("jitter_ms", self.jitter_ms.series_evicted()),
            ("frame_size_bytes", self.frame_size_bytes.series_evicted()),
            ("retransmissions", self.retransmissions.series_evicted()),
            ("degraded", self.degraded.series_evicted()),
        ]
    }

    /// Plain-data copy of every family.
    pub fn snapshot(&self) -> QoeSnapshot {
        QoeSnapshot {
            bitrate_bps: self.bitrate_bps.snapshot(),
            fps: self.fps.snapshot(),
            jitter_ms: self.jitter_ms.snapshot(),
            frame_size_bytes: self.frame_size_bytes.snapshot(),
            retransmissions: self.retransmissions.snapshot(),
            degraded: self.degraded.snapshot(),
            estimated_rtt_ms: self.estimated_rtt_ms.get(),
            series_evicted: self.evictions(),
        }
    }
}

/// Plain-data copy of [`QoeMetrics`]: each family as sorted
/// (label values, value) pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct QoeSnapshot {
    /// Bitrate series, labels `[meeting, media, family]`.
    pub bitrate_bps: Vec<LabeledSeries<f64>>,
    /// Frame-rate series, labels `[meeting, media, family]`.
    pub fps: Vec<LabeledSeries<f64>>,
    /// Jitter series, labels `[meeting, media, family]`.
    pub jitter_ms: Vec<LabeledSeries<f64>>,
    /// Frame-size histograms, labels `[media, family]`.
    pub frame_size_bytes: Vec<LabeledSeries<HistogramSnapshot>>,
    /// Retransmission counters, labels `[meeting, media, family]`.
    pub retransmissions: Vec<LabeledSeries<u64>>,
    /// Degradation flags, labels `[meeting, kind]`.
    pub degraded: Vec<LabeledSeries<u64>>,
    /// Mean RTP-copy RTT, milliseconds (0 until a window yields samples).
    pub estimated_rtt_ms: f64,
    /// Per-family cardinality-cap evictions.
    pub series_evicted: Vec<(&'static str, u64)>,
}

impl QoeSnapshot {
    /// Sum of cap evictions across every family.
    pub fn series_evicted_total(&self) -> u64 {
        self.series_evicted.iter().map(|(_, v)| v).sum()
    }

    /// Append the QoE families in Prometheus exposition format.
    ///
    /// Labeled families render only when they carry at least one series;
    /// `zoom_qoe_estimated_rtt_ms` and the per-family
    /// `zoom_qoe_series_evicted_total` counters render unconditionally so
    /// scrapers always see the cap pressure and the RTT gauge.
    pub(crate) fn render_prom(&self, out: &mut String) {
        use std::fmt::Write as _;
        fn float_family(
            out: &mut String,
            name: &str,
            help: &str,
            label_names: &[&str],
            series: &[LabeledSeries<f64>],
        ) {
            if series.is_empty() {
                return;
            }
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            for (values, v) in series {
                let _ = writeln!(out, "{name}{} {v}", prom_labels(label_names, values));
            }
        }
        float_family(
            out,
            "zoom_qoe_bitrate_bps",
            "Media bitrate over the last closed window.",
            &["meeting", "media", "family"],
            &self.bitrate_bps,
        );
        float_family(
            out,
            "zoom_qoe_fps",
            "Frame rate over the last closed window.",
            &["meeting", "media", "family"],
            &self.fps,
        );
        float_family(
            out,
            "zoom_qoe_jitter_ms",
            "RFC 3550 interarrival jitter at the last closed window.",
            &["meeting", "media", "family"],
            &self.jitter_ms,
        );
        if !self.frame_size_bytes.is_empty() {
            let _ = writeln!(
                out,
                "# HELP zoom_qoe_frame_size_bytes Per-frame media payload size distribution."
            );
            let _ = writeln!(out, "# TYPE zoom_qoe_frame_size_bytes histogram");
            for (values, h) in &self.frame_size_bytes {
                let labels = prom_labels(&["media", "family"], values);
                prom_histogram(
                    out,
                    "zoom_qoe_frame_size_bytes",
                    &labels[1..labels.len() - 1],
                    h,
                );
            }
        }
        if !self.retransmissions.is_empty() {
            let _ = writeln!(
                out,
                "# HELP zoom_qoe_retransmissions_total Duplicate RTP sequence numbers observed."
            );
            let _ = writeln!(out, "# TYPE zoom_qoe_retransmissions_total counter");
            for (values, v) in &self.retransmissions {
                let _ = writeln!(
                    out,
                    "zoom_qoe_retransmissions_total{} {v}",
                    prom_labels(&["meeting", "media", "family"], values)
                );
            }
        }
        if !self.degraded.is_empty() {
            let _ = writeln!(
                out,
                "# HELP zoom_qoe_degraded Active QoE degradation verdicts (1 = degraded)."
            );
            let _ = writeln!(out, "# TYPE zoom_qoe_degraded gauge");
            for (values, v) in &self.degraded {
                let _ = writeln!(
                    out,
                    "zoom_qoe_degraded{} {v}",
                    prom_labels(&["meeting", "kind"], values)
                );
            }
        }
        let _ = writeln!(
            out,
            "# HELP zoom_qoe_estimated_rtt_ms Mean RTP-copy RTT over the last closed window."
        );
        let _ = writeln!(out, "# TYPE zoom_qoe_estimated_rtt_ms gauge");
        let _ = writeln!(out, "zoom_qoe_estimated_rtt_ms {}", self.estimated_rtt_ms);
        let _ = writeln!(
            out,
            "# HELP zoom_qoe_series_evicted_total Labeled series dropped at the cardinality cap."
        );
        let _ = writeln!(out, "# TYPE zoom_qoe_series_evicted_total counter");
        for (fam, v) in &self.series_evicted {
            let _ = writeln!(out, "zoom_qoe_series_evicted_total{{family=\"{fam}\"}} {v}");
        }
    }

    /// Serialize as one JSON object (the snapshot's `"qoe"` section).
    pub fn to_json(&self) -> String {
        fn arr(items: impl IntoIterator<Item = String>) -> String {
            let mut buf = String::from("[");
            for (i, item) in items.into_iter().enumerate() {
                if i > 0 {
                    buf.push(',');
                }
                buf.push_str(&item);
            }
            buf.push(']');
            buf
        }
        fn labels(names: &[&str], values: &[String]) -> String {
            let mut o = JsonObj::new();
            for (n, v) in names.iter().zip(values) {
                o.str(n, v);
            }
            o.finish()
        }
        let floats = |names: &'static [&'static str], s: &[LabeledSeries<f64>]| {
            arr(s.iter().map(|(lv, v)| {
                let mut o = JsonObj::new();
                o.raw("labels", &labels(names, lv)).f64("value", *v);
                o.finish()
            }))
        };
        let counts = |names: &'static [&'static str], s: &[LabeledSeries<u64>]| {
            arr(s.iter().map(|(lv, v)| {
                let mut o = JsonObj::new();
                o.raw("labels", &labels(names, lv)).u64("value", *v);
                o.finish()
            }))
        };
        let mut evicted = JsonObj::new();
        for (fam, n) in &self.series_evicted {
            evicted.u64(fam, *n);
        }
        let mut o = JsonObj::new();
        o.raw(
            "bitrate_bps",
            &floats(&["meeting", "media", "family"], &self.bitrate_bps),
        )
            .raw("fps", &floats(&["meeting", "media", "family"], &self.fps))
            .raw(
                "jitter_ms",
                &floats(&["meeting", "media", "family"], &self.jitter_ms),
            )
            .raw(
                "frame_size_bytes",
                &arr(self.frame_size_bytes.iter().map(|(lv, h)| {
                    let mut o = JsonObj::new();
                    o.raw("labels", &labels(&["media", "family"], lv))
                        .raw("histogram", &hist_json(h));
                    o.finish()
                })),
            )
            .raw(
                "retransmissions",
                &counts(&["meeting", "media", "family"], &self.retransmissions),
            )
            .raw("degraded", &counts(&["meeting", "kind"], &self.degraded))
            .f64("estimated_rtt_ms", self.estimated_rtt_ms)
            .raw("series_evicted", &evicted.finish());
        o.finish()
    }
}

/// Histogram snapshot as a JSON object, with interpolated quantile
/// summaries (see [`HistogramSnapshot::quantile`] for the bias).
fn hist_json(h: &HistogramSnapshot) -> String {
    fn arr(vals: &[u64]) -> String {
        format!(
            "[{}]",
            vals.iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(",")
        )
    }
    let mut o = JsonObj::new();
    o.raw("bounds", &arr(h.bounds))
        .raw("buckets", &arr(&h.buckets))
        .u64("sum", h.sum)
        .u64("count", h.count)
        .f64("p50", h.quantile(0.5))
        .f64("p95", h.quantile(0.95))
        .f64("p99", h.quantile(0.99));
    o.finish()
}

/// Render one `{a="x",b="y"}` label block (no braces when empty is not a
/// case here — QoE families always carry labels). Values are escaped per
/// the Prometheus exposition rules.
fn prom_labels(names: &[&str], values: &[String]) -> String {
    let mut out = String::from("{");
    for (i, (n, v)) in names.iter().zip(values).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(n);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Render one histogram in exposition format. `labels` is a
/// pre-rendered `name="value"` list *without* braces (empty for an
/// unlabeled histogram); `le` is appended to it on bucket lines.
fn prom_histogram(out: &mut String, name: &str, labels: &str, h: &HistogramSnapshot) {
    use std::fmt::Write as _;
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cumulative = 0u64;
    for (i, bound) in h.bounds.iter().enumerate() {
        cumulative += h.buckets[i];
        let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"{bound}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}", h.count);
    if labels.is_empty() {
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    } else {
        let _ = writeln!(out, "{name}_sum{{{labels}}} {}", h.sum);
        let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count);
    }
}

/// Per-shard routing metrics.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Records routed to this shard.
    pub routed: Counter,
    /// Batches flushed to this shard's channel.
    pub batches: Counter,
    /// Records batched but not yet flushed (queue depth at the router).
    pub pending: Gauge,
    /// Batches the shard worker drained off its channel. The difference
    /// `batches - drained` is the shard's live channel depth — the
    /// backlog a stalled worker accumulates.
    pub drained: Counter,
}

/// The pipeline-wide metrics registry, shared by the router and every
/// shard through one `Arc`.
///
/// All fields are public so instrumentation sites pay exactly one atomic
/// RMW with no accessor indirection; readers should go through
/// [`PipelineMetrics::snapshot`].
#[derive(Debug)]
pub struct PipelineMetrics {
    /// Records offered to the sink (accepted or dropped).
    pub packets_in: Counter,
    /// Captured bytes across offered records.
    pub bytes_in: Counter,
    /// Records that dissected and classified as Zoom traffic.
    pub packets_classified: Counter,
    /// Records that dissected but did not classify as Zoom.
    pub packets_not_zoom: Counter,
    /// Subset of `packets_not_zoom`: UDP to/from the Zoom media port
    /// (8801) whose Zoom Media Encapsulation failed to parse.
    pub malformed_zme: Counter,
    /// Subset of `packets_classified`: packets classified under the
    /// WebRTC family (DTLS, SRTP, SRTCP).
    pub classified_webrtc: Counter,
    /// Subset of `packets_not_zoom`: packets on a session-gated WebRTC
    /// flow whose DTLS-SRTP framing failed to parse. The WebRTC-family
    /// analogue of `malformed_zme` — a broken SRTP packet counts against
    /// its own family, never against Zoom's drop stage.
    pub malformed_srtp: Counter,
    /// Captured-size distribution of offered records.
    pub packet_size: Histogram,

    /// Dissect drops: capture link type not decoded.
    pub drop_unsupported_link: Counter,
    /// Dissect drops: Ethernet frame that is not IPv4/IPv6.
    pub drop_non_ip: Counter,
    /// Dissect drops: IP protocol other than UDP/TCP.
    pub drop_non_transport: Counter,
    /// Dissect drops: headers ran past the captured bytes.
    pub drop_truncated: Counter,
    /// Dissect drops: structurally invalid header.
    pub drop_malformed: Counter,

    /// Records the pcap reader dropped at a torn file tail (gauge: set
    /// from [`zoom_wire::pcap::Reader::truncated_records`] by the ingest
    /// loop).
    pub pcap_truncated_records: Gauge,
    /// Complete records the pcap reader delivered.
    pub pcap_records_read: Gauge,
    /// Captured bytes the pcap reader delivered.
    pub pcap_bytes_read: Gauge,

    /// Per-shard routing metrics (one entry per shard; a sequential
    /// analyzer has none).
    pub shards: Vec<ShardMetrics>,

    /// Tumbling windows closed by the streaming engine.
    pub windows_closed: Counter,
    /// Explicit checkpoints taken.
    pub checkpoints: Counter,
    /// Flows evicted by the idle timeout.
    pub evicted_flows: Counter,
    /// Streams evicted by the idle timeout.
    pub evicted_streams: Counter,
    /// Entries (flows + streams + STUN registrations + RTT candidates)
    /// currently tracked across shards.
    pub tracked_entries: Gauge,
    /// High-water mark of `tracked_entries`.
    pub peak_tracked_entries: Gauge,

    /// Sampled latency of [`crate::sink::PacketSink::push`] (1-in-N
    /// clock samples; always on, unlike the verbose `obs-trace` tier).
    pub stage_push_nanos: Histogram,
    /// Latency of window-close/drain ticks (shard flush + reply merge).
    pub stage_merge_nanos: Histogram,
    /// Latency of explicit checkpoints.
    pub stage_checkpoint_nanos: Histogram,

    /// Live QoE series, labeled per meeting and media type.
    pub qoe: QoeMetrics,

    /// Per-source capture-side accounting, one entry per registered
    /// packet source (see [`PipelineMetrics::register_source`]). Empty
    /// unless a multi-source capture front-end feeds this sink.
    sources: Mutex<Vec<Arc<SourceMetrics>>>,

    /// Per-worker accounting on a distributed merge node, one entry per
    /// registered fragment worker (see
    /// [`PipelineMetrics::register_worker`]). Empty outside `merge`.
    workers: Mutex<Vec<Arc<WorkerMetrics>>>,

    /// The structured-tracing collector (disabled unless the CLI's
    /// `--trace` / `--self-profile` flags enable it). Shared here so
    /// every stage that already holds the metrics `Arc` can record
    /// spans without extra plumbing.
    pub trace: Arc<trace::TraceCollector>,

    /// Registry creation time, the epoch of `zoom_uptime_seconds`.
    started: Instant,
}

/// Capture-side accounting for one packet source feeding the pipeline.
///
/// Registered on a [`PipelineMetrics`] via
/// [`register_source`](PipelineMetrics::register_source); the capture
/// thread keeps the returned `Arc` and bumps the counters lock-free. The
/// drop counter participates in the conservation invariant: packets a
/// source captured either reach the sink (`packets_in`) or are dropped at
/// a full hand-off ring (`ring_full_drops`), never silently lost.
#[derive(Debug)]
pub struct SourceMetrics {
    label: String,
    /// Records this source's capture thread pulled off the source.
    pub packets: Counter,
    /// Captured bytes across those records.
    pub bytes: Counter,
    /// Batches handed to (or dropped at) the fan-in ring.
    pub batches: Counter,
    /// Records dropped because the hand-off ring was full (lossy
    /// overflow policy only; the lossless policy blocks instead).
    pub ring_full_drops: Counter,
    /// Batches currently queued in this source's hand-off ring (sampled
    /// by the fan-in consumer each time it visits the lane).
    pub ring_occupancy: Gauge,
    /// High-water mark of `ring_occupancy` — the worst backlog the lane
    /// ever accumulated (updated with [`Gauge::set_max`]).
    pub ring_occupancy_hwm: Gauge,
    /// Capture timestamp (nanoseconds) of the last record the fan-in
    /// delivered from this source. The spread between lanes is the
    /// per-source lag: a lane whose timestamp trails the furthest-ahead
    /// lane is the one holding the deterministic `(ts, lane)` merge back.
    pub delivered_ts_nanos: Gauge,
}

impl SourceMetrics {
    /// The source's display label (e.g. `pcap:trace.pcap` or `sim:p2p`).
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// Merge-node accounting for one fragment worker feeding the
/// distributed shard tier (`docs/DISTRIBUTED.md`).
///
/// Registered on a [`PipelineMetrics`] via
/// [`register_worker`](PipelineMetrics::register_worker). The
/// `packets`/`bytes`/`batches`/`ring_full_drops`/`truncated` counters
/// mirror the worker's **self-reported** capture-side totals (shipped in
/// Accounting/Bye frames), while `records_received` counts what the
/// merge node actually decoded off the wire — the two sides of the
/// worker→merge conservation invariant
/// `Σ worker packets == merge packets_in` (modulo accounted drops).
#[derive(Debug)]
pub struct WorkerMetrics {
    label: String,
    /// Records the worker reported capturing.
    pub packets: Gauge,
    /// Captured bytes the worker reported.
    pub bytes: Gauge,
    /// Batches the worker's fan-in reported handling.
    pub batches: Gauge,
    /// Records the worker dropped at its own full capture rings.
    pub ring_full_drops: Gauge,
    /// Records the worker's sources dropped (torn pcap tails).
    pub truncated: Gauge,
    /// Records the merge node decoded out of this worker's stream.
    pub records_received: Counter,
    /// 1 once the worker's stream ended with a proper Bye frame.
    pub complete: Gauge,
    /// Link state of the worker's stream on the merge node: one of the
    /// [`link_state`] constants (`PENDING` → `STREAMING` → `DONE`, or
    /// `ERROR` on a cut/malformed stream).
    pub link_state: Gauge,
}

/// Values of [`WorkerMetrics::link_state`] /
/// [`WorkerSnapshot::link_state`].
pub mod link_state {
    /// Registered, no frames decoded yet.
    pub const PENDING: u64 = 0;
    /// Frames are being decoded from the worker's stream.
    pub const STREAMING: u64 = 1;
    /// The stream ended with a proper Bye frame.
    pub const DONE: u64 = 2;
    /// The stream was cut off or malformed.
    pub const ERROR: u64 = 3;

    /// Human-readable name for a link-state value.
    pub fn name(v: u64) -> &'static str {
        match v {
            PENDING => "pending",
            STREAMING => "streaming",
            DONE => "done",
            _ => "error",
        }
    }
}

impl WorkerMetrics {
    /// The worker's display label from its Hello frame.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl PipelineMetrics {
    /// A zeroed registry with `shards` per-shard slots (0 for a purely
    /// sequential sink).
    pub fn new(shards: usize) -> PipelineMetrics {
        PipelineMetrics {
            packets_in: Counter::new(),
            bytes_in: Counter::new(),
            packets_classified: Counter::new(),
            packets_not_zoom: Counter::new(),
            malformed_zme: Counter::new(),
            classified_webrtc: Counter::new(),
            malformed_srtp: Counter::new(),
            packet_size: Histogram::new(PACKET_SIZE_BOUNDS),
            drop_unsupported_link: Counter::new(),
            drop_non_ip: Counter::new(),
            drop_non_transport: Counter::new(),
            drop_truncated: Counter::new(),
            drop_malformed: Counter::new(),
            pcap_truncated_records: Gauge::new(),
            pcap_records_read: Gauge::new(),
            pcap_bytes_read: Gauge::new(),
            shards: (0..shards).map(|_| ShardMetrics::default()).collect(),
            windows_closed: Counter::new(),
            checkpoints: Counter::new(),
            evicted_flows: Counter::new(),
            evicted_streams: Counter::new(),
            tracked_entries: Gauge::new(),
            peak_tracked_entries: Gauge::new(),
            stage_push_nanos: Histogram::new(STAGE_LATENCY_BOUNDS),
            stage_merge_nanos: Histogram::new(STAGE_LATENCY_BOUNDS),
            stage_checkpoint_nanos: Histogram::new(STAGE_LATENCY_BOUNDS),
            qoe: QoeMetrics::new(QOE_SERIES_CAP),
            sources: Mutex::new(Vec::new()),
            workers: Mutex::new(Vec::new()),
            trace: Arc::new(trace::TraceCollector::new()),
            started: Instant::now(),
        }
    }

    /// Seconds since this registry was created.
    pub fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Registers a fragment worker on a merge node and returns its
    /// zeroed counter block (off the hot path, like
    /// [`register_source`](Self::register_source)). Workers appear in
    /// [`MetricsSnapshot::workers`] in registration order; once any
    /// worker is registered the conservation invariant additionally
    /// checks the worker→merge ledger (see
    /// [`MetricsSnapshot::conservation_holds`]).
    pub fn register_worker(&self, label: &str) -> Arc<WorkerMetrics> {
        let m = Arc::new(WorkerMetrics {
            label: label.to_string(),
            packets: Gauge::new(),
            bytes: Gauge::new(),
            batches: Gauge::new(),
            ring_full_drops: Gauge::new(),
            truncated: Gauge::new(),
            records_received: Counter::new(),
            complete: Gauge::new(),
            link_state: Gauge::new(),
        });
        self.workers.lock().unwrap().push(Arc::clone(&m));
        m
    }

    /// Registers a packet source and returns its zeroed counter block.
    ///
    /// Called once per source at capture start (off the hot path, hence
    /// the mutex); the capture thread then updates the returned counters
    /// lock-free. Sources appear in [`MetricsSnapshot::sources`] in
    /// registration order and, once any source is registered, the
    /// conservation invariant additionally checks that every captured
    /// record either reached the sink or was counted as a ring drop.
    pub fn register_source(&self, label: &str) -> Arc<SourceMetrics> {
        let m = Arc::new(SourceMetrics {
            label: label.to_string(),
            packets: Counter::new(),
            bytes: Counter::new(),
            batches: Counter::new(),
            ring_full_drops: Counter::new(),
            ring_occupancy: Gauge::new(),
            ring_occupancy_hwm: Gauge::new(),
            delivered_ts_nanos: Gauge::new(),
        });
        self.sources.lock().unwrap().push(Arc::clone(&m));
        m
    }

    /// Count one dissect rejection at its [`DropStage`].
    #[inline]
    pub fn record_drop(&self, stage: DropStage) {
        match stage {
            DropStage::UnsupportedLink => self.drop_unsupported_link.inc(),
            DropStage::NonIp => self.drop_non_ip.inc(),
            DropStage::NonTransport => self.drop_non_transport.inc(),
            DropStage::Truncated => self.drop_truncated.inc(),
            DropStage::Malformed => self.drop_malformed.inc(),
        }
    }

    /// Count one offered record (size histogram included).
    #[inline]
    pub fn record_in(&self, bytes: usize) {
        self.packets_in.inc();
        self.bytes_in.add(bytes as u64);
        self.packet_size.observe(bytes as u64);
    }

    /// Sum of all dissect-stage drop counters.
    pub fn drops_total(&self) -> u64 {
        self.drop_unsupported_link.get()
            + self.drop_non_ip.get()
            + self.drop_non_transport.get()
            + self.drop_truncated.get()
            + self.drop_malformed.get()
    }

    /// Plain-data copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            packets_in: self.packets_in.get(),
            bytes_in: self.bytes_in.get(),
            packets_classified: self.packets_classified.get(),
            packets_not_zoom: self.packets_not_zoom.get(),
            malformed_zme: self.malformed_zme.get(),
            classified_webrtc: self.classified_webrtc.get(),
            malformed_srtp: self.malformed_srtp.get(),
            packet_size: self.packet_size.snapshot(),
            drop_unsupported_link: self.drop_unsupported_link.get(),
            drop_non_ip: self.drop_non_ip.get(),
            drop_non_transport: self.drop_non_transport.get(),
            drop_truncated: self.drop_truncated.get(),
            drop_malformed: self.drop_malformed.get(),
            pcap_truncated_records: self.pcap_truncated_records.get(),
            pcap_records_read: self.pcap_records_read.get(),
            pcap_bytes_read: self.pcap_bytes_read.get(),
            shards: self
                .shards
                .iter()
                .map(|s| ShardSnapshot {
                    routed: s.routed.get(),
                    batches: s.batches.get(),
                    pending: s.pending.get(),
                    drained: s.drained.get(),
                })
                .collect(),
            windows_closed: self.windows_closed.get(),
            checkpoints: self.checkpoints.get(),
            evicted_flows: self.evicted_flows.get(),
            evicted_streams: self.evicted_streams.get(),
            tracked_entries: self.tracked_entries.get(),
            peak_tracked_entries: self.peak_tracked_entries.get(),
            stage_push_nanos: self.stage_push_nanos.snapshot(),
            stage_merge_nanos: self.stage_merge_nanos.snapshot(),
            stage_checkpoint_nanos: self.stage_checkpoint_nanos.snapshot(),
            qoe: self.qoe.snapshot(),
            capture: None,
            sources: self
                .sources
                .lock()
                .unwrap()
                .iter()
                .map(|s| SourceSnapshot {
                    label: s.label.clone(),
                    packets: s.packets.get(),
                    bytes: s.bytes.get(),
                    batches: s.batches.get(),
                    ring_full_drops: s.ring_full_drops.get(),
                    ring_occupancy: s.ring_occupancy.get(),
                    ring_occupancy_hwm: s.ring_occupancy_hwm.get(),
                    delivered_ts_nanos: s.delivered_ts_nanos.get(),
                })
                .collect(),
            workers: self
                .workers
                .lock()
                .unwrap()
                .iter()
                .map(|w| WorkerSnapshot {
                    label: w.label.clone(),
                    packets: w.packets.get(),
                    bytes: w.bytes.get(),
                    batches: w.batches.get(),
                    ring_full_drops: w.ring_full_drops.get(),
                    truncated: w.truncated.get(),
                    records_received: w.records_received.get(),
                    complete: w.complete.get() != 0,
                    link_state: w.link_state.get(),
                })
                .collect(),
            uptime_seconds: self.uptime_seconds(),
            trace_events: self.trace.event_counts().0,
            trace_events_dropped: self.trace.event_counts().1,
        }
    }

    /// The `/debug/pipeline` introspection payload: one JSON object of
    /// live operational state — ring occupancy and lag per source,
    /// channel depth per shard, table sizes and eviction pressure,
    /// worker link states, and the trace collector's own health. This is
    /// the "where is it stuck right now" view, complementing the
    /// cumulative `/metrics` families.
    pub fn debug_json(&self) -> String {
        let s = self.snapshot();
        let (version, git_sha, features) = build_info();
        let mut build = JsonObj::new();
        build
            .str("version", version)
            .str("git_sha", git_sha)
            .str("features", features);

        let mut sources = String::from("[");
        let max_delivered = s
            .sources
            .iter()
            .map(|src| src.delivered_ts_nanos)
            .max()
            .unwrap_or(0);
        for (i, src) in s.sources.iter().enumerate() {
            if i > 0 {
                sources.push(',');
            }
            let mut o = JsonObj::new();
            o.str("source", &src.label)
                .u64("packets", src.packets)
                .u64("ring_full_drops", src.ring_full_drops)
                .u64("ring_occupancy", src.ring_occupancy)
                .u64("ring_occupancy_hwm", src.ring_occupancy_hwm)
                .u64("delivered_ts_nanos", src.delivered_ts_nanos)
                .u64(
                    "lag_nanos",
                    max_delivered.saturating_sub(src.delivered_ts_nanos),
                );
            sources.push_str(&o.finish());
        }
        sources.push(']');

        let mut shards = String::from("[");
        for (i, sh) in s.shards.iter().enumerate() {
            if i > 0 {
                shards.push(',');
            }
            let mut o = JsonObj::new();
            o.u64("shard", i as u64)
                .u64("routed", sh.routed)
                .u64("batches", sh.batches)
                .u64("drained", sh.drained)
                .u64("channel_depth", sh.channel_depth())
                .u64("pending", sh.pending);
            shards.push_str(&o.finish());
        }
        shards.push(']');

        let mut workers = String::from("[");
        for (i, w) in s.workers.iter().enumerate() {
            if i > 0 {
                workers.push(',');
            }
            let mut o = JsonObj::new();
            o.str("worker", &w.label)
                .str("link_state", link_state::name(w.link_state))
                .u64("packets_reported", w.packets)
                .u64("records_received", w.records_received)
                .u64("ring_full_drops", w.ring_full_drops)
                .bool("complete", w.complete);
            workers.push_str(&o.finish());
        }
        workers.push(']');

        let mut tables = JsonObj::new();
        tables
            .u64("tracked_entries", s.tracked_entries)
            .u64("peak_tracked_entries", s.peak_tracked_entries)
            .u64("evicted_flows", s.evicted_flows)
            .u64("evicted_streams", s.evicted_streams)
            .u64("qoe_series_evicted", s.qoe.series_evicted_total())
            .u64("windows_closed", s.windows_closed);

        let mut trace_obj = JsonObj::new();
        trace_obj
            .bool("enabled", self.trace.is_enabled())
            .str("node", &self.trace.node())
            .u64("sample_every", self.trace.sample_period())
            .u64("events", s.trace_events)
            .u64("events_dropped", s.trace_events_dropped);

        let mut o = JsonObj::new();
        o.str("type", "debug_pipeline")
            .raw("build", &build.finish())
            .u64("uptime_seconds", s.uptime_seconds)
            .u64("packets_in", s.packets_in)
            .bool("conservation_holds", s.conservation_holds())
            .raw("sources", &sources)
            .raw("shards", &shards)
            .raw("workers", &workers)
            .raw("tables", &tables.finish())
            .raw("trace", &trace_obj.finish());
        o.finish()
    }
}

/// Build metadata rendered as `zoom_build_info{version,git_sha,features}`
/// and the snapshot's `"build"` JSON section, so scrapes can tell
/// deployments apart. The git SHA is baked in at compile time via the
/// `ZOOM_GIT_SHA` environment variable (`"unknown"` when unset); the
/// feature list covers the cargo features that change the binary's
/// surface.
pub fn build_info() -> (&'static str, &'static str, &'static str) {
    let features = match (cfg!(feature = "obs-http"), cfg!(feature = "obs-trace")) {
        (true, true) => "obs-http,obs-trace",
        (true, false) => "obs-http",
        (false, true) => "obs-trace",
        (false, false) => "",
    };
    (
        env!("CARGO_PKG_VERSION"),
        option_env!("ZOOM_GIT_SHA").unwrap_or("unknown"),
        features,
    )
}

// ------------------------------------------------------------ snapshot --

/// Plain-data copy of one shard's routing metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Records routed to this shard.
    pub routed: u64,
    /// Batches flushed to this shard's channel.
    pub batches: u64,
    /// Records batched but not yet flushed.
    pub pending: u64,
    /// Batches the shard worker drained off its channel.
    pub drained: u64,
}

impl ShardSnapshot {
    /// Batches queued in the shard's channel right now
    /// (`batches - drained`, saturating — a worker mid-drain can be one
    /// ahead of the flush counter for an instant).
    pub fn channel_depth(&self) -> u64 {
        self.batches.saturating_sub(self.drained)
    }
}

/// Capture-pipeline verdict counters (the software Tofino of Fig. 13),
/// folded into a snapshot by the CLI when the capture stage runs in the
/// same process. Plain data: `zoom-analysis` does not depend on
/// `zoom-capture`, so the CLI maps `StageCounters` field by field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureMetricsSnapshot {
    /// Packets offered to the capture filter.
    pub total: u64,
    /// Dropped: campus endpoint in an excluded subnet.
    pub excluded: u64,
    /// Passed: either address matched the Zoom server list.
    pub zoom_ip_matched: u64,
    /// Passed: STUN exchange with a Zoom server (registers the endpoint).
    pub stun_registered: u64,
    /// Passed: P2P media recognized via the STUN registers.
    pub p2p_matched: u64,
    /// Passed: non-Zoom STUN exchange (registers a WebRTC endpoint).
    pub rtc_stun_registered: u64,
    /// Passed: WebRTC media recognized via the WebRTC STUN registers.
    pub rtc_p2p_matched: u64,
    /// Dropped: neither a Zoom server nor a registered P2P endpoint.
    pub dropped: u64,
    /// Dropped: headers the data plane needs did not parse.
    pub unparseable: u64,
    /// Packets that reached the capture output.
    pub passed: u64,
    /// Bytes across passing packets.
    pub passed_bytes: u64,
    /// Bytes across all offered packets.
    pub total_bytes: u64,
}

/// A point-in-time, plain-data copy of [`PipelineMetrics`], renderable
/// as JSON or Prometheus text.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Records offered to the sink.
    pub packets_in: u64,
    /// Captured bytes across offered records.
    pub bytes_in: u64,
    /// Records classified as Zoom traffic.
    pub packets_classified: u64,
    /// Records dissected but not classified as Zoom.
    pub packets_not_zoom: u64,
    /// Port-8801 UDP records whose ZME framing failed to parse.
    pub malformed_zme: u64,
    /// Records classified under the WebRTC family (subset of
    /// `packets_classified`).
    pub classified_webrtc: u64,
    /// Session-gated WebRTC-flow records whose DTLS-SRTP framing failed
    /// to parse (subset of `packets_not_zoom`).
    pub malformed_srtp: u64,
    /// Captured-size distribution.
    pub packet_size: HistogramSnapshot,
    /// Dissect drops: unsupported link type.
    pub drop_unsupported_link: u64,
    /// Dissect drops: non-IP ethertype.
    pub drop_non_ip: u64,
    /// Dissect drops: non-UDP/TCP protocol.
    pub drop_non_transport: u64,
    /// Dissect drops: truncated headers.
    pub drop_truncated: u64,
    /// Dissect drops: malformed headers.
    pub drop_malformed: u64,
    /// Records dropped at a torn pcap tail.
    pub pcap_truncated_records: u64,
    /// Complete records the pcap reader delivered.
    pub pcap_records_read: u64,
    /// Captured bytes the pcap reader delivered.
    pub pcap_bytes_read: u64,
    /// Per-shard routing snapshots.
    pub shards: Vec<ShardSnapshot>,
    /// Tumbling windows closed.
    pub windows_closed: u64,
    /// Explicit checkpoints taken.
    pub checkpoints: u64,
    /// Flows evicted by the idle timeout.
    pub evicted_flows: u64,
    /// Streams evicted by the idle timeout.
    pub evicted_streams: u64,
    /// Entries currently tracked.
    pub tracked_entries: u64,
    /// High-water mark of tracked entries.
    pub peak_tracked_entries: u64,
    /// Sampled `push` latency distribution.
    pub stage_push_nanos: HistogramSnapshot,
    /// Window-close/drain tick latency distribution.
    pub stage_merge_nanos: HistogramSnapshot,
    /// Explicit-checkpoint latency distribution.
    pub stage_checkpoint_nanos: HistogramSnapshot,
    /// Live QoE series, labeled per meeting and media type.
    pub qoe: QoeSnapshot,
    /// Capture-filter verdict counters, when the capture stage ran in
    /// the same process (`cli filter --metrics`).
    pub capture: Option<CaptureMetricsSnapshot>,
    /// Per-source capture accounting, one entry per registered packet
    /// source (empty for plain single-file ingest).
    pub sources: Vec<SourceSnapshot>,
    /// Per-worker accounting on a distributed merge node, one entry per
    /// registered fragment worker (empty outside `merge`).
    pub workers: Vec<WorkerSnapshot>,
    /// Seconds since the registry was created.
    pub uptime_seconds: u64,
    /// Trace span events recorded by the collector (0 unless tracing).
    pub trace_events: u64,
    /// Trace events dropped at the bounded export queue.
    pub trace_events_dropped: u64,
}

/// Plain-data copy of one fragment worker's merge-side counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// The worker's display label from its Hello frame.
    pub label: String,
    /// Records the worker reported capturing.
    pub packets: u64,
    /// Captured bytes the worker reported.
    pub bytes: u64,
    /// Batches the worker's fan-in reported handling.
    pub batches: u64,
    /// Records the worker dropped at its own full capture rings.
    pub ring_full_drops: u64,
    /// Records the worker's sources dropped (torn pcap tails).
    pub truncated: u64,
    /// Records the merge node decoded out of this worker's stream.
    pub records_received: u64,
    /// Whether the worker's stream ended with a proper Bye frame.
    pub complete: bool,
    /// Link state of the worker's stream (see [`link_state`]).
    pub link_state: u64,
}

/// Plain-data copy of one source's capture-side counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceSnapshot {
    /// The source's display label (e.g. `pcap:trace.pcap`).
    pub label: String,
    /// Records the capture thread pulled off this source.
    pub packets: u64,
    /// Captured bytes across those records.
    pub bytes: u64,
    /// Batches handed to (or dropped at) the fan-in ring.
    pub batches: u64,
    /// Records dropped at a full hand-off ring.
    pub ring_full_drops: u64,
    /// Batches queued in the source's hand-off ring at the last sample.
    pub ring_occupancy: u64,
    /// High-water mark of ring occupancy.
    pub ring_occupancy_hwm: u64,
    /// Capture timestamp of the last record delivered from this source.
    pub delivered_ts_nanos: u64,
}

impl MetricsSnapshot {
    /// Sum of the dissect-stage drop counters.
    pub fn drops_total(&self) -> u64 {
        self.drop_unsupported_link
            + self.drop_non_ip
            + self.drop_non_transport
            + self.drop_truncated
            + self.drop_malformed
    }

    /// Sum of records captured across all registered sources.
    pub fn source_packets_total(&self) -> u64 {
        self.sources.iter().map(|s| s.packets).sum()
    }

    /// Sum of ring-full capture drops across all registered sources.
    pub fn ring_full_drops_total(&self) -> u64 {
        self.sources.iter().map(|s| s.ring_full_drops).sum()
    }

    /// Sum of records all registered fragment workers reported capturing.
    pub fn worker_packets_total(&self) -> u64 {
        self.workers.iter().map(|w| w.packets).sum()
    }

    /// Sum of records the merge node decoded across all worker streams.
    pub fn worker_records_received_total(&self) -> u64 {
        self.workers.iter().map(|w| w.records_received).sum()
    }

    /// The conservation invariant every sink maintains once ingest has
    /// quiesced: every offered record is classified, counted not-Zoom, or
    /// attributed to exactly one drop stage. When capture sources are
    /// registered the invariant extends upstream: every captured record
    /// either reached the sink or was counted as a ring-full drop, so
    /// `Σ source_packets == packets_classified + packets_not_zoom +
    /// Σ dissect drops + Σ ring_full_drops` — capture loss is part of the
    /// ledger, never silent.
    /// When fragment workers feed a merge node the ledger extends one
    /// more hop upstream: every record a worker reported capturing was
    /// either decoded at the merge (`records_received`) or dropped at
    /// the worker's own rings, and everything decoded reached the sink
    /// (modulo merge-side ring drops already covered by the source
    /// half) — `Σ worker packets_in == merge packets_in` when nothing
    /// drops anywhere.
    pub fn conservation_holds(&self) -> bool {
        let sink_ok =
            self.packets_in == self.packets_classified + self.packets_not_zoom + self.drops_total();
        let capture_ok = self.sources.is_empty()
            || self.source_packets_total() == self.packets_in + self.ring_full_drops_total();
        let workers_ok = self.workers.is_empty()
            || (self
                .workers
                .iter()
                .all(|w| w.packets == w.records_received + w.ring_full_drops)
                && self.worker_records_received_total()
                    == self.packets_in + self.ring_full_drops_total());
        sink_ok && capture_ok && workers_ok
    }

    /// Serialize as one NDJSON-friendly line, tagged `"type":"metrics"`.
    pub fn to_json(&self) -> String {
        let mut drops = JsonObj::new();
        drops
            .u64("unsupported_link", self.drop_unsupported_link)
            .u64("non_ip", self.drop_non_ip)
            .u64("non_transport", self.drop_non_transport)
            .u64("truncated", self.drop_truncated)
            .u64("malformed", self.drop_malformed);
        let mut pcap = JsonObj::new();
        pcap.u64("truncated_records", self.pcap_truncated_records)
            .u64("records_read", self.pcap_records_read)
            .u64("bytes_read", self.pcap_bytes_read);
        let mut engine = JsonObj::new();
        engine
            .u64("windows_closed", self.windows_closed)
            .u64("checkpoints", self.checkpoints)
            .u64("evicted_flows", self.evicted_flows)
            .u64("evicted_streams", self.evicted_streams)
            .u64("tracked_entries", self.tracked_entries)
            .u64("peak_tracked_entries", self.peak_tracked_entries);
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|s| {
                let mut o = JsonObj::new();
                o.u64("routed", s.routed)
                    .u64("batches", s.batches)
                    .u64("pending", s.pending)
                    .u64("drained", s.drained)
                    .u64("channel_depth", s.channel_depth());
                o.finish()
            })
            .collect();
        let size = hist_json(&self.packet_size);
        let mut stage = JsonObj::new();
        stage
            .raw("push", &hist_json(&self.stage_push_nanos))
            .raw("merge", &hist_json(&self.stage_merge_nanos))
            .raw("checkpoint", &hist_json(&self.stage_checkpoint_nanos));

        let (version, git_sha, features) = build_info();
        let mut build = JsonObj::new();
        build
            .str("version", version)
            .str("git_sha", git_sha)
            .str("features", features);
        let mut trace_obj = JsonObj::new();
        trace_obj
            .u64("events", self.trace_events)
            .u64("events_dropped", self.trace_events_dropped);

        let mut o = JsonObj::new();
        o.str("type", "metrics")
            .raw("build", &build.finish())
            .u64("uptime_seconds", self.uptime_seconds)
            .raw("trace", &trace_obj.finish())
            .u64("packets_in", self.packets_in)
            .u64("bytes_in", self.bytes_in)
            .u64("packets_classified", self.packets_classified)
            .u64("packets_not_zoom", self.packets_not_zoom)
            .u64("malformed_zme", self.malformed_zme)
            .u64("classified_webrtc", self.classified_webrtc)
            .u64("malformed_srtp", self.malformed_srtp)
            .raw("drops", &drops.finish())
            .bool("conservation_holds", self.conservation_holds())
            .raw("pcap", &pcap.finish())
            .raw("packet_size", &size)
            .raw("shards", &{
                let mut buf = String::from("[");
                for (i, s) in shards.iter().enumerate() {
                    if i > 0 {
                        buf.push(',');
                    }
                    buf.push_str(s);
                }
                buf.push(']');
                buf
            })
            .raw("engine", &engine.finish())
            .raw("stage_latency", &stage.finish())
            .raw("qoe", &self.qoe.to_json());
        if let Some(c) = &self.capture {
            let mut cap = JsonObj::new();
            cap.u64("total", c.total)
                .u64("excluded", c.excluded)
                .u64("zoom_ip_matched", c.zoom_ip_matched)
                .u64("stun_registered", c.stun_registered)
                .u64("p2p_matched", c.p2p_matched)
                .u64("rtc_stun_registered", c.rtc_stun_registered)
                .u64("rtc_p2p_matched", c.rtc_p2p_matched)
                .u64("dropped", c.dropped)
                .u64("unparseable", c.unparseable)
                .u64("passed", c.passed)
                .u64("passed_bytes", c.passed_bytes)
                .u64("total_bytes", c.total_bytes);
            o.raw("capture", &cap.finish());
        }
        if !self.sources.is_empty() {
            let mut buf = String::from("[");
            for (i, s) in self.sources.iter().enumerate() {
                if i > 0 {
                    buf.push(',');
                }
                let mut so = JsonObj::new();
                so.str("source", &s.label)
                    .u64("packets", s.packets)
                    .u64("bytes", s.bytes)
                    .u64("batches", s.batches)
                    .u64("ring_full_drops", s.ring_full_drops)
                    .u64("ring_occupancy", s.ring_occupancy)
                    .u64("ring_occupancy_hwm", s.ring_occupancy_hwm)
                    .u64("delivered_ts_nanos", s.delivered_ts_nanos);
                buf.push_str(&so.finish());
            }
            buf.push(']');
            o.raw("sources", &buf);
        }
        if !self.workers.is_empty() {
            let mut buf = String::from("[");
            for (i, w) in self.workers.iter().enumerate() {
                if i > 0 {
                    buf.push(',');
                }
                let mut wo = JsonObj::new();
                wo.str("worker", &w.label)
                    .u64("packets", w.packets)
                    .u64("bytes", w.bytes)
                    .u64("batches", w.batches)
                    .u64("ring_full_drops", w.ring_full_drops)
                    .u64("truncated", w.truncated)
                    .u64("records_received", w.records_received)
                    .bool("complete", w.complete)
                    .str("link_state", link_state::name(w.link_state));
                buf.push_str(&wo.finish());
            }
            buf.push(']');
            o.raw("workers", &buf);
        }
        o.finish()
    }

    /// Render in the Prometheus text exposition format (version 0.0.4):
    /// `# HELP` / `# TYPE` per family, `zoom_`-prefixed names, shard
    /// labels, and cumulative `_bucket{le=...}` histogram series.
    pub fn to_prom(&self) -> String {
        use std::fmt::Write as _;
        fn family(out: &mut String, name: &str, kind: &str, help: &str, v: u64) {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {v}");
        }
        let mut out2 = String::with_capacity(4096);
        {
            let (version, git_sha, features) = build_info();
            let _ = writeln!(
                out2,
                "# HELP zoom_build_info Build metadata; the value is always 1."
            );
            let _ = writeln!(out2, "# TYPE zoom_build_info gauge");
            let _ = writeln!(
                out2,
                "zoom_build_info{} 1",
                prom_labels(
                    &["version", "git_sha", "features"],
                    &[
                        version.to_string(),
                        git_sha.to_string(),
                        features.to_string()
                    ]
                )
            );
            family(
                &mut out2,
                "zoom_uptime_seconds",
                "gauge",
                "Seconds since the metrics registry was created.",
                self.uptime_seconds,
            );
        }
        for (name, help, v) in [
            (
                "zoom_packets_in_total",
                "Records offered to the analysis sink.",
                self.packets_in,
            ),
            (
                "zoom_bytes_in_total",
                "Captured bytes across offered records.",
                self.bytes_in,
            ),
            (
                "zoom_packets_classified_total",
                "Records classified as Zoom traffic.",
                self.packets_classified,
            ),
            (
                "zoom_packets_not_zoom_total",
                "Records dissected but not classified as Zoom.",
                self.packets_not_zoom,
            ),
            (
                "zoom_malformed_zme_total",
                "Port-8801 UDP records whose Zoom Media Encapsulation failed to parse.",
                self.malformed_zme,
            ),
            (
                "zoom_classified_webrtc_total",
                "Records classified under the WebRTC family (DTLS, SRTP, SRTCP).",
                self.classified_webrtc,
            ),
            (
                "zoom_malformed_srtp_total",
                "WebRTC-flow records whose DTLS-SRTP framing failed to parse.",
                self.malformed_srtp,
            ),
        ] {
            family(&mut out2, name, "counter", help, v);
        }
        {
            let _ = writeln!(
                out2,
                "# HELP zoom_dissect_drops_total Records rejected by the dissector, by stage."
            );
            let _ = writeln!(out2, "# TYPE zoom_dissect_drops_total counter");
            for (stage, v) in [
                ("unsupported_link", self.drop_unsupported_link),
                ("non_ip", self.drop_non_ip),
                ("non_transport", self.drop_non_transport),
                ("truncated", self.drop_truncated),
                ("malformed", self.drop_malformed),
            ] {
                let _ = writeln!(out2, "zoom_dissect_drops_total{{stage=\"{stage}\"}} {v}");
            }

            for (name, help, v) in [
                (
                    "zoom_pcap_truncated_records",
                    "Records dropped at a torn pcap tail.",
                    self.pcap_truncated_records,
                ),
                (
                    "zoom_pcap_records_read",
                    "Complete records delivered by the pcap reader.",
                    self.pcap_records_read,
                ),
                (
                    "zoom_pcap_bytes_read",
                    "Captured bytes delivered by the pcap reader.",
                    self.pcap_bytes_read,
                ),
            ] {
                family(&mut out2, name, "gauge", help, v);
            }

            if !self.shards.is_empty() {
                let _ = writeln!(
                    out2,
                    "# HELP zoom_shard_routed_total Records routed to each shard."
                );
                let _ = writeln!(out2, "# TYPE zoom_shard_routed_total counter");
                for (i, s) in self.shards.iter().enumerate() {
                    let _ = writeln!(out2, "zoom_shard_routed_total{{shard=\"{i}\"}} {}", s.routed);
                }
                let _ = writeln!(
                    out2,
                    "# HELP zoom_shard_batches_total Batches flushed to each shard's channel."
                );
                let _ = writeln!(out2, "# TYPE zoom_shard_batches_total counter");
                for (i, s) in self.shards.iter().enumerate() {
                    let _ =
                        writeln!(out2, "zoom_shard_batches_total{{shard=\"{i}\"}} {}", s.batches);
                }
                let _ = writeln!(
                    out2,
                    "# HELP zoom_shard_pending_records Records batched at the router, not yet flushed."
                );
                let _ = writeln!(out2, "# TYPE zoom_shard_pending_records gauge");
                for (i, s) in self.shards.iter().enumerate() {
                    let _ =
                        writeln!(out2, "zoom_shard_pending_records{{shard=\"{i}\"}} {}", s.pending);
                }
                let _ = writeln!(
                    out2,
                    "# HELP zoom_shard_drained_total Batches each shard worker drained off its channel."
                );
                let _ = writeln!(out2, "# TYPE zoom_shard_drained_total counter");
                for (i, s) in self.shards.iter().enumerate() {
                    let _ =
                        writeln!(out2, "zoom_shard_drained_total{{shard=\"{i}\"}} {}", s.drained);
                }
                let _ = writeln!(
                    out2,
                    "# HELP zoom_shard_channel_depth Batches queued in each shard's channel."
                );
                let _ = writeln!(out2, "# TYPE zoom_shard_channel_depth gauge");
                for (i, s) in self.shards.iter().enumerate() {
                    let _ = writeln!(
                        out2,
                        "zoom_shard_channel_depth{{shard=\"{i}\"}} {}",
                        s.channel_depth()
                    );
                }
            }

            for (name, help, v) in [
                (
                    "zoom_windows_closed_total",
                    "Tumbling windows closed by the streaming engine.",
                    self.windows_closed,
                ),
                (
                    "zoom_checkpoints_total",
                    "Explicit checkpoints taken.",
                    self.checkpoints,
                ),
                (
                    "zoom_evicted_flows_total",
                    "Flows evicted by the idle timeout.",
                    self.evicted_flows,
                ),
                (
                    "zoom_evicted_streams_total",
                    "Streams evicted by the idle timeout.",
                    self.evicted_streams,
                ),
            ] {
                family(&mut out2, name, "counter", help, v);
            }
            for (name, help, v) in [
                (
                    "zoom_tracked_entries",
                    "Entries currently tracked across shards.",
                    self.tracked_entries,
                ),
                (
                    "zoom_peak_tracked_entries",
                    "High-water mark of tracked entries.",
                    self.peak_tracked_entries,
                ),
            ] {
                family(&mut out2, name, "gauge", help, v);
            }
            for (name, help, v) in [
                (
                    "zoom_trace_events_total",
                    "Trace span events recorded by the collector.",
                    self.trace_events,
                ),
                (
                    "zoom_trace_events_dropped_total",
                    "Trace events dropped at the bounded export queue.",
                    self.trace_events_dropped,
                ),
            ] {
                family(&mut out2, name, "counter", help, v);
            }

            let _ = writeln!(
                out2,
                "# HELP zoom_packet_size_bytes Captured-size distribution of offered records."
            );
            let _ = writeln!(out2, "# TYPE zoom_packet_size_bytes histogram");
            prom_histogram(&mut out2, "zoom_packet_size_bytes", "", &self.packet_size);

            let _ = writeln!(
                out2,
                "# HELP zoom_stage_latency_nanos Sampled wall-clock cost of pipeline stages."
            );
            let _ = writeln!(out2, "# TYPE zoom_stage_latency_nanos histogram");
            for (stage, h) in [
                ("push", &self.stage_push_nanos),
                ("merge", &self.stage_merge_nanos),
                ("checkpoint", &self.stage_checkpoint_nanos),
            ] {
                prom_histogram(
                    &mut out2,
                    "zoom_stage_latency_nanos",
                    &format!("stage=\"{stage}\""),
                    h,
                );
            }

            self.qoe.render_prom(&mut out2);

            if let Some(c) = &self.capture {
                let _ = writeln!(
                    out2,
                    "# HELP zoom_capture_verdicts_total Capture-filter verdicts, by stage."
                );
                let _ = writeln!(out2, "# TYPE zoom_capture_verdicts_total counter");
                for (stage, v) in [
                    ("excluded", c.excluded),
                    ("zoom_ip_matched", c.zoom_ip_matched),
                    ("stun_registered", c.stun_registered),
                    ("p2p_matched", c.p2p_matched),
                    ("rtc_stun_registered", c.rtc_stun_registered),
                    ("rtc_p2p_matched", c.rtc_p2p_matched),
                    ("dropped", c.dropped),
                    ("unparseable", c.unparseable),
                ] {
                    let _ = writeln!(out2, "zoom_capture_verdicts_total{{stage=\"{stage}\"}} {v}");
                }
                for (name, help, v) in [
                    (
                        "zoom_capture_packets_total",
                        "Packets offered to the capture filter.",
                        c.total,
                    ),
                    (
                        "zoom_capture_passed_total",
                        "Packets that reached the capture output.",
                        c.passed,
                    ),
                    (
                        "zoom_capture_passed_bytes_total",
                        "Bytes across passing packets.",
                        c.passed_bytes,
                    ),
                    (
                        "zoom_capture_bytes_total",
                        "Bytes across all offered packets.",
                        c.total_bytes,
                    ),
                ] {
                    family(&mut out2, name, "counter", help, v);
                }
            }

            if !self.sources.is_empty() {
                for (name, help, get) in [
                    (
                        "zoom_source_packets_total",
                        "Records pulled off each capture source.",
                        (|s| s.packets) as fn(&SourceSnapshot) -> u64,
                    ),
                    (
                        "zoom_source_bytes_total",
                        "Captured bytes across each source's records.",
                        |s| s.bytes,
                    ),
                    (
                        "zoom_source_batches_total",
                        "Batches each source handed to the fan-in ring.",
                        |s| s.batches,
                    ),
                    (
                        "zoom_source_ring_full_drops_total",
                        "Records dropped at a full hand-off ring, per source.",
                        |s| s.ring_full_drops,
                    ),
                ] {
                    let _ = writeln!(out2, "# HELP {name} {help}");
                    let _ = writeln!(out2, "# TYPE {name} counter");
                    for s in &self.sources {
                        let _ = writeln!(
                            out2,
                            "{name}{} {}",
                            prom_labels(&["source"], std::slice::from_ref(&s.label)),
                            get(s)
                        );
                    }
                }
                let max_delivered = self
                    .sources
                    .iter()
                    .map(|s| s.delivered_ts_nanos)
                    .max()
                    .unwrap_or(0);
                for (name, help, get) in [
                    (
                        "zoom_source_ring_occupancy",
                        "Batches queued in each source's hand-off ring at the last sample.",
                        (|s: &SourceSnapshot, _m: u64| s.ring_occupancy)
                            as fn(&SourceSnapshot, u64) -> u64,
                    ),
                    (
                        "zoom_source_ring_occupancy_peak",
                        "High-water mark of each source's ring occupancy.",
                        |s, _m| s.ring_occupancy_hwm,
                    ),
                    (
                        "zoom_source_lag_nanos",
                        "Trace-time lag of each source lane behind the furthest-ahead lane.",
                        |s, m| m.saturating_sub(s.delivered_ts_nanos),
                    ),
                ] {
                    let _ = writeln!(out2, "# HELP {name} {help}");
                    let _ = writeln!(out2, "# TYPE {name} gauge");
                    for s in &self.sources {
                        let _ = writeln!(
                            out2,
                            "{name}{} {}",
                            prom_labels(&["source"], std::slice::from_ref(&s.label)),
                            get(s, max_delivered)
                        );
                    }
                }
            }

            if !self.workers.is_empty() {
                for (name, kind, help, get) in [
                    (
                        "zoom_worker_packets_total",
                        "counter",
                        "Records each fragment worker reported capturing.",
                        (|w| w.packets) as fn(&WorkerSnapshot) -> u64,
                    ),
                    (
                        "zoom_worker_bytes_total",
                        "counter",
                        "Captured bytes each fragment worker reported.",
                        |w| w.bytes,
                    ),
                    (
                        "zoom_worker_ring_full_drops_total",
                        "counter",
                        "Records each worker dropped at its own capture rings.",
                        |w| w.ring_full_drops,
                    ),
                    (
                        "zoom_worker_records_received_total",
                        "counter",
                        "Records the merge node decoded from each worker's stream.",
                        |w| w.records_received,
                    ),
                    (
                        "zoom_worker_complete",
                        "gauge",
                        "1 once a worker's stream ended with a proper Bye frame.",
                        |w| u64::from(w.complete),
                    ),
                    (
                        "zoom_worker_link_state",
                        "gauge",
                        "Worker stream state: 0 pending, 1 streaming, 2 done, 3 error.",
                        |w| w.link_state,
                    ),
                ] {
                    let _ = writeln!(out2, "# HELP {name} {help}");
                    let _ = writeln!(out2, "# TYPE {name} {kind}");
                    for w in &self.workers {
                        let _ = writeln!(
                            out2,
                            "{name}{} {}",
                            prom_labels(&["worker"], std::slice::from_ref(&w.label)),
                            get(w)
                        );
                    }
                }
            }
        }
        out2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative_in_prom() {
        let h = Histogram::new(PACKET_SIZE_BOUNDS);
        for v in [10u64, 64, 65, 200, 2000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 10 + 64 + 65 + 200 + 2000);
        // ≤64: two (10, 64); (64,128]: one (65); (128,256]: one (200);
        // +Inf overflow: one (2000).
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(*s.buckets.last().unwrap(), 1);
    }

    #[test]
    fn conservation_and_drop_routing() {
        let m = PipelineMetrics::new(2);
        m.record_in(100);
        m.record_in(200);
        m.record_in(300);
        m.packets_classified.inc();
        m.packets_not_zoom.inc();
        m.record_drop(DropStage::NonIp);
        let s = m.snapshot();
        assert_eq!(s.packets_in, 3);
        assert_eq!(s.bytes_in, 600);
        assert_eq!(s.drop_non_ip, 1);
        assert_eq!(s.drops_total(), 1);
        assert!(s.conservation_holds());
        m.record_drop(DropStage::Truncated);
        assert!(!m.snapshot().conservation_holds());
    }

    #[test]
    fn source_registry_extends_conservation_and_renders() {
        let m = PipelineMetrics::new(0);
        // No sources: the families are absent from both renders.
        let s = m.snapshot();
        assert!(s.sources.is_empty());
        assert!(!s.to_prom().contains("zoom_source_packets_total"));
        assert!(!s.to_json().contains("\"sources\""));

        let tap = m.register_source("pcap:a.pcap");
        let live = m.register_source("sim:p2p");
        // tap captured 3 records; all reached the sink.
        tap.packets.add(3);
        tap.bytes.add(300);
        tap.batches.inc();
        // live captured 4 records; one was dropped at a full ring.
        live.packets.add(4);
        live.bytes.add(400);
        live.batches.add(2);
        live.ring_full_drops.inc();
        for _ in 0..6 {
            m.record_in(100);
        }
        m.packets_classified.add(5);
        m.packets_not_zoom.inc();

        let s = m.snapshot();
        assert_eq!(s.source_packets_total(), 7);
        assert_eq!(s.ring_full_drops_total(), 1);
        // 7 captured == 6 offered to the sink + 1 ring drop, and the
        // sink-side ledger balances too.
        assert!(s.conservation_holds());

        let prom = s.to_prom();
        assert!(prom.contains("zoom_source_packets_total{source=\"pcap:a.pcap\"} 3"));
        assert!(prom.contains("zoom_source_ring_full_drops_total{source=\"sim:p2p\"} 1"));
        let json = s.to_json();
        assert!(json.contains("\"sources\":[{\"source\":\"pcap:a.pcap\""));
        assert!(json.contains("\"ring_full_drops\":1"));

        // An unaccounted capture loss breaks the extended invariant even
        // though the sink-side ledger still balances.
        live.packets.inc();
        assert!(!m.snapshot().conservation_holds());
    }

    #[test]
    fn worker_registry_extends_conservation_and_renders() {
        let m = PipelineMetrics::new(0);
        // No workers: the families are absent from both renders.
        let s = m.snapshot();
        assert!(s.workers.is_empty());
        assert!(!s.to_prom().contains("zoom_worker_packets_total"));
        assert!(!s.to_json().contains("\"workers\""));

        let w0 = m.register_worker("box-a");
        let w1 = m.register_worker("box-b");
        // box-a captured 5, shipped all 5; box-b captured 4, dropped 1
        // at its own rings and shipped 3.
        w0.packets.set(5);
        w0.bytes.set(500);
        w0.records_received.add(5);
        w0.complete.set(1);
        w1.packets.set(4);
        w1.bytes.set(400);
        w1.ring_full_drops.set(1);
        w1.records_received.add(3);
        w1.complete.set(1);
        for _ in 0..8 {
            m.record_in(100);
        }
        m.packets_classified.add(8);

        let s = m.snapshot();
        assert_eq!(s.worker_packets_total(), 9);
        assert_eq!(s.worker_records_received_total(), 8);
        // Σ worker packets (9) == merge packets_in (8) + worker drops (1).
        assert!(s.conservation_holds());

        let prom = s.to_prom();
        assert!(prom.contains("zoom_worker_packets_total{worker=\"box-a\"} 5"));
        assert!(prom.contains("zoom_worker_ring_full_drops_total{worker=\"box-b\"} 1"));
        assert!(prom.contains("zoom_worker_records_received_total{worker=\"box-b\"} 3"));
        assert!(prom.contains("zoom_worker_complete{worker=\"box-a\"} 1"));
        let json = s.to_json();
        assert!(json.contains("\"workers\":[{\"worker\":\"box-a\""));
        assert!(json.contains("\"records_received\":3"));
        assert!(json.contains("\"complete\":true"));

        // A worker that reports more than the merge saw (a lost frame)
        // breaks the worker half of the ledger.
        w0.packets.set(6);
        assert!(!m.snapshot().conservation_holds());
    }

    /// Snapshot test: the Prometheus text render is pinned byte for byte
    /// so schema drift (name, label, or HELP changes) is an explicit,
    /// reviewed diff.
    #[test]
    fn prom_render_is_pinned() {
        let m = PipelineMetrics::new(1);
        m.record_in(100);
        m.record_in(1500);
        m.packets_classified.inc();
        m.record_drop(DropStage::Truncated);
        m.packets_not_zoom.inc();
        m.shards[0].routed.add(2);
        m.shards[0].batches.inc();
        m.windows_closed.inc();
        m.tracked_entries.set(4);
        m.peak_tracked_entries.set_max(9);
        m.stage_push_nanos.observe(5_000);
        m.qoe
            .bitrate_bps
            .with(&["3", "video", "zoom"], |g| g.set(640_000.0));
        m.qoe
            .frame_size_bytes
            .with(&["video", "zoom"], |h| h.observe(1_200));
        m.qoe
            .retransmissions
            .with(&["3", "video", "zoom"], |c| c.add(2));
        m.qoe.degraded.with(&["3", "low_fps"], |g| g.set(1));
        m.qoe.estimated_rtt_ms.set(23.5);
        let prom = m.snapshot().to_prom();
        // The build_info labels track the crate version / baked-in SHA,
        // so that one line is formatted rather than hard-pinned; the
        // schema around it stays byte-pinned.
        let (version, git_sha, features) = build_info();
        let header = format!(
            "# HELP zoom_build_info Build metadata; the value is always 1.\n\
             # TYPE zoom_build_info gauge\n\
             zoom_build_info{{version=\"{version}\",git_sha=\"{git_sha}\",features=\"{features}\"}} 1\n\
             # HELP zoom_uptime_seconds Seconds since the metrics registry was created.\n\
             # TYPE zoom_uptime_seconds gauge\n\
             zoom_uptime_seconds 0\n"
        );
        let expected = "\
# HELP zoom_packets_in_total Records offered to the analysis sink.
# TYPE zoom_packets_in_total counter
zoom_packets_in_total 2
# HELP zoom_bytes_in_total Captured bytes across offered records.
# TYPE zoom_bytes_in_total counter
zoom_bytes_in_total 1600
# HELP zoom_packets_classified_total Records classified as Zoom traffic.
# TYPE zoom_packets_classified_total counter
zoom_packets_classified_total 1
# HELP zoom_packets_not_zoom_total Records dissected but not classified as Zoom.
# TYPE zoom_packets_not_zoom_total counter
zoom_packets_not_zoom_total 1
# HELP zoom_malformed_zme_total Port-8801 UDP records whose Zoom Media Encapsulation failed to parse.
# TYPE zoom_malformed_zme_total counter
zoom_malformed_zme_total 0
# HELP zoom_classified_webrtc_total Records classified under the WebRTC family (DTLS, SRTP, SRTCP).
# TYPE zoom_classified_webrtc_total counter
zoom_classified_webrtc_total 0
# HELP zoom_malformed_srtp_total WebRTC-flow records whose DTLS-SRTP framing failed to parse.
# TYPE zoom_malformed_srtp_total counter
zoom_malformed_srtp_total 0
# HELP zoom_dissect_drops_total Records rejected by the dissector, by stage.
# TYPE zoom_dissect_drops_total counter
zoom_dissect_drops_total{stage=\"unsupported_link\"} 0
zoom_dissect_drops_total{stage=\"non_ip\"} 0
zoom_dissect_drops_total{stage=\"non_transport\"} 0
zoom_dissect_drops_total{stage=\"truncated\"} 1
zoom_dissect_drops_total{stage=\"malformed\"} 0
# HELP zoom_pcap_truncated_records Records dropped at a torn pcap tail.
# TYPE zoom_pcap_truncated_records gauge
zoom_pcap_truncated_records 0
# HELP zoom_pcap_records_read Complete records delivered by the pcap reader.
# TYPE zoom_pcap_records_read gauge
zoom_pcap_records_read 0
# HELP zoom_pcap_bytes_read Captured bytes delivered by the pcap reader.
# TYPE zoom_pcap_bytes_read gauge
zoom_pcap_bytes_read 0
# HELP zoom_shard_routed_total Records routed to each shard.
# TYPE zoom_shard_routed_total counter
zoom_shard_routed_total{shard=\"0\"} 2
# HELP zoom_shard_batches_total Batches flushed to each shard's channel.
# TYPE zoom_shard_batches_total counter
zoom_shard_batches_total{shard=\"0\"} 1
# HELP zoom_shard_pending_records Records batched at the router, not yet flushed.
# TYPE zoom_shard_pending_records gauge
zoom_shard_pending_records{shard=\"0\"} 0
# HELP zoom_shard_drained_total Batches each shard worker drained off its channel.
# TYPE zoom_shard_drained_total counter
zoom_shard_drained_total{shard=\"0\"} 0
# HELP zoom_shard_channel_depth Batches queued in each shard's channel.
# TYPE zoom_shard_channel_depth gauge
zoom_shard_channel_depth{shard=\"0\"} 1
# HELP zoom_windows_closed_total Tumbling windows closed by the streaming engine.
# TYPE zoom_windows_closed_total counter
zoom_windows_closed_total 1
# HELP zoom_checkpoints_total Explicit checkpoints taken.
# TYPE zoom_checkpoints_total counter
zoom_checkpoints_total 0
# HELP zoom_evicted_flows_total Flows evicted by the idle timeout.
# TYPE zoom_evicted_flows_total counter
zoom_evicted_flows_total 0
# HELP zoom_evicted_streams_total Streams evicted by the idle timeout.
# TYPE zoom_evicted_streams_total counter
zoom_evicted_streams_total 0
# HELP zoom_tracked_entries Entries currently tracked across shards.
# TYPE zoom_tracked_entries gauge
zoom_tracked_entries 4
# HELP zoom_peak_tracked_entries High-water mark of tracked entries.
# TYPE zoom_peak_tracked_entries gauge
zoom_peak_tracked_entries 9
# HELP zoom_trace_events_total Trace span events recorded by the collector.
# TYPE zoom_trace_events_total counter
zoom_trace_events_total 0
# HELP zoom_trace_events_dropped_total Trace events dropped at the bounded export queue.
# TYPE zoom_trace_events_dropped_total counter
zoom_trace_events_dropped_total 0
# HELP zoom_packet_size_bytes Captured-size distribution of offered records.
# TYPE zoom_packet_size_bytes histogram
zoom_packet_size_bytes_bucket{le=\"64\"} 0
zoom_packet_size_bytes_bucket{le=\"128\"} 1
zoom_packet_size_bytes_bucket{le=\"256\"} 1
zoom_packet_size_bytes_bucket{le=\"512\"} 1
zoom_packet_size_bytes_bucket{le=\"1024\"} 1
zoom_packet_size_bytes_bucket{le=\"1536\"} 2
zoom_packet_size_bytes_bucket{le=\"+Inf\"} 2
zoom_packet_size_bytes_sum 1600
zoom_packet_size_bytes_count 2
# HELP zoom_stage_latency_nanos Sampled wall-clock cost of pipeline stages.
# TYPE zoom_stage_latency_nanos histogram
zoom_stage_latency_nanos_bucket{stage=\"push\",le=\"1000\"} 0
zoom_stage_latency_nanos_bucket{stage=\"push\",le=\"10000\"} 1
zoom_stage_latency_nanos_bucket{stage=\"push\",le=\"100000\"} 1
zoom_stage_latency_nanos_bucket{stage=\"push\",le=\"1000000\"} 1
zoom_stage_latency_nanos_bucket{stage=\"push\",le=\"10000000\"} 1
zoom_stage_latency_nanos_bucket{stage=\"push\",le=\"100000000\"} 1
zoom_stage_latency_nanos_bucket{stage=\"push\",le=\"+Inf\"} 1
zoom_stage_latency_nanos_sum{stage=\"push\"} 5000
zoom_stage_latency_nanos_count{stage=\"push\"} 1
zoom_stage_latency_nanos_bucket{stage=\"merge\",le=\"1000\"} 0
zoom_stage_latency_nanos_bucket{stage=\"merge\",le=\"10000\"} 0
zoom_stage_latency_nanos_bucket{stage=\"merge\",le=\"100000\"} 0
zoom_stage_latency_nanos_bucket{stage=\"merge\",le=\"1000000\"} 0
zoom_stage_latency_nanos_bucket{stage=\"merge\",le=\"10000000\"} 0
zoom_stage_latency_nanos_bucket{stage=\"merge\",le=\"100000000\"} 0
zoom_stage_latency_nanos_bucket{stage=\"merge\",le=\"+Inf\"} 0
zoom_stage_latency_nanos_sum{stage=\"merge\"} 0
zoom_stage_latency_nanos_count{stage=\"merge\"} 0
zoom_stage_latency_nanos_bucket{stage=\"checkpoint\",le=\"1000\"} 0
zoom_stage_latency_nanos_bucket{stage=\"checkpoint\",le=\"10000\"} 0
zoom_stage_latency_nanos_bucket{stage=\"checkpoint\",le=\"100000\"} 0
zoom_stage_latency_nanos_bucket{stage=\"checkpoint\",le=\"1000000\"} 0
zoom_stage_latency_nanos_bucket{stage=\"checkpoint\",le=\"10000000\"} 0
zoom_stage_latency_nanos_bucket{stage=\"checkpoint\",le=\"100000000\"} 0
zoom_stage_latency_nanos_bucket{stage=\"checkpoint\",le=\"+Inf\"} 0
zoom_stage_latency_nanos_sum{stage=\"checkpoint\"} 0
zoom_stage_latency_nanos_count{stage=\"checkpoint\"} 0
# HELP zoom_qoe_bitrate_bps Media bitrate over the last closed window.
# TYPE zoom_qoe_bitrate_bps gauge
zoom_qoe_bitrate_bps{meeting=\"3\",media=\"video\",family=\"zoom\"} 640000
# HELP zoom_qoe_frame_size_bytes Per-frame media payload size distribution.
# TYPE zoom_qoe_frame_size_bytes histogram
zoom_qoe_frame_size_bytes_bucket{media=\"video\",family=\"zoom\",le=\"256\"} 0
zoom_qoe_frame_size_bytes_bucket{media=\"video\",family=\"zoom\",le=\"512\"} 0
zoom_qoe_frame_size_bytes_bucket{media=\"video\",family=\"zoom\",le=\"1024\"} 0
zoom_qoe_frame_size_bytes_bucket{media=\"video\",family=\"zoom\",le=\"2048\"} 1
zoom_qoe_frame_size_bytes_bucket{media=\"video\",family=\"zoom\",le=\"4096\"} 1
zoom_qoe_frame_size_bytes_bucket{media=\"video\",family=\"zoom\",le=\"8192\"} 1
zoom_qoe_frame_size_bytes_bucket{media=\"video\",family=\"zoom\",le=\"16384\"} 1
zoom_qoe_frame_size_bytes_bucket{media=\"video\",family=\"zoom\",le=\"32768\"} 1
zoom_qoe_frame_size_bytes_bucket{media=\"video\",family=\"zoom\",le=\"+Inf\"} 1
zoom_qoe_frame_size_bytes_sum{media=\"video\",family=\"zoom\"} 1200
zoom_qoe_frame_size_bytes_count{media=\"video\",family=\"zoom\"} 1
# HELP zoom_qoe_retransmissions_total Duplicate RTP sequence numbers observed.
# TYPE zoom_qoe_retransmissions_total counter
zoom_qoe_retransmissions_total{meeting=\"3\",media=\"video\",family=\"zoom\"} 2
# HELP zoom_qoe_degraded Active QoE degradation verdicts (1 = degraded).
# TYPE zoom_qoe_degraded gauge
zoom_qoe_degraded{meeting=\"3\",kind=\"low_fps\"} 1
# HELP zoom_qoe_estimated_rtt_ms Mean RTP-copy RTT over the last closed window.
# TYPE zoom_qoe_estimated_rtt_ms gauge
zoom_qoe_estimated_rtt_ms 23.5
# HELP zoom_qoe_series_evicted_total Labeled series dropped at the cardinality cap.
# TYPE zoom_qoe_series_evicted_total counter
zoom_qoe_series_evicted_total{family=\"bitrate_bps\"} 0
zoom_qoe_series_evicted_total{family=\"fps\"} 0
zoom_qoe_series_evicted_total{family=\"jitter_ms\"} 0
zoom_qoe_series_evicted_total{family=\"frame_size_bytes\"} 0
zoom_qoe_series_evicted_total{family=\"retransmissions\"} 0
zoom_qoe_series_evicted_total{family=\"degraded\"} 0
";
        assert_eq!(prom, format!("{header}{expected}"));
    }

    #[test]
    fn json_snapshot_has_schema_keys() {
        let m = PipelineMetrics::new(2);
        m.record_in(64);
        m.packets_classified.inc();
        let mut s = m.snapshot();
        s.capture = Some(CaptureMetricsSnapshot {
            total: 5,
            passed: 3,
            ..Default::default()
        });
        let json = s.to_json();
        for key in [
            "\"type\":\"metrics\"",
            "\"build\":{\"version\":",
            "\"git_sha\":",
            "\"features\":",
            "\"uptime_seconds\":",
            "\"trace\":{\"events\":0,\"events_dropped\":0}",
            "\"packets_in\":1",
            "\"drops\":{",
            "\"conservation_holds\":true",
            "\"pcap\":{",
            "\"packet_size\":{",
            "\"shards\":[",
            "\"engine\":{",
            "\"stage_latency\":{",
            "\"qoe\":{",
            "\"series_evicted\":{",
            "\"capture\":{",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let h = Histogram::new(&[10, 20, 40]);
        // Ten observations spread evenly through the (0, 10] bucket.
        for _ in 0..10 {
            h.observe(5);
        }
        let s = h.snapshot();
        // target = 0.5 * 10 = 5 observations into a 10-deep bucket that
        // spans (0, 10]: 0 + (5/10) * 10 = 5.
        assert_eq!(s.quantile(0.5), 5.0);
        assert_eq!(s.quantile(1.0), 10.0);
        assert_eq!(s.quantile(0.0), 0.0);

        let h = Histogram::new(&[10, 20, 40]);
        h.observe(5); // (0, 10]
        h.observe(15); // (10, 20]
        h.observe(15);
        h.observe(30); // (20, 40]
        let s = h.snapshot();
        // p50: target 2.0; first bucket holds 1, so 1.0 into the 2-deep
        // (10, 20] bucket: 10 + (1/2) * 10 = 15.
        assert_eq!(s.quantile(0.5), 15.0);
        // p75: target 3.0; exactly consumes the second bucket: 20.
        assert_eq!(s.quantile(0.75), 20.0);
        // p100 lands in (20, 40]: 20 + (1/1) * 20 = 40.
        assert_eq!(s.quantile(1.0), 40.0);
        // Out-of-range q clamps.
        assert_eq!(s.quantile(2.0), 40.0);

        // Overflow observations clamp to the last finite bound.
        let h = Histogram::new(&[10]);
        h.observe(1_000);
        assert_eq!(h.snapshot().quantile(0.99), 10.0);

        // Empty histogram reports 0.
        assert_eq!(Histogram::new(&[10]).snapshot().quantile(0.5), 0.0);
    }

    #[test]
    fn labeled_family_caps_cardinality_with_lru_eviction() {
        let fam: LabeledFamily<Counter> = LabeledFamily::new(&["meeting"], 2, Counter::new);
        fam.with(&["1"], |c| c.inc());
        fam.with(&["2"], |c| c.inc());
        assert_eq!(fam.len(), 2);
        assert_eq!(fam.series_evicted(), 0);
        // Touch "1" so "2" becomes the least recently used.
        fam.with(&["1"], |c| c.inc());
        fam.with(&["3"], |c| c.inc());
        assert_eq!(fam.len(), 2);
        assert_eq!(fam.series_evicted(), 1);
        let snap = fam.snapshot();
        let keys: Vec<&str> = snap.iter().map(|(k, _)| k[0].as_str()).collect();
        assert_eq!(keys, ["1", "3"], "LRU series evicted, not newest");
        assert_eq!(snap[0].1, 2);
    }

    #[test]
    fn labeled_family_snapshot_order_is_deterministic() {
        let fam: LabeledFamily<Gauge> = LabeledFamily::new(&["meeting", "media"], 8, Gauge::new);
        for labels in [["2", "video"], ["1", "video"], ["1", "audio"]] {
            fam.with(&labels, |g| g.set(7));
        }
        let keys: Vec<Vec<String>> = fam.snapshot().into_iter().map(|(k, _)| k).collect();
        assert_eq!(
            keys,
            [
                vec!["1".to_string(), "audio".to_string()],
                vec!["1".to_string(), "video".to_string()],
                vec!["2".to_string(), "video".to_string()],
            ],
            "snapshot sorts lexicographically by label values"
        );
    }

    #[test]
    fn qoe_prom_render_skips_empty_families() {
        let q = QoeMetrics::new(4);
        let mut out = String::new();
        q.snapshot().render_prom(&mut out);
        assert!(!out.contains("zoom_qoe_bitrate_bps{"));
        assert!(!out.contains("zoom_qoe_degraded{"));
        // Always-on lines are present even with no series.
        assert!(out.contains("zoom_qoe_estimated_rtt_ms 0"));
        assert!(out.contains("zoom_qoe_series_evicted_total{family=\"fps\"} 0"));
    }

    #[test]
    fn trace_stubs_compile_and_run() {
        let _s = trace::span("test");
        trace::event("test", "detail=1");
    }

    /// Pin the exposition-format escaping of user-supplied label values:
    /// worker labels and source specs arrive from the command line, so a
    /// path containing `\`, `"`, or a newline must render as the escape
    /// sequences Prometheus's parser expects, never raw.
    #[test]
    fn prom_label_values_are_escaped() {
        let m = PipelineMetrics::new(0);
        let src = m.register_source("pcap:C:\\traces\\a \"prod\" run\n.pcap");
        src.packets.inc();
        let w = m.register_worker("box\\one\"two\nthree");
        w.packets.set(1);
        m.qoe
            .degraded
            .with(&["5", "weird\\\"kind\n"], |g| g.set(1));
        let prom = m.snapshot().to_prom();
        assert!(prom.contains(
            r#"zoom_source_packets_total{source="pcap:C:\\traces\\a \"prod\" run\n.pcap"} 1"#
        ));
        assert!(prom.contains(r#"zoom_worker_packets_total{worker="box\\one\"two\nthree"} 1"#));
        assert!(prom.contains(r#"zoom_qoe_degraded{meeting="5",kind="weird\\\"kind\n"} 1"#));
        // No label line may carry a raw newline or unescaped quote: every
        // rendered line must still be a complete `name{...} value` line.
        for line in prom.lines().filter(|l| l.contains("box\\\\one")) {
            assert!(
                line.ends_with(" 0") || line.ends_with(" 1"),
                "label leaked a raw newline: {line}"
            );
        }
    }

    #[test]
    fn build_info_and_uptime_render_everywhere() {
        let (version, git_sha, features) = build_info();
        assert!(!version.is_empty());
        assert!(!git_sha.is_empty());
        let m = PipelineMetrics::new(0);
        let s = m.snapshot();
        let prom = s.to_prom();
        assert!(prom.starts_with("# HELP zoom_build_info"));
        assert!(prom.contains(&format!(
            "zoom_build_info{{version=\"{version}\",git_sha=\"{git_sha}\",features=\"{features}\"}} 1"
        )));
        assert!(prom.contains("zoom_uptime_seconds 0"));
        let json = s.to_json();
        assert!(json.contains(&format!("\"version\":\"{version}\"")));
        assert!(json.contains("\"uptime_seconds\":0"));
    }

    #[test]
    fn debug_json_exposes_live_pipeline_state() {
        let m = PipelineMetrics::new(2);
        let src = m.register_source("pcap:a.pcap");
        src.ring_occupancy.set(3);
        src.ring_occupancy_hwm.set_max(7);
        src.delivered_ts_nanos.set(1_000);
        let lagging = m.register_source("pcap:b.pcap");
        lagging.delivered_ts_nanos.set(400);
        m.shards[0].batches.add(5);
        m.shards[0].drained.add(3);
        let w = m.register_worker("box-a");
        w.link_state.set(link_state::STREAMING);
        m.trace.enable(4, "merge");

        let json = m.debug_json();
        for key in [
            "\"type\":\"debug_pipeline\"",
            "\"build\":{\"version\":",
            "\"ring_occupancy\":3",
            "\"ring_occupancy_hwm\":7",
            "\"lag_nanos\":600",
            "\"channel_depth\":2",
            "\"link_state\":\"streaming\"",
            "\"tables\":{\"tracked_entries\":0",
            "\"trace\":{\"enabled\":true,\"node\":\"merge\",\"sample_every\":4",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn shard_channel_depth_saturates() {
        let s = ShardSnapshot {
            routed: 0,
            batches: 2,
            pending: 0,
            drained: 3,
        };
        assert_eq!(s.channel_depth(), 0);
    }
}
