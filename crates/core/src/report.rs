//! Owned analysis reports and their JSON serialization.
//!
//! [`AnalysisReport`] is the value-typed result of a finished analysis —
//! trace summary, per-meeting breakdown, per-stream metrics, and RTT
//! summaries — returned by [`crate::pipeline::Analyzer::finish`] and
//! [`crate::parallel::ParallelAnalyzer::finish`] instead of a borrow of
//! the analyzer itself. [`WindowReport`] is the per-window variant the
//! [`crate::engine::StreamingEngine`] emits while a trace is still
//! flowing: per-stream *deltas* over one tumbling window plus
//! meeting-level rollups, mirroring a live Table 6 row.
//!
//! Serialization is hand-rolled JSON (the workspace takes no external
//! dependencies): deterministic field order, sorted collections, and
//! integer-domain aggregation wherever exactness matters, so two reports
//! built from the same underlying state serialize byte-identically — the
//! property `tests/streaming_differential.rs` leans on.

use crate::classify::TableRow;
use crate::meeting::MeetingReport;
use crate::packet::Direction;
use crate::pipeline::{Analyzer, TraceSummary};
use crate::stream::{Stream, StreamKey};
use zoom_wire::family::FamilyId;
use zoom_wire::zoom::MediaType;

// ---------------------------------------------------------------- JSON --

/// Minimal JSON object writer: deterministic field order, no trailing
/// commas, numbers via Rust's shortest round-trip `Display`.
pub(crate) struct JsonObj {
    buf: String,
    first: bool,
}

impl JsonObj {
    pub(crate) fn new() -> JsonObj {
        JsonObj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(k);
        self.buf.push_str("\":");
    }

    pub(crate) fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    pub(crate) fn usize(&mut self, k: &str, v: usize) -> &mut Self {
        self.u64(k, v as u64)
    }

    pub(crate) fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        if v.is_finite() {
            self.buf.push_str(&v.to_string());
        } else {
            self.buf.push_str("null");
        }
        self
    }

    pub(crate) fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        for c in v.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                c if (c as u32) < 0x20 => {
                    self.buf.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
        self
    }

    /// Insert pre-serialized JSON (an array or nested object) verbatim.
    pub(crate) fn raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    pub(crate) fn opt_u32(&mut self, k: &str, v: Option<u32>) -> &mut Self {
        self.key(k);
        match v {
            Some(v) => self.buf.push_str(&v.to_string()),
            None => self.buf.push_str("null"),
        }
        self
    }

    pub(crate) fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    pub(crate) fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

fn json_array(items: impl IntoIterator<Item = String>) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

// ------------------------------------------------------------- reports --

/// Order-independent summary of a set of RTT samples.
///
/// Aggregation happens in the integer nanosecond domain (sum of `u64`,
/// then one division), so the result is bit-identical regardless of the
/// order samples were collected in — the batch and streaming paths may
/// interleave shard samples differently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RttSummaryReport {
    /// Number of samples.
    pub samples: usize,
    /// Mean RTT, milliseconds.
    pub mean_ms: f64,
    /// Median RTT, milliseconds (nearest rank).
    pub p50_ms: f64,
    /// 95th-percentile RTT, milliseconds (nearest rank).
    pub p95_ms: f64,
}

impl RttSummaryReport {
    /// Summarize a slice of samples (any order).
    pub fn from_samples(samples: &[crate::metrics::latency::RttSample]) -> RttSummaryReport {
        let mut nanos: Vec<u64> = samples.iter().map(|s| s.rtt_nanos).collect();
        nanos.sort_unstable();
        let n = nanos.len();
        if n == 0 {
            return RttSummaryReport {
                samples: 0,
                mean_ms: 0.0,
                p50_ms: 0.0,
                p95_ms: 0.0,
            };
        }
        let sum: u128 = nanos.iter().map(|&v| u128::from(v)).sum();
        let rank = |q: f64| nanos[((n - 1) as f64 * q).round() as usize] as f64 / 1e6;
        RttSummaryReport {
            samples: n,
            mean_ms: (sum / n as u128) as f64 / 1e6,
            p50_ms: rank(0.5),
            p95_ms: rank(0.95),
        }
    }

    fn to_json(self) -> String {
        let mut o = JsonObj::new();
        o.usize("samples", self.samples)
            .f64("mean_ms", self.mean_ms)
            .f64("p50_ms", self.p50_ms)
            .f64("p95_ms", self.p95_ms);
        o.finish()
    }
}

/// Whole-trace metrics of one media stream (one row of the per-stream
/// report; an evicted stream that reappeared contributes one row per
/// tracked fragment).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// The stream's identity: (flow, SSRC).
    pub key: StreamKey,
    /// Zoom media encapsulation type (or its WebRTC mapping).
    pub media_type: MediaType,
    /// Uplink/downlink orientation.
    pub direction: Direction,
    /// Protocol family that produced the stream. Serialized only when
    /// not [`FamilyId::Zoom`], keeping Zoom-only reports byte-identical
    /// to the pre-family format.
    pub family: FamilyId,
    /// Identifier shared by all copies of the same media (grouping
    /// step 1).
    pub unique_id: Option<u32>,
    /// Canonical meeting id (grouping step 2).
    pub meeting: Option<u32>,
    /// First packet timestamp, nanoseconds.
    pub first_seen_nanos: u64,
    /// Last packet timestamp, nanoseconds.
    pub last_seen_nanos: u64,
    /// Packets observed.
    pub packets: u64,
    /// Media payload bytes across sub-streams.
    pub media_bytes: u64,
    /// Reconstructed frames (video/screen-share streams).
    pub frames: u64,
    /// Mean media bit rate over the stream's lifetime, bits/s.
    pub mean_bitrate_bps: f64,
    /// Frame-level jitter estimate, milliseconds.
    pub jitter_ms: f64,
    /// Sequence numbers confirmed missing, summed over sub-streams.
    pub lost: u64,
    /// Duplicate (retransmitted) packets, summed over sub-streams.
    pub duplicates: u64,
    /// True when this row was flushed by the streaming engine's idle
    /// eviction rather than at end of trace.
    pub evicted: bool,
}

impl StreamReport {
    pub(crate) fn from_stream(
        s: &Stream,
        unique_id: Option<u32>,
        meeting: Option<u32>,
        evicted: bool,
    ) -> StreamReport {
        let (lost, duplicates) = s
            .substreams
            .values()
            .map(|sub| {
                let st = sub.seq_stats();
                (st.missing, st.duplicates)
            })
            .fold((0, 0), |(l, d), (sl, sd)| (l + sl, d + sd));
        StreamReport {
            key: s.key,
            media_type: s.media_type,
            direction: s.direction,
            family: s.family,
            unique_id,
            meeting,
            first_seen_nanos: s.first_seen,
            last_seen_nanos: s.last_seen,
            packets: s.packets,
            media_bytes: s.media_bytes(),
            frames: s.frames.as_ref().map(|f| f.frames().len()).unwrap_or(0) as u64,
            mean_bitrate_bps: s.mean_media_bitrate(),
            jitter_ms: s.frame_jitter.jitter_ms(),
            lost,
            duplicates,
            evicted,
        }
    }

    fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("flow", &self.key.flow.to_string())
            .u64("ssrc", u64::from(self.key.ssrc))
            .str("media", self.media_type.label());
        if self.family != FamilyId::Zoom {
            o.str("family", self.family.label());
        }
        o.str("direction", direction_label(self.direction))
            .opt_u32("unique_id", self.unique_id)
            .opt_u32("meeting", self.meeting)
            .u64("first_seen_nanos", self.first_seen_nanos)
            .u64("last_seen_nanos", self.last_seen_nanos)
            .u64("packets", self.packets)
            .u64("media_bytes", self.media_bytes)
            .u64("frames", self.frames)
            .f64("mean_bitrate_bps", self.mean_bitrate_bps)
            .f64("jitter_ms", self.jitter_ms)
            .u64("lost", self.lost)
            .u64("duplicates", self.duplicates)
            .bool("evicted", self.evicted);
        o.finish()
    }
}

fn direction_label(d: Direction) -> &'static str {
    match d {
        Direction::ToServer => "up",
        Direction::FromServer => "down",
        Direction::Unknown => "unknown",
    }
}

fn meeting_to_json(m: &MeetingReport) -> String {
    let mut clients: Vec<String> = m.clients.iter().map(|ip| ip.to_string()).collect();
    clients.sort();
    let mut servers: Vec<String> = m.servers.iter().map(|ip| ip.to_string()).collect();
    servers.sort();
    let mut o = JsonObj::new();
    o.u64("id", u64::from(m.id))
        .usize("participant_estimate", m.participant_estimate)
        .raw(
            "stream_uids",
            &json_array(m.stream_uids.iter().map(|u| u.to_string())),
        )
        .raw(
            "clients",
            &json_array(clients.into_iter().map(|s| format!("\"{s}\""))),
        )
        .raw(
            "servers",
            &json_array(servers.into_iter().map(|s| format!("\"{s}\""))),
        )
        .usize("streams", m.streams.len());
    o.finish()
}

fn summary_to_json(s: &TraceSummary) -> String {
    let mut o = JsonObj::new();
    o.u64("total_packets", s.total_packets)
        .u64("zoom_packets", s.zoom_packets)
        .u64("zoom_bytes", s.zoom_bytes);
    // Emitted only when the WebRTC family classified traffic, so Zoom-only
    // summaries keep the pre-family byte layout.
    if s.webrtc_packets > 0 {
        o.u64("webrtc_packets", s.webrtc_packets)
            .u64("webrtc_bytes", s.webrtc_bytes);
    }
    o.usize("zoom_flows", s.zoom_flows)
        .usize("rtp_streams", s.rtp_streams)
        .usize("meetings", s.meetings)
        .u64("duration_nanos", s.duration_nanos);
    o.finish()
}

/// Per-stage drop accounting surfaced in the final report (the same
/// counters [`crate::obs::MetricsSnapshot`] exposes, pinned here so lossy
/// inputs are visible in the report itself, not just on stderr).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DropsReport {
    /// Torn trailing records the pcap reader discarded.
    pub pcap_truncated: u64,
    /// Records on a link type the dissector does not support.
    pub unsupported_link: u64,
    /// Ethernet frames carrying a non-IP ethertype.
    pub non_ip: u64,
    /// IP packets that are neither UDP nor TCP.
    pub non_transport: u64,
    /// Records cut short mid-header.
    pub truncated: u64,
    /// Structurally invalid headers (bad version, length, checksum).
    pub malformed: u64,
    /// Dissected fine but not recognized as Zoom traffic.
    pub not_zoom: u64,
    /// UDP on the Zoom SFU port whose ZME framing failed to parse
    /// (subset of `not_zoom`).
    pub malformed_zme: u64,
    /// Records on a registered WebRTC flow whose DTLS-SRTP framing
    /// failed to parse (subset of `not_zoom`; the WebRTC family's
    /// analogue of `malformed_zme`). Serialized only when nonzero.
    pub malformed_srtp: u64,
}

impl DropsReport {
    pub(crate) fn to_json(self) -> String {
        let mut o = JsonObj::new();
        o.u64("pcap_truncated", self.pcap_truncated)
            .u64("unsupported_link", self.unsupported_link)
            .u64("non_ip", self.non_ip)
            .u64("non_transport", self.non_transport)
            .u64("truncated", self.truncated)
            .u64("malformed", self.malformed)
            .u64("not_zoom", self.not_zoom)
            .u64("malformed_zme", self.malformed_zme);
        if self.malformed_srtp > 0 {
            o.u64("malformed_srtp", self.malformed_srtp);
        }
        o.finish()
    }
}

/// The value-typed result of a finished analysis: everything the batch
/// CLI prints and the streaming engine's final drain emits.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// Trace summary (Table 6).
    pub summary: TraceSummary,
    /// Records that failed link/IP dissection.
    pub undissectable: u64,
    /// Per-stage drop accounting (reader + dissector + classifier).
    pub drops: DropsReport,
    /// Reconstructed meetings (§4.3), sorted by id.
    pub meetings: Vec<MeetingReport>,
    /// Per-stream rows in global creation order; evicted fragments appear
    /// in place with `evicted: true`.
    pub streams: Vec<StreamReport>,
    /// RTP-copy RTT summary (§5.3 method 1).
    pub rtp_rtt: RttSummaryReport,
    /// TCP control-connection RTT summary (§5.3 method 2).
    pub tcp_rtt: RttSummaryReport,
    /// Cross-family Table-6-style rows ([`crate::classify::Classifier::table6`]).
    /// Empty — and omitted from the JSON — when only Zoom traffic was
    /// classified, keeping Zoom-only reports byte-identical.
    pub families: Vec<TableRow>,
}

impl AnalysisReport {
    /// Serialize as one NDJSON-friendly line, tagged `"type":"final"`.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("type", "final")
            .raw("summary", &summary_to_json(&self.summary))
            .u64("undissectable", self.undissectable)
            .raw("drops", &self.drops.to_json())
            .raw("rtp_rtt", &self.rtp_rtt.to_json())
            .raw("tcp_rtt", &self.tcp_rtt.to_json());
        if !self.families.is_empty() {
            o.raw(
                "families",
                &json_array(self.families.iter().map(family_row_to_json)),
            );
        }
        o.raw(
            "meetings",
            &json_array(self.meetings.iter().map(meeting_to_json)),
        )
        .raw(
            "streams",
            &json_array(self.streams.iter().map(|s| s.to_json())),
        );
        o.finish()
    }
}

/// One cross-family classification row: family, media detail, shares.
fn family_row_to_json(r: &TableRow) -> String {
    let mut o = JsonObj::new();
    o.str("family", &r.label)
        .str("media", &r.detail)
        .f64("packets_pct", r.packets_pct)
        .f64("bytes_pct", r.bytes_pct);
    o.finish()
}

/// Build a report from an analyzer plus an explicit stream sequence. The
/// batch path passes the tracker's live streams; the streaming engine
/// interleaves evicted fragments and adds the evicted-entity counts that
/// the live tracker no longer holds.
pub(crate) fn build_report<'a>(
    analyzer: &Analyzer,
    streams: impl Iterator<Item = (&'a Stream, bool)>,
    extra_flows: usize,
    extra_streams: usize,
) -> AnalysisReport {
    let mut summary = analyzer.summary();
    summary.zoom_flows += extra_flows;
    summary.rtp_streams += extra_streams;
    let meetings = analyzer.meetings();
    let rows = streams
        .map(|(s, evicted)| {
            let (uid, meeting) = match analyzer.grouper.assignment(&s.key) {
                Some((u, _)) => (Some(u), analyzer.grouper.canonical_meeting(&s.key)),
                None => (None, None),
            };
            StreamReport::from_stream(s, uid, meeting, evicted)
        })
        .collect();
    AnalysisReport {
        summary,
        undissectable: analyzer.undissectable,
        drops: drops_from_metrics(&analyzer.metrics),
        meetings,
        streams: rows,
        rtp_rtt: RttSummaryReport::from_samples(analyzer.rtp_rtt.samples()),
        tcp_rtt: RttSummaryReport::from_samples(analyzer.tcp_rtt.samples()),
        families: analyzer.classifier.family_table(),
    }
}

/// Read the drop counters out of a live metrics registry. Shared by the
/// batch path and the streaming drain so both report identical accounting.
pub(crate) fn drops_from_metrics(m: &crate::obs::PipelineMetrics) -> DropsReport {
    DropsReport {
        pcap_truncated: m.pcap_truncated_records.get(),
        unsupported_link: m.drop_unsupported_link.get(),
        non_ip: m.drop_non_ip.get(),
        non_transport: m.drop_non_transport.get(),
        truncated: m.drop_truncated.get(),
        malformed: m.drop_malformed.get(),
        not_zoom: m.packets_not_zoom.get(),
        malformed_zme: m.malformed_zme.get(),
        malformed_srtp: m.malformed_srtp.get(),
    }
}

// ------------------------------------------------------------- windows --

/// Trace-level deltas over one tumbling window, plus the cumulative
/// meeting count — a live Table 6 row.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WindowTotals {
    /// Records processed in the window (Zoom or not).
    pub packets: u64,
    /// Records recognized as Zoom.
    pub zoom_packets: u64,
    /// IP bytes across the window's Zoom packets.
    pub zoom_bytes: u64,
    /// Flows first seen in the window.
    pub new_flows: u64,
    /// Streams first seen in the window.
    pub new_streams: u64,
    /// Streams with at least one packet in the window.
    pub active_streams: u64,
    /// Cumulative distinct meetings at window close.
    pub meetings: usize,
    /// Flows evicted at this window's tick.
    pub evicted_flows: u64,
    /// Streams evicted at this window's tick.
    pub evicted_streams: u64,
    /// Tracked entries (flows + streams + STUN registrations + RTT
    /// candidates) right after the tick — the bounded-memory gauge.
    pub tracked_entries: usize,
    /// RTP-copy RTT over samples collected in this window.
    pub rtp_rtt: RttSummaryReport,
}

impl Default for RttSummaryReport {
    fn default() -> Self {
        RttSummaryReport::from_samples(&[])
    }
}

/// One stream's activity within one window (counter deltas, not
/// cumulative totals). Summing a stream's deltas over all windows
/// reproduces its whole-trace counters exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamWindow {
    /// The stream's identity: (flow, SSRC).
    pub key: StreamKey,
    /// Zoom media encapsulation type (or its WebRTC mapping).
    pub media_type: MediaType,
    /// Uplink/downlink orientation.
    pub direction: Direction,
    /// Protocol family that produced the stream. Serialized only when
    /// not [`FamilyId::Zoom`].
    pub family: FamilyId,
    /// Canonical meeting id at window close.
    pub meeting: Option<u32>,
    /// Packets in the window.
    pub packets: u64,
    /// Media payload bytes in the window.
    pub media_bytes: u64,
    /// Frames completed in the window.
    pub frames: u64,
    /// Media bit rate over the window, bits/s.
    pub bitrate_bps: f64,
    /// Delivered frame rate over the window, frames/s.
    pub fps: f64,
    /// Mean frame-level jitter over the window's samples, ms (`None`
    /// when the window produced no jitter samples).
    pub jitter_ms: Option<f64>,
    /// Sequence numbers newly confirmed missing in the window.
    pub lost: u64,
    /// Duplicate packets observed in the window.
    pub duplicates: u64,
    /// True when the stream was evicted at this window's tick (this is
    /// its final fragment).
    pub evicted: bool,
}

impl StreamWindow {
    fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("flow", &self.key.flow.to_string())
            .u64("ssrc", u64::from(self.key.ssrc))
            .str("media", self.media_type.label());
        if self.family != FamilyId::Zoom {
            o.str("family", self.family.label());
        }
        o.str("direction", direction_label(self.direction))
            .opt_u32("meeting", self.meeting)
            .u64("packets", self.packets)
            .u64("media_bytes", self.media_bytes)
            .u64("frames", self.frames)
            .f64("bitrate_bps", self.bitrate_bps)
            .f64("fps", self.fps);
        match self.jitter_ms {
            Some(j) => o.f64("jitter_ms", j),
            None => o.raw("jitter_ms", "null"),
        };
        o.u64("lost", self.lost)
            .u64("duplicates", self.duplicates)
            .bool("evicted", self.evicted);
        o.finish()
    }
}

/// Per-meeting rollup of one window's stream activity.
#[derive(Debug, Clone, PartialEq)]
pub struct MeetingWindow {
    /// Canonical meeting id.
    pub id: u32,
    /// Member streams active in the window.
    pub active_streams: u64,
    /// Packets across those streams.
    pub packets: u64,
    /// Media payload bytes across those streams.
    pub media_bytes: u64,
}

impl MeetingWindow {
    fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.u64("id", u64::from(self.id))
            .u64("active_streams", self.active_streams)
            .u64("packets", self.packets)
            .u64("media_bytes", self.media_bytes);
        o.finish()
    }
}

/// One closed tumbling window of streaming analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowReport {
    /// Zero-based window index. Checkpoint fragments share the index of
    /// the window they cut short.
    pub index: u64,
    /// Window start, nanoseconds (aligned to the window length).
    pub start_nanos: u64,
    /// Window end, nanoseconds (exclusive; the final window of a trace
    /// ends at the last record instead).
    pub end_nanos: u64,
    /// Trace-level deltas and gauges.
    pub totals: WindowTotals,
    /// Per-meeting rollups, sorted by meeting id.
    pub meetings: Vec<MeetingWindow>,
    /// Per-stream deltas, sorted by stream key.
    pub streams: Vec<StreamWindow>,
}

impl WindowReport {
    /// Serialize as one NDJSON line, tagged `"type":"window"`.
    pub fn to_json(&self) -> String {
        let mut totals = JsonObj::new();
        totals
            .u64("packets", self.totals.packets)
            .u64("zoom_packets", self.totals.zoom_packets)
            .u64("zoom_bytes", self.totals.zoom_bytes)
            .u64("new_flows", self.totals.new_flows)
            .u64("new_streams", self.totals.new_streams)
            .u64("active_streams", self.totals.active_streams)
            .usize("meetings", self.totals.meetings)
            .u64("evicted_flows", self.totals.evicted_flows)
            .u64("evicted_streams", self.totals.evicted_streams)
            .usize("tracked_entries", self.totals.tracked_entries)
            .raw("rtp_rtt", &self.totals.rtp_rtt.to_json());
        let mut o = JsonObj::new();
        o.str("type", "window")
            .u64("index", self.index)
            .u64("start_nanos", self.start_nanos)
            .u64("end_nanos", self.end_nanos)
            .raw("totals", &totals.finish())
            .raw(
                "meetings",
                &json_array(self.meetings.iter().map(|m| m.to_json())),
            )
            .raw(
                "streams",
                &json_array(self.streams.iter().map(|s| s.to_json())),
            );
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_summary_is_order_independent() {
        use crate::metrics::latency::RttSample;
        use std::net::{IpAddr, Ipv4Addr};
        let to = IpAddr::V4(Ipv4Addr::new(1, 2, 3, 4));
        let mk = |rtt| RttSample {
            at: 0,
            rtt_nanos: rtt,
            to,
        };
        let a = RttSummaryReport::from_samples(&[mk(10_000_000), mk(30_000_000), mk(20_000_000)]);
        let b = RttSummaryReport::from_samples(&[mk(30_000_000), mk(10_000_000), mk(20_000_000)]);
        assert_eq!(a, b);
        assert_eq!(a.samples, 3);
        assert!((a.mean_ms - 20.0).abs() < 1e-9);
        assert!((a.p50_ms - 20.0).abs() < 1e-9);
    }

    #[test]
    fn meeting_json_sorts_sets_at_emit() {
        // Clients/servers live in hash sets whose iteration order is an
        // implementation detail of the hasher; the emitted JSON must not
        // depend on it (this is what lets the state tables swap hashers
        // without changing a byte of output).
        use crate::meeting::MeetingReport;
        use std::net::{IpAddr, Ipv4Addr};
        let ip = |a, b, c, d| IpAddr::V4(Ipv4Addr::new(a, b, c, d));
        let make = |insert_order: &[IpAddr]| MeetingReport {
            id: 7,
            stream_uids: vec![2, 0, 1],
            clients: insert_order.iter().copied().collect(),
            servers: insert_order.iter().copied().collect(),
            streams: Vec::new(),
            participant_estimate: 3,
        };
        let ips = [ip(10, 8, 0, 9), ip(10, 8, 0, 1), ip(170, 114, 0, 1)];
        let mut reversed = ips;
        reversed.reverse();
        let a = meeting_to_json(&make(&ips));
        let b = meeting_to_json(&make(&reversed));
        assert_eq!(a, b);
        // And the order is the *sorted* one, pinned exactly.
        assert!(a.contains("\"clients\":[\"10.8.0.1\",\"10.8.0.9\",\"170.114.0.1\"]"));
    }

    #[test]
    fn json_escapes_and_nulls() {
        let mut o = JsonObj::new();
        o.str("s", "a\"b\\c\n")
            .f64("nan", f64::NAN)
            .opt_u32("m", None);
        let s = o.finish();
        let expected = "{\"s\":\"a\\\"b\\\\c\\u000a\",\"nan\":null,\"m\":null}";
        assert_eq!(s, expected);
    }
}
