//! The end-to-end passive analyzer: capture records in, performance
//! metrics out.
//!
//! [`Analyzer`] ties the whole methodology together, mirroring Fig. 6's
//! processing chain: dissection → Zoom traffic detection (including
//! STUN-based P2P flow recognition, §4.1) → classification (Tables 2/3) →
//! stream/sub-stream tracking → per-stream metrics (§5) → meeting grouping
//! (§4.3) → trace-level reports (Table 6, Figs. 14–16).

use crate::classify::Classifier;
use crate::error::Error;
use crate::fxhash::FxHashMap;
use crate::meeting::{
    client_endpoint_of, CandidateState, GroupingConfig, MeetingGrouper, MeetingReport,
};
use crate::metrics::latency::{RtpRttEstimator, RttSample, TcpRttEstimator};
use crate::obs::{MetricsSnapshot, PipelineMetrics};
use crate::packet::{extract, in_campus, meta_from_webrtc, meta_from_zoom, Extracted, PacketMeta};
use crate::report::{build_report, AnalysisReport};
use crate::sink::PacketSink;
use crate::stats::Samples;
use crate::stream::{Stream, StreamKey, StreamTracker};
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Arc;
use std::time::Duration;
use zoom_wire::dissect::{
    dissect, dissect_batch, dissect_from, drop_stage, App, Dissection, PeekArena, PeekInfo,
    Transport,
};
use zoom_wire::family::{FamilyId, FamilySelect};
use zoom_wire::flow::{Endpoint, FiveTuple};
use zoom_wire::webrtc;
use zoom_wire::handoff::RecordBatch;
use zoom_wire::pcap::LinkType;
use zoom_wire::zoom::{Framing, MediaType, ZOOM_SFU_PORT};

/// Analyzer configuration.
///
/// Construct via [`AnalyzerConfig::builder`] (typed durations, validated
/// CIDR input) or take [`AnalyzerConfig::default`]; read settings through
/// the accessor methods. (The PR-2 deprecated public-field shims are
/// gone: the builder is the only construction path now.)
#[derive(Debug, Clone)]
pub struct AnalyzerConfig {
    /// Campus prefixes — orient P2P flows and pick the "client" side.
    campus: Vec<(IpAddr, u8)>,
    /// Zoom server prefixes; when non-empty, TCP RTT probing is limited
    /// to connections touching these (the control connections).
    zoom_servers: Vec<(IpAddr, u8)>,
    /// How long a STUN exchange marks its endpoint as a future P2P flow.
    stun_timeout_nanos: u64,
    /// Thresholds of the meeting-grouping heuristic (§4.3).
    grouping: GroupingConfig,
    /// Which protocol families may claim traffic (the default,
    /// [`FamilySelect::Auto`], keeps Zoom-only output byte-identical:
    /// WebRTC claims a packet only behind its session gate).
    family: FamilySelect,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            campus: vec![(IpAddr::V4(std::net::Ipv4Addr::new(10, 8, 0, 0)), 16)],
            zoom_servers: Vec::new(),
            stun_timeout_nanos: 120 * 1_000_000_000,
            grouping: GroupingConfig::default(),
            family: FamilySelect::Auto,
        }
    }
}

impl AnalyzerConfig {
    /// Start building a configuration from the defaults.
    pub fn builder() -> AnalyzerConfigBuilder {
        AnalyzerConfigBuilder::new()
    }

    /// Campus prefixes — orient P2P flows and pick the "client" side.
    pub fn campus_prefixes(&self) -> &[(IpAddr, u8)] {
        &self.campus
    }

    /// Zoom server prefixes gating TCP RTT probing.
    pub fn zoom_server_prefixes(&self) -> &[(IpAddr, u8)] {
        &self.zoom_servers
    }

    /// How long a STUN exchange marks its endpoint as a future P2P flow.
    pub fn stun_timeout(&self) -> Duration {
        Duration::from_nanos(self.stun_timeout_nanos)
    }

    /// Thresholds of the meeting-grouping heuristic (§4.3).
    pub fn grouping_config(&self) -> GroupingConfig {
        self.grouping
    }

    /// Which protocol families may claim traffic.
    pub fn family_select(&self) -> FamilySelect {
        self.family
    }
}

/// Parse a `prefix/len` CIDR spec (a bare address means a host prefix).
///
/// Shared by [`AnalyzerConfigBuilder`] and the CLI's `--campus` /
/// `--zoom-servers` flags so both reject the same inputs.
pub fn parse_cidr(spec: &str) -> Result<(IpAddr, u8), Error> {
    let (addr, len) = match spec.split_once('/') {
        Some((a, l)) => {
            let len: u8 = l
                .parse()
                .map_err(|_| Error::Config(format!("bad prefix length in {spec:?}")))?;
            (a, Some(len))
        }
        None => (spec, None),
    };
    let ip: IpAddr = addr
        .parse()
        .map_err(|_| Error::Config(format!("bad address in {spec:?}")))?;
    let max = if ip.is_ipv4() { 32 } else { 128 };
    let len = len.unwrap_or(max);
    if len > max {
        return Err(Error::Config(format!(
            "prefix length {len} exceeds {max} in {spec:?}"
        )));
    }
    Ok((ip, len))
}

/// Builder for [`AnalyzerConfig`]: typed durations, validated CIDR
/// prefixes, defaults from [`AnalyzerConfig::default`].
///
/// Parse failures are recorded and surfaced by [`build`]
/// (`Err(`[`Error::Config`]`)`), keeping call chains fluent:
///
/// ```
/// use zoom_analysis::pipeline::AnalyzerConfig;
/// let cfg = AnalyzerConfig::builder()
///     .campus("192.168.0.0/16")
///     .stun_timeout(std::time::Duration::from_secs(60))
///     .build()
///     .expect("valid config");
/// assert_eq!(cfg.campus_prefixes().len(), 1);
/// ```
///
/// [`build`]: AnalyzerConfigBuilder::build
#[derive(Debug, Clone, Default)]
pub struct AnalyzerConfigBuilder {
    campus: Vec<(IpAddr, u8)>,
    /// False until the caller touches the campus list; the first explicit
    /// prefix then *replaces* the default instead of appending to it.
    campus_set: bool,
    zoom_servers: Vec<(IpAddr, u8)>,
    stun_timeout: Option<Duration>,
    grouping: Option<GroupingConfig>,
    family: Option<FamilySelect>,
    invalid: Option<String>,
}

impl AnalyzerConfigBuilder {
    fn new() -> AnalyzerConfigBuilder {
        AnalyzerConfigBuilder::default()
    }

    fn record_invalid(&mut self, msg: String) {
        if self.invalid.is_none() {
            self.invalid = Some(msg);
        }
    }

    /// Add a campus prefix from a CIDR string; the first call replaces
    /// the default `10.8.0.0/16`, later calls append.
    pub fn campus(mut self, cidr: &str) -> Self {
        match parse_cidr(cidr) {
            Ok((ip, len)) => {
                self.campus_set = true;
                self.campus.push((ip, len));
            }
            Err(e) => self.record_invalid(e.to_string()),
        }
        self
    }

    /// Add a pre-parsed campus prefix.
    pub fn campus_prefix(mut self, ip: IpAddr, len: u8) -> Self {
        self.campus_set = true;
        self.campus.push((ip, len));
        self
    }

    /// Treat every flow as on-campus (empty campus list: orientation
    /// falls back to the packet's source side).
    pub fn everything_on_campus(mut self) -> Self {
        self.campus_set = true;
        self.campus.clear();
        self
    }

    /// Add a Zoom server prefix from a CIDR string (gates TCP RTT
    /// probing to control connections).
    pub fn zoom_server(mut self, cidr: &str) -> Self {
        match parse_cidr(cidr) {
            Ok((ip, len)) => self.zoom_servers.push((ip, len)),
            Err(e) => self.record_invalid(e.to_string()),
        }
        self
    }

    /// Add a pre-parsed Zoom server prefix.
    pub fn zoom_server_prefix(mut self, ip: IpAddr, len: u8) -> Self {
        self.zoom_servers.push((ip, len));
        self
    }

    /// STUN registration lifetime (§4.1).
    pub fn stun_timeout(mut self, timeout: Duration) -> Self {
        self.stun_timeout = Some(timeout);
        self
    }

    /// Meeting-grouping thresholds (§4.3).
    pub fn grouping(mut self, grouping: GroupingConfig) -> Self {
        self.grouping = Some(grouping);
        self
    }

    /// Which protocol families may claim traffic (default
    /// [`FamilySelect::Auto`]).
    pub fn family(mut self, family: FamilySelect) -> Self {
        self.family = Some(family);
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<AnalyzerConfig, Error> {
        if let Some(msg) = self.invalid {
            return Err(Error::Config(msg));
        }
        for &(ip, len) in self.campus.iter().chain(self.zoom_servers.iter()) {
            let max = if ip.is_ipv4() { 32 } else { 128 };
            if len > max {
                return Err(Error::Config(format!(
                    "prefix length {len} exceeds {max} for {ip}"
                )));
            }
        }
        let stun_timeout_nanos = match self.stun_timeout {
            Some(d) => u64::try_from(d.as_nanos())
                .map_err(|_| Error::Config(format!("stun timeout {d:?} too large")))?,
            None => 120 * 1_000_000_000,
        };
        let defaults = AnalyzerConfig::default();
        Ok(AnalyzerConfig {
            campus: if self.campus_set {
                self.campus
            } else {
                defaults.campus
            },
            zoom_servers: self.zoom_servers,
            stun_timeout_nanos,
            grouping: self.grouping.unwrap_or_default(),
            family: self.family.unwrap_or_default(),
        })
    }
}

/// Per-5-tuple flow accounting (the coarse view prior work was limited
/// to — kept for Table 6 and flow-vs-media-rate comparisons).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Packets on this directional 5-tuple.
    pub packets: u64,
    /// IP-layer bytes on this directional 5-tuple.
    pub bytes: u64,
    /// Timestamp of the first packet, nanoseconds.
    pub first_seen: u64,
    /// Timestamp of the last packet, nanoseconds.
    pub last_seen: u64,
}

/// Trace-level summary (Table 6's rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// All records fed to the analyzer.
    pub total_packets: u64,
    /// Records recognized as Zoom (media, RTCP, control, STUN).
    pub zoom_packets: u64,
    /// IP-layer bytes across Zoom packets.
    pub zoom_bytes: u64,
    /// Distinct Zoom UDP 5-tuples.
    pub zoom_flows: usize,
    /// RTP media streams (5-tuple + SSRC).
    pub rtp_streams: usize,
    /// Reconstructed meetings.
    pub meetings: usize,
    /// Trace duration (first to last classified packet).
    pub duration_nanos: u64,
    /// Records classified under the WebRTC family (disjoint from
    /// [`TraceSummary::zoom_packets`]; zero on Zoom-only traces).
    pub webrtc_packets: u64,
    /// IP-layer bytes across WebRTC-classified packets.
    pub webrtc_bytes: u64,
}

/// Per-media-type 1-second metric samples (the inputs to Fig. 15).
#[derive(Debug, Default)]
pub struct MediaSamples {
    /// Media bit rate per active second, Mbit/s.
    pub bitrate_mbps: Samples,
    /// Delivered frame rate per second of stream lifetime (includes
    /// zero-frame seconds — the screen-share idle bins of Fig. 15b).
    pub fps: Samples,
    /// Frame sizes, bytes.
    pub frame_size: Samples,
    /// Frame-level jitter samples, ms.
    pub jitter_ms: Samples,
}

/// A compact record of one RTP-bearing Zoom packet, logged by shard
/// analyzers in place of the cross-flow trackers (meeting grouping and
/// RTP-copy RTT matching) and replayed in global order at merge time —
/// see [`crate::parallel`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct MediaEvent {
    /// Router-assigned global sequence number (total order over the trace).
    pub(crate) seq_no: u64,
    /// Capture timestamp, nanoseconds.
    pub(crate) ts_nanos: u64,
    /// The packet's directional 5-tuple.
    pub(crate) flow: FiveTuple,
    /// RTP SSRC.
    pub(crate) ssrc: u32,
    /// RTP payload type.
    pub(crate) payload_type: u8,
    /// RTP sequence number.
    pub(crate) rtp_seq: u16,
    /// RTP timestamp.
    pub(crate) rtp_ts: u32,
    /// Uplink/downlink orientation.
    pub(crate) direction: crate::packet::Direction,
    /// Which protocol family produced the packet (gates the replay: only
    /// Zoom events feed the RTP-copy RTT estimator).
    pub(crate) family: FamilyId,
}

/// A run of consecutive same-flow Zoom packets pending application to
/// the flow table (see [`Analyzer::flow_run`](struct@Analyzer)).
#[derive(Clone, Copy)]
struct FlowRun {
    ft: FiveTuple,
    first_seen: u64,
    last_seen: u64,
    packets: u64,
    bytes: u64,
}

/// The analyzer.
pub struct Analyzer {
    pub(crate) config: AnalyzerConfig,
    pub(crate) classifier: Classifier,
    pub(crate) streams: StreamTracker,
    pub(crate) grouper: MeetingGrouper,
    pub(crate) rtp_rtt: RtpRttEstimator,
    pub(crate) tcp_rtt: TcpRttEstimator,
    /// STUN-registered endpoints → last exchange time (§4.1 registers).
    pub(crate) p2p_endpoints: FxHashMap<Endpoint, u64>,
    /// Canonical 5-tuples with an observed DTLS-SRTP handshake → last
    /// packet time. The WebRTC analogue of [`Analyzer::p2p_endpoints`]:
    /// a flow enters on a strict DTLS record (gated by the STUN
    /// registry under [`FamilySelect::Auto`]) and every later packet on
    /// it gets the WebRTC second chance.
    pub(crate) webrtc_flows: FxHashMap<FiveTuple, u64>,
    pub(crate) flows: FxHashMap<FiveTuple, FlowStats>,
    pub(crate) total_packets: u64,
    pub(crate) zoom_packets: u64,
    pub(crate) zoom_bytes: u64,
    /// Packets classified under the WebRTC family (disjoint from
    /// [`Analyzer::zoom_packets`]).
    pub(crate) webrtc_packets: u64,
    /// IP-layer bytes across WebRTC-classified packets.
    pub(crate) webrtc_bytes: u64,
    pub(crate) first_zoom_ts: Option<u64>,
    pub(crate) last_zoom_ts: u64,
    pub(crate) undissectable: u64,
    /// `Some` puts the analyzer in *shard mode*: cross-flow trackers (the
    /// meeting grouper and RTP-copy RTT estimator) are skipped and a
    /// [`MediaEvent`] is appended per RTP packet instead; the P2P verdict
    /// comes from the router-provided hint rather than the local registry.
    pub(crate) event_log: Option<Vec<MediaEvent>>,
    /// Shard mode: global sequence number of the record being processed.
    pub(crate) current_seq: u64,
    /// Shard mode: the router's `is_p2p_flow` verdict for this record.
    pub(crate) p2p_hint: bool,
    /// Shard mode: the router's `is_webrtc_flow` verdict for this record.
    pub(crate) webrtc_hint: bool,
    /// Set by the WebRTC second chance when a registered flow's record
    /// failed DTLS-SRTP framing; steers drop attribution in
    /// [`Analyzer::process_dissection_counted`] to `malformed_srtp`
    /// instead of Zoom's `malformed_zme`.
    srtp_malformed: bool,
    /// Shard mode: pending run of consecutive same-flow Zoom packets,
    /// folded into [`Analyzer::flows`] with one map probe per run
    /// (media bursts make long runs). Flushed at every batch end, so
    /// tick-time readers always see a current map. `None` in sequential
    /// mode, where `flows` is updated in place per packet.
    flow_run: Option<FlowRun>,
    /// Reused peek arena for the batched [`PacketSink::push_batch`] path.
    peek_arena: PeekArena,
    /// The observability registry ([`crate::obs`]). Sequential analyzers
    /// own a private one; shard analyzers share the router's `Arc` so
    /// classification counters aggregate pipeline-wide.
    pub(crate) metrics: Arc<PipelineMetrics>,
}

impl Analyzer {
    /// Analyzer with the given configuration.
    pub fn new(config: AnalyzerConfig) -> Analyzer {
        let grouper = MeetingGrouper::with_config(config.grouping_config());
        Analyzer {
            config,
            classifier: Classifier::new(),
            streams: StreamTracker::new(),
            grouper,
            rtp_rtt: RtpRttEstimator::default(),
            tcp_rtt: TcpRttEstimator::default(),
            p2p_endpoints: FxHashMap::default(),
            webrtc_flows: FxHashMap::default(),
            flows: FxHashMap::default(),
            total_packets: 0,
            zoom_packets: 0,
            zoom_bytes: 0,
            webrtc_packets: 0,
            webrtc_bytes: 0,
            first_zoom_ts: None,
            last_zoom_ts: 0,
            undissectable: 0,
            event_log: None,
            current_seq: 0,
            p2p_hint: false,
            webrtc_hint: false,
            srtp_malformed: false,
            flow_run: None,
            peek_arena: PeekArena::new(),
            metrics: Arc::new(PipelineMetrics::new(0)),
        }
    }

    /// Shared handle to this analyzer's observability registry
    /// ([`crate::obs`]), for wiring capture-side accounting (source
    /// registration, ring-drop counters) or a metrics endpoint to the
    /// same registry the sink updates.
    pub fn metrics_handle(&self) -> Arc<PipelineMetrics> {
        Arc::clone(&self.metrics)
    }

    /// A shard-mode analyzer for [`crate::parallel::ParallelAnalyzer`]:
    /// identical to [`Analyzer::new`] except that cross-flow state is
    /// logged as [`MediaEvent`]s for the merge-time replay, and the
    /// metrics registry is the router's shared one.
    pub(crate) fn new_sharded(config: AnalyzerConfig, metrics: Arc<PipelineMetrics>) -> Analyzer {
        let mut a = Analyzer::new(config);
        a.event_log = Some(Vec::new());
        a.metrics = metrics;
        a
    }

    /// Shard-mode entry point: process one record whose headers the router
    /// already located. `info` is the router's [`PeekInfo`] (`None` when the
    /// peek failed — the record counts as undissectable without a second
    /// scan), under the given global sequence number and router-determined
    /// per-family flow verdicts.
    pub(crate) fn process_record_routed(
        &mut self,
        seq: u64,
        ts_nanos: u64,
        data: &[u8],
        info: Option<&PeekInfo>,
        p2p_hint: bool,
        webrtc_hint: bool,
    ) {
        self.current_seq = seq;
        self.p2p_hint = p2p_hint;
        self.webrtc_hint = webrtc_hint;
        self.total_packets += 1;
        match info {
            Some(pi) => {
                let d = dissect_from(pi, ts_nanos, data, self.config.family_select().probe());
                // The router already counted packets_in/bytes/drops; the
                // shard adds only the classification outcome.
                self.process_dissection_counted(&d);
            }
            None => self.undissectable += 1,
        }
    }

    /// Process one packet from a borrowed byte slice — the zero-copy
    /// fast path behind [`PacketSink::push`], for use with
    /// [`zoom_wire::pcap::Reader::read_into`] and
    /// [`zoom_wire::pcap::SliceReader`] where no owned [`Record`](zoom_wire::pcap::Record) exists.
    pub fn process_packet(&mut self, ts_nanos: u64, data: &[u8], link: LinkType) {
        // Same 1-in-64 stage-latency sampling as the streaming engine's
        // push path; a clock read pair on sampled calls, nothing else.
        let sampled_at = self.total_packets.is_multiple_of(64).then(std::time::Instant::now);
        self.total_packets += 1;
        self.metrics.record_in(data.len());
        match dissect(ts_nanos, data, link, self.config.family_select().probe()) {
            Ok(d) => self.process_dissection_counted(&d),
            Err(e) => {
                self.undissectable += 1;
                self.metrics.record_drop(drop_stage(data, link, e));
            }
        }
        if let Some(t0) = sampled_at {
            self.metrics
                .stage_push_nanos
                .observe(t0.elapsed().as_nanos() as u64);
        }
    }

    /// [`Analyzer::process_dissection`] plus classification accounting:
    /// did this record end up counted under a protocol family or not?
    fn process_dissection_counted(&mut self, d: &Dissection<'_>) {
        let zoom_before = self.zoom_packets;
        let webrtc_before = self.webrtc_packets;
        self.srtp_malformed = false;
        self.process_dissection(d);
        if self.zoom_packets > zoom_before {
            self.metrics.packets_classified.inc();
        } else if self.webrtc_packets > webrtc_before {
            self.metrics.packets_classified.inc();
            self.metrics.classified_webrtc.inc();
        } else {
            self.metrics.packets_not_zoom.inc();
            if self.srtp_malformed {
                // The record rode a flow with an observed DTLS-SRTP
                // handshake but its framing failed to parse: the drop
                // belongs to the WebRTC family, not to Zoom's ZME stage.
                self.metrics.malformed_srtp.inc();
            } else if matches!(d.transport, Transport::Udp { .. })
                && d.five_tuple.involves_port(ZOOM_SFU_PORT)
            {
                // A UDP record on the Zoom media port that still failed to
                // classify means its Zoom Media Encapsulation did not parse.
                self.metrics.malformed_zme.inc();
            }
        }
    }

    /// Process a pre-dissected packet.
    pub fn process_dissection(&mut self, d: &Dissection<'_>) {
        match extract(d, self.config.campus_prefixes()) {
            Extracted::Stun {
                ts_nanos,
                five_tuple,
            } => {
                // Register the non-3478 endpoint: it will carry the P2P
                // media flow (§4.1).
                let client = if five_tuple.dst_port == zoom_wire::stun::STUN_PORT {
                    five_tuple.src()
                } else {
                    five_tuple.dst()
                };
                self.p2p_endpoints.insert(client, ts_nanos);
                self.note_classified(FamilyId::Zoom, ts_nanos, &five_tuple, d.ip_total_len);
            }
            Extracted::Zoom(meta) => self.on_media(meta),
            Extracted::Webrtc {
                ts_nanos,
                five_tuple,
                ip_len,
                pdu,
            } => self.on_webrtc(ts_nanos, five_tuple, ip_len, &pdu),
            Extracted::Tcp(t) => {
                let is_control = self.config.zoom_server_prefixes().is_empty()
                    || in_campus(self.config.zoom_server_prefixes(), t.five_tuple.src_ip)
                    || in_campus(self.config.zoom_server_prefixes(), t.five_tuple.dst_ip);
                if is_control {
                    self.note_classified(FamilyId::Zoom, t.ts_nanos, &t.five_tuple, t.ip_len);
                    self.tcp_rtt.on_segment(&t);
                }
            }
            Extracted::Other => {
                // Second chances: a UDP payload on a STUN-registered
                // endpoint may be a P2P media flow — re-parse with the
                // family framings (port reuse false-positives fail these
                // parses, exactly the filter the paper describes). Zoom
                // gets the first try, preserving the pre-family dispatch
                // order bit for bit.
                if let Transport::Udp { .. } = d.transport {
                    if matches!(d.app, App::Opaque) {
                        let family = self.config.family_select();
                        let stun_fresh = self.is_p2p_flow(d);
                        if stun_fresh && family.allows(FamilyId::Zoom) {
                            if let Ok(z) = zoom_wire::zoom::parse(d.payload, Framing::P2p) {
                                if z.rtp.is_some() || !z.rtcp.is_empty() {
                                    let meta = meta_from_zoom(
                                        d.ts_nanos,
                                        d.five_tuple,
                                        d.ip_total_len,
                                        Framing::P2p,
                                        &z,
                                        self.config.campus_prefixes(),
                                    );
                                    self.on_media(meta);
                                    return;
                                }
                                // Keep-alives and control packets on the
                                // P2P flow still count as Zoom traffic —
                                // unless the payload carries the WebRTC
                                // family's strict framing, which this
                                // deliberately loose parse would swallow.
                                if !(family.allows(FamilyId::Webrtc)
                                    && webrtc::classify(d.payload).is_ok())
                                {
                                    self.note_classified(
                                        FamilyId::Zoom,
                                        d.ts_nanos,
                                        &d.five_tuple,
                                        d.ip_total_len,
                                    );
                                    return;
                                }
                            }
                        }
                        let webrtc_live = if self.event_log.is_some() {
                            self.webrtc_hint
                        } else {
                            !self.webrtc_flows.is_empty()
                        };
                        if family.allows(FamilyId::Webrtc) && (stun_fresh || webrtc_live) {
                            self.webrtc_second_chance(d, stun_fresh);
                        }
                    }
                }
            }
        }
    }

    /// The WebRTC second chance: every packet on a flow with an observed
    /// DTLS-SRTP handshake parses under the family's framing (a failure
    /// is that family's malformed drop), and a strict DTLS record on a
    /// STUN-registered endpoint opens a new flow — RFC 5764's handshake
    /// precedes media, so the gate admits real sessions and nothing else.
    fn webrtc_second_chance(&mut self, d: &Dissection<'_>, stun_fresh: bool) {
        if self.is_webrtc_flow(d) {
            match webrtc::classify(d.payload) {
                Ok(pdu) => self.on_webrtc(d.ts_nanos, d.five_tuple, d.ip_total_len, &pdu),
                Err(_) => self.srtp_malformed = true,
            }
            return;
        }
        // Shard mode skips registration: the router holds the one
        // authoritative flow table and its hint already covered this case.
        if stun_fresh && self.event_log.is_none() {
            if let Ok(pdu @ webrtc::Pdu::Dtls(_)) = webrtc::classify(d.payload) {
                self.on_webrtc(d.ts_nanos, d.five_tuple, d.ip_total_len, &pdu);
            }
        }
    }

    fn is_p2p_flow(&mut self, d: &Dissection<'_>) -> bool {
        // Shard mode: the router holds the one authoritative registry
        // (it sees every packet, in order) and ships its verdict with the
        // record, so shard-local registries never have to agree.
        if self.event_log.is_some() {
            return self.p2p_hint;
        }
        let now = d.ts_nanos;
        let timeout = self.config.stun_timeout().as_nanos() as u64;
        for ep in [d.five_tuple.src(), d.five_tuple.dst()] {
            if let Some(last) = self.p2p_endpoints.get_mut(&ep) {
                if now.saturating_sub(*last) <= timeout {
                    *last = now; // refresh: long calls stay matched
                    return true;
                }
            }
        }
        false
    }

    /// Whether this packet rides a flow with an observed DTLS-SRTP
    /// handshake (refreshing the entry, like [`Analyzer::is_p2p_flow`]).
    /// In shard mode the router's verdict is authoritative.
    fn is_webrtc_flow(&mut self, d: &Dissection<'_>) -> bool {
        if self.event_log.is_some() {
            return self.webrtc_hint;
        }
        let now = d.ts_nanos;
        let timeout = self.config.stun_timeout().as_nanos() as u64;
        if let Some(last) = self.webrtc_flows.get_mut(&d.five_tuple.canonical()) {
            if now.saturating_sub(*last) <= timeout {
                *last = now;
                return true;
            }
        }
        false
    }

    /// Count one classified packet under `family`: trace totals, the
    /// first/last activity timestamps, and the shared flow table.
    fn note_classified(&mut self, family: FamilyId, ts: u64, five_tuple: &FiveTuple, ip_len: usize) {
        if family == FamilyId::Zoom {
            self.zoom_packets += 1;
            self.zoom_bytes += ip_len as u64;
        } else {
            self.webrtc_packets += 1;
            self.webrtc_bytes += ip_len as u64;
        }
        self.first_zoom_ts.get_or_insert(ts);
        self.last_zoom_ts = self.last_zoom_ts.max(ts);
        if self.event_log.is_none() {
            // Sequential mode: the flow table may be read between any two
            // records (`summary`, direct `process_dissection` feeds), so
            // keep it current in place.
            let f = self.flows.entry(*five_tuple).or_insert(FlowStats {
                first_seen: ts,
                ..Default::default()
            });
            f.packets += 1;
            f.bytes += ip_len as u64;
            f.last_seen = ts;
            return;
        }
        // Shard mode: media traffic arrives in long same-flow bursts, so
        // fold consecutive records into a pending run and probe the flow
        // table once per run. The engine worker flushes at batch end —
        // before any tick, merge, or drain reads the table.
        match &mut self.flow_run {
            Some(run) if run.ft == *five_tuple => {
                run.last_seen = ts;
                run.packets += 1;
                run.bytes += ip_len as u64;
            }
            _ => {
                self.flush_flow_run();
                self.flow_run = Some(FlowRun {
                    ft: *five_tuple,
                    first_seen: ts,
                    last_seen: ts,
                    packets: 1,
                    bytes: ip_len as u64,
                });
            }
        }
    }

    /// Apply the pending [`FlowRun`] (shard mode) to the flow table.
    /// Identical to having applied each packet of the run individually.
    pub(crate) fn flush_flow_run(&mut self) {
        if let Some(run) = self.flow_run.take() {
            let f = self.flows.entry(run.ft).or_insert(FlowStats {
                first_seen: run.first_seen,
                ..Default::default()
            });
            f.packets += run.packets;
            f.bytes += run.bytes;
            f.last_seen = run.last_seen;
        }
    }

    /// Handle one WebRTC PDU on an admitted flow: SRTP feeds the shared
    /// media pipeline (streams, frames, meetings) through
    /// [`crate::packet::meta_from_webrtc`]; DTLS and SRTCP count as
    /// classified control traffic (DTLS additionally [re-]opens the flow
    /// in sequential mode — eager `Only(Webrtc)` dissection reaches here
    /// without passing the second chance).
    fn on_webrtc(&mut self, ts_nanos: u64, five_tuple: FiveTuple, ip_len: usize, pdu: &webrtc::Pdu) {
        match pdu {
            webrtc::Pdu::Srtp(srtp) => {
                let meta = meta_from_webrtc(
                    ts_nanos,
                    five_tuple,
                    ip_len,
                    srtp,
                    self.config.campus_prefixes(),
                );
                self.on_media(meta);
            }
            webrtc::Pdu::Dtls(dtls) => {
                if self.event_log.is_none() {
                    self.webrtc_flows.insert(five_tuple.canonical(), ts_nanos);
                }
                self.note_classified(FamilyId::Webrtc, ts_nanos, &five_tuple, ip_len);
                self.classifier.record(
                    FamilyId::Webrtc,
                    MediaType::Other(dtls.content_type),
                    None,
                    ip_len,
                );
            }
            webrtc::Pdu::Srtcp(sr) => {
                self.note_classified(FamilyId::Webrtc, ts_nanos, &five_tuple, ip_len);
                // RFC 3550: packet type 200 is a Sender Report.
                let mt = if sr.packet_type == 200 {
                    MediaType::RtcpSr
                } else {
                    MediaType::Other(sr.packet_type)
                };
                self.classifier.record(FamilyId::Webrtc, mt, None, ip_len);
            }
            _ => self.note_classified(FamilyId::Webrtc, ts_nanos, &five_tuple, ip_len),
        }
    }

    /// Count, classify, and track one media-bearing packet of either
    /// family (Zoom ZME or WebRTC SRTP — [`PacketMeta::family`] says
    /// which).
    fn on_media(&mut self, meta: PacketMeta) {
        self.note_classified(meta.family, meta.ts_nanos, &meta.five_tuple, meta.ip_len);
        self.classifier.record(
            meta.family,
            meta.media_type,
            meta.rtp.as_ref().map(|r| r.payload_type),
            meta.ip_len,
        );
        // Cross-flow trackers: fed directly in the sequential path; in
        // shard mode logged as events for the global-order merge replay.
        let sharded = if let Some(log) = &mut self.event_log {
            if let Some(rtp) = &meta.rtp {
                log.push(MediaEvent {
                    seq_no: self.current_seq,
                    ts_nanos: meta.ts_nanos,
                    flow: meta.five_tuple,
                    ssrc: rtp.ssrc,
                    payload_type: rtp.payload_type,
                    rtp_seq: rtp.sequence,
                    rtp_ts: rtp.timestamp,
                    direction: meta.direction,
                    family: meta.family,
                });
            }
            true
        } else {
            // RTP-copy RTT matching is a Zoom-SFU behavior (§5.3 method
            // 1); WebRTC streams don't replicate across server legs.
            if meta.family == FamilyId::Zoom {
                self.rtp_rtt.on_packet(&meta);
            }
            false
        };
        if let Some((key, created)) = self.streams.on_packet(&meta) {
            if created && !sharded {
                let (client, server) =
                    resolve_stream_endpoints(&meta.five_tuple, self.config.campus_prefixes());
                let rtp = meta.rtp.as_ref().expect("stream implies rtp");
                let streams = &self.streams;
                let (uid, _meeting) = self.grouper.on_new_stream(
                    key,
                    client,
                    server,
                    rtp.timestamp,
                    rtp.sequence,
                    meta.ts_nanos,
                    |k| {
                        streams.get(k).and_then(|s| s.candidate_state()).map(
                            |(last_rtp_ts, last_seq, last_seen)| CandidateState {
                                last_rtp_ts,
                                last_seq,
                                last_seen,
                            },
                        )
                    },
                );
                if let Some(s) = self.streams.get_mut(&key) {
                    s.unique_id = Some(uid);
                }
            }
        }
    }

    // ---------------------------- reports ----------------------------

    /// Finish the analysis, consuming the analyzer: an owned
    /// [`AnalysisReport`] with the trace summary, per-meeting and
    /// per-stream breakdowns, RTT summaries, and drop accounting —
    /// matching the [`PacketSink`] shape shared with
    /// [`crate::parallel::ParallelAnalyzer`] and
    /// [`crate::engine::StreamingEngine`]. To snapshot a report while
    /// keeping the analyzer queryable, use [`Analyzer::report`].
    pub fn finish(self) -> Result<AnalysisReport, Error> {
        Ok(self.report())
    }

    /// Snapshot the current analysis state as an owned
    /// [`AnalysisReport`] without consuming the analyzer (more records
    /// may still be fed afterwards).
    pub fn report(&self) -> AnalysisReport {
        build_report(self, self.streams.iter().map(|s| (s, false)), 0, 0)
    }

    /// Trace summary (Table 6).
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            total_packets: self.total_packets.max(self.zoom_packets + self.webrtc_packets),
            zoom_packets: self.zoom_packets,
            zoom_bytes: self.zoom_bytes,
            zoom_flows: self.flows.len(),
            rtp_streams: self.streams.len(),
            meetings: self.grouper.meeting_count(),
            duration_nanos: self
                .last_zoom_ts
                .saturating_sub(self.first_zoom_ts.unwrap_or(0)),
            webrtc_packets: self.webrtc_packets,
            webrtc_bytes: self.webrtc_bytes,
        }
    }

    /// The Tables 2/3 classifier.
    pub fn classifier(&self) -> &Classifier {
        &self.classifier
    }

    /// All tracked streams.
    pub fn streams(&self) -> &StreamTracker {
        &self.streams
    }

    /// Per-flow statistics.
    pub fn flows(&self) -> &FxHashMap<FiveTuple, FlowStats> {
        &self.flows
    }

    /// RTP-copy RTT samples (§5.3 method 1).
    pub fn rtp_rtt_samples(&self) -> &[RttSample] {
        self.rtp_rtt.samples()
    }

    /// TCP control-connection RTT samples (§5.3 method 2).
    pub fn tcp_rtt_samples(&self) -> &[RttSample] {
        self.tcp_rtt.samples()
    }

    /// The TCP estimator itself (per-responder queries).
    pub fn tcp_rtt(&self) -> &TcpRttEstimator {
        &self.tcp_rtt
    }

    /// Meeting reports (§4.3).
    pub fn meetings(&self) -> Vec<MeetingReport> {
        self.grouper.reports()
    }

    /// One-second metric samples for one media type (Fig. 15's inputs).
    pub fn media_samples(&self, media: MediaType) -> MediaSamples {
        let mut out = MediaSamples::default();
        for s in self.streams.of_type(media) {
            for rate in s.media_rate.rate_samples() {
                out.bitrate_mbps.push(rate * 8.0 / 1e6);
            }
            if let Some(frames) = &s.frames {
                for f in frames.frames() {
                    out.frame_size.push(f.size_bytes as f64);
                }
                // Per-second delivered fps over the stream's lifetime,
                // zero bins included.
                let first_sec = s.first_seen / 1_000_000_000;
                let last_sec = s.last_seen / 1_000_000_000;
                if last_sec > first_sec {
                    let mut counts: HashMap<u64, u32> = HashMap::new();
                    for f in frames.frames() {
                        *counts.entry(f.completed_at / 1_000_000_000).or_default() += 1;
                    }
                    for sec in first_sec..last_sec {
                        out.fps
                            .push(f64::from(counts.get(&sec).copied().unwrap_or(0)));
                    }
                }
            }
            for &(_, j) in s.frame_jitter.samples() {
                out.jitter_ms.push(j);
            }
        }
        out
    }

    /// Joined per-(stream, second) samples of (jitter ms, bit rate Mbit/s,
    /// fps) for video — the scatter data of Fig. 16.
    pub fn fig16_samples(&self) -> Vec<(f64, f64, f64)> {
        let mut out = Vec::new();
        for s in self.streams.of_type(MediaType::Video) {
            let rates: HashMap<u64, f64> = s
                .media_rate
                .sorted()
                .into_iter()
                .map(|(t, v)| (t / 1_000_000_000, v * 8.0 / 1e6))
                .collect();
            let mut fps: HashMap<u64, f64> = HashMap::new();
            if let Some(frames) = &s.frames {
                for f in frames.frames() {
                    *fps.entry(f.completed_at / 1_000_000_000).or_default() += 1.0;
                }
            }
            for &(t, j) in s.frame_jitter.samples() {
                let sec = t / 1_000_000_000;
                if let Some(&rate) = rates.get(&sec) {
                    out.push((j, rate, fps.get(&sec).copied().unwrap_or(0.0)));
                }
            }
        }
        out
    }

    /// Streams sharing a unique id — the duplicate groups that power
    /// Method-1 RTT estimation.
    pub fn duplicate_stream_groups(&self) -> HashMap<u32, Vec<StreamKey>> {
        let mut groups: HashMap<u32, Vec<StreamKey>> = HashMap::new();
        for s in self.streams.iter() {
            if let Some(uid) = s.unique_id {
                groups.entry(uid).or_default().push(s.key);
            }
        }
        groups
    }

    /// Look up a stream.
    pub fn stream(&self, key: &StreamKey) -> Option<&Stream> {
        self.streams.get(key)
    }

    /// Records that failed link/IP dissection.
    pub fn undissectable(&self) -> u64 {
        self.undissectable
    }
}

impl PacketSink for Analyzer {
    fn push(&mut self, ts_nanos: u64, data: &[u8], link: LinkType) -> Result<(), Error> {
        self.process_packet(ts_nanos, data, link);
        Ok(())
    }

    /// Batched ingest: one type-sorted [`dissect_batch`] pass parses
    /// every record's application payload with branch-predictable
    /// per-class inner loops, then the dissections are applied in record
    /// order — same observable state as per-record
    /// [`Analyzer::process_packet`] calls.
    fn push_batch(&mut self, batch: &RecordBatch, link: LinkType) -> Result<(), Error> {
        let traced = batch.trace_id;
        let dissect_start = (traced != 0).then(std::time::Instant::now);
        let mut arena = std::mem::take(&mut self.peek_arena);
        dissect_batch(batch, link, self.config.family_select().probe(), &mut arena);
        if let Some(t0) = dissect_start {
            self.metrics.trace.record(
                traced,
                crate::obs::trace::spans::DISSECT,
                "analyzer",
                batch.len() as u64,
                t0.elapsed().as_nanos() as u64,
            );
            self.metrics.trace.note_trace(traced);
        }
        for (i, r) in batch.iter().enumerate() {
            let sampled_at = self
                .total_packets
                .is_multiple_of(64)
                .then(std::time::Instant::now);
            self.total_packets += 1;
            self.metrics.record_in(r.data.len());
            match arena.take_dissection(batch, i) {
                Some(d) => self.process_dissection_counted(&d),
                None => {
                    let e = arena.peek(i).expect_err("no dissection implies peek error");
                    self.undissectable += 1;
                    self.metrics.record_drop(drop_stage(r.data, link, e));
                }
            }
            if let Some(t0) = sampled_at {
                self.metrics
                    .stage_push_nanos
                    .observe(t0.elapsed().as_nanos() as u64);
            }
        }
        self.peek_arena = arena;
        Ok(())
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    fn note_pcap_truncated(&mut self, records: u64) {
        self.metrics.pcap_truncated_records.set(records);
    }

    fn note_pcap_progress(&mut self, records: u64, bytes: u64) {
        self.metrics.pcap_records_read.set(records);
        self.metrics.pcap_bytes_read.set(bytes);
    }

    fn finish(self) -> Result<AnalysisReport, Error> {
        Analyzer::finish(self)
    }
}

/// Resolve the (client endpoint, server address) pair of a new stream's
/// flow: the non-8801 side for server traffic, the campus side for P2P
/// (with an empty campus list, the *source* side — see
/// [`crate::packet::in_campus`]). Shared by the sequential grouping hook
/// and the sharded pipeline's merge-time replay so both paths make the
/// same call.
pub(crate) fn resolve_stream_endpoints(
    flow: &FiveTuple,
    campus: &[(IpAddr, u8)],
) -> (Endpoint, IpAddr) {
    match client_endpoint_of(flow) {
        Some(pair) => pair,
        None => {
            if in_campus(campus, flow.src_ip) {
                (flow.src(), flow.dst_ip)
            } else {
                (flow.dst(), flow.src_ip)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use zoom_wire::pcap::Record;

    /// Test shorthand for the PacketSink ingest path.
    fn feed(a: &mut Analyzer, record: &Record) {
        a.push(record.ts_nanos, &record.data, LinkType::Ethernet).unwrap();
    }
    use zoom_wire::compose;
    use zoom_wire::rtp;
    use zoom_wire::zoom;

    fn analyzer() -> Analyzer {
        Analyzer::new(AnalyzerConfig::default())
    }

    fn media_record(
        ts: u64,
        up: bool,
        ssrc: u32,
        seq: u16,
        rtp_ts: u32,
        pkts_in_frame: u8,
        marker: bool,
    ) -> Record {
        let payload = zoom::Builder {
            sfu: Some(zoom::SfuEncapRepr {
                encap_type: zoom::SFU_TYPE_MEDIA,
                sequence: seq,
                direction: if up {
                    zoom::DIR_TO_SFU
                } else {
                    zoom::DIR_FROM_SFU
                },
            }),
            media: zoom::MediaEncapRepr {
                media_type: zoom::MediaType::Video,
                sequence: seq,
                timestamp: (ts / 1_000_000) as u32,
                frame_sequence: Some(seq / 2),
                packets_in_frame: Some(pkts_in_frame),
            },
            rtp: Some(rtp::Repr {
                marker,
                payload_type: 98,
                sequence_number: seq,
                timestamp: rtp_ts,
                ssrc,
                csrc_count: 0,
                has_extension: false,
            }),
            payload: vec![0xA5; 700],
        }
        .build();
        let data = if up {
            compose::udp_ipv4_ethernet(
                Ipv4Addr::new(10, 8, 0, 1),
                Ipv4Addr::new(170, 114, 0, 1),
                50_000,
                8801,
                &payload,
            )
        } else {
            compose::udp_ipv4_ethernet(
                Ipv4Addr::new(170, 114, 0, 1),
                Ipv4Addr::new(10, 8, 0, 2),
                8801,
                51_000,
                &payload,
            )
        };
        Record::full(ts, data)
    }

    const MS: u64 = 1_000_000;

    #[test]
    fn tracks_streams_and_meetings_and_rtt() {
        let mut a = analyzer();
        // 100 frames uplink; each reappears 40 ms later as a downlink
        // copy toward a second campus client.
        for i in 0..100u64 {
            let seq = i as u16 + 1;
            let rtp_ts = 1_000 + (i as u32) * 3_000;
            feed(&mut a, &media_record(i * 33 * MS, true, 0x21, seq, rtp_ts, 1, true));
            feed(&mut a, &media_record(i * 33 * MS + 40 * MS, false, 0x21, seq, rtp_ts, 1, true));
        }
        let summary = a.summary();
        assert_eq!(summary.zoom_packets, 200);
        assert_eq!(summary.rtp_streams, 2);
        assert_eq!(summary.zoom_flows, 2);
        assert_eq!(summary.meetings, 1, "copies must group into one meeting");
        // Method-1 RTT: every packet matched at ~40 ms.
        let rtts = a.rtp_rtt_samples();
        assert_eq!(rtts.len(), 100);
        assert!(rtts.iter().all(|s| (39.9..40.1).contains(&s.rtt_ms())));
        // The two streams share a unique id.
        let groups = a.duplicate_stream_groups();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups.values().next().unwrap().len(), 2);
    }

    #[test]
    fn media_samples_cover_video_metrics() {
        let mut a = analyzer();
        for i in 0..200u64 {
            let seq = i as u16 + 1;
            let rtp_ts = 1_000 + (i as u32) * 3_000;
            feed(&mut a, &media_record(i * 33 * MS, true, 0x21, seq, rtp_ts, 1, true));
        }
        let samples = a.media_samples(MediaType::Video);
        assert!(!samples.bitrate_mbps.is_empty());
        assert!(!samples.fps.is_empty());
        assert!(!samples.frame_size.is_empty());
        assert!(!samples.jitter_ms.is_empty());
        // ~30 fps delivered.
        let mut fps = samples.fps;
        assert!(
            (25.0..35.0).contains(&fps.median()),
            "median {}",
            fps.median()
        );
    }

    #[test]
    fn p2p_flow_needs_stun_first() {
        let mut a = analyzer();
        let p2p_payload = zoom::Builder {
            sfu: None,
            media: zoom::MediaEncapRepr {
                media_type: zoom::MediaType::Audio,
                sequence: 1,
                timestamp: 2,
                frame_sequence: None,
                packets_in_frame: None,
            },
            rtp: Some(rtp::Repr {
                marker: false,
                payload_type: 112,
                sequence_number: 3,
                timestamp: 4,
                ssrc: 0x31,
                csrc_count: 0,
                has_extension: false,
            }),
            payload: vec![1; 80],
        }
        .build();
        let mk_media = |ts: u64| {
            Record::full(
                ts,
                compose::udp_ipv4_ethernet(
                    Ipv4Addr::new(10, 8, 0, 5),
                    Ipv4Addr::new(98, 1, 2, 3),
                    61_000,
                    62_000,
                    &p2p_payload,
                ),
            )
        };
        // Without a STUN exchange, nothing is recognized.
        feed(&mut a, &mk_media(0));
        assert_eq!(a.summary().zoom_packets, 0);

        // STUN from the same client endpoint, then media.
        let msg = zoom_wire::stun::Repr {
            message_type: zoom_wire::stun::MessageType::BindingRequest,
            transaction_id: [9; 12],
            xor_mapped_address: None,
        };
        let mut stun_payload = vec![0u8; msg.buffer_len()];
        msg.emit(&mut stun_payload);
        let stun_rec = Record::full(
            1_000 * MS,
            compose::udp_ipv4_ethernet(
                Ipv4Addr::new(10, 8, 0, 5),
                Ipv4Addr::new(170, 114, 2, 2),
                61_000,
                3478,
                &stun_payload,
            ),
        );
        feed(&mut a, &stun_rec);
        feed(&mut a, &mk_media(2_000 * MS));
        let summary = a.summary();
        assert_eq!(summary.zoom_packets, 2); // STUN + media
        assert_eq!(summary.rtp_streams, 1);
    }

    #[test]
    fn tcp_filtered_by_server_list() {
        let cfg = AnalyzerConfig::builder()
            .zoom_server("170.114.0.0/16")
            .build()
            .unwrap();
        let mut a = Analyzer::new(cfg);
        let zoom_tcp = Record::full(
            0,
            compose::tcp_ipv4_ethernet(
                Ipv4Addr::new(10, 8, 0, 1),
                Ipv4Addr::new(170, 114, 0, 9),
                50_000,
                443,
                100,
                0,
                zoom_wire::tcp::Flags {
                    ack: true,
                    psh: true,
                    ..Default::default()
                },
                b"ctl",
            ),
        );
        let other_tcp = Record::full(
            0,
            compose::tcp_ipv4_ethernet(
                Ipv4Addr::new(10, 8, 0, 1),
                Ipv4Addr::new(13, 3, 3, 3),
                50_001,
                443,
                100,
                0,
                zoom_wire::tcp::Flags {
                    ack: true,
                    psh: true,
                    ..Default::default()
                },
                b"web",
            ),
        );
        feed(&mut a, &zoom_tcp);
        feed(&mut a, &other_tcp);
        assert_eq!(a.summary().zoom_packets, 1);
    }

    #[test]
    fn garbage_counted_as_undissectable() {
        let mut a = analyzer();
        feed(&mut a, &Record::full(0, vec![1, 2, 3]));
        assert_eq!(a.undissectable(), 1);
        assert_eq!(a.summary().total_packets, 1);
        let m = a.metrics();
        assert_eq!(m.drops_total(), 1);
        assert!(m.conservation_holds());
    }
}
