//! Streaming bounded-memory analysis with windowed reports.
//!
//! The batch pipelines ([`Analyzer`], [`crate::parallel::ParallelAnalyzer`])
//! hold every flow and stream until the trace ends — fine for a finished
//! capture, unusable on a live link where flows churn forever and results
//! are wanted *while* traffic flows. [`StreamingEngine`] keeps the exact
//! same analysis (same sharded routing, same event-replay merge
//! semantics) but adds three things:
//!
//! * **Windowed reports.** With a tumbling window configured, closing a
//!   window emits a [`WindowReport`]: per-stream counter *deltas*
//!   (bitrate, frame rate, jitter, loss over just that window) plus
//!   meeting-level rollups — a live Table 6 row. Deltas are computed from
//!   monotonic counters, so summing a stream's windows reproduces its
//!   whole-trace totals exactly.
//! * **Bounded memory.** With an idle timeout configured, each window
//!   tick evicts flows, streams, STUN registrations, and RTP-copy RTT
//!   candidates that have been idle past the timeout. Evicted streams
//!   flush a final report fragment (`evicted: true`), so end-of-trace
//!   totals stay exact even for state that was dropped mid-trace.
//! * **Checkpoint/drain.** [`StreamingEngine::checkpoint`] cuts a partial
//!   window without ending the run; [`StreamingEngine::drain`] performs
//!   the final merge and returns the finished [`AnalysisReport`] along
//!   with the merged [`Analyzer`] for ad-hoc queries.
//!
//! With no window and no idle timeout the engine *is* the sharded batch
//! pipeline: one merge at drain, byte-identical to the sequential
//! analyzer (asserted by `tests/streaming_differential.rs`).
//!
//! Windowed mode assumes capture timestamps are approximately monotonic
//! (true of pcaps and live captures alike); records may arrive slightly
//! out of order, but a record older than an already-closed window is
//! simply accounted to the current one.

pub mod qoe_watch;

pub use qoe_watch::{AlertState, QoeAlert, QoeThresholds, QoeWatch};

use crate::error::Error;
use crate::fxhash::FxHashMap;
use crate::meeting::{CandidateState, MeetingGrouper};
use crate::metrics::latency::{RtpRttEstimator, RttSample};
use crate::obs::trace::spans;
use crate::obs::{trace, MetricsSnapshot, PipelineMetrics};
use crate::packet::Direction;
use crate::pipeline::{
    resolve_stream_endpoints, Analyzer, AnalyzerConfig, FlowStats, MediaEvent,
};
use crate::report::{
    drops_from_metrics, AnalysisReport, MeetingWindow, RttSummaryReport, StreamReport,
    StreamWindow, WindowReport, WindowTotals,
};
use crate::sink::PacketSink;
use crate::stream::{Stream, StreamKey};
use std::collections::BTreeMap;
use std::net::IpAddr;
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use zoom_wire::dissect::{
    drop_stage, peek, peek_batch, prefetch_record, PeekArena, PeekInfo, PeekTransport,
};
use zoom_wire::family::{FamilyId, FamilySelect};
use zoom_wire::flow::{Endpoint, FiveTuple};
use zoom_wire::handoff::RecordBatch;
use zoom_wire::pcap::LinkType;
use zoom_wire::webrtc;
use zoom_wire::zoom::MediaType;

/// Records per message sent to a shard. Batching amortizes the channel
/// synchronization cost over many packets.
const BATCH: usize = 256;

/// Bounded channel depth, in batches. Keeps memory bounded and applies
/// backpressure to the router when a shard falls behind.
const CHANNEL_DEPTH: usize = 4;

/// Sample the push path's wall-clock cost on one record in this many
/// (`zoom_stage_latency_nanos{stage="push"}`). Merge and checkpoint are
/// per-window operations and are always timed.
const LATENCY_SAMPLE: u64 = 64;

/// Per-record routing metadata shipped alongside the packet bytes: the
/// global sequence number, the router's [`PeekInfo`] — `None` when the
/// peek failed and the record is undissectable — and the router's P2P
/// verdict. Shipping the peek means the shard resumes dissection from
/// the recorded offsets instead of re-scanning Ethernet/IP/UDP a second
/// time.
struct RouteMeta {
    seq: u64,
    info: Option<PeekInfo>,
    hints: RouteHints,
}

/// The router's per-record flow verdicts, shipped to the shard so its
/// second-chance decisions match the sequential analyzer's without any
/// shard-local registry: `p2p` is the STUN-registry probe (§4.1),
/// `webrtc` the DTLS-SRTP flow-table probe.
#[derive(Debug, Clone, Copy, Default)]
struct RouteHints {
    p2p: bool,
    webrtc: bool,
}

/// One batch message to a worker: packet bytes in a shared
/// [`RecordBatch`] arena plus parallel per-record [`RouteMeta`]. The
/// worker sends the emptied `Pending` back on a recycle channel, so at
/// steady state the hot path copies bytes into an already-allocated
/// arena instead of boxing every record.
#[derive(Default)]
struct Pending {
    records: RecordBatch,
    meta: Vec<RouteMeta>,
}

/// Tick-reply scratch vectors the router returns to the worker after
/// folding a [`TickReply`], so windowed mode reuses the same delta /
/// event / RTT-sample allocations every window instead of growing fresh
/// ones (the windowed half of the 0-steady-state-allocs invariant).
#[derive(Default)]
struct TickScratch {
    deltas: Vec<StreamDelta>,
    events: Vec<MediaEvent>,
    tcp_new: Vec<RttSample>,
}

/// Streaming engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The analysis configuration shared by every shard.
    pub analyzer: AnalyzerConfig,
    /// Worker shards (clamped to at least 1).
    pub shards: usize,
    /// Tumbling window length; `None` disables windowing (one report at
    /// drain — the batch behavior).
    pub window: Option<Duration>,
    /// Evict flows/streams idle longer than this at each window tick;
    /// `None` disables eviction (exact batch equality).
    pub idle_timeout: Option<Duration>,
    /// Run the [`QoeWatch`] degradation detector over every closed
    /// window with these thresholds; `None` disables alerting (the QoE
    /// gauge series are still emitted).
    pub qoe: Option<QoeThresholds>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            analyzer: AnalyzerConfig::default(),
            shards: 1,
            window: None,
            idle_timeout: None,
            qoe: None,
        }
    }
}

/// Per-stream counter snapshot a worker keeps between ticks; the delta
/// of two snapshots is one window's activity. Every field is monotonic
/// (including `missing`, which only grows as holes retire from the
/// sequence tracker's window), so deltas never go negative.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct StreamSnap {
    packets: u64,
    media_bytes: u64,
    frames: u64,
    jitter_len: usize,
    missing: u64,
    duplicates: u64,
}

impl StreamSnap {
    fn of(s: &Stream) -> StreamSnap {
        let (missing, duplicates) = s
            .substreams
            .values()
            .map(|sub| {
                let st = sub.seq_stats();
                (st.missing, st.duplicates)
            })
            .fold((0, 0), |(m, d), (sm, sd)| (m + sm, d + sd));
        StreamSnap {
            packets: s.packets,
            media_bytes: s.media_bytes(),
            frames: s.frames.as_ref().map(|f| f.frames().len()).unwrap_or(0) as u64,
            jitter_len: s.frame_jitter.samples().len(),
            missing,
            duplicates,
        }
    }
}

/// One stream's activity since the previous tick, shipped shard→router.
struct StreamDelta {
    key: StreamKey,
    media_type: MediaType,
    direction: Direction,
    family: FamilyId,
    packets: u64,
    media_bytes: u64,
    frames: u64,
    jitter_sum: f64,
    jitter_count: u64,
    lost: u64,
    duplicates: u64,
    evicted: bool,
}

/// Everything a shard reports at a tick: counter deltas, per-stream
/// deltas, drained media events, evicted state, and live-entry gauges.
struct TickReply {
    total_packets: u64,
    zoom_packets: u64,
    zoom_bytes: u64,
    new_flows: u64,
    new_streams: u64,
    live_flows: usize,
    live_streams: usize,
    deltas: Vec<StreamDelta>,
    events: Vec<MediaEvent>,
    evicted_streams: Vec<Stream>,
    evicted_flows: Vec<(FiveTuple, FlowStats)>,
    tcp_new: Vec<RttSample>,
}

enum ToWorker {
    Batch(Pending),
    Tick { evict_before: Option<u64> },
}

/// Worker-thread state: the shard analyzer plus the between-tick
/// snapshots delta computation needs.
struct ShardState {
    analyzer: Analyzer,
    snaps: FxHashMap<StreamKey, StreamSnap>,
    /// Emptied tick-reply vectors returned by the router after each
    /// window, recycled into the next [`ShardState::tick`].
    scratch_rx: Receiver<TickScratch>,
    /// Persistent key→delta-row index, cleared (capacity kept) per tick.
    delta_idx: FxHashMap<StreamKey, usize>,
    total_packets: u64,
    zoom_packets: u64,
    zoom_bytes: u64,
    flows_seen: u64,
    streams_seen: u64,
    evicted_flows_cum: u64,
    evicted_streams_cum: u64,
    tcp_len: usize,
}

impl ShardState {
    fn new(
        config: AnalyzerConfig,
        metrics: Arc<PipelineMetrics>,
        scratch_rx: Receiver<TickScratch>,
    ) -> ShardState {
        ShardState {
            analyzer: Analyzer::new_sharded(config, metrics),
            snaps: FxHashMap::default(),
            scratch_rx,
            delta_idx: FxHashMap::default(),
            total_packets: 0,
            zoom_packets: 0,
            zoom_bytes: 0,
            flows_seen: 0,
            streams_seen: 0,
            evicted_flows_cum: 0,
            evicted_streams_cum: 0,
            tcp_len: 0,
        }
    }

    fn tick(&mut self, evict_before: Option<u64>) -> TickReply {
        // Per-stream deltas vs. the previous tick's snapshots (and update
        // the snapshots in the same pass). The delta/event/TCP vectors are
        // recycled from the router's previous apply_tick when available.
        let TickScratch {
            mut deltas,
            events: events_spare,
            mut tcp_new,
        } = self.scratch_rx.try_recv().unwrap_or_default();
        let delta_idx = &mut self.delta_idx;
        delta_idx.clear();
        let snaps = &mut self.snaps;
        for s in self.analyzer.streams.iter() {
            let prev = snaps.get(&s.key).copied().unwrap_or_default();
            let cur = StreamSnap::of(s);
            if cur == prev {
                continue;
            }
            let jitter_new = &s.frame_jitter.samples()[prev.jitter_len..];
            delta_idx.insert(s.key, deltas.len());
            deltas.push(StreamDelta {
                key: s.key,
                media_type: s.media_type,
                direction: s.direction,
                family: s.family,
                packets: cur.packets - prev.packets,
                media_bytes: cur.media_bytes - prev.media_bytes,
                frames: cur.frames - prev.frames,
                jitter_sum: jitter_new.iter().map(|&(_, j)| j).sum(),
                jitter_count: jitter_new.len() as u64,
                lost: cur.missing - prev.missing,
                duplicates: cur.duplicates - prev.duplicates,
                evicted: false,
            });
            snaps.insert(s.key, cur);
        }

        // Gauges BEFORE eviction so new_* deltas stay consistent: seen =
        // live + evicted-so-far is invariant across the eviction below.
        let flows_seen_now = self.analyzer.flows.len() as u64 + self.evicted_flows_cum;
        let streams_seen_now = self.analyzer.streams.len() as u64 + self.evicted_streams_cum;
        let new_flows = flows_seen_now - self.flows_seen;
        let new_streams = streams_seen_now - self.streams_seen;
        self.flows_seen = flows_seen_now;
        self.streams_seen = streams_seen_now;

        // Idle eviction. An evicted stream gets a delta row even when it
        // was silent this window, flagged as its final fragment.
        let mut evicted_streams = Vec::new();
        let mut evicted_flows = Vec::new();
        if let Some(cutoff) = evict_before {
            evicted_streams = self.analyzer.streams.evict_idle(cutoff);
            for s in &evicted_streams {
                self.snaps.remove(&s.key);
                match delta_idx.get(&s.key) {
                    Some(&i) => deltas[i].evicted = true,
                    None => deltas.push(StreamDelta {
                        key: s.key,
                        media_type: s.media_type,
                        direction: s.direction,
                        family: s.family,
                        packets: 0,
                        media_bytes: 0,
                        frames: 0,
                        jitter_sum: 0.0,
                        jitter_count: 0,
                        lost: 0,
                        duplicates: 0,
                        evicted: true,
                    }),
                }
            }
            self.analyzer.flows.retain(|ft, fs| {
                if fs.last_seen < cutoff {
                    evicted_flows.push((*ft, *fs));
                    false
                } else {
                    true
                }
            });
        }
        self.evicted_flows_cum += evicted_flows.len() as u64;
        self.evicted_streams_cum += evicted_streams.len() as u64;

        let reply = TickReply {
            total_packets: self.analyzer.total_packets - self.total_packets,
            zoom_packets: self.analyzer.zoom_packets - self.zoom_packets,
            zoom_bytes: self.analyzer.zoom_bytes - self.zoom_bytes,
            new_flows,
            new_streams,
            live_flows: self.analyzer.flows.len(),
            live_streams: self.analyzer.streams.len(),
            deltas,
            events: match self.analyzer.event_log.as_mut() {
                // Swap in the recycled (empty, capacity-bearing) vector so
                // the next window's events land in reused storage.
                Some(log) => std::mem::replace(log, events_spare),
                None => Vec::new(),
            },
            evicted_streams,
            evicted_flows,
            tcp_new: {
                tcp_new.extend_from_slice(&self.analyzer.tcp_rtt.samples()[self.tcp_len..]);
                tcp_new
            },
        };
        self.total_packets = self.analyzer.total_packets;
        self.zoom_packets = self.analyzer.zoom_packets;
        self.zoom_bytes = self.analyzer.zoom_bytes;
        self.tcp_len = self.analyzer.tcp_rtt.samples().len();
        reply
    }
}

struct Worker {
    tx: Option<SyncSender<ToWorker>>,
    /// Per-worker reply channel: if one worker dies, the others' replies
    /// still arrive and the dead one surfaces as a recv error instead of
    /// a deadlock.
    reply_rx: Receiver<TickReply>,
    /// Emptied batches coming back from the worker thread for reuse.
    recycle_rx: Receiver<Pending>,
    /// Tick scratch going back to the worker thread for reuse.
    scratch_tx: Sender<TickScratch>,
    pending: Pending,
    handle: Option<JoinHandle<Analyzer>>,
}

/// Per-stream replica of the candidate state the grouping heuristic's
/// lookup closure reads sequentially: per payload type the running packet
/// count and last RTP sequence/timestamp, plus the stream's last-seen
/// time. Rebuilt incrementally from the shards' event logs. Replicas are
/// *not* evicted with their streams — they are what lets a stream that
/// goes idle and returns keep its meeting assignment.
#[derive(Default)]
struct Replica {
    /// payload type → (packets, last RTP seq, last RTP timestamp).
    subs: FxHashMap<u8, (u64, u16, u32)>,
    last_seen: u64,
}

impl Replica {
    /// Mirror of `Stream::candidate_state`: the dominant sub-stream by
    /// (packets, payload type).
    fn candidate(&self) -> Option<CandidateState> {
        self.subs
            .iter()
            .max_by_key(|&(&pt, &(packets, _, _))| (packets, pt))
            .map(|(_, &(_, last_seq, last_rtp_ts))| CandidateState {
                last_rtp_ts,
                last_seq,
                last_seen: self.last_seen,
            })
    }
}

/// Everything [`StreamingEngine::drain`] produces.
pub struct EngineOutput {
    /// The last (usually partial) window's report.
    pub final_window: WindowReport,
    /// The exact end-of-trace report, evicted fragments included.
    pub report: AnalysisReport,
    /// The merged analyzer over the still-live state, for ad-hoc queries
    /// (media samples, Fig. 16 data, classifier tables).
    pub analyzer: Analyzer,
    /// Highest tracked-entry count observed at any tick — the
    /// bounded-memory gauge benches and tests assert on.
    pub peak_tracked_entries: usize,
}

/// Incremental sharded analyzer: one record in, zero or more
/// [`WindowReport`]s out, bounded state in between.
///
/// ```no_run
/// use std::time::Duration;
/// use zoom_analysis::engine::{EngineConfig, StreamingEngine};
/// use zoom_wire::pcap::LinkType;
///
/// let mut engine = StreamingEngine::new(EngineConfig {
///     shards: 4,
///     window: Some(Duration::from_secs(10)),
///     idle_timeout: Some(Duration::from_secs(60)),
///     ..Default::default()
/// })
/// .expect("valid config");
/// // for each record: for w in engine.push_packet(ts, &data, LinkType::Ethernet)? { ... }
/// let output = engine.drain().expect("drain");
/// println!("{}", output.report.to_json());
/// # Ok::<(), zoom_analysis::Error>(())
/// ```
pub struct StreamingEngine {
    analyzer_config: AnalyzerConfig,
    shard_count: usize,
    window_nanos: Option<u64>,
    idle_nanos: Option<u64>,
    stun_timeout_nanos: u64,
    campus: Vec<(IpAddr, u8)>,
    /// The authoritative STUN endpoint registry (§4.1), maintained by the
    /// router with the sequential analyzer's exact insert/refresh rules.
    registry: FxHashMap<Endpoint, u64>,
    /// The authoritative WebRTC flow table (canonical 5-tuples with an
    /// observed DTLS-SRTP handshake), maintained by the router with the
    /// sequential analyzer's exact insert/refresh rules.
    webrtc_flows: FxHashMap<FiveTuple, u64>,
    /// Whether the configured [`zoom_wire::family::FamilySelect`] lets
    /// the Zoom family claim traffic.
    zoom_enabled: bool,
    /// Whether it lets the WebRTC family claim traffic.
    webrtc_enabled: bool,
    /// `Only(Webrtc)`: the dissector probes WebRTC framing eagerly, so
    /// flow registration must not wait for the STUN gate.
    webrtc_eager: bool,
    seq: u64,
    workers: Vec<Worker>,
    /// Reused peek arena for [`StreamingEngine::push_batch_records`].
    peek_arena: PeekArena,
    /// Reused per-batch shard-index scratch (pass 2 of the batch path).
    shard_scratch: Vec<u32>,
    // -------- cross-flow trackers, fed by per-tick event replay --------
    grouper: MeetingGrouper,
    rtp_rtt: RtpRttEstimator,
    /// Samples before this index were already reported in a window.
    rtt_mark: usize,
    replicas: FxHashMap<StreamKey, Replica>,
    creation_order: Vec<StreamKey>,
    tcp_samples: Vec<RttSample>,
    // -------- evicted-state pools (compact fragments, not Streams) -----
    evicted_streams: FxHashMap<StreamKey, Vec<StreamReport>>,
    evicted_flows: FxHashMap<FiveTuple, FlowStats>,
    // -------- window bookkeeping --------
    window_index: u64,
    window_start: Option<u64>,
    first_ts: Option<u64>,
    last_ts: u64,
    last_tracked: usize,
    peak_tracked: usize,
    /// Shared observability registry ([`crate::obs`]): the router writes
    /// ingest/drop/routing counters, the shard analyzers write
    /// classification counters through their cloned `Arc`.
    metrics: Arc<PipelineMetrics>,
    /// Windows closed by [`PacketSink::push`] calls, held until the next
    /// [`PacketSink::take_windows`].
    pending_windows: Vec<WindowReport>,
    /// Degradation detector, present when [`EngineConfig::qoe`] was set.
    qoe_watch: Option<QoeWatch>,
    /// Alerts emitted by closed windows, held until [`take_alerts`].
    ///
    /// [`take_alerts`]: StreamingEngine::take_alerts
    pending_alerts: Vec<QoeAlert>,
}

impl StreamingEngine {
    /// Spawn the engine's worker shards.
    ///
    /// Fails with [`Error::Config`] on a zero-length window or idle
    /// timeout, or durations whose nanosecond count overflows `u64`.
    pub fn new(config: EngineConfig) -> Result<StreamingEngine, Error> {
        let to_nanos = |d: Duration, what: &str| -> Result<u64, Error> {
            let n = u64::try_from(d.as_nanos())
                .map_err(|_| Error::Config(format!("{what} {d:?} too large")))?;
            if n == 0 {
                return Err(Error::Config(format!("{what} must be positive")));
            }
            Ok(n)
        };
        let window_nanos = config.window.map(|d| to_nanos(d, "window")).transpose()?;
        let idle_nanos = config
            .idle_timeout
            .map(|d| to_nanos(d, "idle timeout"))
            .transpose()?;
        let analyzer_config = config.analyzer;
        let campus = analyzer_config.campus_prefixes().to_vec();
        let stun_timeout_nanos = analyzer_config.stun_timeout().as_nanos() as u64;
        let family = analyzer_config.family_select();
        let grouping = analyzer_config.grouping_config();
        let n = config.shards.max(1);
        let metrics = Arc::new(PipelineMetrics::new(n));
        let workers = (0..n)
            .map(|i| {
                let (tx, rx) = sync_channel::<ToWorker>(CHANNEL_DEPTH);
                let (reply_tx, reply_rx) = channel::<TickReply>();
                let (recycle_tx, recycle_rx) = channel::<Pending>();
                let (scratch_tx, scratch_rx) = channel::<TickScratch>();
                let cfg = analyzer_config.clone();
                let shard_metrics = Arc::clone(&metrics);
                let drained_metrics = Arc::clone(&metrics);
                let handle = std::thread::spawn(move || {
                    let mut state = ShardState::new(cfg, shard_metrics, scratch_rx);
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            ToWorker::Batch(mut pending) => {
                                for i in 0..pending.records.len() {
                                    prefetch_record(&pending.records, i + 1);
                                    let r = pending.records.get(i).expect("index in bounds");
                                    let m = &pending.meta[i];
                                    state.analyzer.process_record_routed(
                                        m.seq,
                                        r.ts_nanos,
                                        r.data,
                                        m.info.as_ref(),
                                        m.hints.p2p,
                                        m.hints.webrtc,
                                    );
                                }
                                state.analyzer.flush_flow_run();
                                pending.records.clear();
                                pending.meta.clear();
                                // This shard consumed one routed batch:
                                // channel depth = batches - drained.
                                drained_metrics.shards[i].drained.inc();
                                // Router gone mid-run is fine; the batch
                                // just isn't recycled.
                                let _ = recycle_tx.send(pending);
                            }
                            ToWorker::Tick { evict_before } => {
                                if reply_tx.send(state.tick(evict_before)).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                    state.analyzer
                });
                Worker {
                    tx: Some(tx),
                    reply_rx,
                    recycle_rx,
                    scratch_tx,
                    pending: Pending::default(),
                    handle: Some(handle),
                }
            })
            .collect();
        Ok(StreamingEngine {
            analyzer_config,
            shard_count: n,
            window_nanos,
            idle_nanos,
            stun_timeout_nanos,
            campus,
            registry: FxHashMap::default(),
            webrtc_flows: FxHashMap::default(),
            zoom_enabled: family.allows(FamilyId::Zoom),
            webrtc_enabled: family.allows(FamilyId::Webrtc),
            webrtc_eager: family == FamilySelect::Only(FamilyId::Webrtc),
            seq: 0,
            workers,
            peek_arena: PeekArena::new(),
            shard_scratch: Vec::new(),
            grouper: MeetingGrouper::with_config(grouping),
            rtp_rtt: RtpRttEstimator::default(),
            rtt_mark: 0,
            replicas: FxHashMap::default(),
            creation_order: Vec::new(),
            tcp_samples: Vec::new(),
            evicted_streams: FxHashMap::default(),
            evicted_flows: FxHashMap::default(),
            window_index: 0,
            window_start: None,
            first_ts: None,
            last_ts: 0,
            last_tracked: 0,
            peak_tracked: 0,
            metrics,
            pending_windows: Vec::new(),
            qoe_watch: config.qoe.map(QoeWatch::new),
            pending_alerts: Vec::new(),
        })
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.shard_count
    }

    /// Tracked entries (flows + streams + STUN registrations + RTP-copy
    /// RTT candidates) as of the most recent tick.
    pub fn tracked_entries(&self) -> usize {
        self.last_tracked
    }

    /// Highest tracked-entry count observed at any tick so far.
    pub fn peak_tracked_entries(&self) -> usize {
        self.peak_tracked
    }

    /// Drain the degradation alerts emitted by windows closed so far.
    ///
    /// Empty unless [`EngineConfig::qoe`] configured a detector. Alerts
    /// appear in window order, and within a window in deterministic
    /// `(meeting, media, kind)` order; render each with
    /// [`QoeAlert::to_json`] for the NDJSON alert stream.
    pub fn take_alerts(&mut self) -> Vec<QoeAlert> {
        std::mem::take(&mut self.pending_alerts)
    }

    /// The engine's shared observability registry, for wiring external
    /// consumers such as the `obs::serve` scrape endpoint (feature
    /// `obs-http`) — the endpoint holds the `Arc` and snapshots per
    /// request while the engine keeps pushing.
    pub fn metrics_handle(&self) -> Arc<PipelineMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Feed one packet from a borrowed byte slice — the zero-copy path
    /// behind [`PacketSink::push`], for
    /// [`zoom_wire::pcap::Reader::read_into`] /
    /// [`zoom_wire::pcap::SliceReader`] loops. The bytes are copied once,
    /// into the shard batch; nothing else allocates per packet.
    pub fn push_packet(
        &mut self,
        ts_nanos: u64,
        data: &[u8],
        link: LinkType,
    ) -> Result<Vec<WindowReport>, Error> {
        // Stage-latency sampling, 1 in [`LATENCY_SAMPLE`] pushes: one
        // monotonic-clock read pair and no allocation on sampled calls,
        // nothing at all on the rest.
        let sampled_at = self.seq.is_multiple_of(LATENCY_SAMPLE).then(std::time::Instant::now);
        let ts = ts_nanos;
        let mut out = Vec::new();
        self.roll_window(ts, &mut out)?;
        self.first_ts.get_or_insert(ts);
        self.last_ts = self.last_ts.max(ts);

        self.metrics.record_in(data.len());
        let (shard, info, hints) = self.route(ts, data, link);
        self.enqueue(shard, ts, data, info, hints)?;
        if let Some(t0) = sampled_at {
            self.metrics
                .stage_push_nanos
                .observe(t0.elapsed().as_nanos() as u64);
        }
        Ok(out)
    }

    /// Feed a whole [`RecordBatch`] through the batched hot path: one
    /// type-aware [`peek_batch`] pass over every header (with next-record
    /// prefetch), one pass hashing every routable flow key, then one
    /// stateful in-order pass applying the STUN registry, window
    /// boundaries, and shard enqueue. Stateless work is batched; every
    /// state mutation still happens in record order, so output is
    /// byte-identical to per-record [`StreamingEngine::push_packet`]
    /// calls (pinned by `tests/batched_differential.rs`).
    pub fn push_batch_records(
        &mut self,
        batch: &RecordBatch,
        link: LinkType,
    ) -> Result<Vec<WindowReport>, Error> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let t0 = std::time::Instant::now();
        let traced = batch.trace_id;
        if traced != 0 {
            // Windows closed while this batch streams in attribute their
            // emit spans to this batch's trace.
            self.metrics.trace.note_trace(traced);
        }
        // Pass 1 — stateless header walk, type-sorted by the arena.
        let mut arena = std::mem::take(&mut self.peek_arena);
        peek_batch(batch, link, &mut arena);
        if traced != 0 {
            self.metrics.trace.record(
                traced,
                spans::DISSECT,
                "engine",
                batch.len() as u64,
                t0.elapsed().as_nanos() as u64,
            );
        }
        // Pass 2 — hash all flow keys before any table is probed.
        let route_start = std::time::Instant::now();
        let n = self.shard_count;
        let mut shards = std::mem::take(&mut self.shard_scratch);
        shards.clear();
        shards.extend((0..arena.len()).map(|i| match arena.peek(i) {
            Ok(info) => shard_of(&info.five_tuple, n) as u32,
            Err(_) => u32::MAX, // round-robin, resolved per record below
        }));
        if traced != 0 {
            self.metrics.trace.record(
                traced,
                spans::SHARD_ROUTE,
                "engine",
                batch.len() as u64,
                route_start.elapsed().as_nanos() as u64,
            );
        }
        // Pass 3 — stateful, strictly in record order.
        let mut out = Vec::new();
        for (i, r) in batch.iter().enumerate() {
            let ts = r.ts_nanos;
            self.roll_window(ts, &mut out)?;
            self.first_ts.get_or_insert(ts);
            self.last_ts = self.last_ts.max(ts);
            self.metrics.record_in(r.data.len());
            let (shard, info, hints) = match arena.peek(i) {
                Ok(info) => {
                    let info = *info;
                    let hints = self.apply_registry(ts, &info, r.data);
                    (shards[i] as usize, Some(info), hints)
                }
                Err(e) => {
                    self.metrics.record_drop(drop_stage(r.data, link, e));
                    ((self.seq % n as u64) as usize, None, RouteHints::default())
                }
            };
            self.enqueue(shard, ts, r.data, info, hints)?;
        }
        self.peek_arena = arena;
        self.shard_scratch = shards;
        // One histogram observation per batch: the mean per-record cost,
        // so the `stage="push"` series stays comparable with the
        // per-packet path at a fraction of the clock reads.
        self.metrics
            .stage_push_nanos
            .observe(t0.elapsed().as_nanos() as u64 / batch.len() as u64);
        if traced != 0 {
            self.metrics.trace.record(
                traced,
                spans::ENGINE_PUSH,
                "engine",
                batch.len() as u64,
                t0.elapsed().as_nanos() as u64,
            );
        }
        Ok(out)
    }

    /// Close (and fast-forward) windows the record at `ts` has moved
    /// past. Shared by the per-record and batched push paths.
    fn roll_window(&mut self, ts: u64, out: &mut Vec<WindowReport>) -> Result<(), Error> {
        if let Some(w) = self.window_nanos {
            match self.window_start {
                None => self.window_start = Some(ts - ts % w),
                Some(start) if ts >= start + w => {
                    let end = start + w;
                    let evict = self.idle_nanos.map(|idle| end.saturating_sub(idle));
                    let emit_start = std::time::Instant::now();
                    let replies = self.tick_all(evict)?;
                    out.push(self.apply_tick(replies, start, end, true));
                    self.metrics.windows_closed.inc();
                    // Attribute the close to the batch whose record
                    // crossed the boundary (the last noted trace).
                    let tid = self.metrics.trace.last_trace_id();
                    if tid != 0 {
                        self.metrics.trace.record(
                            tid,
                            spans::WINDOW_EMIT,
                            "engine",
                            1,
                            emit_start.elapsed().as_nanos() as u64,
                        );
                    }
                    // Fast-forward through windows the gap left empty.
                    let mut s = end;
                    while ts >= s + w {
                        out.push(self.empty_window(s, s + w));
                        self.metrics.windows_closed.inc();
                        s += w;
                    }
                    self.window_start = Some(s);
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// Append one routed record to its shard's pending batch, flushing
    /// the batch to the worker at [`BATCH`] records. The flushed batch is
    /// replaced by a recycled one from the worker when available, so
    /// steady-state enqueueing allocates nothing.
    fn enqueue(
        &mut self,
        shard: usize,
        ts: u64,
        data: &[u8],
        info: Option<PeekInfo>,
        hints: RouteHints,
    ) -> Result<(), Error> {
        let seq = self.seq;
        self.seq += 1;
        let w = &mut self.workers[shard];
        w.pending.records.push(ts, data.len() as u32, data);
        w.pending.meta.push(RouteMeta { seq, info, hints });
        let m = &self.metrics.shards[shard];
        m.routed.inc();
        if w.pending.records.len() >= BATCH {
            let fresh = w.recycle_rx.try_recv().unwrap_or_default();
            let pending = std::mem::replace(&mut w.pending, fresh);
            send(w, ToWorker::Batch(pending))?;
            m.batches.inc();
            m.pending.set(0);
        } else {
            m.pending.set(w.pending.records.len() as u64);
        }
        Ok(())
    }

    /// Cut a partial window now, without waiting for a boundary record:
    /// same tick (eviction included) as a window close, but the current
    /// window keeps its index and stays open — its eventual close covers
    /// only post-checkpoint activity.
    pub fn checkpoint(&mut self) -> Result<WindowReport, Error> {
        let _span = trace::span("engine.checkpoint");
        let t0 = std::time::Instant::now();
        let start = self.window_start.or(self.first_ts).unwrap_or(0);
        let end = self.last_ts.max(start);
        let evict = self.idle_nanos.map(|idle| end.saturating_sub(idle));
        let replies = self.tick_all(evict)?;
        let report = self.apply_tick(replies, start, end, false);
        self.metrics.checkpoints.inc();
        self.metrics
            .stage_checkpoint_nanos
            .observe(t0.elapsed().as_nanos() as u64);
        Ok(report)
    }

    /// Final tick, worker join, and merge: the last window's report, the
    /// exact end-of-trace [`AnalysisReport`] (evicted fragments
    /// included), and the merged [`Analyzer`] over still-live state.
    pub fn drain(mut self) -> Result<EngineOutput, Error> {
        let _span = trace::span("engine.drain");
        let start = self.window_start.or(self.first_ts).unwrap_or(0);
        let end = self.last_ts.max(start);
        let replies = self.tick_all(None)?;
        let final_window = self.apply_tick(replies, start, end, false);

        let mut shards = Vec::with_capacity(self.workers.len());
        for mut w in std::mem::take(&mut self.workers) {
            drop(w.tx.take()); // closes the channel; the worker returns
            let analyzer = w
                .handle
                .take()
                .expect("worker joined once")
                .join()
                .map_err(|p| Error::ShardPanic(panic_message(&p)))?;
            shards.push(analyzer);
        }

        let StreamingEngine {
            analyzer_config,
            grouper,
            rtp_rtt,
            registry,
            webrtc_flows,
            creation_order,
            mut tcp_samples,
            evicted_streams,
            evicted_flows,
            peak_tracked,
            metrics,
            ..
        } = self;

        // ---- additive merge of shard-local state (as the batch merge
        // does), minus the event replay — that already happened tick by
        // tick — and minus shard TCP samples — those were shipped as
        // per-tick deltas into `tcp_samples`.
        let _merge_span = trace::span("engine.merge");
        let merge_t0 = std::time::Instant::now();
        let mut merged = Analyzer::new(analyzer_config);
        // Hand the merged analyzer the engine's registry so ad-hoc
        // queries (and `merged.report()`) see pipeline-wide accounting.
        merged.metrics = Arc::clone(&metrics);
        let mut live_pool = FxHashMap::default();
        for mut shard in shards {
            merged.total_packets += shard.total_packets;
            merged.zoom_packets += shard.zoom_packets;
            merged.zoom_bytes += shard.zoom_bytes;
            merged.webrtc_packets += shard.webrtc_packets;
            merged.webrtc_bytes += shard.webrtc_bytes;
            merged.undissectable += shard.undissectable;
            merged.first_zoom_ts = match (merged.first_zoom_ts, shard.first_zoom_ts) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            merged.last_zoom_ts = merged.last_zoom_ts.max(shard.last_zoom_ts);
            for (ft, fs) in shard.flows.drain() {
                merge_flow(&mut merged.flows, ft, fs);
            }
            merged.classifier.merge(&shard.classifier);
            live_pool.extend(std::mem::take(&mut shard.streams).into_streams());
        }
        tcp_samples.sort_by_key(|s| s.at);
        merged.tcp_rtt.set_samples(tcp_samples);

        // Adopt live streams in global creation order, stamping the
        // unique ids the replayed grouper assigned. Keys whose streams
        // were all evicted have no live entry and are skipped here; their
        // fragments join the report below.
        for key in &creation_order {
            if let Some(mut s) = live_pool.remove(key) {
                s.unique_id = grouper.assignment(key).map(|(uid, _)| uid);
                merged.streams.adopt(s);
            }
        }
        debug_assert!(
            live_pool.is_empty(),
            "every live shard stream must have at least one logged event"
        );
        merged.grouper = grouper;
        merged.rtp_rtt = rtp_rtt;
        merged.p2p_endpoints = registry;
        merged.webrtc_flows = webrtc_flows;

        // ---- exact end-of-trace report: live rows interleaved with the
        // evicted fragments, in creation order; counts restored to
        // ever-seen totals.
        let extra_streams = creation_order.len() - merged.streams.len();
        let extra_flows = evicted_flows
            .keys()
            .filter(|k| !merged.flows.contains_key(k))
            .count();
        let mut rows = Vec::new();
        for key in &creation_order {
            if let Some(frags) = evicted_streams.get(key) {
                for frag in frags {
                    let mut frag = frag.clone();
                    // A merge after eviction may have folded the meeting
                    // id; re-resolve so fragments and live rows agree.
                    frag.meeting = merged.grouper.canonical_meeting(key);
                    rows.push(frag);
                }
            }
            if let Some(s) = merged.streams.get(key) {
                let uid = merged.grouper.assignment(key).map(|(u, _)| u);
                let meeting = merged.grouper.canonical_meeting(key);
                rows.push(StreamReport::from_stream(s, uid, meeting, false));
            }
        }
        let mut summary = merged.summary();
        summary.zoom_flows += extra_flows;
        summary.rtp_streams += extra_streams;
        let report = AnalysisReport {
            summary,
            undissectable: merged.undissectable,
            drops: drops_from_metrics(&metrics),
            meetings: merged.meetings(),
            streams: rows,
            rtp_rtt: RttSummaryReport::from_samples(merged.rtp_rtt.samples()),
            tcp_rtt: RttSummaryReport::from_samples(merged.tcp_rtt.samples()),
            families: merged.classifier.family_table(),
        };
        metrics
            .stage_merge_nanos
            .observe(merge_t0.elapsed().as_nanos() as u64);
        Ok(EngineOutput {
            final_window,
            report,
            analyzer: merged,
            peak_tracked_entries: peak_tracked,
        })
    }

    // ------------------------------------------------------- internals --

    /// Flush pending batches and tick every shard, collecting replies in
    /// shard order.
    fn tick_all(&mut self, evict_before: Option<u64>) -> Result<Vec<TickReply>, Error> {
        for w in &mut self.workers {
            if !w.pending.records.is_empty() {
                let fresh = w.recycle_rx.try_recv().unwrap_or_default();
                let pending = std::mem::replace(&mut w.pending, fresh);
                send(w, ToWorker::Batch(pending))?;
            }
            send(w, ToWorker::Tick { evict_before })?;
        }
        let mut replies = Vec::with_capacity(self.workers.len());
        for w in &self.workers {
            replies.push(w.reply_rx.recv().map_err(|_| {
                Error::ShardPanic("shard worker disconnected before replying to a tick".into())
            })?);
        }
        Ok(replies)
    }

    /// Fold tick replies into the cross-flow trackers and build the
    /// window's report.
    fn apply_tick(
        &mut self,
        replies: Vec<TickReply>,
        start: u64,
        end: u64,
        advance: bool,
    ) -> WindowReport {
        let merge_t0 = std::time::Instant::now();
        let mut totals = WindowTotals::default();
        let mut live = 0usize;
        let mut events = Vec::new();
        let mut all_deltas = Vec::new();
        let mut evicted_stream_objs = Vec::new();
        for (i, mut r) in replies.into_iter().enumerate() {
            totals.packets += r.total_packets;
            totals.zoom_packets += r.zoom_packets;
            totals.zoom_bytes += r.zoom_bytes;
            totals.new_flows += r.new_flows;
            totals.new_streams += r.new_streams;
            totals.evicted_flows += r.evicted_flows.len() as u64;
            totals.evicted_streams += r.evicted_streams.len() as u64;
            live += r.live_flows + r.live_streams;
            events.append(&mut r.events);
            self.tcp_samples.append(&mut r.tcp_new);
            for (ft, fs) in r.evicted_flows {
                merge_flow(&mut self.evicted_flows, ft, fs);
            }
            evicted_stream_objs.append(&mut r.evicted_streams);
            all_deltas.append(&mut r.deltas);
            // `append` drained the vectors but kept their capacity; hand
            // them back so the shard's next tick reuses the allocations.
            // (Replies arrive in shard order — index i is worker i.)
            let _ = self.workers[i].scratch_tx.send(TickScratch {
                deltas: r.deltas,
                events: r.events,
                tcp_new: r.tcp_new,
            });
        }

        // Replay this tick's media events through the persistent
        // cross-flow trackers. Ticks partition the global sequence range
        // in order, so incremental replay equals the batch replay.
        self.replay_events(events);

        // Evicted streams flush their final report fragment now that the
        // replay has assigned them; the heavyweight Stream is dropped.
        for s in evicted_stream_objs {
            let uid = self.grouper.assignment(&s.key).map(|(u, _)| u);
            let meeting = self.grouper.canonical_meeting(&s.key);
            self.evicted_streams
                .entry(s.key)
                .or_default()
                .push(StreamReport::from_stream(&s, uid, meeting, true));
        }

        let dur_secs = end.saturating_sub(start) as f64 / 1e9;
        let rate = |v: f64| if dur_secs > 0.0 { v / dur_secs } else { 0.0 };
        let mut streams: Vec<StreamWindow> = all_deltas
            .iter()
            .map(|d| StreamWindow {
                key: d.key,
                media_type: d.media_type,
                direction: d.direction,
                family: d.family,
                meeting: self.grouper.canonical_meeting(&d.key),
                packets: d.packets,
                media_bytes: d.media_bytes,
                frames: d.frames,
                bitrate_bps: rate(d.media_bytes as f64 * 8.0),
                fps: rate(d.frames as f64),
                jitter_ms: (d.jitter_count > 0).then(|| d.jitter_sum / d.jitter_count as f64),
                lost: d.lost,
                duplicates: d.duplicates,
                evicted: d.evicted,
            })
            .collect();
        streams.sort_by_key(|s| s.key);

        let mut meetings: BTreeMap<u32, MeetingWindow> = BTreeMap::new();
        for row in &streams {
            if let Some(id) = row.meeting {
                let m = meetings.entry(id).or_insert(MeetingWindow {
                    id,
                    active_streams: 0,
                    packets: 0,
                    media_bytes: 0,
                });
                if row.packets > 0 {
                    m.active_streams += 1;
                }
                m.packets += row.packets;
                m.media_bytes += row.media_bytes;
            }
        }

        // Bound the router-side registries too: STUN entries past the
        // timeout can never match again, and neither can RTT candidates
        // past the matching window — both prunes are lossless.
        let stun_cutoff = end.saturating_sub(self.stun_timeout_nanos);
        self.registry.retain(|_, last| *last >= stun_cutoff);
        self.webrtc_flows.retain(|_, last| *last >= stun_cutoff);
        self.rtp_rtt.prune(end);

        totals.active_streams = streams.iter().filter(|r| r.packets > 0).count() as u64;
        totals.meetings = self.grouper.meeting_count();
        totals.rtp_rtt = RttSummaryReport::from_samples(&self.rtp_rtt.samples()[self.rtt_mark..]);
        self.rtt_mark = self.rtp_rtt.samples().len();
        totals.tracked_entries = live + self.registry.len() + self.rtp_rtt.outstanding();
        self.last_tracked = totals.tracked_entries;
        self.peak_tracked = self.peak_tracked.max(totals.tracked_entries);
        self.metrics.evicted_flows.add(totals.evicted_flows);
        self.metrics.evicted_streams.add(totals.evicted_streams);
        self.metrics
            .tracked_entries
            .set(totals.tracked_entries as u64);
        self.metrics
            .peak_tracked_entries
            .set_max(totals.tracked_entries as u64);

        let index = self.window_index;
        if advance {
            self.window_index += 1;
        }
        let report = WindowReport {
            index,
            start_nanos: start,
            end_nanos: end,
            totals,
            meetings: meetings.into_values().collect(),
            streams,
        };

        self.update_qoe_series(&report);
        // The detector only sees real window closes: checkpoint and
        // drain cut partial windows whose timing depends on when the
        // caller asked, which would make the alert stream nondeterministic.
        if advance {
            if let Some(watch) = &mut self.qoe_watch {
                let alerts = watch.observe(&report);
                for a in &alerts {
                    let v = match a.state {
                        AlertState::Degraded => 1,
                        AlertState::Recovered => 0,
                    };
                    self.metrics
                        .qoe
                        .degraded
                        .with(&[&a.meeting, a.kind], |g| g.set(v));
                }
                self.pending_alerts.extend(alerts);
            }
        }
        self.metrics
            .stage_merge_nanos
            .observe(merge_t0.elapsed().as_nanos() as u64);
        report
    }

    /// Refresh the `zoom_qoe_*` labeled families from a just-built
    /// window. Runs once per window close/checkpoint — never on the
    /// per-packet path — so the `with()` label allocations are
    /// amortized to nothing.
    fn update_qoe_series(&self, report: &WindowReport) {
        let qoe = &self.metrics.qoe;
        for ((meeting, media, family), agg) in qoe_watch::aggregate(report) {
            let labels = [meeting.as_str(), media, family];
            qoe.bitrate_bps.with(&labels, |g| g.set(agg.bitrate_bps));
            qoe.fps.with(&labels, |g| g.set(agg.fps_mean));
            if let Some(j) = agg.jitter_mean {
                qoe.jitter_ms.with(&labels, |g| g.set(j));
            }
            if agg.duplicates > 0 {
                qoe.retransmissions.with(&labels, |c| c.add(agg.duplicates));
            }
        }
        for s in &report.streams {
            if s.frames > 0 {
                qoe.frame_size_bytes
                    .with(&[crate::obs::media_slug(s.media_type), s.family.label()], |h| {
                        h.observe(s.media_bytes / s.frames)
                    });
            }
        }
        if report.totals.rtp_rtt.samples > 0 {
            qoe.estimated_rtt_ms.set(report.totals.rtp_rtt.mean_ms);
        }
    }

    /// A window no record fell into (trace gap): zero deltas, cumulative
    /// gauges carried forward, no tick.
    fn empty_window(&mut self, start: u64, end: u64) -> WindowReport {
        let index = self.window_index;
        self.window_index += 1;
        WindowReport {
            index,
            start_nanos: start,
            end_nanos: end,
            totals: WindowTotals {
                meetings: self.grouper.meeting_count(),
                tracked_entries: self.last_tracked,
                ..Default::default()
            },
            meetings: Vec::new(),
            streams: Vec::new(),
        }
    }

    /// Replay media events (global order) through the persistent grouper,
    /// RTT estimator, and candidate replicas — the incremental version of
    /// the batch pipeline's merge-time replay.
    fn replay_events(&mut self, mut events: Vec<MediaEvent>) {
        events.sort_unstable_by_key(|e| e.seq_no);
        let grouper = &mut self.grouper;
        let replicas = &mut self.replicas;
        let creation_order = &mut self.creation_order;
        let rtt = &mut self.rtp_rtt;
        let campus = &self.campus;
        for ev in &events {
            // RTP-copy RTT is a Zoom-SFU behavior; WebRTC streams still
            // replay into the grouper and replica trackers below.
            if ev.family == FamilyId::Zoom {
                rtt.observe(
                    ev.ts_nanos,
                    (ev.ssrc, ev.payload_type, ev.rtp_seq, ev.rtp_ts),
                    ev.direction,
                    ev.flow.src_ip,
                );
            }
            let key = StreamKey {
                flow: ev.flow,
                ssrc: ev.ssrc,
            };
            if !replicas.contains_key(&key) {
                creation_order.push(key);
                let (client, server) = resolve_stream_endpoints(&ev.flow, campus);
                grouper.on_new_stream(
                    key,
                    client,
                    server,
                    ev.rtp_ts,
                    ev.rtp_seq,
                    ev.ts_nanos,
                    |k| replicas.get(k).and_then(|r| r.candidate()),
                );
            }
            let r = replicas.entry(key).or_default();
            r.last_seen = ev.ts_nanos;
            let sub = r.subs.entry(ev.payload_type).or_insert((0, 0, 0));
            sub.0 += 1;
            sub.1 = ev.rtp_seq;
            sub.2 = ev.rtp_ts;
        }
    }

    /// Pick the shard, the peek to resume dissection from, and the
    /// per-family flow verdicts for a record, mirroring the dissection
    /// and registry decisions the sequential analyzer makes.
    ///
    /// The router stays off the Zoom parse path: a header-only
    /// [`peek`] recovers the 5-tuple and header offsets (shipped to the
    /// shard so it never re-scans Ethernet/IP/UDP), the STUN gate is
    /// applied exactly as the dissector applies it, and the expensive
    /// Zoom-vs-opaque question is answered lazily — only when one of the
    /// flow's endpoints has a fresh registry entry, because only then does
    /// the classification change what the registry (refresh) and the
    /// shard (P2P verdict) observe.
    fn route(
        &mut self,
        ts: u64,
        data: &[u8],
        link: LinkType,
    ) -> (usize, Option<PeekInfo>, RouteHints) {
        let n = self.shard_count;
        let p = match peek(data, link) {
            Ok(p) => p,
            Err(e) => {
                // Undissectable records only touch additive counters;
                // account the drop here (the shard sees no PeekInfo and
                // counts nothing) and spread them round-robin.
                self.metrics.record_drop(drop_stage(data, link, e));
                return ((self.seq % n as u64) as usize, None, RouteHints::default());
            }
        };
        let hints = self.apply_registry(ts, &p.info, data);
        (shard_of(&p.info.five_tuple, n), Some(p.info), hints)
    }

    /// Apply the STUN-registry and WebRTC-flow-table sides of routing for
    /// one peeked record and return its flow verdicts. Shared verbatim by
    /// [`route`] and the batched pass-3 loop in [`push_batch_records`], so
    /// both paths make identical registry decisions by construction.
    ///
    /// [`route`]: StreamingEngine::route
    /// [`push_batch_records`]: StreamingEngine::push_batch_records
    fn apply_registry(&mut self, ts: u64, info: &PeekInfo, data: &[u8]) -> RouteHints {
        use zoom_wire::{stun, zoom};

        let flow = &info.five_tuple;
        let PeekTransport::Udp {
            payload_off,
            payload_len,
        } = info.transport
        else {
            return RouteHints::default(); // TCP: no registry interaction
        };
        let payload = &data[payload_off..payload_off + payload_len];
        // STUN gate, verbatim from the dissector: port 3478 or a
        // magic-cookie match, then a successful parse.
        if flow.involves_port(stun::STUN_PORT) || stun::looks_like_stun(payload) {
            if let Ok(pkt) = stun::Packet::new_checked(payload) {
                if stun::Repr::parse(&pkt).is_ok() {
                    // Register the non-3478 endpoint — §4.1's rule.
                    let client = if flow.dst_port == stun::STUN_PORT {
                        flow.src()
                    } else {
                        flow.dst()
                    };
                    self.registry.insert(client, ts);
                    return RouteHints::default();
                }
            }
            // Gate matched but the parse failed: the dissector falls
            // through to the port-8801 / opaque branches; so do we.
        }
        // Non-STUN UDP. The sequential analyzer probes the registry
        // (refreshing on a hit) only for packets that do NOT parse as
        // Zoom server traffic. If neither endpoint has a fresh
        // registry entry, the probe is a no-op either way — skip the
        // Zoom parse entirely. Otherwise resolve the classification
        // so refresh semantics stay exact.
        let mut hints = RouteHints::default();
        if self.registry_has_fresh(ts, flow) {
            let opaque = !flow.involves_port(zoom::ZOOM_SFU_PORT)
                || zoom::parse(payload, zoom::Framing::Server).is_err();
            if opaque {
                hints.p2p = self.probe_p2p(ts, flow);
            }
        }
        // WebRTC flow-table mirror of the sequential second chance. The
        // guard keeps this off the hot path: with no registered flows and
        // no STUN-fresh endpoint (and no eager `Only(Webrtc)` selection),
        // the sequential analyzer's verdict is trivially false too.
        if self.webrtc_enabled && (hints.p2p || self.webrtc_eager || !self.webrtc_flows.is_empty())
        {
            // A packet the Zoom second chance claims (P2P-fresh and
            // ZME-parseable) never reaches the WebRTC chance; mirror
            // that so refresh timing stays exact. The loose keep-alive
            // claim yields to strict WebRTC framing, exactly as the
            // sequential analyzer's dispatch does.
            let claimed_by_zoom = self.zoom_enabled
                && hints.p2p
                && match zoom::parse(payload, zoom::Framing::P2p) {
                    Ok(z) => {
                        z.rtp.is_some()
                            || !z.rtcp.is_empty()
                            || webrtc::classify(payload).is_err()
                    }
                    Err(_) => false,
                };
            if !claimed_by_zoom {
                if self.probe_webrtc(ts, flow) {
                    hints.webrtc = true;
                } else if (hints.p2p || self.webrtc_eager)
                    && matches!(webrtc::classify(payload), Ok(webrtc::Pdu::Dtls(_)))
                {
                    // A strict DTLS record opens the flow (RFC 5764:
                    // the handshake precedes SRTP) — the sequential
                    // analyzer's registration rule.
                    self.webrtc_flows.insert(flow.canonical(), ts);
                    hints.webrtc = true;
                }
            }
        }
        hints
    }

    /// True when either endpoint of `flow` has a registry entry within
    /// the STUN timeout. Read-only — refresh happens in `probe_p2p`.
    fn registry_has_fresh(&self, now: u64, flow: &FiveTuple) -> bool {
        let timeout = self.stun_timeout_nanos;
        [flow.src(), flow.dst()].iter().any(|ep| {
            self.registry
                .get(ep)
                .is_some_and(|&last| now.saturating_sub(last) <= timeout)
        })
    }

    /// The sequential analyzer's `is_p2p_flow`, applied to the router's
    /// registry: check `[src, dst]` in order, refresh the first endpoint
    /// still inside the STUN timeout.
    fn probe_p2p(&mut self, now: u64, flow: &FiveTuple) -> bool {
        let timeout = self.stun_timeout_nanos;
        for ep in [flow.src(), flow.dst()] {
            if let Some(last) = self.registry.get_mut(&ep) {
                if now.saturating_sub(*last) <= timeout {
                    *last = now;
                    return true;
                }
            }
        }
        false
    }

    /// The sequential analyzer's `is_webrtc_flow`, applied to the
    /// router's flow table: probe the canonical 5-tuple, refresh within
    /// the STUN timeout.
    fn probe_webrtc(&mut self, now: u64, flow: &FiveTuple) -> bool {
        let timeout = self.stun_timeout_nanos;
        if let Some(last) = self.webrtc_flows.get_mut(&flow.canonical()) {
            if now.saturating_sub(*last) <= timeout {
                *last = now;
                return true;
            }
        }
        false
    }
}

impl PacketSink for StreamingEngine {
    fn push(&mut self, ts_nanos: u64, data: &[u8], link: LinkType) -> Result<(), Error> {
        let windows = self.push_packet(ts_nanos, data, link)?;
        self.pending_windows.extend(windows);
        Ok(())
    }

    fn push_batch(&mut self, batch: &RecordBatch, link: LinkType) -> Result<(), Error> {
        let windows = self.push_batch_records(batch, link)?;
        self.pending_windows.extend(windows);
        Ok(())
    }

    fn take_windows(&mut self) -> Vec<WindowReport> {
        std::mem::take(&mut self.pending_windows)
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    fn note_pcap_truncated(&mut self, records: u64) {
        self.metrics.pcap_truncated_records.set(records);
    }

    fn note_pcap_progress(&mut self, records: u64, bytes: u64) {
        self.metrics.pcap_records_read.set(records);
        self.metrics.pcap_bytes_read.set(bytes);
    }

    fn finish(self) -> Result<AnalysisReport, Error> {
        self.drain().map(|o| o.report)
    }
}

fn send(w: &mut Worker, msg: ToWorker) -> Result<(), Error> {
    w.tx.as_ref()
        .expect("sender alive until drain")
        .send(msg)
        .map_err(|_| Error::ShardPanic("shard worker disconnected (channel closed)".into()))
}

fn merge_flow(into: &mut FxHashMap<FiveTuple, FlowStats>, ft: FiveTuple, fs: FlowStats) {
    match into.entry(ft) {
        std::collections::hash_map::Entry::Vacant(v) => {
            v.insert(fs);
        }
        std::collections::hash_map::Entry::Occupied(mut o) => {
            let e = o.get_mut();
            e.packets += fs.packets;
            e.bytes += fs.bytes;
            e.first_seen = e.first_seen.min(fs.first_seen);
            e.last_seen = e.last_seen.max(fs.last_seen);
        }
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    p.downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic payload".into())
}

/// FNV-1a over the canonical 5-tuple, reduced modulo the shard count.
/// Both directions of a conversation hash identically, so every per-flow
/// and per-stream state machine stays on one shard.
pub(crate) fn shard_of(flow: &FiveTuple, n: usize) -> usize {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let c = flow.canonical();
    let mut h = OFFSET;
    let mut feed = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    match c.src_ip {
        IpAddr::V4(a) => feed(&a.octets()),
        IpAddr::V6(a) => feed(&a.octets()),
    }
    match c.dst_ip {
        IpAddr::V4(a) => feed(&a.octets()),
        IpAddr::V6(a) => feed(&a.octets()),
    }
    feed(&c.src_port.to_be_bytes());
    feed(&c.dst_port.to_be_bytes());
    feed(&[u8::from(c.protocol)]);
    // FNV's low bits mix poorly for short, correlated inputs (adjacent
    // addresses/ports), and `% n` reads exactly those bits; run the hash
    // through a 64-bit finalizer for good dispersion at any shard count.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    (h % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use zoom_wire::compose;
    use zoom_wire::ipv4::Protocol;
    use zoom_wire::pcap::Record;
    use zoom_wire::rtp;
    use zoom_wire::zoom;

    const MS: u64 = 1_000_000;
    const SEC: u64 = 1_000_000_000;

    fn tuple(src: [u8; 4], sport: u16, dst: [u8; 4], dport: u16) -> FiveTuple {
        FiveTuple {
            src_ip: IpAddr::V4(Ipv4Addr::from(src)),
            dst_ip: IpAddr::V4(Ipv4Addr::from(dst)),
            src_port: sport,
            dst_port: dport,
            protocol: Protocol::Udp,
        }
    }

    #[test]
    fn both_directions_hash_to_one_shard() {
        let up = tuple([10, 8, 0, 1], 50_000, [170, 114, 0, 1], 8801);
        for n in [1usize, 2, 3, 8, 13] {
            assert_eq!(shard_of(&up, n), shard_of(&up.reversed(), n));
            assert!(shard_of(&up, n) < n);
        }
    }

    #[test]
    fn distinct_flows_spread_over_shards() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u16 {
            let ft = tuple(
                [10, 8, 0, (i % 250) as u8 + 1],
                50_000 + i,
                [170, 114, 0, 1],
                8801,
            );
            seen.insert(shard_of(&ft, 8));
        }
        assert!(seen.len() >= 6, "poor dispersion: {seen:?}");
    }

    fn media_record(ts: u64, src_host: u8, ssrc: u32, seq: u16, rtp_ts: u32) -> Record {
        let payload = zoom::Builder {
            sfu: Some(zoom::SfuEncapRepr {
                encap_type: zoom::SFU_TYPE_MEDIA,
                sequence: seq,
                direction: zoom::DIR_TO_SFU,
            }),
            media: zoom::MediaEncapRepr {
                media_type: zoom::MediaType::Video,
                sequence: seq,
                timestamp: (ts / 1_000_000) as u32,
                frame_sequence: Some(seq / 2),
                packets_in_frame: Some(1),
            },
            rtp: Some(rtp::Repr {
                marker: true,
                payload_type: 98,
                sequence_number: seq,
                timestamp: rtp_ts,
                ssrc,
                csrc_count: 0,
                has_extension: false,
            }),
            payload: vec![0xA5; 700],
        }
        .build();
        let data = compose::udp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 0, src_host),
            Ipv4Addr::new(170, 114, 0, 1),
            50_000,
            8801,
            &payload,
        );
        Record::full(ts, data)
    }

    #[test]
    fn windows_close_on_boundaries_and_deltas_sum() {
        let mut engine = StreamingEngine::new(EngineConfig {
            window: Some(Duration::from_secs(10)),
            ..Default::default()
        })
        .unwrap();
        // 30 fps for 25 s: windows [0,10s), [10s,20s) close; the final
        // [20s,25s) fragment arrives at drain.
        let mut windows = Vec::new();
        for i in 0..750u64 {
            let r = media_record(i * 33 * MS, 1, 0x21, i as u16 + 1, 1_000 + i as u32 * 3_000);
            windows.extend(
                engine
                    .push_packet(r.ts_nanos, &r.data, LinkType::Ethernet)
                    .unwrap(),
            );
        }
        let out = engine.drain().unwrap();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].index, 0);
        assert_eq!(windows[1].index, 1);
        assert_eq!(windows[0].start_nanos, 0);
        assert_eq!(windows[0].end_nanos, 10 * SEC);
        let windowed: u64 = windows
            .iter()
            .chain(std::iter::once(&out.final_window))
            .map(|w| w.totals.zoom_packets)
            .sum();
        assert_eq!(windowed, 750);
        assert_eq!(out.report.summary.zoom_packets, 750);
        let stream_pkts: u64 = windows
            .iter()
            .chain(std::iter::once(&out.final_window))
            .flat_map(|w| w.streams.iter())
            .map(|s| s.packets)
            .sum();
        assert_eq!(stream_pkts, 750);
        assert!(windows[0].totals.tracked_entries > 0);
    }

    #[test]
    fn idle_streams_evicted_and_fragments_flushed() {
        let mut engine = StreamingEngine::new(EngineConfig {
            window: Some(Duration::from_secs(5)),
            idle_timeout: Some(Duration::from_secs(10)),
            shards: 2,
            ..Default::default()
        })
        .unwrap();
        // Stream A: 0–3 s, then silence. Stream B keeps the clock
        // ticking until A is idle past the timeout.
        let mut evicted_seen = 0u64;
        let mut rows = Vec::new();
        for i in 0..90u64 {
            let r = media_record(i * 33 * MS, 1, 0xA, i as u16 + 1, 1_000 + i as u32 * 3_000);
            rows.extend(
                engine
                    .push_packet(r.ts_nanos, &r.data, LinkType::Ethernet)
                    .unwrap(),
            );
        }
        for i in 0..900u64 {
            let r = media_record(
                3 * SEC + i * 33 * MS,
                2,
                0xB,
                i as u16 + 1,
                1_000 + i as u32 * 3_000,
            );
            rows.extend(
                engine
                    .push_packet(r.ts_nanos, &r.data, LinkType::Ethernet)
                    .unwrap(),
            );
        }
        for w in &rows {
            evicted_seen += w.totals.evicted_streams;
        }
        assert_eq!(evicted_seen, 1, "stream A must be evicted exactly once");
        let out = engine.drain().unwrap();
        // The evicted fragment appears in the final report with exact
        // totals, and the live stream is intact.
        let frag: Vec<_> = out.report.streams.iter().filter(|s| s.evicted).collect();
        assert_eq!(frag.len(), 1);
        assert_eq!(frag[0].packets, 90);
        assert_eq!(out.report.summary.rtp_streams, 2);
        assert_eq!(out.report.summary.zoom_packets, 990);
        assert!(out.peak_tracked_entries >= 2);
    }

    #[test]
    fn gap_emits_empty_windows() {
        let mut engine = StreamingEngine::new(EngineConfig {
            window: Some(Duration::from_secs(1)),
            ..Default::default()
        })
        .unwrap();
        let mut windows = Vec::new();
        let early = media_record(0, 1, 0x1, 1, 100);
        windows.extend(
            engine
                .push_packet(early.ts_nanos, &early.data, LinkType::Ethernet)
                .unwrap(),
        );
        let late = media_record(4 * SEC + 1, 1, 0x1, 2, 200);
        windows.extend(
            engine
                .push_packet(late.ts_nanos, &late.data, LinkType::Ethernet)
                .unwrap(),
        );
        // Record at 4.000000001 s closes [0,1) and skips [1,2), [2,3), [3,4).
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[0].totals.zoom_packets, 1);
        assert!(windows[1..].iter().all(|w| w.totals.zoom_packets == 0));
        let indices: Vec<u64> = windows.iter().map(|w| w.index).collect();
        assert_eq!(indices, vec![0, 1, 2, 3]);
        engine.drain().unwrap();
    }
}
