//! QoE degradation detector over closed windows.
//!
//! [`QoeWatch`] consumes each [`WindowReport`] a [`StreamingEngine`]
//! closes and compares per-`(meeting, media)` aggregates against three
//! configurable thresholds — the §5 estimator signals behind the
//! paper's Fig. 16-style diagnostic vignettes:
//!
//! * **fps floor** (`low_fps`) — mean frame rate across a meeting's
//!   active *video* streams fell below the floor;
//! * **jitter ceiling** (`high_jitter`) — mean RFC 3550 jitter across
//!   active streams rose above the ceiling;
//! * **bitrate collapse** (`bitrate_collapse`) — aggregate media
//!   bitrate fell below `collapse_ratio ×` the last healthy window's
//!   bitrate. The baseline freezes while degraded, so recovery means
//!   climbing back to the ratio of the *pre-collapse* rate, not of the
//!   collapsed one (hysteresis).
//!
//! Each threshold crossing emits one [`QoeAlert`] on the degrading
//! window and one on the recovering window — never one per window in
//! between — and the engine mirrors the active set into the
//! `zoom_qoe_degraded{meeting,kind}` gauge family (1 degraded,
//! 0 recovered). A meeting that disappears from the window (ended or
//! evicted) recovers all of its active verdicts.
//!
//! The detector sees only the [`WindowReport`], which is byte-identical
//! across shard counts, so the alert sequence is deterministic and
//! identical at 1, 2, or 8 shards (asserted in
//! `tests/observability.rs`).
//!
//! [`StreamingEngine`]: super::StreamingEngine

use crate::obs::media_slug;
use crate::report::{JsonObj, WindowReport};
use std::collections::BTreeMap;

/// Detection thresholds; every field has a reasonable default and maps
/// to an `analyze --qoe-*` flag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QoeThresholds {
    /// `low_fps` fires when mean video fps over a window drops below
    /// this floor (default 10).
    pub fps_floor: f64,
    /// `high_jitter` fires when mean jitter over a window exceeds this
    /// ceiling, in milliseconds (default 50).
    pub jitter_ceiling_ms: f64,
    /// `bitrate_collapse` fires when a window's aggregate bitrate drops
    /// below this fraction of the last healthy window's (default 0.5).
    pub collapse_ratio: f64,
}

impl Default for QoeThresholds {
    fn default() -> QoeThresholds {
        QoeThresholds {
            fps_floor: 10.0,
            jitter_ceiling_ms: 50.0,
            collapse_ratio: 0.5,
        }
    }
}

/// Whether an alert opens or closes a degradation episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// The threshold was crossed on this window.
    Degraded,
    /// The signal returned inside the threshold on this window.
    Recovered,
}

impl AlertState {
    /// Stable string used in both NDJSON and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Degraded => "degraded",
            AlertState::Recovered => "recovered",
        }
    }
}

/// One degradation-episode edge (open or close) for one
/// `(meeting, media, kind)` series.
#[derive(Debug, Clone, PartialEq)]
pub struct QoeAlert {
    /// Index of the window that crossed the threshold.
    pub window: u64,
    /// End timestamp of that window, capture nanoseconds.
    pub end_nanos: u64,
    /// Meeting label: the meeting id, or `"none"` for ungrouped streams.
    pub meeting: String,
    /// Media label ([`media_slug`] vocabulary, e.g. `"video"`).
    pub media: &'static str,
    /// `"low_fps"`, `"high_jitter"`, or `"bitrate_collapse"`.
    pub kind: &'static str,
    /// Opening or closing edge.
    pub state: AlertState,
    /// The observed value that crossed (mean fps, mean jitter ms, or
    /// bitrate bps; 0 when the meeting vanished from the window).
    pub value: f64,
    /// The threshold it crossed (for `bitrate_collapse`, the collapse
    /// floor in bps: `collapse_ratio × baseline`).
    pub threshold: f64,
}

impl QoeAlert {
    /// One NDJSON line: `{"type":"qoe_alert",...}`. Field order is
    /// fixed; the rendering is deterministic byte for byte.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("type", "qoe_alert")
            .u64("window", self.window)
            .u64("end_nanos", self.end_nanos)
            .str("meeting", &self.meeting)
            .str("media", self.media)
            .str("kind", self.kind)
            .str("state", self.state.as_str())
            .f64("value", self.value)
            .f64("threshold", self.threshold);
        o.finish()
    }
}

/// Per-window `(meeting, media)` aggregate the detector (and the
/// engine's QoE gauge update) evaluates. Only active streams
/// (`packets > 0`) contribute.
#[derive(Debug, Default, Clone, PartialEq)]
pub(crate) struct WindowAgg {
    /// Sum of active streams' bitrates, bits per second.
    pub bitrate_bps: f64,
    /// Mean fps across active streams (0 when none report frames).
    pub fps_mean: f64,
    /// Mean jitter across streams that produced samples this window.
    pub jitter_mean: Option<f64>,
    /// Duplicate-sequence (retransmission-estimate) delta this window.
    pub duplicates: u64,
}

/// Aggregate a window's stream rows per `(meeting label, media slug,
/// family label)`. `BTreeMap` keying makes every downstream iteration
/// deterministic.
pub(crate) fn aggregate(
    report: &WindowReport,
) -> BTreeMap<(String, &'static str, &'static str), WindowAgg> {
    struct Acc {
        bitrate: f64,
        fps_sum: f64,
        streams: u64,
        jitter_sum: f64,
        jitter_n: u64,
        duplicates: u64,
    }
    let mut acc: BTreeMap<(String, &'static str, &'static str), Acc> = BTreeMap::new();
    for s in &report.streams {
        if s.packets == 0 {
            continue;
        }
        let meeting = s
            .meeting
            .map(|m| m.to_string())
            .unwrap_or_else(|| "none".to_string());
        let a = acc.entry((meeting, media_slug(s.media_type), s.family.label())).or_insert(Acc {
            bitrate: 0.0,
            fps_sum: 0.0,
            streams: 0,
            jitter_sum: 0.0,
            jitter_n: 0,
            duplicates: 0,
        });
        a.bitrate += s.bitrate_bps;
        a.fps_sum += s.fps;
        a.streams += 1;
        if let Some(j) = s.jitter_ms {
            a.jitter_sum += j;
            a.jitter_n += 1;
        }
        a.duplicates += s.duplicates;
    }
    acc.into_iter()
        .map(|(k, a)| {
            (
                k,
                WindowAgg {
                    bitrate_bps: a.bitrate,
                    fps_mean: if a.streams > 0 {
                        a.fps_sum / a.streams as f64
                    } else {
                        0.0
                    },
                    jitter_mean: (a.jitter_n > 0).then(|| a.jitter_sum / a.jitter_n as f64),
                    duplicates: a.duplicates,
                },
            )
        })
        .collect()
}

/// Per-key episode state.
#[derive(Debug, Default, Clone)]
struct KeyState {
    low_fps: bool,
    high_jitter: bool,
    collapse: bool,
    /// Last healthy window's bitrate; frozen while `collapse` is set.
    baseline_bps: f64,
}

/// Stateful window-by-window degradation detector. Feed every closed
/// window in order via [`QoeWatch::observe`].
#[derive(Debug, Default)]
pub struct QoeWatch {
    thresholds: QoeThresholds,
    states: BTreeMap<(String, &'static str, &'static str), KeyState>,
}

impl QoeWatch {
    /// Build a detector with the given thresholds.
    pub fn new(thresholds: QoeThresholds) -> QoeWatch {
        QoeWatch {
            thresholds,
            states: BTreeMap::new(),
        }
    }

    /// The configured thresholds.
    pub fn thresholds(&self) -> &QoeThresholds {
        &self.thresholds
    }

    /// Evaluate one closed window; returns the episode edges it caused,
    /// in deterministic `(meeting, media)` then kind order.
    pub fn observe(&mut self, report: &WindowReport) -> Vec<QoeAlert> {
        let t = self.thresholds;
        let agg = aggregate(report);
        let mut alerts = Vec::new();
        let mut edge = |key: &(String, &'static str, &'static str),
                        kind: &'static str,
                        state: AlertState,
                        value: f64,
                        threshold: f64| {
            alerts.push(QoeAlert {
                window: report.index,
                end_nanos: report.end_nanos,
                meeting: key.0.clone(),
                media: key.1,
                kind,
                state,
                value,
                threshold,
            });
        };

        for (key, a) in &agg {
            let s = self.states.entry(key.clone()).or_default();

            // fps floor: meaningful for video only — audio and screen
            // share carry no comparable frame cadence.
            let low = key.1 == "video" && a.fps_mean < t.fps_floor;
            if low != s.low_fps {
                let state = if low {
                    AlertState::Degraded
                } else {
                    AlertState::Recovered
                };
                edge(key, "low_fps", state, a.fps_mean, t.fps_floor);
                s.low_fps = low;
            }

            // jitter ceiling: evaluated when the window produced
            // samples; a sampleless window reads as recovered.
            let jitter = a.jitter_mean.unwrap_or(0.0);
            let high = a.jitter_mean.is_some_and(|j| j > t.jitter_ceiling_ms);
            if high != s.high_jitter {
                let state = if high {
                    AlertState::Degraded
                } else {
                    AlertState::Recovered
                };
                edge(key, "high_jitter", state, jitter, t.jitter_ceiling_ms);
                s.high_jitter = high;
            }

            // bitrate collapse with a frozen-baseline hysteresis.
            let floor = t.collapse_ratio * s.baseline_bps;
            if !s.collapse {
                if s.baseline_bps > 0.0 && a.bitrate_bps < floor {
                    edge(key, "bitrate_collapse", AlertState::Degraded, a.bitrate_bps, floor);
                    s.collapse = true; // baseline stays frozen
                } else {
                    s.baseline_bps = a.bitrate_bps;
                }
            } else if a.bitrate_bps >= floor {
                edge(key, "bitrate_collapse", AlertState::Recovered, a.bitrate_bps, floor);
                s.collapse = false;
                s.baseline_bps = a.bitrate_bps;
            }
        }

        // Meetings absent from this window (ended, evicted, or idle)
        // recover every open episode and drop their state.
        self.states.retain(|key, s| {
            if agg.contains_key(key) {
                return true;
            }
            for (kind, open) in [
                ("low_fps", s.low_fps),
                ("high_jitter", s.high_jitter),
                ("bitrate_collapse", s.collapse),
            ] {
                if open {
                    alerts.push(QoeAlert {
                        window: report.index,
                        end_nanos: report.end_nanos,
                        meeting: key.0.clone(),
                        media: key.1,
                        kind,
                        state: AlertState::Recovered,
                        value: 0.0,
                        threshold: 0.0,
                    });
                }
            }
            false
        });
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Direction;
    use crate::report::{StreamWindow, WindowTotals};
    use crate::stream::StreamKey;
    use std::net::{IpAddr, Ipv4Addr};
    use zoom_wire::flow::FiveTuple;
    use zoom_wire::zoom::MediaType;

    fn row(meeting: Option<u32>, fps: f64, bitrate: f64, jitter: Option<f64>) -> StreamWindow {
        StreamWindow {
            key: StreamKey {
                flow: FiveTuple {
                    src_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
                    dst_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
                    src_port: 1000,
                    dst_port: 8801,
                    protocol: zoom_wire::ipv4::Protocol::Udp,
                },
                ssrc: 1,
            },
            media_type: MediaType::Video,
            direction: Direction::ToServer,
            family: zoom_wire::family::FamilyId::Zoom,
            meeting,
            packets: 10,
            media_bytes: (bitrate / 8.0) as u64,
            frames: fps as u64,
            bitrate_bps: bitrate,
            fps,
            jitter_ms: jitter,
            lost: 0,
            duplicates: 0,
            evicted: false,
        }
    }

    fn window(index: u64, streams: Vec<StreamWindow>) -> WindowReport {
        WindowReport {
            index,
            start_nanos: index * 1_000_000_000,
            end_nanos: (index + 1) * 1_000_000_000,
            totals: WindowTotals::default(),
            meetings: Vec::new(),
            streams,
        }
    }

    #[test]
    fn fps_episode_opens_once_and_closes_on_recovery() {
        let mut w = QoeWatch::new(QoeThresholds::default());
        assert!(w.observe(&window(0, vec![row(Some(1), 25.0, 1e6, None)])).is_empty());
        let a = w.observe(&window(1, vec![row(Some(1), 4.0, 1e6, None)]));
        assert_eq!(a.len(), 1);
        assert_eq!((a[0].kind, a[0].state), ("low_fps", AlertState::Degraded));
        // Still degraded: no repeat alert.
        assert!(w.observe(&window(2, vec![row(Some(1), 3.0, 1e6, None)])).is_empty());
        let a = w.observe(&window(3, vec![row(Some(1), 24.0, 1e6, None)]));
        assert_eq!(a.len(), 1);
        assert_eq!((a[0].kind, a[0].state), ("low_fps", AlertState::Recovered));
    }

    #[test]
    fn collapse_baseline_freezes_until_recovery() {
        let mut w = QoeWatch::new(QoeThresholds::default());
        assert!(w.observe(&window(0, vec![row(Some(1), 25.0, 1_000_000.0, None)])).is_empty());
        let a = w.observe(&window(1, vec![row(Some(1), 25.0, 100_000.0, None)]));
        assert_eq!((a[0].kind, a[0].state), ("bitrate_collapse", AlertState::Degraded));
        assert_eq!(a[0].threshold, 500_000.0);
        // 200 kbps is double the collapsed rate but still under half the
        // frozen 1 Mbps baseline — the episode stays open.
        assert!(w.observe(&window(2, vec![row(Some(1), 25.0, 200_000.0, None)])).is_empty());
        let a = w.observe(&window(3, vec![row(Some(1), 25.0, 600_000.0, None)]));
        assert_eq!((a[0].kind, a[0].state), ("bitrate_collapse", AlertState::Recovered));
    }

    #[test]
    fn vanished_meeting_recovers_open_episodes() {
        let mut w = QoeWatch::new(QoeThresholds::default());
        w.observe(&window(0, vec![row(Some(1), 4.0, 1e6, Some(80.0))]));
        let a = w.observe(&window(1, Vec::new()));
        let kinds: Vec<_> = a.iter().map(|x| (x.kind, x.state)).collect();
        assert_eq!(
            kinds,
            [
                ("low_fps", AlertState::Recovered),
                ("high_jitter", AlertState::Recovered),
            ]
        );
        // State dropped: nothing further.
        assert!(w.observe(&window(2, Vec::new())).is_empty());
    }

    #[test]
    fn alert_json_is_pinned() {
        let a = QoeAlert {
            window: 3,
            end_nanos: 4_000_000_000,
            meeting: "1".into(),
            media: "video",
            kind: "low_fps",
            state: AlertState::Degraded,
            value: 4.0,
            threshold: 10.0,
        };
        assert_eq!(
            a.to_json(),
            "{\"type\":\"qoe_alert\",\"window\":3,\"end_nanos\":4000000000,\
             \"meeting\":\"1\",\"media\":\"video\",\"kind\":\"low_fps\",\
             \"state\":\"degraded\",\"value\":4,\"threshold\":10}"
        );
    }
}
