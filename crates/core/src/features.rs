//! Per-stream, per-second feature vectors for ML-based QoE inference —
//! the §8 "Labeled Datasets for ML-based QoE Inference" direction: "our
//! system can help automatically generate large, feature-rich data sets
//! from real-world traffic."
//!
//! [`extract_features`] joins every per-second signal the analyzer
//! computes for a stream (bit rates, packet rate, delivered and encoder
//! frame rates, frame sizes, frame delay, jitter) into one row per second
//! of stream lifetime, ready to be labeled with viewer opinions and fed
//! to a model.

use crate::stream::Stream;
use std::collections::HashMap;

/// One feature row: a (stream, second) observation.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureRow {
    /// Stream SSRC (the participant's media identity within the meeting).
    pub ssrc: u32,
    /// Second index from trace start.
    pub second: u64,
    /// Media payload bits per second.
    pub media_bps: f64,
    /// IP-level bits per second (headers included) — the only feature
    /// prior flow-level work had.
    pub ip_bps: f64,
    /// Packets per second.
    pub pps: f64,
    /// Delivered frames this second (Method 1).
    pub delivered_fps: f64,
    /// Mean encoder frame rate this second (Method 2), if measurable.
    pub encoder_fps: Option<f64>,
    /// Mean frame size, bytes.
    pub mean_frame_size: f64,
    /// Max frame delay this second, ms.
    pub max_frame_delay_ms: f64,
    /// Frame-level jitter estimate, ms.
    pub jitter_ms: Option<f64>,
}

/// Extract the per-second feature matrix of one stream.
pub fn extract_features(stream: &Stream) -> Vec<FeatureRow> {
    const SEC: u64 = 1_000_000_000;
    let media: HashMap<u64, f64> = stream
        .media_rate
        .sorted()
        .into_iter()
        .map(|(t, v)| (t / SEC, v * 8.0))
        .collect();
    let ip: HashMap<u64, f64> = stream
        .ip_rate
        .sorted()
        .into_iter()
        .map(|(t, v)| (t / SEC, v * 8.0))
        .collect();
    let pkts: HashMap<u64, f64> = stream
        .pkt_rate
        .sorted()
        .into_iter()
        .map(|(t, v)| (t / SEC, v))
        .collect();
    let mut delivered: HashMap<u64, f64> = HashMap::new();
    let mut enc_sum: HashMap<u64, (f64, u32)> = HashMap::new();
    let mut size_sum: HashMap<u64, (f64, u32)> = HashMap::new();
    let mut delay_max: HashMap<u64, f64> = HashMap::new();
    if let Some(frames) = &stream.frames {
        for f in frames.frames() {
            let s = f.completed_at / SEC;
            *delivered.entry(s).or_default() += 1.0;
            if let Some(fps) = f.encoder_fps() {
                let e = enc_sum.entry(s).or_default();
                e.0 += fps;
                e.1 += 1;
            }
            let e = size_sum.entry(s).or_default();
            e.0 += f.size_bytes as f64;
            e.1 += 1;
            let d = f.frame_delay_nanos() as f64 / 1e6;
            let entry = delay_max.entry(s).or_insert(0.0);
            *entry = entry.max(d);
        }
    }
    let jitter: HashMap<u64, f64> = stream
        .frame_jitter
        .samples()
        .iter()
        .map(|&(t, j)| (t / SEC, j))
        .collect();

    let first = stream.first_seen / SEC;
    let last = stream.last_seen / SEC;
    (first..=last)
        .map(|second| FeatureRow {
            ssrc: stream.key.ssrc,
            second,
            media_bps: media.get(&second).copied().unwrap_or(0.0),
            ip_bps: ip.get(&second).copied().unwrap_or(0.0),
            pps: pkts.get(&second).copied().unwrap_or(0.0),
            delivered_fps: delivered.get(&second).copied().unwrap_or(0.0),
            encoder_fps: enc_sum.get(&second).map(|(sum, n)| sum / f64::from(*n)),
            mean_frame_size: size_sum
                .get(&second)
                .map(|(sum, n)| sum / f64::from(*n))
                .unwrap_or(0.0),
            max_frame_delay_ms: delay_max.get(&second).copied().unwrap_or(0.0),
            jitter_ms: jitter.get(&second).copied(),
        })
        .collect()
}

/// Render rows as CSV (with header) — the export format for labeling.
pub fn to_csv(rows: &[FeatureRow]) -> String {
    let mut out = String::from(
        "ssrc,second,media_bps,ip_bps,pps,delivered_fps,encoder_fps,\
         mean_frame_size,max_frame_delay_ms,jitter_ms\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.0},{:.0},{:.1},{:.1},{},{:.0},{:.2},{}\n",
            r.ssrc,
            r.second,
            r.media_bps,
            r.ip_bps,
            r.pps,
            r.delivered_fps,
            r.encoder_fps.map(|v| format!("{v:.1}")).unwrap_or_default(),
            r.mean_frame_size,
            r.max_frame_delay_ms,
            r.jitter_ms.map(|v| format!("{v:.3}")).unwrap_or_default(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Direction, PacketMeta, RtpMeta};
    use crate::stream::StreamTracker;
    use std::net::{IpAddr, Ipv4Addr};
    use zoom_wire::flow::FiveTuple;
    use zoom_wire::ipv4::Protocol;
    use zoom_wire::zoom::{Framing, MediaType, RtpPayloadKind};

    const SEC: u64 = 1_000_000_000;

    fn meta(at: u64, seq: u16, ts: u32) -> PacketMeta {
        PacketMeta {
            ts_nanos: at,
            five_tuple: FiveTuple {
                src_ip: IpAddr::V4(Ipv4Addr::new(10, 8, 0, 1)),
                dst_ip: IpAddr::V4(Ipv4Addr::new(170, 114, 0, 1)),
                src_port: 50_000,
                dst_port: 8801,
                protocol: Protocol::Udp,
            },
            ip_len: 1_000,
            family: zoom_wire::family::FamilyId::Zoom,
            framing: Framing::Server,
            media_type: MediaType::Video,
            direction: Direction::ToServer,
            rtp: Some(RtpMeta {
                ssrc: 0x21,
                payload_type: 98,
                sequence: seq,
                timestamp: ts,
                marker: true,
                kind: RtpPayloadKind::VideoMain,
            }),
            rtcp: None,
            frame_seq: Some(seq),
            pkts_in_frame: Some(1),
            media_payload_len: 900,
        }
    }

    #[test]
    fn features_cover_every_second_of_lifetime() {
        let mut tracker = StreamTracker::new();
        // 30 fps for 5 seconds.
        let mut key = None;
        for i in 0..150u64 {
            let m = meta(i * SEC / 30, i as u16, (i as u32) * 3_000);
            key = Some(tracker.on_packet(&m).unwrap().0);
        }
        let stream = tracker.get(&key.unwrap()).unwrap();
        let rows = extract_features(stream);
        // 150 frames at 30 fps span seconds 0..=4.
        assert_eq!(rows.len(), 5);
        // A full middle second has full-rate features.
        let r = &rows[2];
        assert!((r.delivered_fps - 30.0).abs() <= 1.0);
        assert!(r.media_bps > 100_000.0);
        assert!(r.ip_bps > r.media_bps);
        assert!((r.pps - 30.0).abs() <= 1.0);
        assert!(r.mean_frame_size > 800.0);
        let enc = r.encoder_fps.unwrap();
        assert!((enc - 30.0).abs() < 0.5, "encoder fps {enc}");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let rows = vec![FeatureRow {
            ssrc: 0x21,
            second: 3,
            media_bps: 500_000.0,
            ip_bps: 560_000.0,
            pps: 55.0,
            delivered_fps: 28.0,
            encoder_fps: Some(28.5),
            mean_frame_size: 1_800.0,
            max_frame_delay_ms: 4.25,
            jitter_ms: None,
        }];
        let csv = to_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("ssrc,second"));
        assert!(lines[1].starts_with("33,3,500000,560000,55.0,28.0,28.5,1800,4.25,"));
    }
}
