//! # zoom-analysis — passive measurement of Zoom performance
//!
//! A Rust implementation of the analysis methodology from *"Enabling
//! Passive Measurement of Zoom Performance in Production Networks"*
//! (IMC '22): everything needed to turn raw packet captures of Zoom
//! traffic into fine-grained performance metrics, with no cooperation
//! from clients or servers.
//!
//! * [`entropy`] — the §4.2 reverse-engineering toolkit: field-series
//!   extraction, entropy/monotonicity classification, RTP/RTCP discovery
//! * [`packet`] — per-packet metadata extraction on top of `zoom-wire`
//! * [`classify`] — packet/byte accounting per encapsulation and payload
//!   type (Tables 2 and 3)
//! * [`stream`] — media stream and sub-stream tracking (Fig. 6)
//! * [`metrics`] — frame rate/size/delay, frame-level jitter, latency,
//!   and loss estimators (§5)
//! * [`meeting`] — the stream→meeting grouping heuristic (§4.3)
//! * [`pipeline`] — the end-to-end [`pipeline::Analyzer`]
//! * [`engine`] — the streaming [`engine::StreamingEngine`]: windowed
//!   reports, idle-timeout eviction, checkpoint/drain
//! * [`dist`] — merge-node checkpoint/restore for the distributed shard
//!   tier ([`dist::MergeCheckpoint`], [`dist::WindowGate`])
//! * [`parallel`] — the sharded [`parallel::ParallelAnalyzer`] front-end
//!   with sequential-identical merge semantics
//! * [`report`] — owned [`report::AnalysisReport`] / windowed report
//!   types and their JSON serialization
//! * [`sink`] — the [`sink::PacketSink`] trait: the one ingest API all
//!   three sinks (batch, sharded, streaming) implement
//! * [`obs`] — the production observability layer: lock-light metrics
//!   registry, JSON/Prometheus snapshots, feature-gated tracing
//! * [`error`] — the crate-wide [`Error`] type
//! * [`stats`] — CDFs, time bins, correlation
//! * [`fxhash`] — the vendored fast hasher behind every per-packet state
//!   table (reports stay deterministic: ordering is fixed at emit time)
//!
//! ## Quickstart
//!
//! ```
//! use zoom_analysis::pipeline::{Analyzer, AnalyzerConfig};
//! use zoom_analysis::PacketSink;
//! use zoom_wire::pcap::LinkType;
//!
//! let config = AnalyzerConfig::builder()
//!     .campus("10.8.0.0/16")
//!     .build()
//!     .expect("valid config");
//! let mut analyzer = Analyzer::new(config);
//! // feed records: analyzer.push(record.ts_nanos, &record.data, LinkType::Ethernet)?;
//! let report = analyzer.finish()?;
//! assert_eq!(report.summary.zoom_packets, 0);
//! # Ok::<(), zoom_analysis::Error>(())
//! ```

#![warn(missing_docs)]

pub mod classify;
pub mod dist;
pub mod engine;
pub mod entropy;
pub mod error;
pub mod features;
pub mod fxhash;
pub mod meeting;
pub mod metrics;
pub mod obs;
pub mod packet;
pub mod parallel;
pub mod pipeline;
pub mod report;
pub mod sink;
pub mod stats;
pub mod stream;

pub use error::Error;
pub use sink::PacketSink;
