//! Small statistics toolkit: CDFs, time bins, and correlation.
//!
//! The campus study (§6.2) reports its metrics as per-media-type CDFs over
//! one-second bins (Fig. 15) and tests for (absence of) correlation
//! between jitter and the other metrics (Fig. 16); these helpers produce
//! exactly those artifacts.

/// A sample collection with CDF/percentile queries.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Empty collection.
    pub fn new() -> Samples {
        Samples::default()
    }

    /// Add one sample.
    pub fn push(&mut self, v: f64) {
        if v.is_finite() {
            self.values.push(v);
            self.sorted = false;
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw values (unordered).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values.sort_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// Mean, or 0 for an empty collection.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank; 0 for empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = ((self.values.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        self.values[idx]
    }

    /// Median.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Fraction of samples ≤ `x`.
    pub fn cdf_at(&mut self, x: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.values.partition_point(|&v| v <= x);
        n as f64 / self.values.len() as f64
    }

    /// An `n`-point CDF as (value, cumulative-fraction) pairs, evenly
    /// spaced in rank — ready for plotting (Fig. 15).
    pub fn cdf_points(&mut self, n: usize) -> Vec<(f64, f64)> {
        if self.values.is_empty() || n == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let len = self.values.len();
        (1..=n)
            .map(|i| {
                let frac = i as f64 / n as f64;
                let idx = ((len as f64 * frac).ceil() as usize).clamp(1, len) - 1;
                (self.values[idx], frac)
            })
            .collect()
    }
}

/// Pearson correlation coefficient of paired samples; 0 when degenerate.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return 0.0;
    }
    let mx = xs[..n].iter().sum::<f64>() / n as f64;
    let my = ys[..n].iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

/// Fixed-width time bins accumulating a numeric value (bytes, packets...).
///
/// Bins are indexed from time zero; `add` ignores samples past `end`.
#[derive(Debug, Clone)]
pub struct TimeBins {
    width_nanos: u64,
    bins: Vec<f64>,
}

impl TimeBins {
    /// Bins of `width_nanos` covering `[0, end_nanos)`.
    pub fn new(width_nanos: u64, end_nanos: u64) -> TimeBins {
        assert!(width_nanos > 0, "bin width must be positive");
        let n = end_nanos.div_ceil(width_nanos) as usize;
        TimeBins {
            width_nanos,
            bins: vec![0.0; n],
        }
    }

    /// Add `value` at time `t`.
    pub fn add(&mut self, t: u64, value: f64) {
        let idx = (t / self.width_nanos) as usize;
        if let Some(b) = self.bins.get_mut(idx) {
            *b += value;
        }
    }

    /// Bin contents.
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Bin width.
    pub fn width_nanos(&self) -> u64 {
        self.width_nanos
    }

    /// Iterate `(bin_start_nanos, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i as u64 * self.width_nanos, v))
    }

    /// Rates per second: value / bin-width-in-seconds.
    pub fn rates(&self) -> Vec<f64> {
        let secs = self.width_nanos as f64 / 1e9;
        self.bins.iter().map(|v| v / secs).collect()
    }
}

/// Sparse fixed-width time bins — for long-lived streams whose start/end
/// are not known up front.
#[derive(Debug, Clone)]
pub struct SparseBins {
    width_nanos: u64,
    bins: std::collections::HashMap<u64, f64>,
}

impl SparseBins {
    /// Bins of the given width.
    pub fn new(width_nanos: u64) -> SparseBins {
        assert!(width_nanos > 0, "bin width must be positive");
        SparseBins {
            width_nanos,
            bins: std::collections::HashMap::new(),
        }
    }

    /// One-second bins (the paper's granularity).
    pub fn per_second() -> SparseBins {
        SparseBins::new(1_000_000_000)
    }

    /// Add `value` at time `t`.
    pub fn add(&mut self, t: u64, value: f64) {
        *self.bins.entry(t / self.width_nanos).or_insert(0.0) += value;
    }

    /// Number of non-empty bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True when no bins are populated.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// `(bin_start_nanos, value)` pairs sorted by time.
    pub fn sorted(&self) -> Vec<(u64, f64)> {
        let mut v: Vec<(u64, f64)> = self
            .bins
            .iter()
            .map(|(&i, &val)| (i * self.width_nanos, val))
            .collect();
        v.sort_unstable_by_key(|&(t, _)| t);
        v
    }

    /// Per-second rates of the populated bins (value / bin width), in
    /// time order — deterministic, unlike `HashMap` iteration, so sample
    /// sets compare equal across runs and across the sharded merge.
    pub fn rate_samples(&self) -> Vec<f64> {
        let secs = self.width_nanos as f64 / 1e9;
        self.sorted().into_iter().map(|(_, v)| v / secs).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_bins_accumulate() {
        let mut b = SparseBins::per_second();
        b.add(100, 1.0);
        b.add(999_999_999, 2.0);
        b.add(5_000_000_000, 4.0);
        assert_eq!(b.len(), 2);
        assert_eq!(b.sorted(), vec![(0, 3.0), (5_000_000_000, 4.0)]);
        let mut rates = b.rate_samples();
        rates.sort_by(f64::total_cmp);
        assert_eq!(rates, vec![3.0, 4.0]);
        assert!(!b.is_empty());
    }

    #[test]
    fn quantiles_and_median() {
        let mut s = Samples::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.push(v);
        }
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn cdf_at_boundaries() {
        let mut s = Samples::new();
        for v in 1..=10 {
            s.push(f64::from(v));
        }
        assert_eq!(s.cdf_at(0.0), 0.0);
        assert_eq!(s.cdf_at(5.0), 0.5);
        assert_eq!(s.cdf_at(10.0), 1.0);
        assert_eq!(s.cdf_at(100.0), 1.0);
    }

    #[test]
    fn cdf_points_monotone() {
        let mut s = Samples::new();
        for v in [9.0, 2.0, 7.0, 7.0, 1.0, 3.0] {
            s.push(v);
        }
        let pts = s.cdf_points(4);
        assert_eq!(pts.len(), 4);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn nan_and_inf_ignored() {
        let mut s = Samples::new();
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(1.0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn pearson_perfect_and_absent() {
        let xs: Vec<f64> = (0..100).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-9);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-9);
        // Orthogonal square wave vs ramp over a full period: ~0.
        let ws: Vec<f64> = (0..100).map(|i| f64::from(i % 2)).collect();
        assert!(pearson(&xs, &ws).abs() < 0.05);
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn time_bins_accumulate_and_rate() {
        let mut b = TimeBins::new(1_000_000_000, 3_000_000_000);
        b.add(0, 10.0);
        b.add(999_999_999, 5.0);
        b.add(1_000_000_000, 7.0);
        b.add(5_000_000_000, 100.0); // beyond end: dropped
        assert_eq!(b.bins(), &[15.0, 7.0, 0.0]);
        assert_eq!(b.rates(), vec![15.0, 7.0, 0.0]);
        let pairs: Vec<_> = b.iter().collect();
        assert_eq!(pairs[1], (1_000_000_000, 7.0));
    }
}
