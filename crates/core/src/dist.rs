//! Merge-node checkpoint/restore for the distributed shard tier.
//!
//! The merge node is deliberately **stateless on disk about analysis
//! internals**: instead of serializing engine state (per-stream jitter
//! filters, STUN registries, open windows), a checkpoint records only
//! *how much output has already been emitted* — the count of closed
//! windows written so far plus the registered worker set. Restore then
//! replays the same inputs (fragment files, or the `--journal` spool in
//! listen mode) through a fresh engine and a [`WindowGate`] suppresses
//! the windows a previous incarnation already printed. Because the
//! whole pipeline is deterministic (pinned by the differential suites),
//! the rebuilt open windows are bit-for-bit the ones the crashed
//! process held, so a restart loses nothing and the final output is
//! byte-identical to an uninterrupted run
//! (`tests/distributed_differential.rs`; operator runbook in
//! `docs/DISTRIBUTED.md`).
//!
//! The on-disk format is a line-oriented text file (no JSON parser in
//! the std-only workspace):
//!
//! ```text
//! zoom-merge-checkpoint v1
//! windows_emitted 12
//! worker box-a 10240
//! worker box-b 9813
//! ```
//!
//! `worker` lines record each worker's label and how many of its
//! records the merge had consumed at checkpoint time — restore uses the
//! labels to refuse a mismatched input set, and operators use the
//! counts to see how far each worker had shipped.

use std::fmt;
use std::io;
use std::path::Path;

/// Errors from the merge side of the distributed tier.
///
/// Marked `#[non_exhaustive]` like [`crate::Error`]: the merge service
/// is expected to grow failure modes (auth, backpressure policies)
/// without breaking downstream matches. The CLI maps each variant to a
/// distinct exit code (see `zoom-tools --help` / `docs/DISTRIBUTED.md`).
#[derive(Debug)]
#[non_exhaustive]
pub enum MergeError {
    /// An I/O failure reading inputs or writing the checkpoint.
    Io {
        /// What the merge node was doing (path or peer).
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A fragment stream violated the wire protocol.
    Protocol(String),
    /// The checkpoint file is unreadable or malformed.
    Checkpoint(String),
    /// Restore inputs don't match the checkpointed worker set.
    Mismatch(String),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Io { context, source } => write!(f, "{context}: {source}"),
            MergeError::Protocol(m) => write!(f, "fragment protocol: {m}"),
            MergeError::Checkpoint(m) => write!(f, "checkpoint: {m}"),
            MergeError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for MergeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MergeError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One worker's entry in a checkpoint: its Hello label and how many of
/// its records the merge had consumed when the checkpoint was cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerMark {
    /// The worker's label.
    pub label: String,
    /// Records consumed from this worker so far.
    pub consumed: u64,
}

/// A merge-node checkpoint: everything a restarted merge needs to
/// resume deterministic replay without re-emitting output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeCheckpoint {
    /// Closed windows already written by the previous incarnation.
    pub windows_emitted: u64,
    /// The registered worker set at checkpoint time.
    pub workers: Vec<WorkerMark>,
}

const HEADER: &str = "zoom-merge-checkpoint v1";

impl MergeCheckpoint {
    /// Renders the line-oriented text form.
    pub fn serialize(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(64 + self.workers.len() * 32);
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "windows_emitted {}", self.windows_emitted);
        for w in &self.workers {
            let _ = writeln!(out, "worker {} {}", w.label, w.consumed);
        }
        out
    }

    /// Parses the text form, rejecting unknown headers and torn lines.
    pub fn parse(text: &str) -> Result<MergeCheckpoint, MergeError> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(HEADER) {
            return Err(MergeError::Checkpoint(format!(
                "missing header {HEADER:?} (not a merge checkpoint?)"
            )));
        }
        let mut cp = MergeCheckpoint::default();
        let mut saw_windows = false;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(v) = line.strip_prefix("windows_emitted ") {
                cp.windows_emitted = v.trim().parse().map_err(|_| {
                    MergeError::Checkpoint(format!("bad windows_emitted value {v:?}"))
                })?;
                saw_windows = true;
            } else if let Some(rest) = line.strip_prefix("worker ") {
                // The label may contain spaces only if quoted-free labels
                // forbid them; worker labels come from Hello frames the
                // emitter controls, so split at the *last* space.
                let (label, count) = rest.rsplit_once(' ').ok_or_else(|| {
                    MergeError::Checkpoint(format!("bad worker line {line:?}"))
                })?;
                cp.workers.push(WorkerMark {
                    label: label.trim().to_string(),
                    consumed: count.trim().parse().map_err(|_| {
                        MergeError::Checkpoint(format!("bad worker count in {line:?}"))
                    })?,
                });
            } else {
                return Err(MergeError::Checkpoint(format!("unknown line {line:?}")));
            }
        }
        if !saw_windows {
            return Err(MergeError::Checkpoint(
                "missing windows_emitted line (torn write?)".into(),
            ));
        }
        Ok(cp)
    }

    /// Writes the checkpoint atomically: a temp file in the same
    /// directory, flushed, then renamed over `path` — a crash mid-write
    /// leaves the previous checkpoint intact, never a torn one.
    pub fn save(&self, path: &Path) -> Result<(), MergeError> {
        let tmp = path.with_extension("tmp");
        let ctx = |p: &Path| p.display().to_string();
        std::fs::write(&tmp, self.serialize()).map_err(|e| MergeError::Io {
            context: ctx(&tmp),
            source: e,
        })?;
        std::fs::rename(&tmp, path).map_err(|e| MergeError::Io {
            context: ctx(path),
            source: e,
        })
    }

    /// Loads and parses a checkpoint file.
    pub fn load(path: &Path) -> Result<MergeCheckpoint, MergeError> {
        let text = std::fs::read_to_string(path).map_err(|e| MergeError::Io {
            context: path.display().to_string(),
            source: e,
        })?;
        MergeCheckpoint::parse(&text)
    }

    /// Verifies that a restore run sees the same worker set the
    /// checkpoint recorded (order-insensitive; counts may grow).
    pub fn check_workers(&self, labels: &[String]) -> Result<(), MergeError> {
        let mut want: Vec<&str> = self.workers.iter().map(|w| w.label.as_str()).collect();
        let mut got: Vec<&str> = labels.iter().map(String::as_str).collect();
        want.sort_unstable();
        got.sort_unstable();
        if want != got {
            return Err(MergeError::Mismatch(format!(
                "checkpoint workers {want:?} != restore inputs {got:?}"
            )));
        }
        Ok(())
    }
}

/// Suppresses the first `n` window emissions during a restore replay.
///
/// The engine re-closes every window deterministically; the gate admits
/// a window only once the already-emitted prefix has been skipped, so
/// output across crash + restore concatenates to exactly the
/// uninterrupted run's output.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowGate {
    suppress: u64,
    emitted: u64,
}

impl WindowGate {
    /// A gate that suppresses the first `suppress` windows.
    pub fn resume_from(cp: &MergeCheckpoint) -> WindowGate {
        WindowGate {
            suppress: cp.windows_emitted,
            emitted: 0,
        }
    }

    /// Called once per closed window, in order. Returns whether this
    /// window should be written (false while replaying the prefix).
    pub fn admit(&mut self) -> bool {
        self.emitted += 1;
        self.emitted > self.suppress
    }

    /// Total windows seen (admitted or suppressed) — the value to
    /// checkpoint as `windows_emitted`.
    pub fn windows_seen(&self) -> u64 {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MergeCheckpoint {
        MergeCheckpoint {
            windows_emitted: 12,
            workers: vec![
                WorkerMark {
                    label: "box-a".into(),
                    consumed: 10_240,
                },
                WorkerMark {
                    label: "box-b".into(),
                    consumed: 9_813,
                },
            ],
        }
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let cp = sample();
        let text = cp.serialize();
        assert!(text.starts_with("zoom-merge-checkpoint v1\n"));
        assert_eq!(MergeCheckpoint::parse(&text).unwrap(), cp);
    }

    #[test]
    fn parse_rejects_garbage_and_torn_files() {
        assert!(MergeCheckpoint::parse("").is_err());
        assert!(MergeCheckpoint::parse("something else\n").is_err());
        assert!(MergeCheckpoint::parse("zoom-merge-checkpoint v1\n").is_err());
        assert!(
            MergeCheckpoint::parse("zoom-merge-checkpoint v1\nwindows_emitted x\n").is_err()
        );
        assert!(MergeCheckpoint::parse(
            "zoom-merge-checkpoint v1\nwindows_emitted 1\nworker only-label\n"
        )
        .is_err());
        assert!(MergeCheckpoint::parse(
            "zoom-merge-checkpoint v1\nwindows_emitted 1\nmystery line\n"
        )
        .is_err());
    }

    #[test]
    fn save_load_is_atomic_over_existing_file() {
        let dir = std::env::temp_dir().join(format!("zoom-dist-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("merge.ckpt");
        let cp = sample();
        cp.save(&path).unwrap();
        assert_eq!(MergeCheckpoint::load(&path).unwrap(), cp);
        let mut cp2 = cp.clone();
        cp2.windows_emitted = 20;
        cp2.save(&path).unwrap();
        assert_eq!(MergeCheckpoint::load(&path).unwrap().windows_emitted, 20);
        assert!(!path.with_extension("tmp").exists(), "temp file renamed away");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn worker_set_check_is_order_insensitive() {
        let cp = sample();
        cp.check_workers(&["box-b".into(), "box-a".into()]).unwrap();
        let err = cp.check_workers(&["box-a".into()]).unwrap_err();
        assert!(matches!(err, MergeError::Mismatch(_)));
        assert!(err.to_string().contains("box-b"));
    }

    #[test]
    fn window_gate_suppresses_exactly_the_prefix() {
        let cp = MergeCheckpoint {
            windows_emitted: 3,
            workers: vec![],
        };
        let mut gate = WindowGate::resume_from(&cp);
        let admitted: Vec<bool> = (0..6).map(|_| gate.admit()).collect();
        assert_eq!(admitted, vec![false, false, false, true, true, true]);
        assert_eq!(gate.windows_seen(), 6);
    }
}
