//! A small vendored FxHash-style hasher for the per-packet state tables.
//!
//! Every packet touches several `HashMap`s (flows, streams, the STUN
//! registry, RTT candidates); with std's default SipHash the hashing
//! itself is a measurable slice of the per-packet cost floor. Keys here
//! are short, fixed-shape, and attacker-free (they come from our own
//! dissector over traces the operator chose to analyze), so a fast
//! non-cryptographic hash is appropriate. This is the classic
//! multiply-rotate construction used by the Firefox/rustc "FxHash"
//! (public domain algorithm), re-implemented locally because the build
//! environment is offline — no new crates.io dependencies.
//!
//! Determinism of *reports* never depends on hasher iteration order:
//! every emit site sorts (or walks a creation-order index) first — see
//! `report.rs`'s ordering test and the `StreamTracker` order vector.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiply constant from the original FxHash: a 64-bit truncation of
/// π's fractional bits, chosen for good avalanche on short keys.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A [`HashMap`] keyed with [`FxHasher`] — drop-in for std's, minus
/// SipHash's per-lookup cost.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A [`HashSet`] hashed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` producing [`FxHasher`]s (zero-sized, no per-map seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The rustc/Firefox multiply-rotate hasher: one rotate, one xor, one
/// multiply per 8 bytes of input.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while let Some(chunk) = bytes.first_chunk::<8>() {
            self.add_to_hash(u64::from_le_bytes(*chunk));
            bytes = &bytes[8..];
        }
        if let Some(chunk) = bytes.first_chunk::<4>() {
            self.add_to_hash(u64::from(u32::from_le_bytes(*chunk)));
            bytes = &bytes[4..];
        }
        if let Some(chunk) = bytes.first_chunk::<2>() {
            self.add_to_hash(u64::from(u16::from_le_bytes(*chunk)));
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        // BuildHasherDefault carries no random per-map seed: the same key
        // hashes identically in every table and every process.
        let k = (0x0a08_0001_u32, 50_000u16, 8801u16);
        assert_eq!(hash_of(&k), hash_of(&k));
        assert_eq!(hash_of(&"flow"), hash_of(&"flow"));
    }

    #[test]
    fn nearby_keys_disperse() {
        // Sequential ports/addresses (the common trace shape) must not
        // collapse onto a few buckets.
        let mut low_bits = HashSet::new();
        for port in 0u16..1024 {
            low_bits.insert(hash_of(&port) & 0xFF);
        }
        assert!(low_bits.len() > 200, "only {} distinct", low_bits.len());
    }

    #[test]
    fn write_paths_cover_all_tails() {
        // 8-, 4-, 2-, and 1-byte tails all feed the state. (All-zero
        // input is FxHash's fixed point, so start the bytes at 1.)
        for len in 0..=17 {
            let bytes: Vec<u8> = (1..=len as u8).collect();
            let mut a = FxHasher::default();
            a.write(&bytes);
            let mut b = FxHasher::default();
            b.write(&bytes);
            assert_eq!(a.finish(), b.finish());
            if len > 0 {
                let mut empty = FxHasher::default();
                empty.write(&[]);
                assert_ne!(a.finish(), empty.finish(), "len {len}");
            }
        }
    }

    #[test]
    fn fx_map_behaves_like_std_map() {
        let mut fx: FxHashMap<u64, u64> = FxHashMap::default();
        let mut std_map = HashMap::new();
        for i in 0..1000u64 {
            fx.insert(i * 7, i);
            std_map.insert(i * 7, i);
        }
        assert_eq!(fx.len(), std_map.len());
        for (k, v) in &std_map {
            assert_eq!(fx.get(k), Some(v));
        }
    }
}
