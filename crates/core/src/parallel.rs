//! Sharded parallel analysis pipeline with sequential-identical merge
//! semantics.
//!
//! The paper's campus study processes a 12-hour, 1.8-billion-packet trace
//! (§6.2); the sequential [`Analyzer`] consumes records one at a time
//! through a single state machine. Everything keyed by 5-tuple or
//! (5-tuple, SSRC) partitions cleanly across flows, so records are routed
//! to N worker shards by a stable FNV-1a hash of the *canonical*
//! (direction-independent) 5-tuple, one full `Analyzer` per shard, over
//! `std::thread` and bounded `std::sync::mpsc` channels — no external
//! dependencies.
//!
//! Since the introduction of the streaming engine, [`ParallelAnalyzer`]
//! is a thin batch front-end over [`StreamingEngine`] with windowing and
//! eviction disabled: the engine owns the routing (a single header
//! `zoom_wire::dissect::peek` whose offsets ride to the shard, so each
//! packet's Ethernet/IP/UDP headers are parsed exactly once), the
//! event-log replay of the cross-flow trackers (meeting grouping §4.3,
//! RTP-copy RTT §5.3), and the authoritative STUN registry — see
//! [`crate::engine`] for the full design. The result remains
//! **byte-identical** to the sequential path for any shard count;
//! `tests/parallel_differential.rs` and `tests/streaming_differential.rs`
//! assert exactly that.
//!
//! [`finish`]: ParallelAnalyzer::finish

use crate::engine::{EngineConfig, EngineOutput, StreamingEngine};
use crate::error::Error;
use crate::meeting::MeetingReport;
use crate::metrics::latency::RttSample;
use crate::obs::{MetricsSnapshot, PipelineMetrics};
use crate::pipeline::{Analyzer, AnalyzerConfig, MediaSamples, TraceSummary};
use crate::report::AnalysisReport;
use crate::sink::PacketSink;
use zoom_wire::handoff::RecordBatch;
use zoom_wire::pcap::LinkType;
use zoom_wire::zoom::MediaType;

/// A drop-in parallel front-end for [`Analyzer`]: same accessor surface,
/// N-way sharded processing, sequential-identical results.
///
/// ```no_run
/// use zoom_analysis::parallel::ParallelAnalyzer;
/// use zoom_analysis::pipeline::AnalyzerConfig;
/// use zoom_wire::pcap::LinkType;
///
/// let mut analyzer = ParallelAnalyzer::new(AnalyzerConfig::default(), 8);
/// // feed records: analyzer.push(record.ts_nanos, &record.data, LinkType::Ethernet)?;
/// let report = analyzer.finish().expect("no shard failed");
/// println!("{}", report.to_json());
/// ```
pub struct ParallelAnalyzer {
    engine: Option<StreamingEngine>,
    output: Option<EngineOutput>,
    shard_count: usize,
    /// First failure observed while feeding or draining, kept so later
    /// calls keep reporting it.
    error_msg: Option<String>,
}

impl ParallelAnalyzer {
    /// Spawn `shards` worker threads (at least one), each owning a
    /// shard-mode [`Analyzer`] with this configuration.
    pub fn new(config: AnalyzerConfig, shards: usize) -> ParallelAnalyzer {
        let engine = StreamingEngine::new(EngineConfig {
            analyzer: config,
            shards,
            window: None,
            idle_timeout: None,
            qoe: None,
        })
        .expect("batch engine config has nothing to validate");
        ParallelAnalyzer {
            shard_count: engine.shards(),
            engine: Some(engine),
            output: None,
            error_msg: None,
        }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.shard_count
    }

    /// Shared handle to the pipeline-wide observability registry (the
    /// router's, shared by every shard), for wiring capture-side source
    /// accounting or a metrics endpoint to the same registry.
    ///
    /// # Panics
    /// Panics if called after the engine was drained and the drain
    /// failed — no registry survives a shard panic.
    pub fn metrics_handle(&self) -> std::sync::Arc<PipelineMetrics> {
        match (&self.engine, &self.output) {
            (Some(engine), _) => engine.metrics_handle(),
            (None, Some(out)) => out.analyzer.metrics_handle(),
            (None, None) => panic!("metrics_handle called after a failed drain"),
        }
    }

    /// Route one packet from a borrowed byte slice — the zero-copy path
    /// behind [`PacketSink::push`], for
    /// [`zoom_wire::pcap::Reader::read_into`] /
    /// [`zoom_wire::pcap::SliceReader`] loops.
    ///
    /// # Panics
    /// Panics if called after [`ParallelAnalyzer::finish`] — the workers
    /// have already been joined at that point.
    pub fn process_packet(&mut self, ts_nanos: u64, data: &[u8], link: LinkType) {
        let engine = self
            .engine
            .as_mut()
            .expect("process_packet called after finish()");
        if let Err(e) = engine.push_packet(ts_nanos, data, link) {
            if self.error_msg.is_none() {
                self.error_msg = Some(e.to_string());
            }
        }
    }

    /// Flush all batches, join the workers, merge shard state, and return
    /// the owned end-of-trace report. Idempotent: further calls (and the
    /// accessors below) reuse the already-merged state.
    pub fn finish(&mut self) -> Result<AnalysisReport, Error> {
        self.ensure_drained()?;
        Ok(self.output.as_ref().expect("drained above").report.clone())
    }

    /// Consume the pipeline, returning the merged analyzer.
    ///
    /// # Panics
    /// Panics if a shard worker panicked; call
    /// [`ParallelAnalyzer::finish`] first to handle that as an error.
    pub fn into_analyzer(mut self) -> Analyzer {
        if let Err(e) = self.ensure_drained() {
            panic!("parallel analysis failed: {e}");
        }
        self.output.take().expect("drained above").analyzer
    }

    fn ensure_drained(&mut self) -> Result<(), Error> {
        if self.output.is_some() {
            return Ok(());
        }
        if let Some(msg) = &self.error_msg {
            return Err(Error::ShardPanic(msg.clone()));
        }
        let engine = self.engine.take().expect("engine alive until drained");
        match engine.drain() {
            Ok(out) => {
                self.output = Some(out);
                Ok(())
            }
            Err(e) => {
                self.error_msg = Some(e.to_string());
                Err(e)
            }
        }
    }

    /// The merged analyzer, draining first if needed.
    ///
    /// # Panics
    /// Panics if a shard worker panicked (the accessors below share this
    /// behavior); use [`ParallelAnalyzer::finish`] to handle it as an
    /// error instead.
    fn merged(&mut self) -> &Analyzer {
        if let Err(e) = self.ensure_drained() {
            panic!("parallel analysis failed: {e}");
        }
        &self.output.as_ref().expect("drained above").analyzer
    }

    // ---- the sequential accessor surface (each finishes if needed) ----

    /// Trace summary (Table 6) — identical to the sequential analyzer's.
    pub fn summary(&mut self) -> TraceSummary {
        self.merged().summary()
    }

    /// Meeting reports (§4.3) — identical to the sequential analyzer's.
    pub fn meetings(&mut self) -> Vec<MeetingReport> {
        self.merged().meetings()
    }

    /// One-second metric samples for one media type (Fig. 15's inputs).
    pub fn media_samples(&mut self, media: MediaType) -> MediaSamples {
        self.merged().media_samples(media)
    }

    /// Joined per-(stream, second) (jitter, bit rate, fps) video samples
    /// — the scatter data of Fig. 16.
    pub fn fig16_samples(&mut self) -> Vec<(f64, f64, f64)> {
        self.merged().fig16_samples()
    }

    /// RTP-copy RTT samples (§5.3 method 1).
    pub fn rtp_rtt_samples(&mut self) -> &[RttSample] {
        self.merged().rtp_rtt_samples()
    }

    /// TCP control-connection RTT samples (§5.3 method 2).
    pub fn tcp_rtt_samples(&mut self) -> &[RttSample] {
        self.merged().tcp_rtt_samples()
    }
}

impl PacketSink for ParallelAnalyzer {
    fn push(&mut self, ts_nanos: u64, data: &[u8], link: LinkType) -> Result<(), Error> {
        self.process_packet(ts_nanos, data, link);
        match &self.error_msg {
            Some(msg) => Err(Error::ShardPanic(msg.clone())),
            None => Ok(()),
        }
    }

    /// Batched routing: the whole [`RecordBatch`] goes through
    /// [`StreamingEngine::push_batch_records`] — one type-sorted header
    /// pass, batched flow-key hashing, then in-order shard dispatch.
    ///
    /// # Panics
    /// Panics if called after [`ParallelAnalyzer::finish`], like
    /// [`ParallelAnalyzer::process_packet`].
    fn push_batch(&mut self, batch: &RecordBatch, link: LinkType) -> Result<(), Error> {
        let engine = self
            .engine
            .as_mut()
            .expect("push_batch called after finish()");
        if let Err(e) = engine.push_batch_records(batch, link) {
            if self.error_msg.is_none() {
                self.error_msg = Some(e.to_string());
            }
        }
        match &self.error_msg {
            Some(msg) => Err(Error::ShardPanic(msg.clone())),
            None => Ok(()),
        }
    }

    fn metrics(&self) -> MetricsSnapshot {
        match (&self.engine, &self.output) {
            (Some(engine), _) => engine.metrics(),
            (None, Some(out)) => out.analyzer.metrics.snapshot(),
            // Drain failed: no registry survived; report an empty one.
            (None, None) => PipelineMetrics::new(0).snapshot(),
        }
    }

    fn note_pcap_truncated(&mut self, records: u64) {
        if let Some(engine) = self.engine.as_mut() {
            engine.note_pcap_truncated(records);
        }
    }

    fn note_pcap_progress(&mut self, records: u64, bytes: u64) {
        if let Some(engine) = self.engine.as_mut() {
            engine.note_pcap_progress(records, bytes);
        }
    }

    fn finish(mut self) -> Result<AnalysisReport, Error> {
        ParallelAnalyzer::finish(&mut self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use zoom_wire::pcap::Record;
    use zoom_wire::compose;
    use zoom_wire::rtp;
    use zoom_wire::zoom;

    const MS: u64 = 1_000_000;

    /// Test shorthand for the PacketSink ingest path.
    fn feed<S: PacketSink>(sink: &mut S, record: &Record) {
        sink.push(record.ts_nanos, &record.data, LinkType::Ethernet)
            .unwrap();
    }

    fn media_record(ts: u64, up: bool, ssrc: u32, seq: u16, rtp_ts: u32) -> Record {
        let payload = zoom::Builder {
            sfu: Some(zoom::SfuEncapRepr {
                encap_type: zoom::SFU_TYPE_MEDIA,
                sequence: seq,
                direction: if up {
                    zoom::DIR_TO_SFU
                } else {
                    zoom::DIR_FROM_SFU
                },
            }),
            media: zoom::MediaEncapRepr {
                media_type: zoom::MediaType::Video,
                sequence: seq,
                timestamp: (ts / 1_000_000) as u32,
                frame_sequence: Some(seq / 2),
                packets_in_frame: Some(1),
            },
            rtp: Some(rtp::Repr {
                marker: true,
                payload_type: 98,
                sequence_number: seq,
                timestamp: rtp_ts,
                ssrc,
                csrc_count: 0,
                has_extension: false,
            }),
            payload: vec![0xA5; 700],
        }
        .build();
        let data = if up {
            compose::udp_ipv4_ethernet(
                Ipv4Addr::new(10, 8, 0, 1),
                Ipv4Addr::new(170, 114, 0, 1),
                50_000,
                8801,
                &payload,
            )
        } else {
            compose::udp_ipv4_ethernet(
                Ipv4Addr::new(170, 114, 0, 1),
                Ipv4Addr::new(10, 8, 0, 2),
                8801,
                51_000,
                &payload,
            )
        };
        Record::full(ts, data)
    }

    #[test]
    fn matches_sequential_on_stream_copies() {
        // The pipeline.rs "copies group into one meeting" scenario, run
        // through both paths: the uplink and downlink flows land on
        // different shards, so equality here exercises the event replay.
        let records: Vec<Record> = (0..100u64)
            .flat_map(|i| {
                let seq = i as u16 + 1;
                let rtp_ts = 1_000 + (i as u32) * 3_000;
                [
                    media_record(i * 33 * MS, true, 0x21, seq, rtp_ts),
                    media_record(i * 33 * MS + 40 * MS, false, 0x21, seq, rtp_ts),
                ]
            })
            .collect();

        let mut sequential = Analyzer::new(AnalyzerConfig::default());
        for r in &records {
            feed(&mut sequential, r);
        }
        for shards in [1usize, 2, 4] {
            let mut par = ParallelAnalyzer::new(AnalyzerConfig::default(), shards);
            for r in &records {
                feed(&mut par, r);
            }
            assert_eq!(par.summary(), sequential.summary(), "{shards} shards");
            assert_eq!(par.meetings(), sequential.meetings(), "{shards} shards");
            assert_eq!(
                par.rtp_rtt_samples(),
                sequential.rtp_rtt_samples(),
                "{shards} shards"
            );
            let s = par.media_samples(MediaType::Video);
            let q = sequential.media_samples(MediaType::Video);
            assert_eq!(s.bitrate_mbps.values(), q.bitrate_mbps.values());
            assert_eq!(s.fps.values(), q.fps.values());
            assert_eq!(s.frame_size.values(), q.frame_size.values());
            assert_eq!(s.jitter_ms.values(), q.jitter_ms.values());
        }
    }

    #[test]
    fn finish_is_idempotent_and_into_analyzer_matches() {
        let mut par = ParallelAnalyzer::new(AnalyzerConfig::default(), 2);
        for i in 0..10u64 {
            feed(&mut par, &media_record(i * MS, true, 0x9, i as u16, 100 + i as u32));
        }
        // With `PacketSink` in scope the by-value trait `finish` would
        // win resolution; name the idempotent inherent one explicitly.
        let first = ParallelAnalyzer::finish(&mut par).expect("no shard failure");
        let second = ParallelAnalyzer::finish(&mut par).expect("still no shard failure");
        assert_eq!(first.to_json(), second.to_json());
        let summary = par.summary();
        let merged = par.into_analyzer();
        assert_eq!(merged.summary(), summary);
        assert_eq!(merged.report().to_json(), first.to_json());
    }

    #[test]
    fn undissectable_spread_and_counted() {
        let mut par = ParallelAnalyzer::new(AnalyzerConfig::default(), 3);
        for i in 0..30u64 {
            feed(&mut par, &Record::full(i, vec![1, 2, 3]));
        }
        let report = par.finish().expect("no shard failure");
        assert_eq!(report.undissectable, 30);
        assert_eq!(report.summary.total_packets, 30);
    }
}
