//! Sharded parallel analysis pipeline with sequential-identical merge
//! semantics.
//!
//! The paper's campus study processes a 12-hour, 1.8-billion-packet trace
//! (§6.2); the sequential [`Analyzer`] consumes records one at a time
//! through a single state machine. Everything keyed by 5-tuple or
//! (5-tuple, SSRC) — flow accounting, stream/sub-stream tracking, every
//! §5 per-stream estimator — partitions cleanly across flows, so
//! [`ParallelAnalyzer`] routes records to N worker shards by a stable
//! FNV-1a hash of the *canonical* (direction-independent) 5-tuple and
//! runs one full `Analyzer` per shard over `std::thread` and bounded
//! `std::sync::mpsc` channels. No external dependencies are involved.
//!
//! Two trackers see across flows and cannot shard:
//!
//! * the **RTP-copy RTT estimator** (§5.3 method 1) matches an uplink
//!   packet against its SFU fan-out copy on a *different* flow;
//! * **meeting grouping** (§4.3) compares each new stream against
//!   candidate streams on other flows.
//!
//! Shard analyzers therefore run in *event-log mode*: they perform all
//! shard-local analysis but append a compact `MediaEvent` per RTP
//! packet instead of feeding those two trackers. At [`finish`] the event
//! logs are merged by router-assigned global sequence number and
//! replayed — in exactly the order the sequential analyzer would have
//! seen them — through a fresh grouper and RTT estimator.
//!
//! The third piece of cross-flow state is the STUN endpoint registry that
//! drives P2P flow recognition (§4.1). The router observes every record
//! in order, so it keeps the one authoritative registry (applying the
//! same insert/refresh rules as the sequential analyzer) and ships its
//! per-record verdict to the owning shard alongside the record; shard
//! registries never need to agree.
//!
//! The result is **byte-identical** to the sequential path for any shard
//! count — `TraceSummary`, flow stats, per-stream metrics, meeting
//! reports, and RTT samples all compare equal. The differential tests in
//! `tests/parallel_differential.rs` assert exactly that for 1, 2, and 8
//! shards.
//!
//! [`finish`]: ParallelAnalyzer::finish

use crate::meeting::{CandidateState, MeetingGrouper, MeetingReport};
use crate::metrics::latency::{RtpRttEstimator, RttSample};
use crate::pipeline::{
    resolve_stream_endpoints, Analyzer, AnalyzerConfig, MediaEvent, MediaSamples, TraceSummary,
};
use crate::stream::StreamKey;
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::thread::JoinHandle;
use zoom_wire::dissect::peek;
use zoom_wire::flow::{Endpoint, FiveTuple};
use zoom_wire::pcap::{LinkType, Record};
use zoom_wire::zoom::MediaType;

/// Records per message sent to a shard. Batching amortizes the channel
/// synchronization cost over many packets.
const BATCH: usize = 256;

/// Bounded channel depth, in batches. Keeps memory bounded and applies
/// backpressure to the router when a shard falls behind.
const CHANNEL_DEPTH: usize = 4;

/// One message to a worker: (global sequence number, record, link type,
/// router's P2P verdict for the record).
type Msg = (u64, Record, LinkType, bool);

struct Worker {
    tx: Option<SyncSender<Vec<Msg>>>,
    batch: Vec<Msg>,
    handle: Option<JoinHandle<Analyzer>>,
}

/// A drop-in parallel front-end for [`Analyzer`]: same accessor surface,
/// N-way sharded processing, sequential-identical results.
///
/// ```no_run
/// use zoom_analysis::parallel::ParallelAnalyzer;
/// use zoom_analysis::pipeline::AnalyzerConfig;
/// use zoom_wire::pcap::LinkType;
///
/// let mut analyzer = ParallelAnalyzer::new(AnalyzerConfig::default(), 8);
/// // feed records: analyzer.process_record(&record, LinkType::Ethernet);
/// let summary = analyzer.summary(); // first accessor call joins + merges
/// ```
pub struct ParallelAnalyzer {
    config: AnalyzerConfig,
    shard_count: usize,
    /// The authoritative STUN endpoint registry (§4.1), maintained by the
    /// router with the sequential analyzer's exact insert/refresh rules.
    registry: HashMap<Endpoint, u64>,
    /// Next global sequence number.
    seq: u64,
    workers: Vec<Worker>,
    merged: Option<Analyzer>,
}

impl ParallelAnalyzer {
    /// Spawn `shards` worker threads (at least one), each owning a
    /// shard-mode [`Analyzer`] with this configuration.
    pub fn new(config: AnalyzerConfig, shards: usize) -> ParallelAnalyzer {
        let n = shards.max(1);
        let workers = (0..n)
            .map(|_| {
                let (tx, rx) = sync_channel::<Vec<Msg>>(CHANNEL_DEPTH);
                let cfg = config.clone();
                let handle = std::thread::spawn(move || {
                    let mut analyzer = Analyzer::new_sharded(cfg);
                    while let Ok(batch) = rx.recv() {
                        for (seq, record, link, hint) in batch {
                            analyzer.process_record_sharded(seq, &record, link, hint);
                        }
                    }
                    analyzer
                });
                Worker {
                    tx: Some(tx),
                    batch: Vec::with_capacity(BATCH),
                    handle: Some(handle),
                }
            })
            .collect();
        ParallelAnalyzer {
            config,
            shard_count: n,
            registry: HashMap::new(),
            seq: 0,
            workers,
            merged: None,
        }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.shard_count
    }

    /// Route one capture record to its shard.
    ///
    /// # Panics
    /// Panics if called after [`ParallelAnalyzer::finish`] — the workers
    /// have already been joined at that point.
    pub fn process_record(&mut self, record: &Record, link: LinkType) {
        assert!(
            self.merged.is_none(),
            "process_record called after finish()"
        );
        let (shard, hint) = self.route(record, link);
        let seq = self.seq;
        self.seq += 1;
        let w = &mut self.workers[shard];
        w.batch.push((seq, record.clone(), link, hint));
        if w.batch.len() >= BATCH {
            let batch = std::mem::replace(&mut w.batch, Vec::with_capacity(BATCH));
            // An Err means the worker panicked; surfaced on join.
            let _ = w.tx.as_ref().expect("sender alive before finish").send(batch);
        }
    }

    /// Pick the shard and P2P verdict for a record, mirroring the
    /// dissection and registry decisions the sequential analyzer makes.
    ///
    /// The router stays off the Zoom parse path: a header-only
    /// [`peek`] recovers the 5-tuple, the STUN gate is applied exactly as
    /// the dissector applies it, and the expensive Zoom-vs-opaque
    /// question is answered lazily — only when one of the flow's
    /// endpoints has a fresh registry entry, because only then does the
    /// classification change what the registry (refresh) and the shard
    /// (P2P verdict) observe.
    fn route(&mut self, record: &Record, link: LinkType) -> (usize, bool) {
        use zoom_wire::{stun, zoom};

        let n = self.shard_count;
        let Ok(p) = peek(&record.data, link) else {
            // Undissectable records only touch additive counters; spread
            // them round-robin.
            return ((self.seq % n as u64) as usize, false);
        };
        let ts = record.ts_nanos;
        let mut hint = false;
        'classify: {
            let Some(payload) = p.udp_payload else {
                break 'classify; // TCP: no registry interaction
            };
            // STUN gate, verbatim from the dissector: port 3478 or a
            // magic-cookie match, then a successful parse.
            if p.five_tuple.involves_port(stun::STUN_PORT) || stun::looks_like_stun(payload) {
                if let Ok(pkt) = stun::Packet::new_checked(payload) {
                    if stun::Repr::parse(&pkt).is_ok() {
                        // Register the non-3478 endpoint — §4.1's rule.
                        let client = if p.five_tuple.dst_port == stun::STUN_PORT {
                            p.five_tuple.src()
                        } else {
                            p.five_tuple.dst()
                        };
                        self.registry.insert(client, ts);
                        break 'classify;
                    }
                }
                // Gate matched but the parse failed: the dissector falls
                // through to the port-8801 / opaque branches; so do we.
            }
            // Non-STUN UDP. The sequential analyzer probes the registry
            // (refreshing on a hit) only for packets that do NOT parse as
            // Zoom server traffic. If neither endpoint has a fresh
            // registry entry, the probe is a no-op either way — skip the
            // Zoom parse entirely. Otherwise resolve the classification
            // so refresh semantics stay exact.
            if self.registry_has_fresh(ts, &p.five_tuple) {
                let opaque = !p.five_tuple.involves_port(zoom::ZOOM_SFU_PORT)
                    || zoom::parse(payload, zoom::Framing::Server).is_err();
                if opaque {
                    hint = self.probe_p2p(ts, &p.five_tuple);
                }
            }
        }
        (shard_of(&p.five_tuple, n), hint)
    }

    /// True when either endpoint of `flow` has a registry entry within
    /// the STUN timeout. Read-only — refresh happens in `probe_p2p`.
    fn registry_has_fresh(&self, now: u64, flow: &FiveTuple) -> bool {
        let timeout = self.config.stun_timeout_nanos;
        [flow.src(), flow.dst()].iter().any(|ep| {
            self.registry
                .get(ep)
                .is_some_and(|&last| now.saturating_sub(last) <= timeout)
        })
    }

    /// The sequential analyzer's `is_p2p_flow`, applied to the router's
    /// registry: check `[src, dst]` in order, refresh the first endpoint
    /// still inside the STUN timeout.
    fn probe_p2p(&mut self, now: u64, flow: &FiveTuple) -> bool {
        let timeout = self.config.stun_timeout_nanos;
        for ep in [flow.src(), flow.dst()] {
            if let Some(last) = self.registry.get_mut(&ep) {
                if now.saturating_sub(*last) <= timeout {
                    *last = now;
                    return true;
                }
            }
        }
        false
    }

    /// Flush all batches, join the workers, and merge shard state into a
    /// sequential-identical [`Analyzer`]. Idempotent: further calls (and
    /// the accessors below) return the already-merged analyzer.
    pub fn finish(&mut self) -> &Analyzer {
        if self.merged.is_none() {
            let mut shards = Vec::with_capacity(self.workers.len());
            for mut w in std::mem::take(&mut self.workers) {
                if let Some(tx) = w.tx.take() {
                    if !w.batch.is_empty() {
                        let _ = tx.send(std::mem::take(&mut w.batch));
                    }
                    drop(tx); // closes the channel; the worker drains and returns
                }
                let analyzer = w
                    .handle
                    .take()
                    .expect("worker joined once")
                    .join()
                    .expect("shard worker panicked");
                shards.push(analyzer);
            }
            let registry = std::mem::take(&mut self.registry);
            self.merged = Some(merge(self.config.clone(), shards, registry));
        }
        self.merged.as_ref().expect("merged above")
    }

    /// Consume the pipeline, returning the merged analyzer.
    pub fn into_analyzer(mut self) -> Analyzer {
        self.finish();
        self.merged.take().expect("finish() populated merged")
    }

    // ---- the sequential accessor surface (each finishes if needed) ----

    /// Trace summary (Table 6) — identical to the sequential analyzer's.
    pub fn summary(&mut self) -> TraceSummary {
        self.finish().summary()
    }

    /// Meeting reports (§4.3) — identical to the sequential analyzer's.
    pub fn meetings(&mut self) -> Vec<MeetingReport> {
        self.finish().meetings()
    }

    /// One-second metric samples for one media type (Fig. 15's inputs).
    pub fn media_samples(&mut self, media: MediaType) -> MediaSamples {
        self.finish().media_samples(media)
    }

    /// Joined per-(stream, second) (jitter, bit rate, fps) video samples
    /// — the scatter data of Fig. 16.
    pub fn fig16_samples(&mut self) -> Vec<(f64, f64, f64)> {
        self.finish().fig16_samples()
    }

    /// RTP-copy RTT samples (§5.3 method 1).
    pub fn rtp_rtt_samples(&mut self) -> &[RttSample] {
        self.finish().rtp_rtt_samples()
    }

    /// TCP control-connection RTT samples (§5.3 method 2).
    pub fn tcp_rtt_samples(&mut self) -> &[RttSample] {
        self.finish().tcp_rtt_samples()
    }
}

/// FNV-1a over the canonical 5-tuple, reduced modulo the shard count.
/// Both directions of a conversation hash identically, so every per-flow
/// and per-stream state machine stays on one shard.
fn shard_of(flow: &FiveTuple, n: usize) -> usize {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let c = flow.canonical();
    let mut h = OFFSET;
    let mut feed = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    match c.src_ip {
        IpAddr::V4(a) => feed(&a.octets()),
        IpAddr::V6(a) => feed(&a.octets()),
    }
    match c.dst_ip {
        IpAddr::V4(a) => feed(&a.octets()),
        IpAddr::V6(a) => feed(&a.octets()),
    }
    feed(&c.src_port.to_be_bytes());
    feed(&c.dst_port.to_be_bytes());
    feed(&[u8::from(c.protocol)]);
    // FNV's low bits mix poorly for short, correlated inputs (adjacent
    // addresses/ports), and `% n` reads exactly those bits; run the hash
    // through a 64-bit finalizer for good dispersion at any shard count.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    (h % n as u64) as usize
}

/// Per-stream replica of the candidate state the grouping heuristic's
/// lookup closure reads sequentially: per payload type the running packet
/// count and last RTP sequence/timestamp, plus the stream's last-seen
/// time. Rebuilt from the event log during replay.
#[derive(Default)]
struct Replica {
    /// payload type → (packets, last RTP seq, last RTP timestamp).
    subs: HashMap<u8, (u64, u16, u32)>,
    last_seen: u64,
}

impl Replica {
    /// Mirror of `Stream::candidate_state`: the dominant sub-stream by
    /// (packets, payload type).
    fn candidate(&self) -> Option<CandidateState> {
        self.subs
            .iter()
            .max_by_key(|&(&pt, &(packets, _, _))| (packets, pt))
            .map(|(_, &(_, last_seq, last_rtp_ts))| CandidateState {
                last_rtp_ts,
                last_seq,
                last_seen: self.last_seen,
            })
    }
}

/// Merge shard analyzers into one sequential-identical analyzer.
fn merge(
    config: AnalyzerConfig,
    shards: Vec<Analyzer>,
    registry: HashMap<Endpoint, u64>,
) -> Analyzer {
    let mut merged = Analyzer::new(config);

    // ---- additive state + concatenations ----
    let mut events: Vec<MediaEvent> = Vec::new();
    let mut pool = HashMap::new();
    let mut tcp_samples: Vec<RttSample> = Vec::new();
    for mut shard in shards {
        merged.total_packets += shard.total_packets;
        merged.zoom_packets += shard.zoom_packets;
        merged.zoom_bytes += shard.zoom_bytes;
        merged.undissectable += shard.undissectable;
        merged.first_zoom_ts = match (merged.first_zoom_ts, shard.first_zoom_ts) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        merged.last_zoom_ts = merged.last_zoom_ts.max(shard.last_zoom_ts);
        // Flows are shard-exclusive under canonical routing, but merge
        // defensively (min first-seen / max last-seen, summed counters).
        for (ft, fs) in shard.flows.drain() {
            match merged.flows.entry(ft) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(fs);
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let e = o.get_mut();
                    e.packets += fs.packets;
                    e.bytes += fs.bytes;
                    e.first_seen = e.first_seen.min(fs.first_seen);
                    e.last_seen = e.last_seen.max(fs.last_seen);
                }
            }
        }
        merged.classifier.merge(&shard.classifier);
        // Per-shard TCP samples are already time-ordered; the stable sort
        // below k-way merges them.
        tcp_samples.extend_from_slice(shard.tcp_rtt.samples());
        if let Some(log) = shard.event_log.take() {
            events.extend(log);
        }
        pool.extend(std::mem::take(&mut shard.streams).into_streams());
    }
    tcp_samples.sort_by_key(|s| s.at);
    merged.tcp_rtt.set_samples(tcp_samples);

    // ---- global-order replay of cross-flow trackers ----
    events.sort_unstable_by_key(|e| e.seq_no);
    let campus = merged.config.campus.clone();
    let mut grouper = MeetingGrouper::with_config(merged.config.grouping);
    let mut rtt = RtpRttEstimator::default();
    let mut replicas: HashMap<StreamKey, Replica> = HashMap::new();
    let mut creation_order: Vec<StreamKey> = Vec::new();
    for ev in &events {
        rtt.observe(
            ev.ts_nanos,
            (ev.ssrc, ev.payload_type, ev.rtp_seq, ev.rtp_ts),
            ev.direction,
            ev.flow.src_ip,
        );
        let key = StreamKey {
            flow: ev.flow,
            ssrc: ev.ssrc,
        };
        if !replicas.contains_key(&key) {
            creation_order.push(key);
            let (client, server) = resolve_stream_endpoints(&ev.flow, &campus);
            grouper.on_new_stream(key, client, server, ev.rtp_ts, ev.rtp_seq, ev.ts_nanos, |k| {
                replicas.get(k).and_then(|r| r.candidate())
            });
        }
        let r = replicas.entry(key).or_default();
        r.last_seen = ev.ts_nanos;
        let sub = r.subs.entry(ev.payload_type).or_insert((0, 0, 0));
        sub.0 += 1;
        sub.1 = ev.rtp_seq;
        sub.2 = ev.rtp_ts;
    }

    // Adopt shard streams in global creation order, stamping the unique
    // ids the replayed grouper assigned.
    for key in creation_order {
        if let Some(mut s) = pool.remove(&key) {
            s.unique_id = grouper.assignment(&key).map(|(uid, _)| uid);
            merged.streams.adopt(s);
        }
    }
    debug_assert!(
        pool.is_empty(),
        "every shard stream must have at least one logged event"
    );

    merged.grouper = grouper;
    merged.rtp_rtt = rtt;
    merged.p2p_endpoints = registry;
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use zoom_wire::compose;
    use zoom_wire::ipv4::Protocol;
    use zoom_wire::rtp;
    use zoom_wire::zoom;

    const MS: u64 = 1_000_000;

    fn tuple(src: [u8; 4], sport: u16, dst: [u8; 4], dport: u16) -> FiveTuple {
        FiveTuple {
            src_ip: IpAddr::V4(Ipv4Addr::from(src)),
            dst_ip: IpAddr::V4(Ipv4Addr::from(dst)),
            src_port: sport,
            dst_port: dport,
            protocol: Protocol::Udp,
        }
    }

    #[test]
    fn both_directions_hash_to_one_shard() {
        let up = tuple([10, 8, 0, 1], 50_000, [170, 114, 0, 1], 8801);
        for n in [1usize, 2, 3, 8, 13] {
            assert_eq!(shard_of(&up, n), shard_of(&up.reversed(), n));
            assert!(shard_of(&up, n) < n);
        }
    }

    #[test]
    fn distinct_flows_spread_over_shards() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u16 {
            let ft = tuple([10, 8, 0, (i % 250) as u8 + 1], 50_000 + i, [170, 114, 0, 1], 8801);
            seen.insert(shard_of(&ft, 8));
        }
        assert!(seen.len() >= 6, "poor dispersion: {seen:?}");
    }

    fn media_record(ts: u64, up: bool, ssrc: u32, seq: u16, rtp_ts: u32) -> Record {
        let payload = zoom::Builder {
            sfu: Some(zoom::SfuEncapRepr {
                encap_type: zoom::SFU_TYPE_MEDIA,
                sequence: seq,
                direction: if up { zoom::DIR_TO_SFU } else { zoom::DIR_FROM_SFU },
            }),
            media: zoom::MediaEncapRepr {
                media_type: zoom::MediaType::Video,
                sequence: seq,
                timestamp: (ts / 1_000_000) as u32,
                frame_sequence: Some(seq / 2),
                packets_in_frame: Some(1),
            },
            rtp: Some(rtp::Repr {
                marker: true,
                payload_type: 98,
                sequence_number: seq,
                timestamp: rtp_ts,
                ssrc,
                csrc_count: 0,
                has_extension: false,
            }),
            payload: vec![0xA5; 700],
        }
        .build();
        let data = if up {
            compose::udp_ipv4_ethernet(
                Ipv4Addr::new(10, 8, 0, 1),
                Ipv4Addr::new(170, 114, 0, 1),
                50_000,
                8801,
                &payload,
            )
        } else {
            compose::udp_ipv4_ethernet(
                Ipv4Addr::new(170, 114, 0, 1),
                Ipv4Addr::new(10, 8, 0, 2),
                8801,
                51_000,
                &payload,
            )
        };
        Record::full(ts, data)
    }

    #[test]
    fn matches_sequential_on_stream_copies() {
        // The pipeline.rs "copies group into one meeting" scenario, run
        // through both paths: the uplink and downlink flows land on
        // different shards, so equality here exercises the event replay.
        let records: Vec<Record> = (0..100u64)
            .flat_map(|i| {
                let seq = i as u16 + 1;
                let rtp_ts = 1_000 + (i as u32) * 3_000;
                [
                    media_record(i * 33 * MS, true, 0x21, seq, rtp_ts),
                    media_record(i * 33 * MS + 40 * MS, false, 0x21, seq, rtp_ts),
                ]
            })
            .collect();

        let mut sequential = Analyzer::new(AnalyzerConfig::default());
        for r in &records {
            sequential.process_record(r, LinkType::Ethernet);
        }
        for shards in [1usize, 2, 4] {
            let mut par = ParallelAnalyzer::new(AnalyzerConfig::default(), shards);
            for r in &records {
                par.process_record(r, LinkType::Ethernet);
            }
            assert_eq!(par.summary(), sequential.summary(), "{shards} shards");
            assert_eq!(par.meetings(), sequential.meetings(), "{shards} shards");
            assert_eq!(
                par.rtp_rtt_samples(),
                sequential.rtp_rtt_samples(),
                "{shards} shards"
            );
            let s = par.media_samples(MediaType::Video);
            let q = sequential.media_samples(MediaType::Video);
            assert_eq!(s.bitrate_mbps.values(), q.bitrate_mbps.values());
            assert_eq!(s.fps.values(), q.fps.values());
            assert_eq!(s.frame_size.values(), q.frame_size.values());
            assert_eq!(s.jitter_ms.values(), q.jitter_ms.values());
        }
    }

    #[test]
    fn finish_is_idempotent_and_into_analyzer_matches() {
        let mut par = ParallelAnalyzer::new(AnalyzerConfig::default(), 2);
        for i in 0..10u64 {
            par.process_record(
                &media_record(i * MS, true, 0x9, i as u16, 100 + i as u32),
                LinkType::Ethernet,
            );
        }
        let first = par.summary();
        let second = par.summary();
        assert_eq!(first, second);
        let merged = par.into_analyzer();
        assert_eq!(merged.summary(), first);
    }

    #[test]
    fn undissectable_spread_and_counted() {
        let mut par = ParallelAnalyzer::new(AnalyzerConfig::default(), 3);
        for i in 0..30u64 {
            par.process_record(&Record::full(i, vec![1, 2, 3]), LinkType::Ethernet);
        }
        let merged = par.finish();
        assert_eq!(merged.undissectable(), 30);
        assert_eq!(merged.summary().total_packets, 30);
    }
}
