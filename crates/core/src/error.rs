//! The crate's error type.
//!
//! Every fallible public API in this crate returns [`Error`] rather than
//! a bare `String` or a panic: configuration validation
//! ([`crate::pipeline::AnalyzerConfigBuilder::build`]), the streaming
//! engine ([`crate::engine::StreamingEngine`]), and the parallel
//! front-end ([`crate::parallel::ParallelAnalyzer::finish`]). Callers
//! that prefer strings (the CLI's `Result<(), String>` plumbing) get one
//! for free through the `From<Error> for String` impl.

use std::fmt;

/// Errors surfaced by the analysis APIs.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An I/O failure while reading or writing a trace.
    Io {
        /// What was being read or written when the failure occurred
        /// (usually a file path).
        context: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// Input bytes that could not be parsed as the expected format.
    Parse(String),
    /// An invalid configuration value (bad CIDR, zero shard count, an
    /// out-of-range duration, …).
    Config(String),
    /// A worker shard of the parallel/streaming pipeline panicked; the
    /// string carries the panic payload when it was textual.
    ShardPanic(String),
}

impl Error {
    /// Wrap an I/O error with the path (or other context) it occurred on.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Error {
        Error::Io {
            context: context.into(),
            source,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { context, source } => write!(f, "{context}: {source}"),
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::Config(msg) => write!(f, "invalid configuration: {msg}"),
            Error::ShardPanic(msg) => write!(f, "shard worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<Error> for String {
    fn from(e: Error) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = Error::io(
            "trace.pcap",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.to_string().contains("trace.pcap"));
        let s: String = Error::Config("bad CIDR".into()).into();
        assert!(s.contains("bad CIDR"));
    }
}
