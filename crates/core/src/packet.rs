//! Lightweight per-packet metadata — the record type the trackers consume.
//!
//! A [`PacketMeta`] is everything the analysis layer needs from one
//! captured packet, extracted once by the dissector and then shared by the
//! flow, stream, latency, and grouping trackers without re-parsing.

use std::net::IpAddr;
use zoom_wire::dissect::{App, Dissection, Transport};
use zoom_wire::family::FamilyId;
use zoom_wire::flow::FiveTuple;
use zoom_wire::rtcp;
use zoom_wire::webrtc::{self, SrtpRepr};
use zoom_wire::zoom::{Framing, MediaType, RtpPayloadKind, DIR_FROM_SFU, ZOOM_SFU_PORT};

/// Direction of a Zoom packet relative to the infrastructure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Client → SFU (or campus peer → remote peer for P2P).
    ToServer,
    /// SFU → client (or remote peer → campus peer).
    FromServer,
    /// Could not be determined.
    Unknown,
}

/// RTP facts of a media packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtpMeta {
    /// Synchronization source.
    pub ssrc: u32,
    /// RTP payload type.
    pub payload_type: u8,
    /// RTP sequence number.
    pub sequence: u16,
    /// RTP media timestamp.
    pub timestamp: u32,
    /// Marker bit.
    pub marker: bool,
    /// Sub-stream classification of the payload type.
    pub kind: RtpPayloadKind,
}

/// RTCP sender-report facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtcpMeta {
    /// Originating SSRC.
    pub ssrc: u32,
    /// 64-bit NTP timestamp from the sender info.
    pub ntp_timestamp: u64,
    /// RTP timestamp corresponding to the NTP time.
    pub rtp_timestamp: u32,
    /// Sender's cumulative packet count.
    pub packet_count: u32,
    /// Sender's cumulative payload octet count.
    pub octet_count: u32,
}

/// One analyzed Zoom packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketMeta {
    /// Capture timestamp, nanoseconds.
    pub ts_nanos: u64,
    /// The packet's 5-tuple.
    pub five_tuple: FiveTuple,
    /// Total IP-layer bytes (for flow bit rates).
    pub ip_len: usize,
    /// Protocol family the packet was classified under.
    pub family: FamilyId,
    /// Framing that parsed (server or P2P; WebRTC media is always
    /// peer-to-peer framed).
    pub framing: Framing,
    /// Zoom media encapsulation type.
    pub media_type: MediaType,
    /// Inferred packet direction.
    pub direction: Direction,
    /// RTP header facts, for media packets.
    pub rtp: Option<RtpMeta>,
    /// First RTCP SR in the packet, if any.
    pub rtcp: Option<RtcpMeta>,
    /// Video-only Zoom media-encapsulation fields.
    pub frame_seq: Option<u16>,
    /// Video-only: number of packets in the current frame.
    pub pkts_in_frame: Option<u8>,
    /// RTP payload bytes (the actual media bits).
    pub media_payload_len: usize,
}

/// TCP facts used by the control-connection RTT estimator (§5.3 method 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpMeta {
    /// Capture timestamp, nanoseconds.
    pub ts_nanos: u64,
    /// The segment's 5-tuple.
    pub five_tuple: FiveTuple,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Whether the ACK flag is set.
    pub has_ack: bool,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Total IP-layer bytes.
    pub ip_len: usize,
}

/// What the analyzer extracted from one capture record.
#[derive(Debug, Clone, PartialEq)]
pub enum Extracted {
    /// A Zoom media/control packet with its metadata.
    Zoom(PacketMeta),
    /// A TCP segment (control-connection RTT input).
    Tcp(TcpMeta),
    /// STUN exchange — input to P2P flow detection (both families).
    Stun {
        /// Capture timestamp, nanoseconds.
        ts_nanos: u64,
        /// The exchange's 5-tuple.
        five_tuple: FiveTuple,
    },
    /// A native-WebRTC PDU (produced when the dissector's WebRTC probe
    /// is enabled; the session-gated auto path classifies in the
    /// analyzer instead).
    Webrtc {
        /// Capture timestamp, nanoseconds.
        ts_nanos: u64,
        /// The packet's 5-tuple.
        five_tuple: FiveTuple,
        /// Total IP-layer bytes.
        ip_len: usize,
        /// The parsed PDU.
        pdu: webrtc::Pdu,
    },
    /// Parsed but not interesting to the analyzer.
    Other,
}

/// Is this address inside any of the given campus prefixes? Used to
/// orient P2P flows (campus side = "client").
///
/// An **empty prefix list means "everything is on-campus"**: with no
/// vantage configured there is no basis for calling any flow external, so
/// campus orientation is effectively disabled — every address passes, and
/// P2P direction inference treats the *source* side of a flow as the
/// client. Callers that want a real campus boundary must supply at least
/// one prefix (as [`crate::pipeline::AnalyzerConfig::default`] does).
pub fn in_campus(campus: &[(IpAddr, u8)], ip: IpAddr) -> bool {
    if campus.is_empty() {
        return true;
    }
    campus.iter().any(|&(net, len)| match (net, ip) {
        (IpAddr::V4(n), IpAddr::V4(a)) => {
            let mask = if len == 0 {
                0
            } else {
                u32::MAX << (32 - u32::from(len))
            };
            u32::from(a) & mask == u32::from(n) & mask
        }
        _ => false,
    })
}

/// Build a [`PacketMeta`] from an already-parsed Zoom packet.
///
/// Shared by [`extract`] and by the analyzer's second-chance P2P path
/// (re-parsing an opaque UDP payload once its endpoint is known to have
/// completed a STUN exchange).
pub fn meta_from_zoom(
    ts_nanos: u64,
    five_tuple: FiveTuple,
    ip_len: usize,
    framing: Framing,
    z: &zoom_wire::zoom::ZoomPacket,
    campus: &[(IpAddr, u8)],
) -> PacketMeta {
    let direction = match framing {
        Framing::Server => {
            if let Some(sfu) = &z.sfu {
                if sfu.direction == DIR_FROM_SFU {
                    Direction::FromServer
                } else {
                    Direction::ToServer
                }
            } else if five_tuple.src_port == ZOOM_SFU_PORT {
                Direction::FromServer
            } else if five_tuple.dst_port == ZOOM_SFU_PORT {
                Direction::ToServer
            } else {
                Direction::Unknown
            }
        }
        Framing::P2p => {
            // Orient by campus membership: campus → peer counts as the
            // uplink direction for per-direction statistics.
            if in_campus(campus, five_tuple.src_ip) {
                Direction::ToServer
            } else if in_campus(campus, five_tuple.dst_ip) {
                Direction::FromServer
            } else {
                Direction::Unknown
            }
        }
    };
    let rtp = z.rtp.as_ref().map(|r| RtpMeta {
        ssrc: r.ssrc,
        payload_type: r.payload_type,
        sequence: r.sequence_number,
        timestamp: r.timestamp,
        marker: r.marker,
        kind: RtpPayloadKind::classify(z.media.media_type, r.payload_type),
    });
    let rtcp = z.rtcp.iter().find_map(|item| match item {
        rtcp::Item::SenderReport { ssrc, info, .. } => Some(RtcpMeta {
            ssrc: *ssrc,
            ntp_timestamp: info.ntp_timestamp,
            rtp_timestamp: info.rtp_timestamp,
            packet_count: info.packet_count,
            octet_count: info.octet_count,
        }),
        _ => None,
    });
    PacketMeta {
        ts_nanos,
        five_tuple,
        ip_len,
        family: FamilyId::Zoom,
        framing,
        media_type: z.media.media_type,
        direction,
        rtp,
        rtcp,
        frame_seq: z.media.frame_sequence,
        pkts_in_frame: z.media.packets_in_frame,
        media_payload_len: z.media_payload_len,
    }
}

/// Build a [`PacketMeta`] from a parsed WebRTC SRTP packet.
///
/// The cleartext RTP header supplies everything the stream trackers need;
/// media type comes from the payload-type mapping
/// ([`webrtc::media_type_for_pt`]), direction from campus membership
/// (WebRTC media flows peer-to-peer, like Zoom P2P), and the ZME-only
/// fields (`frame_seq`, `pkts_in_frame`, RTCP sender info) stay `None` —
/// WebRTC video frames are delimited by the RTP marker bit instead.
pub fn meta_from_webrtc(
    ts_nanos: u64,
    five_tuple: FiveTuple,
    ip_len: usize,
    srtp: &SrtpRepr,
    campus: &[(IpAddr, u8)],
) -> PacketMeta {
    let direction = if in_campus(campus, five_tuple.src_ip) {
        Direction::ToServer
    } else if in_campus(campus, five_tuple.dst_ip) {
        Direction::FromServer
    } else {
        Direction::Unknown
    };
    let media_type = webrtc::media_type_for_pt(srtp.rtp.payload_type);
    PacketMeta {
        ts_nanos,
        five_tuple,
        ip_len,
        family: FamilyId::Webrtc,
        framing: Framing::P2p,
        media_type,
        direction,
        rtp: Some(RtpMeta {
            ssrc: srtp.rtp.ssrc,
            payload_type: srtp.rtp.payload_type,
            sequence: srtp.rtp.sequence_number,
            timestamp: srtp.rtp.timestamp,
            marker: srtp.rtp.marker,
            kind: RtpPayloadKind::classify(media_type, srtp.rtp.payload_type),
        }),
        rtcp: None,
        frame_seq: None,
        pkts_in_frame: None,
        media_payload_len: srtp.payload_len,
    }
}

/// Convert a dissection into analyzer metadata.
pub fn extract(d: &Dissection<'_>, campus: &[(IpAddr, u8)]) -> Extracted {
    match &d.app {
        App::Stun(_) => Extracted::Stun {
            ts_nanos: d.ts_nanos,
            five_tuple: d.five_tuple,
        },
        App::Zoom(framing, z) => Extracted::Zoom(meta_from_zoom(
            d.ts_nanos,
            d.five_tuple,
            d.ip_total_len,
            *framing,
            z,
            campus,
        )),
        App::Webrtc(pdu) => Extracted::Webrtc {
            ts_nanos: d.ts_nanos,
            five_tuple: d.five_tuple,
            ip_len: d.ip_total_len,
            pdu: *pdu,
        },
        App::Opaque => match &d.transport {
            Transport::Tcp {
                seq,
                ack,
                flags,
                payload_len,
                ..
            } => Extracted::Tcp(TcpMeta {
                ts_nanos: d.ts_nanos,
                five_tuple: d.five_tuple,
                seq: *seq,
                ack: *ack,
                has_ack: flags.ack,
                payload_len: *payload_len,
                ip_len: d.ip_total_len,
            }),
            Transport::Udp { .. } => Extracted::Other,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;
    use zoom_wire::compose;
    use zoom_wire::dissect::{dissect, P2pProbe};
    use zoom_wire::pcap::LinkType;
    use zoom_wire::rtp;
    use zoom_wire::zoom;

    fn campus() -> Vec<(IpAddr, u8)> {
        vec![(IpAddr::V4(Ipv4Addr::new(10, 8, 0, 0)), 16)]
    }

    fn video_packet(direction: u8) -> Vec<u8> {
        let payload = zoom::Builder {
            sfu: Some(zoom::SfuEncapRepr {
                encap_type: zoom::SFU_TYPE_MEDIA,
                sequence: 1,
                direction,
            }),
            media: zoom::MediaEncapRepr {
                media_type: zoom::MediaType::Video,
                sequence: 10,
                timestamp: 20,
                frame_sequence: Some(3),
                packets_in_frame: Some(2),
            },
            rtp: Some(rtp::Repr {
                marker: true,
                payload_type: 98,
                sequence_number: 55,
                timestamp: 9_000,
                ssrc: 0x22,
                csrc_count: 0,
                has_extension: false,
            }),
            payload: vec![7; 50],
        }
        .build();
        if direction == zoom::DIR_FROM_SFU {
            compose::udp_ipv4_ethernet(
                Ipv4Addr::new(170, 114, 0, 1),
                Ipv4Addr::new(10, 8, 0, 9),
                zoom::ZOOM_SFU_PORT,
                50_000,
                &payload,
            )
        } else {
            compose::udp_ipv4_ethernet(
                Ipv4Addr::new(10, 8, 0, 9),
                Ipv4Addr::new(170, 114, 0, 1),
                50_000,
                zoom::ZOOM_SFU_PORT,
                &payload,
            )
        }
    }

    #[test]
    fn extracts_video_meta_with_direction() {
        let data = video_packet(zoom::DIR_FROM_SFU);
        let d = dissect(5, &data, LinkType::Ethernet, P2pProbe::Off).unwrap();
        match extract(&d, &campus()) {
            Extracted::Zoom(m) => {
                assert_eq!(m.direction, Direction::FromServer);
                assert_eq!(m.media_type, zoom::MediaType::Video);
                let rtp = m.rtp.unwrap();
                assert_eq!(rtp.ssrc, 0x22);
                assert_eq!(rtp.kind, RtpPayloadKind::VideoMain);
                assert!(rtp.marker);
                assert_eq!(m.pkts_in_frame, Some(2));
                assert_eq!(m.media_payload_len, 50);
            }
            other => panic!("unexpected {other:?}"),
        }

        let data = video_packet(zoom::DIR_TO_SFU);
        let d = dissect(5, &data, LinkType::Ethernet, P2pProbe::Off).unwrap();
        match extract(&d, &campus()) {
            Extracted::Zoom(m) => assert_eq!(m.direction, Direction::ToServer),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn extracts_tcp_meta() {
        let data = compose::tcp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 0, 9),
            Ipv4Addr::new(170, 114, 0, 1),
            50_000,
            443,
            100,
            200,
            zoom_wire::tcp::Flags {
                ack: true,
                psh: true,
                ..Default::default()
            },
            b"abc",
        );
        let d = dissect(1, &data, LinkType::Ethernet, P2pProbe::Off).unwrap();
        match extract(&d, &campus()) {
            Extracted::Tcp(t) => {
                assert_eq!(t.seq, 100);
                assert_eq!(t.ack, 200);
                assert!(t.has_ack);
                assert_eq!(t.payload_len, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn webrtc_srtp_meta_orients_and_classifies() {
        let rtp = rtp::Repr {
            marker: true,
            payload_type: 96,
            sequence_number: 7,
            timestamp: 180_000,
            ssrc: 0x55,
            csrc_count: 0,
            has_extension: false,
        };
        let mut payload = vec![0u8; rtp.header_len() + 60];
        rtp.emit(&mut rtp::Packet::new_unchecked(&mut payload[..]));
        let data = compose::udp_ipv4_ethernet(
            Ipv4Addr::new(10, 8, 0, 9),
            Ipv4Addr::new(203, 0, 113, 4),
            51_000,
            62_000,
            &payload,
        );
        let probe = zoom_wire::dissect::Probe {
            webrtc: zoom_wire::dissect::WebrtcProbe::Auto,
            ..Default::default()
        };
        let d = dissect(3, &data, LinkType::Ethernet, probe).unwrap();
        match extract(&d, &campus()) {
            Extracted::Webrtc {
                five_tuple,
                ip_len,
                pdu: zoom_wire::webrtc::Pdu::Srtp(s),
                ..
            } => {
                assert_eq!(five_tuple.src_port, 51_000);
                let m = meta_from_webrtc(3, five_tuple, ip_len, &s, &campus());
                assert_eq!(m.family, FamilyId::Webrtc);
                assert_eq!(m.framing, Framing::P2p);
                assert_eq!(m.media_type, MediaType::Video);
                assert_eq!(m.direction, Direction::ToServer);
                let r = m.rtp.unwrap();
                assert_eq!((r.ssrc, r.payload_type), (0x55, 96));
                assert!(r.marker);
                assert_eq!(m.media_payload_len, 50); // 60 − 10-byte auth tag
                assert_eq!(m.pkts_in_frame, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_campus_means_everything_on_campus() {
        assert!(in_campus(&[], "203.0.113.9".parse().unwrap()));
        assert!(in_campus(&[], "2001:db8::1".parse().unwrap()));
    }

    #[test]
    fn in_campus_prefix_math() {
        let c = campus();
        assert!(in_campus(&c, "10.8.255.1".parse().unwrap()));
        assert!(!in_campus(&c, "10.9.0.1".parse().unwrap()));
        assert!(!in_campus(&c, "2001:db8::1".parse().unwrap()));
    }
}
