//! Std-only HTTP scrape endpoint for [`PipelineMetrics`].
//!
//! A hand-rolled single-threaded `TcpListener` responder — no external
//! HTTP crates, per the offline-vendoring rule — answering these
//! routes:
//!
//! * `GET /metrics` — the live [`MetricsSnapshot::to_prom`] render,
//!   `Content-Type: text/plain; version=0.0.4`;
//! * `GET /healthz` — `ok` once the listener is up (liveness only; it
//!   does not assert that packets are flowing);
//! * `GET /debug/pipeline` — a live JSON view of internal pipeline
//!   state ([`PipelineMetrics::debug_json`]): ring occupancy and
//!   high-water marks, per-source delivered timestamps and lag,
//!   per-shard channel depth, worker link states, table sizes and
//!   eviction pressure;
//! * `GET /debug/trace?n=K` — the last `K` (default 16) sampled traces
//!   from the collector's tail ring, one JSON object per line, oldest
//!   first. Empty body while tracing is disabled.
//!
//! Everything else is `404`, non-`GET` methods are `405`. Each request
//! is served on the accept thread with a short read timeout, which is
//! plenty for the intended single-scraper (Prometheus) deployment and
//! keeps the implementation free of any thread-pool machinery.
//!
//! The server holds only an `Arc<PipelineMetrics>`, so it can run next
//! to any sink — including [`StreamingEngine`](crate::engine::StreamingEngine),
//! which is not itself `Sync` — and snapshots are taken per request.
//!
//! ```no_run
//! use std::sync::Arc;
//! use zoom_analysis::obs::{serve, PipelineMetrics};
//!
//! let metrics = Arc::new(PipelineMetrics::new(1));
//! let handle = serve::serve("127.0.0.1:9184", Arc::clone(&metrics)).unwrap();
//! println!("scrape http://{}/metrics", handle.addr());
//! // ... run the pipeline ...
//! handle.shutdown();
//! ```
//!
//! [`MetricsSnapshot::to_prom`]: super::MetricsSnapshot::to_prom

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use super::PipelineMetrics;

/// How long the accept loop naps when no connection is pending. Bounds
/// both idle CPU cost and shutdown latency.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Per-connection read/write timeout; a scraper that stalls longer
/// forfeits the request rather than wedging the accept loop.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// A running scrape endpoint; stops serving when shut down or dropped.
#[derive(Debug)]
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl ServeHandle {
    /// The locally bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Alias for [`addr`](Self::addr) matching the std
    /// `TcpListener::local_addr` spelling — both the merge service and
    /// `analyze --serve` log this after binding port 0.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Bind `addr` and serve `GET /metrics` + `GET /healthz` from a
/// background thread until the returned [`ServeHandle`] is shut down.
///
/// Binding errors (port in use, bad address) surface immediately;
/// per-connection I/O errors after that are swallowed — a misbehaving
/// scraper must not take the pipeline down.
pub fn serve<A: ToSocketAddrs>(addr: A, metrics: Arc<PipelineMetrics>) -> io::Result<ServeHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let thread = thread::Builder::new()
        .name("obs-serve".into())
        .spawn(move || accept_loop(listener, metrics, stop2))?;
    Ok(ServeHandle {
        addr,
        stop,
        thread: Some(thread),
    })
}

fn accept_loop(listener: TcpListener, metrics: Arc<PipelineMetrics>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle_conn(stream, &metrics);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_conn(mut stream: TcpStream, metrics: &PipelineMetrics) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;

    // Read until the end of the request head (or the timeout). The
    // request body, if any, is irrelevant to both routes.
    let mut buf = [0u8; 1024];
    let mut head = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));

    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain", "method not allowed\n".to_string())
    } else {
        // Route on the path alone: `/metrics?x=y` is still `/metrics`.
        let (route, query) = match path.split_once('?') {
            Some((p, q)) => (p, q),
            None => (path, ""),
        };
        match route {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                metrics.snapshot().to_prom(),
            ),
            "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
            "/debug/pipeline" => ("200 OK", "application/json", metrics.debug_json()),
            "/debug/trace" => {
                let n = query
                    .split('&')
                    .find_map(|kv| kv.strip_prefix("n="))
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or(16);
                ("200 OK", "application/x-ndjson", metrics.trace.tail_ndjson(n))
            }
            _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_and_healthz() {
        let metrics = Arc::new(PipelineMetrics::new(1));
        metrics.record_in(100);
        metrics.packets_classified.inc();
        let handle = serve("127.0.0.1:0", Arc::clone(&metrics)).unwrap();
        let addr = handle.addr();

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");

        let prom = get(addr, "/metrics");
        assert!(prom.contains("text/plain; version=0.0.4"), "{prom}");
        assert!(prom.contains("zoom_packets_in_total 1"), "{prom}");
        assert!(prom.contains("zoom_qoe_series_evicted_total"), "{prom}");

        // The render is live: a second scrape sees new traffic.
        metrics.record_in(100);
        assert!(get(addr, "/metrics").contains("zoom_packets_in_total 2"));

        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));

        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");

        handle.shutdown();
        assert!(TcpStream::connect(addr).is_err() || {
            // A race on some platforms may allow one last connect; a
            // subsequent one must fail once the listener is gone.
            thread::sleep(Duration::from_millis(50));
            TcpStream::connect(addr).is_err()
        });
    }

    #[test]
    fn debug_routes_serve_live_state() {
        let metrics = Arc::new(PipelineMetrics::new(2));
        let src = metrics.register_source("pcap:a.pcap");
        src.ring_occupancy_hwm.set_max(5);
        metrics.trace.enable(1, "serve-test");
        let id = metrics.trace.sample().unwrap();
        metrics
            .trace
            .record(id, crate::obs::trace::spans::DISSECT, "engine", 7, 120);
        let handle = serve("127.0.0.1:0", Arc::clone(&metrics)).unwrap();
        let addr = handle.addr();

        let debug = get(addr, "/debug/pipeline");
        assert!(debug.starts_with("HTTP/1.1 200 OK"), "{debug}");
        assert!(debug.contains("application/json"), "{debug}");
        assert!(debug.contains("\"type\":\"debug_pipeline\""), "{debug}");
        assert!(debug.contains("\"ring_occupancy_hwm\":5"), "{debug}");
        assert!(debug.contains("\"sample_every\":1"), "{debug}");

        let tail = get(addr, "/debug/trace?n=4");
        assert!(tail.starts_with("HTTP/1.1 200 OK"), "{tail}");
        assert!(tail.contains("application/x-ndjson"), "{tail}");
        assert!(tail.contains(&format!("{id:016x}")), "{tail}");
        assert!(tail.contains("\"span\":\"dissect\""), "{tail}");

        // A bad or absent n falls back to the default tail length.
        assert!(get(addr, "/debug/trace?n=bogus").starts_with("HTTP/1.1 200 OK"));
        assert!(get(addr, "/debug/trace").starts_with("HTTP/1.1 200 OK"));
        handle.shutdown();
    }

    /// Satellite: the endpoint under concurrent load. Several client
    /// threads hammer /metrics, /healthz, and the /debug routes while
    /// the "pipeline" (main thread) keeps mutating the registry; every
    /// response must be a complete, well-formed 200 even though the
    /// single accept thread serializes the connections.
    #[test]
    fn concurrent_scrapes_during_active_ingest() {
        let metrics = Arc::new(PipelineMetrics::new(4));
        let handle = serve("127.0.0.1:0", Arc::clone(&metrics)).unwrap();
        let addr = handle.addr();

        let scrapers: Vec<_> = (0..4)
            .map(|i| {
                thread::spawn(move || {
                    let paths = ["/metrics", "/healthz", "/debug/pipeline", "/debug/trace?n=2"];
                    for round in 0..8 {
                        let body = get(addr, paths[(i + round) % paths.len()]);
                        assert!(body.starts_with("HTTP/1.1 200 OK"), "{body}");
                        assert!(body.contains("Content-Length:"), "{body}");
                    }
                })
            })
            .collect();
        // Active ingest: keep the counters moving under the scrapes.
        for _ in 0..2_000 {
            metrics.record_in(60);
            metrics.packets_classified.inc();
        }
        for s in scrapers {
            s.join().expect("scraper thread panicked");
        }
        assert!(get(addr, "/metrics").contains("zoom_packets_in_total 2000"));
        handle.shutdown();
    }

    /// Satellite: graceful shutdown racing in-flight scrapes. Clients
    /// that lose the race get a connection error, never a hang; the
    /// listener is gone shortly after shutdown returns.
    #[test]
    fn shutdown_races_inflight_scrapes_without_hanging() {
        let metrics = Arc::new(PipelineMetrics::new(1));
        let handle = serve("127.0.0.1:0", Arc::clone(&metrics)).unwrap();
        let addr = handle.addr();

        let racer = thread::spawn(move || {
            let mut served = 0u32;
            for _ in 0..200 {
                let Ok(mut s) = TcpStream::connect(addr) else { break };
                let _ = write!(s, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
                let mut out = String::new();
                if s.read_to_string(&mut out).is_ok() && !out.is_empty() {
                    // Whatever we got must be a complete response, not
                    // a torn one.
                    assert!(out.starts_with("HTTP/1.1 200 OK"), "{out}");
                    served += 1;
                }
            }
            served
        });
        thread::sleep(Duration::from_millis(30));
        handle.shutdown(); // joins the accept thread; must not deadlock
        let _served = racer.join().expect("racing scraper panicked");
        thread::sleep(Duration::from_millis(50));
        assert!(TcpStream::connect(addr).is_err(), "listener outlived shutdown");
    }
}
